//! Workspace-level end-to-end tests through the `planet` facade: the whole
//! stack — simulator, storage, protocol, prediction, programming model,
//! workloads — exercised together the way a downstream user would.

use planet::workload::{preload_events, stock_key, Arrival, TicketConfig, TicketWorkload};
use planet::{
    AdmissionPolicy, FinalOutcome, Key, Planet, PlanetTxn, Protocol, SimDuration, TxnEvent, Value,
};

#[test]
fn facade_quickstart_flow() {
    let mut db = Planet::builder().protocol(Protocol::Fast).seed(1).build();
    let handle = db.submit(0, PlanetTxn::builder().set("k", 9i64).build());
    db.run_for(SimDuration::from_secs(2));
    let record = db.record(handle).unwrap();
    assert_eq!(record.outcome, FinalOutcome::Committed);
    assert_eq!(db.read_local(4, &Key::new("k")), Value::Int(9));
}

#[test]
fn callbacks_and_speculation_through_facade() {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    let mut db = Planet::builder().protocol(Protocol::Fast).seed(2).build();
    // Warm.
    for i in 0..15u64 {
        let txn = PlanetTxn::builder().set(format!("w{i}"), 0i64).build();
        db.submit_at(0, db.now() + SimDuration::from_millis(1 + i * 300), txn);
    }
    db.run_for(SimDuration::from_secs(8));

    let events = Arc::new(AtomicUsize::new(0));
    let speculated = Arc::new(AtomicUsize::new(0));
    let (e2, s2) = (events.clone(), speculated.clone());
    let txn = PlanetTxn::builder()
        .set("target", 5i64)
        .speculate_at(0.9)
        .on_event(move |e| {
            e2.fetch_add(1, Ordering::SeqCst);
            if matches!(e, TxnEvent::Speculative { .. }) {
                s2.fetch_add(1, Ordering::SeqCst);
            }
        })
        .build();
    let handle = db.submit(0, txn);
    db.run_for(SimDuration::from_secs(3));

    assert!(db.record(handle).unwrap().outcome.is_commit());
    assert!(
        events.load(Ordering::SeqCst) >= 5,
        "progress events must flow"
    );
    assert_eq!(
        speculated.load(Ordering::SeqCst),
        1,
        "speculation fires exactly once"
    );
}

#[test]
fn ticket_sale_inventory_balances_across_protocols() {
    for (protocol, seed) in [(Protocol::Fast, 3u64), (Protocol::Classic, 4)] {
        let config = TicketConfig {
            events: 5,
            theta: 0.8,
            initial_stock: 20,
            arrival: Arrival::poisson(8.0),
            limit: Some(15),
            ..Default::default()
        };
        let mut db = Planet::builder().protocol(protocol).seed(seed).build();
        preload_events(&mut db, &config);
        for site in 0..5 {
            db.attach_source(
                site,
                Box::new(TicketWorkload::new(config.clone(), site as u8)),
            );
        }
        db.run_for(SimDuration::from_secs(60));

        let purchases: Vec<_> = db
            .all_records()
            .into_iter()
            .filter(|r| r.write_keys == 2)
            .collect();
        assert_eq!(purchases.len(), 75);
        let commits = purchases.iter().filter(|r| r.outcome.is_commit()).count();
        let consumed: i64 = (0..config.events)
            .map(|e| match db.read_local(0, &stock_key(e)) {
                Value::Int(s) => {
                    assert!(s >= 0, "{protocol}: oversold event {e}");
                    config.initial_stock - s
                }
                _ => 0,
            })
            .sum();
        assert_eq!(
            consumed as usize, commits,
            "{protocol}: inventory must balance"
        );
    }
}

#[test]
fn admission_control_improves_goodput_in_a_storm() {
    // The headline admission-control claim end to end: finite replica
    // capacity + hot-key storm; the controller must deliver more committed
    // work than the uncontrolled system.
    let run = |policy: Option<AdmissionPolicy>, seed: u64| {
        let mut builder = Planet::builder()
            .protocol(Protocol::Fast)
            .seed(seed)
            .validation_service(SimDuration::from_millis(10));
        if let Some(p) = policy {
            builder = builder.admission(p);
        }
        let mut db = builder.build();
        let start = db.now();
        for site in 0..5 {
            let w = planet::workload::YcsbWorkload::new(
                planet::workload::YcsbConfig {
                    arrival: Arrival::poisson(30.0),
                    ..Default::default()
                },
                planet::workload::KeyChooser::new(
                    "hot",
                    planet::workload::KeyDistribution::Zipfian { n: 10, theta: 0.9 },
                ),
            );
            db.attach_source(site, Box::new(w));
        }
        db.run_for(SimDuration::from_secs(25));
        let end = db.now();
        db.run_for(SimDuration::from_secs(15));
        db.all_records()
            .into_iter()
            .filter(|r| r.submitted_at >= start && r.submitted_at < end && r.outcome.is_commit())
            .count()
    };
    let without = run(None, 10);
    let with = run(
        Some(AdmissionPolicy {
            min_likelihood: 0.2,
            max_inflight: 4096,
        }),
        11,
    );
    assert!(
        with > without * 2,
        "admission control must multiply goodput in the collapse regime: {with} vs {without}"
    );
}

#[test]
fn deterministic_replay_through_the_full_stack() {
    let fingerprint = |seed: u64| {
        let mut db = Planet::builder()
            .protocol(Protocol::Fast)
            .seed(seed)
            .build();
        let config = TicketConfig {
            events: 3,
            initial_stock: 10,
            arrival: Arrival::poisson(12.0),
            limit: Some(10),
            ..Default::default()
        };
        preload_events(&mut db, &config);
        for site in 0..5 {
            db.attach_source(
                site,
                Box::new(TicketWorkload::new(config.clone(), site as u8)),
            );
        }
        db.run_for(SimDuration::from_secs(30));
        let commits = db.metrics().counter_value("planet.committed");
        let aborts = db.metrics().counter_value("planet.aborted");
        let spec = db.metrics().counter_value("planet.speculated");
        (commits, aborts, spec)
    };
    assert_eq!(fingerprint(77), fingerprint(77), "same seed, same universe");
}

#[test]
fn wal_recovery_invariant_holds_after_real_traffic() {
    // Drive real protocol traffic, then check every replica's recovery
    // invariant through the facade's lower layers.
    let mut db = Planet::builder().protocol(Protocol::Fast).seed(12).build();
    for i in 0..25u64 {
        let txn = PlanetTxn::builder()
            .set(format!("k{}", i % 4), i as i64)
            .add("counter", 1)
            .build();
        db.submit_at(
            (i % 5) as usize,
            db.now() + SimDuration::from_millis(1 + i * 200),
            txn,
        );
    }
    db.run_for(SimDuration::from_secs(30));

    let sim = db.sim_mut();
    for id in 0..5u32 {
        let replica = sim
            .actor_as::<planet::mdcc::ReplicaActor>(planet::sim::ActorId(id))
            .expect("replica actor");
        assert!(
            replica.storage().verify_recovery().is_empty(),
            "replica {id}: WAL replay must reproduce live state"
        );
    }
}

#[test]
fn facade_fault_injection_shifts_the_quorum() {
    // Crash ap-northeast (us-east's normal quorum completer) through the
    // facade; commits continue at ap-southeast's longer round trip, and
    // after recovery the crashed site converges on subsequent writes.
    let mut db = Planet::builder().protocol(Protocol::Fast).seed(21).build();
    db.crash_site_at(3, planet::SimTime::from_millis(1));

    let during = db.submit_at(
        0,
        planet::SimTime::from_millis(10),
        PlanetTxn::builder().set("fault-key", 1i64).build(),
    );
    db.run_for(SimDuration::from_secs(3));
    let r = db.record(during).unwrap();
    assert_eq!(r.outcome, FinalOutcome::Committed);
    assert!(
        r.latency > SimDuration::from_millis(185),
        "quorum must wait for ap-southeast (~200ms RTT), got {}",
        r.latency
    );

    db.recover_site_at(3, db.now());
    let after = db.submit_at(
        0,
        db.now() + SimDuration::from_millis(100),
        PlanetTxn::builder().set("fault-key", 2i64).build(),
    );
    db.run_for(SimDuration::from_secs(3));
    assert!(db.record(after).unwrap().outcome.is_commit());
    assert_eq!(db.read_local(3, &Key::new("fault-key")), Value::Int(2));
}
