//! Whole-system property tests: random workloads driven through the full
//! stack (simulator → storage → protocol → prediction → programming model),
//! checking the invariants that must hold for *every* workload and seed:
//!
//! 1. every submitted transaction reaches exactly one terminal state;
//! 2. no committed integer value ever violates its demarcation bounds, at
//!    any replica;
//! 3. all replicas converge to identical committed state after quiescence;
//! 4. WAL replay reproduces every replica's live state;
//! 5. the commit counter equals the number of committed records;
//! 6. apologies only ever happen to transactions that speculated.
//!
//! Cases are generated from a seeded [`DetRng`] (the repo builds fully
//! offline, so no external property-testing framework); a failing case's
//! label and case number reproduce it deterministically.

use planet::sim::DetRng;
use planet::{FinalOutcome, Key, Planet, PlanetTxn, Protocol, SimDuration, Value};

#[derive(Debug, Clone)]
struct Op {
    site: usize,
    /// Key index in a small shared keyspace (contention guaranteed).
    key: u8,
    /// Write kind: physical set, bounded decrement, or read-only.
    kind: u8,
    /// Submission delay from the previous op, ms.
    gap_ms: u16,
    speculate: bool,
    deadline: bool,
}

fn random_op(rng: &mut DetRng) -> Op {
    Op {
        site: rng.index(5),
        key: rng.range_u64(0, 6) as u8,
        kind: rng.range_u64(0, 3) as u8,
        gap_ms: rng.range_u64(0, 400) as u16,
        speculate: rng.bernoulli(0.5),
        deadline: rng.bernoulli(0.5),
    }
}

fn random_ops(rng: &mut DetRng, max_len: usize) -> Vec<Op> {
    let len = rng.index(max_len - 1) + 1; // 1..max_len
    (0..len).map(|_| random_op(rng)).collect()
}

const FLOOR: i64 = 0;
const INITIAL: i64 = 50;

/// Whole-system runs are comparatively expensive; a couple dozen cases
/// per configuration still explores thousands of interleavings thanks to
/// the random gaps and sites.
const CASES: u64 = 24;

fn run_system(protocol: Protocol, fallback: bool, seed: u64, ops: &[Op]) -> Planet {
    let mut db = Planet::builder()
        .protocol(protocol)
        .seed(seed)
        .fast_fallback(fallback)
        .txn_timeout(SimDuration::from_secs(5))
        .build();
    // Seed the keyspace.
    let mut seed_txn = PlanetTxn::builder();
    for k in 0..6 {
        seed_txn = seed_txn.set(format!("k{k}"), INITIAL);
    }
    db.submit(0, seed_txn.build());
    db.run_for(SimDuration::from_secs(3));

    let mut at = db.now();
    for op in ops {
        at += SimDuration::from_millis(op.gap_ms as u64);
        let key = format!("k{}", op.key);
        let mut b = PlanetTxn::builder();
        b = match op.kind {
            0 => b.set(key, op.gap_ms as i64),
            1 => b.add_with_floor(key, -1, FLOOR),
            _ => b.read(key),
        };
        if op.speculate {
            b = b.speculate_at(0.9);
        }
        if op.deadline {
            b = b.deadline(SimDuration::from_millis(250));
        }
        db.submit_at(op.site, at, b.build());
    }
    // Quiesce: every txn decides within the 5s timeout, plus apply fan-out.
    db.run_for(at.since(db.now()) + SimDuration::from_secs(20));
    db
}

fn check_invariants(db: &mut Planet, n_ops: usize, label: &str) {
    // (1) Every submission (ops + 1 seed txn) reached a terminal state.
    let records = db.all_records();
    assert_eq!(
        records.len(),
        n_ops + 1,
        "{label}: every txn must terminate"
    );

    // (6) Apologies imply speculation.
    for r in &records {
        if r.apologised() {
            assert!(r.speculated_at.is_some());
        }
    }

    // (5) Metrics agree with records.
    let commits = records
        .iter()
        .filter(|r| r.outcome == FinalOutcome::Committed)
        .count();
    assert_eq!(
        db.metrics().counter_value("planet.committed") as usize,
        commits,
        "{label}"
    );

    // (2) Bounds hold at every replica; (3) replicas agree.
    let reference: Vec<Value> = (0..6)
        .map(|k| db.read_local(0, &Key::new(format!("k{k}"))))
        .collect();
    for (k, v) in reference.iter().enumerate() {
        if let Value::Int(i) = v {
            assert!(
                (FLOOR..=i64::MAX).contains(i),
                "{label}: k{k} violated its floor: {i}"
            );
        }
    }
    for site in 1..5 {
        for (k, expect) in reference.iter().enumerate() {
            let v = db.read_local(site, &Key::new(format!("k{k}")));
            assert_eq!(&v, expect, "{label}: site {site} diverged on k{k}");
        }
    }

    // (4) WAL replay reproduces live replica state.
    let sim = db.sim_mut();
    for id in 0..5u32 {
        let replica = sim
            .actor_as::<planet::mdcc::ReplicaActor>(planet::sim::ActorId(id))
            .expect("replica");
        assert!(
            replica.storage().verify_recovery().is_empty(),
            "{label}: replica {id} WAL divergence"
        );
    }
}

fn run_cases(protocol: Protocol, fallback: bool, max_ops: usize, gen_base: u64, label: &str) {
    for case in 0..CASES {
        let mut rng = DetRng::new(gen_base + case);
        let ops = random_ops(&mut rng, max_ops);
        let seed = rng.range_u64(0, 1000);
        let mut db = run_system(protocol, fallback, seed, &ops);
        check_invariants(&mut db, ops.len(), &format!("{label} case {case}"));
    }
}

#[test]
fn invariants_hold_on_fast_path() {
    run_cases(Protocol::Fast, false, 60, 0x5E5_000, "fast");
}

#[test]
fn invariants_hold_with_fallback() {
    run_cases(Protocol::Fast, true, 60, 0x5E5_100, "fast+fallback");
}

#[test]
fn invariants_hold_on_classic_path() {
    run_cases(Protocol::Classic, false, 40, 0x5E5_200, "classic");
}

#[test]
fn invariants_hold_on_twopc() {
    run_cases(Protocol::TwoPc, false, 40, 0x5E5_300, "twopc");
}
