//! # planet
//!
//! A from-scratch Rust reproduction of **PLANET: Making Progress with
//! Commit Processing in Unpredictable Environments** (Pang, Kraska,
//! Franklin, Fekete — SIGMOD 2014): a transaction programming model for
//! strongly consistent geo-replicated databases that exposes commit
//! *progress* to the application, predicts the *commit likelihood* online,
//! supports *speculative commits* (with apologies when wrong), returns
//! control at application *deadlines*, and uses the likelihood model for
//! *admission control* under contention.
//!
//! This facade re-exports the workspace:
//!
//! * [`core`] — the PLANET programming model and the [`Planet`] deployment
//!   handle (start here);
//! * [`mdcc`] — the MDCC-style geo-replicated commit protocol substrate
//!   (fast/classic Paxos-inspired paths + a 2PC baseline);
//! * [`storage`] — per-replica versioned storage with MDCC options,
//!   demarcation bounds, WAL and recovery;
//! * [`predict`] — the commit-likelihood model and its calibration
//!   instruments;
//! * [`sim`] — the deterministic discrete-event WAN simulator;
//! * [`workload`] — YCSB-style and ticket-sales workloads.
//!
//! ```
//! use planet::{Planet, PlanetTxn, Protocol, SimDuration};
//!
//! let mut db = Planet::builder().protocol(Protocol::Fast).seed(1).build();
//! let txn = PlanetTxn::builder()
//!     .set("hello", 1i64)
//!     .speculate_at(0.95)
//!     .build();
//! let handle = db.submit(0, txn);
//! db.run_for(SimDuration::from_secs(2));
//! assert!(db.record(handle).unwrap().outcome.is_commit());
//! ```

#![warn(missing_docs)]

pub use planet_core as core;
pub use planet_mdcc as mdcc;
pub use planet_predict as predict;
pub use planet_sim as sim;
pub use planet_storage as storage;
pub use planet_workload as workload;

// The everyday vocabulary, flattened.
pub use planet_core::{
    AdmissionPolicy, FinalOutcome, Key, Planet, PlanetTxn, Protocol, RealtimePlanet, SimDuration,
    SimTime, Stage, TxnEvent, TxnHandle, TxnRecord, Value, WriteOp,
};
