//! planet-plan: the transaction IR and plan specializer.
//!
//! The paper's pitch — stop worrying and love compilers — applied to the
//! commit hot path: workloads describe their transaction *shapes* once as
//! parameterized [`TxnProgram`]s, a specializer compiles each shape against
//! the cluster configuration into a [`CompiledPlan`] (keys interned and
//! routed, write dispatch devirtualized, decide order presorted), and every
//! subsequent submission is `(PlanId, params)` — no key strings re-hashed,
//! no per-submit key vectors rebuilt, no generic `WriteOp` assembly.
//!
//! Layering: this crate sits between `planet-storage` (whose `Key`/`Value`/
//! `WriteOp` vocabulary the IR reuses) and `planet-mdcc` (whose coordinator
//! executes compiled plans and whose `ClusterConfig` implements
//! [`PlanEnv`]). It knows nothing about actors or messages.

mod compile;
mod ir;

pub use compile::{CompiledOp, CompiledPlan, CompiledStep, KeyRoute, PlanEnv, PlanSlot};
pub use ir::{
    DeltaRef, InstantiatedTxn, KeyRef, KeyTemplate, OpTemplate, ParamType, PlanError, PlanId,
    PlanOp, PlanParam, TemplatePart, TxnProgram,
};
