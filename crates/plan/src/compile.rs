//! The plan specializer: compile a [`TxnProgram`] once per cluster
//! configuration into a [`CompiledPlan`] whose per-execution cost is a
//! straight-line walk.
//!
//! What compilation precomputes:
//!
//! - **Routing**: every table key's shard and master site (the two FNV
//!   hashes the interpreted path recomputes per submission) are resolved
//!   once via [`PlanEnv`].
//! - **Touched-key slots**: the deduplicated first-use-ordered key set that
//!   `TxnSpec::touched_keys` rebuilds per submission becomes a static slot
//!   array; each slot records whether a write targets it and which one.
//! - **Write steps**: `WriteOp` construction is devirtualized into a step
//!   array of [`CompiledOp`]s — constant ops are prebuilt and cloned
//!   (refcount bump at worst), parameterized ops read straight from the
//!   argument slice.
//! - **Decide order**: when every key is fixed, the key-sorted broadcast
//!   order of the decision round is a precomputed permutation.
//!
//! What stays at execution time: parameter substitution, derived-key
//! rendering/routing, and — only for plans whose references *could* alias —
//! a runtime duplicate check that falls back to the interpreted path.

use planet_storage::{Key, WriteOp};

use crate::ir::{KeyRef, PlanError, PlanOp, PlanParam, TxnProgram};

/// The routing facts compilation needs from the cluster configuration.
/// Implemented by `planet-mdcc`'s `ClusterConfig`; kept as a trait so this
/// crate stays below the protocol layer in the dependency order.
pub trait PlanEnv {
    /// Number of sites (replicas per shard group).
    fn num_sites(&self) -> usize;
    /// The replica shard owning `key` at every site.
    fn shard_of(&self, key: &Key) -> usize;
    /// The site mastering `key`.
    fn master_site_of(&self, key: &Key) -> u8;
}

/// Precomputed routing for one key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KeyRoute {
    /// The key's shard.
    pub shard: u32,
    /// The key's master site.
    pub master: u8,
}

/// One touched-key slot: a distinct key reference, in first-use order.
#[derive(Debug, Clone)]
pub struct PlanSlot {
    /// The key reference (deduplicated structurally at compile time).
    pub key: KeyRef,
    /// Routing, when statically known (`KeyRef::Fixed` only).
    pub route: Option<KeyRoute>,
    /// Index into [`CompiledPlan::steps`] if a write targets this slot.
    pub step: Option<u16>,
}

/// How one write materializes its [`WriteOp`].
#[derive(Debug, Clone)]
pub enum CompiledOp {
    /// Fully constant: prebuilt at compile time, cloned per execution.
    Ready(WriteOp),
    /// `Set(Value::Int(params[p]))`.
    SetParam(u8),
    /// `Add` whose delta is `params[p]`, bounds constant.
    AddParam {
        /// Parameter holding the delta.
        delta: u8,
        /// Inclusive lower bound, if any.
        lower: Option<i64>,
        /// Inclusive upper bound, if any.
        upper: Option<i64>,
    },
}

impl CompiledOp {
    /// Build the concrete op for one execution.
    pub fn materialize(&self, params: &[PlanParam]) -> Result<WriteOp, PlanError> {
        Ok(match self {
            CompiledOp::Ready(op) => op.clone(),
            CompiledOp::SetParam(p) => {
                WriteOp::Set(planet_storage::Value::Int(int_at(params, *p)?))
            }
            CompiledOp::AddParam {
                delta,
                lower,
                upper,
            } => WriteOp::Add {
                delta: int_at(params, *delta)?,
                lower: *lower,
                upper: *upper,
            },
        })
    }
}

fn int_at(params: &[PlanParam], p: u8) -> Result<i64, PlanError> {
    match params.get(p as usize) {
        Some(PlanParam::Int(v)) => Ok(*v),
        Some(PlanParam::Key(_)) => Err(PlanError::BadParamType(p)),
        None => Err(PlanError::BadParamIndex(p)),
    }
}

/// One write step: which slot it targets and how to build its op.
#[derive(Debug, Clone)]
pub struct CompiledStep {
    /// Index into [`CompiledPlan::slots`].
    pub slot: u16,
    /// The devirtualized write op.
    pub op: CompiledOp,
}

/// A program specialized against one cluster configuration. Cheap to clone
/// is *not* a goal (plans are registered once and referenced by id); cheap
/// to *execute* is.
#[derive(Debug, Clone)]
pub struct CompiledPlan {
    program: TxnProgram,
    /// Routing per table entry, parallel to `program.table`.
    routes: Vec<KeyRoute>,
    /// Deduplicated touched-key slots, first-use order (the order
    /// `TxnSpec::touched_keys` would produce for the instantiated txn).
    pub slots: Vec<PlanSlot>,
    /// Write steps in program order.
    pub steps: Vec<CompiledStep>,
    /// Step indices in key-sorted order, precomputed when every written key
    /// is fixed; `None` means sort at execution time.
    pub sorted_steps: Option<Vec<u16>>,
    /// True if two slots could resolve to the same key at execution time
    /// (any non-fixed reference present alongside another slot): execution
    /// must then verify distinctness and fall back if violated.
    pub may_alias: bool,
    /// Serve reads at quorum.
    pub quorum_reads: bool,
}

impl CompiledPlan {
    /// Specialize `program` against the routing environment. Validates the
    /// program first.
    pub fn compile(program: TxnProgram, env: &dyn PlanEnv) -> Result<Self, PlanError> {
        program.validate()?;
        let routes: Vec<KeyRoute> = program
            .table
            .iter()
            .map(|key| KeyRoute {
                shard: env.shard_of(key) as u32,
                master: env.master_site_of(key),
            })
            .collect();

        let mut slots: Vec<PlanSlot> = Vec::new();
        let mut steps: Vec<CompiledStep> = Vec::new();
        for op in &program.ops {
            let (key, tmpl) = match op {
                PlanOp::Read(k) => (k, None),
                PlanOp::Write(k, t) => (k, Some(t)),
            };
            let slot = match slots.iter().position(|s| s.key == *key) {
                Some(i) => i,
                None => {
                    let route = match key {
                        // check:allow(panic): `validate` bounded every table index
                        KeyRef::Fixed(i) => Some(routes[*i as usize]),
                        _ => None,
                    };
                    slots.push(PlanSlot {
                        key: key.clone(),
                        route,
                        step: None,
                    });
                    slots.len() - 1
                }
            };
            if let Some(tmpl) = tmpl {
                let compiled = match tmpl.materialize(&[]) {
                    // No parameters referenced: prebuild the op.
                    Ok(op) => CompiledOp::Ready(op),
                    Err(_) => match tmpl {
                        crate::ir::OpTemplate::SetParam(p) => CompiledOp::SetParam(*p),
                        crate::ir::OpTemplate::Add {
                            delta: crate::ir::DeltaRef::Param(p),
                            lower,
                            upper,
                        } => CompiledOp::AddParam {
                            delta: *p,
                            lower: *lower,
                            upper: *upper,
                        },
                        // materialize(&[]) only fails on parameter refs,
                        // which the arms above cover.
                        _ => return Err(PlanError::BadParamIndex(0)),
                    },
                };
                let step_idx = steps.len() as u16;
                steps.push(CompiledStep {
                    slot: slot as u16,
                    op: compiled,
                });
                // check:allow(panic): `slot` came from `position` or `len - 1`
                slots[slot].step = Some(step_idx);
            }
        }

        // In bounds: every step's `slot` indexes `slots` by construction.
        let slot_of = |s: &CompiledStep| {
            // check:allow(panic)
            &slots[s.slot as usize]
        };
        let all_fixed_writes = steps
            .iter()
            .all(|s| matches!(slot_of(s).key, KeyRef::Fixed(_)));
        let sorted_steps = if all_fixed_writes {
            let mut order: Vec<u16> = (0..steps.len() as u16).collect();
            order.sort_by_key(|&i| {
                // check:allow(panic): `order` holds step indices
                match slot_of(&steps[i as usize]).key {
                    // `validate` bounded the table index; non-fixed keys are
                    // excluded by `all_fixed_writes` above.
                    KeyRef::Fixed(t) => program.table.get(t as usize).cloned(),
                    _ => None,
                }
            });
            Some(order)
        } else {
            None
        };

        let may_alias = slots.len() > 1 && slots.iter().any(|s| !matches!(s.key, KeyRef::Fixed(_)));

        Ok(CompiledPlan {
            quorum_reads: program.quorum_reads,
            program,
            routes,
            slots,
            steps,
            sorted_steps,
            may_alias,
        })
    }

    /// The source program.
    pub fn program(&self) -> &TxnProgram {
        &self.program
    }

    /// Resolve every slot's key and route for one execution, appending to
    /// the caller's (cleared) scratch vectors — the coordinator reuses them
    /// across transactions. Detects runtime key aliasing (see
    /// [`CompiledPlan::may_alias`]); on `AliasedKeys` the caller falls back
    /// to the interpreted path.
    pub fn resolve_slots(
        &self,
        params: &[PlanParam],
        env: &dyn PlanEnv,
        keys: &mut Vec<Key>,
        routes: &mut Vec<KeyRoute>,
    ) -> Result<(), PlanError> {
        keys.clear();
        routes.clear();
        for slot in &self.slots {
            let (key, route) = match (&slot.key, slot.route) {
                (KeyRef::Fixed(i), Some(route)) => (self.program.table[*i as usize].clone(), route),
                _ => {
                    let key = self.program.resolve_key(&slot.key, params)?;
                    let route = match &slot.key {
                        KeyRef::Param(p) => {
                            // Table-interned parameter: routing is a lookup.
                            let Some(PlanParam::Key(i)) = params.get(*p as usize) else {
                                return Err(PlanError::BadParamType(*p));
                            };
                            self.routes
                                .get(*i as usize)
                                .copied()
                                .ok_or(PlanError::BadTableIndex(*i))?
                        }
                        // Derived keys route at execution time.
                        _ => KeyRoute {
                            shard: env.shard_of(&key) as u32,
                            master: env.master_site_of(&key),
                        },
                    };
                    (key, route)
                }
            };
            if self.may_alias && keys.contains(&key) {
                return Err(PlanError::AliasedKeys);
            }
            keys.push(key);
            routes.push(route);
        }
        Ok(())
    }

    /// Instantiate the underlying program (the interpreted-equivalent
    /// read/write lists) — the fallback and test path.
    pub fn instantiate(
        &self,
        params: &[PlanParam],
    ) -> Result<crate::ir::InstantiatedTxn, PlanError> {
        self.program.instantiate(params)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{DeltaRef, KeyTemplate, OpTemplate};

    /// A toy routing environment: shard = key length % shards, master =
    /// first byte % sites.
    struct ToyEnv {
        sites: usize,
        shards: usize,
    }

    impl PlanEnv for ToyEnv {
        fn num_sites(&self) -> usize {
            self.sites
        }
        fn shard_of(&self, key: &Key) -> usize {
            key.as_str().len() % self.shards
        }
        fn master_site_of(&self, key: &Key) -> u8 {
            (key.as_str().as_bytes().first().copied().unwrap_or(0) as usize % self.sites) as u8
        }
    }

    fn env() -> ToyEnv {
        ToyEnv {
            sites: 3,
            shards: 2,
        }
    }

    #[test]
    fn compile_precomputes_routes_and_dedups_slots() {
        let mut prog = TxnProgram::new("t");
        let a = prog.intern(Key::new("aa"));
        let b = prog.intern(Key::new("b"));
        let prog = prog
            .read(KeyRef::Fixed(a))
            .read(KeyRef::Fixed(b))
            .write(KeyRef::Fixed(a), OpTemplate::of(&WriteOp::add(1)));
        let plan = CompiledPlan::compile(prog, &env()).expect("compiles");
        // Two distinct slots ("aa" read+written, "b" read).
        assert_eq!(plan.slots.len(), 2);
        assert_eq!(plan.slots[0].step, Some(0));
        assert_eq!(plan.slots[1].step, None);
        assert!(!plan.may_alias);
        // Routes precomputed: "aa" has len 2 → shard 0; "b" len 1 → shard 1.
        assert_eq!(
            plan.slots[0].route,
            Some(KeyRoute {
                shard: 0,
                master: (b'a' % 3)
            })
        );
        assert_eq!(plan.slots[1].route.map(|r| r.shard), Some(1));
        // All-fixed writes → precomputed decide order.
        assert_eq!(plan.sorted_steps, Some(vec![0]));

        let mut keys = Vec::new();
        let mut routes = Vec::new();
        plan.resolve_slots(&[], &env(), &mut keys, &mut routes)
            .expect("resolves");
        assert_eq!(keys, vec![Key::new("aa"), Key::new("b")]);
        assert_eq!(routes.len(), 2);
    }

    #[test]
    fn constant_ops_prebuild_param_ops_materialize() {
        let mut prog = TxnProgram::new("t");
        let a = prog.intern(Key::new("a"));
        let b = prog.intern(Key::new("bb"));
        let prog = prog
            .write(KeyRef::Fixed(a), OpTemplate::of(&WriteOp::add(5)))
            .write(
                KeyRef::Fixed(b),
                OpTemplate::Add {
                    delta: DeltaRef::Param(0),
                    lower: Some(0),
                    upper: None,
                },
            );
        let plan = CompiledPlan::compile(prog, &env()).expect("compiles");
        assert!(matches!(plan.steps[0].op, CompiledOp::Ready(_)));
        assert!(matches!(plan.steps[1].op, CompiledOp::AddParam { .. }));
        assert_eq!(
            plan.steps[1]
                .op
                .materialize(&[PlanParam::Int(-3)])
                .expect("materializes"),
            WriteOp::add_with_floor(-3, 0)
        );
    }

    #[test]
    fn runtime_alias_detected_for_param_plans() {
        let mut prog = TxnProgram::new("t");
        let a = prog.intern(Key::new("a"));
        let prog = prog
            .read(KeyRef::Fixed(a))
            .write(KeyRef::Param(0), OpTemplate::Delete);
        let plan = CompiledPlan::compile(prog, &env()).expect("compiles");
        assert!(plan.may_alias);
        assert!(plan.sorted_steps.is_none());
        let mut keys = Vec::new();
        let mut routes = Vec::new();
        // Param 0 = table entry 0 = "a": aliases the fixed read slot.
        assert_eq!(
            plan.resolve_slots(&[PlanParam::Key(a)], &env(), &mut keys, &mut routes),
            Err(PlanError::AliasedKeys)
        );
    }

    #[test]
    fn derived_keys_route_at_execution_time() {
        let prog = TxnProgram::new("t").write(
            KeyRef::Derived(KeyTemplate::new().lit("order:").param(0)),
            OpTemplate::SetParam(1),
        );
        let plan = CompiledPlan::compile(prog, &env()).expect("compiles");
        let mut keys = Vec::new();
        let mut routes = Vec::new();
        plan.resolve_slots(
            &[PlanParam::Int(41), PlanParam::Int(7)],
            &env(),
            &mut keys,
            &mut routes,
        )
        .expect("resolves");
        assert_eq!(keys, vec![Key::new("order:41")]);
        assert_eq!(routes[0].shard, ("order:41".len() % 2) as u32);
        let inst = plan
            .instantiate(&[PlanParam::Int(41), PlanParam::Int(7)])
            .expect("instantiates");
        assert_eq!(
            inst.writes,
            vec![(
                Key::new("order:41"),
                WriteOp::Set(planet_storage::Value::Int(7))
            )]
        );
    }
}
