//! The transaction IR: a small, parameterized program form for transactions.
//!
//! A [`TxnProgram`] is written once per workload shape ("YCSB point write",
//! "ticket purchase") and names its keys symbolically: either interned into
//! the program's key `table` (plan-local key ids, resolved to real keys at
//! compile time), as submit-time parameters, or as templates rendered from
//! integer parameters (e.g. `order:{site}:{n}`). The specializer in
//! [`crate::compile`] turns a program into a [`crate::CompiledPlan`] whose
//! per-execution work is a straight-line walk over pre-resolved slots.
//!
//! Programs are *observationally equivalent* to the interpreted
//! [`TxnSpec`]-style submission: [`TxnProgram::instantiate`] produces the
//! exact read/write lists an interpreted client would have sent, and the
//! coordinator's compiled execution path is message-for-message identical to
//! the interpreted one (the planet-mck digest-neutrality test pins this).

use planet_storage::{Key, Value, WriteOp};

/// Wire-visible plan handle: assigned by the registering client, scoped to
/// the coordinator it was registered with.
pub type PlanId = u32;

/// Errors from program validation, compilation, or instantiation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// A `KeyRef::Fixed` or `PlanParam::Key` names a table index out of range.
    BadTableIndex(u32),
    /// A parameter index exceeds the arguments supplied (or `u8` range).
    BadParamIndex(u8),
    /// A parameter slot is used both as a key and as an integer, or the
    /// supplied argument has the wrong type.
    BadParamType(u8),
    /// Two table entries hold the same key (the table must be a set).
    DuplicateTableKey(u32),
    /// Two writes name the same key reference statically.
    DuplicateWrite,
    /// At instantiation, two distinct key references resolved to the same
    /// key (a parameter aliased a fixed key). The caller must fall back to
    /// the interpreted path, which defines the semantics of aliased writes.
    AliasedKeys,
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::BadTableIndex(i) => write!(f, "key table index {i} out of range"),
            PlanError::BadParamIndex(p) => write!(f, "parameter index {p} out of range"),
            PlanError::BadParamType(p) => write!(f, "parameter {p} has conflicting/wrong type"),
            PlanError::DuplicateTableKey(i) => write!(f, "key table entry {i} duplicates another"),
            PlanError::DuplicateWrite => write!(f, "two writes name the same key reference"),
            PlanError::AliasedKeys => write!(f, "parameters aliased two key references"),
        }
    }
}

impl std::error::Error for PlanError {}

/// One piece of a derived-key template.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TemplatePart {
    /// A literal fragment, copied verbatim.
    Lit(String),
    /// An integer parameter, rendered in decimal.
    Param(u8),
}

/// A key template: concatenation of literal fragments and decimal-rendered
/// integer parameters, e.g. `["order:", site, ":", n]`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct KeyTemplate {
    /// The fragments, concatenated in order.
    pub parts: Vec<TemplatePart>,
}

impl KeyTemplate {
    /// Start an empty template.
    pub fn new() -> Self {
        KeyTemplate::default()
    }

    /// Append a literal fragment.
    pub fn lit(mut self, s: impl Into<String>) -> Self {
        self.parts.push(TemplatePart::Lit(s.into()));
        self
    }

    /// Append an integer parameter rendered in decimal.
    pub fn param(mut self, p: u8) -> Self {
        self.parts.push(TemplatePart::Param(p));
        self
    }

    /// Render the template over `params` into `buf` (cleared first).
    pub fn render(&self, params: &[PlanParam], buf: &mut String) -> Result<(), PlanError> {
        use std::fmt::Write;
        buf.clear();
        for part in &self.parts {
            match part {
                TemplatePart::Lit(s) => buf.push_str(s),
                TemplatePart::Param(p) => {
                    let PlanParam::Int(v) = param_at(params, *p)? else {
                        return Err(PlanError::BadParamType(*p));
                    };
                    // Writing an integer into a String cannot fail.
                    let _ = write!(buf, "{v}");
                }
            }
        }
        Ok(())
    }
}

/// How a program op names its key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KeyRef {
    /// An entry of the program's key table, resolved and routed at compile
    /// time — the zero-cost case.
    Fixed(u32),
    /// A submit-time parameter that must be [`PlanParam::Key`]: still table-
    /// interned, so routing is a table lookup, but the *which* arrives with
    /// the submission.
    Param(u8),
    /// A key derived from integer parameters via a template; routed at
    /// execution time (the one case that still hashes a string).
    Derived(KeyTemplate),
}

/// How a write's delta is obtained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeltaRef {
    /// Compile-time constant.
    Const(i64),
    /// Submit-time integer parameter.
    Param(u8),
}

/// A parameterized [`WriteOp`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OpTemplate {
    /// `Set` to a compile-time constant value.
    Set(Value),
    /// `Set` to `Value::Int` of an integer parameter.
    SetParam(u8),
    /// Commutative `Add` with demarcation bounds.
    Add {
        /// The delta (constant or parameter).
        delta: DeltaRef,
        /// Inclusive lower bound, if any.
        lower: Option<i64>,
        /// Inclusive upper bound, if any.
        upper: Option<i64>,
    },
    /// Delete the record.
    Delete,
}

impl OpTemplate {
    /// The template for an already-concrete [`WriteOp`].
    pub fn of(op: &WriteOp) -> Self {
        match op {
            WriteOp::Set(v) => OpTemplate::Set(v.clone()),
            WriteOp::Delete => OpTemplate::Delete,
            WriteOp::Add {
                delta,
                lower,
                upper,
            } => OpTemplate::Add {
                delta: DeltaRef::Const(*delta),
                lower: *lower,
                upper: *upper,
            },
        }
    }

    /// Materialize the concrete [`WriteOp`] for one execution.
    pub fn materialize(&self, params: &[PlanParam]) -> Result<WriteOp, PlanError> {
        Ok(match self {
            OpTemplate::Set(v) => WriteOp::Set(v.clone()),
            OpTemplate::SetParam(p) => WriteOp::Set(Value::Int(int_param(params, *p)?)),
            OpTemplate::Add {
                delta,
                lower,
                upper,
            } => WriteOp::Add {
                delta: match delta {
                    DeltaRef::Const(d) => *d,
                    DeltaRef::Param(p) => int_param(params, *p)?,
                },
                lower: *lower,
                upper: *upper,
            },
            OpTemplate::Delete => WriteOp::Delete,
        })
    }
}

/// One program operation. Ops execute as a transaction: all reads are
/// served from one snapshot request, all writes become options proposed
/// together — exactly the interpreted `TxnSpec` semantics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanOp {
    /// Read a key (beyond those implicitly read for writes).
    Read(KeyRef),
    /// Write a key.
    Write(KeyRef, OpTemplate),
}

/// A submit-time argument.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanParam {
    /// An index into the program's key table.
    Key(u32),
    /// An integer (delta, set value, or template fragment).
    Int(i64),
}

/// The static type of a parameter slot, inferred from its uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParamType {
    /// Used as a key-table index.
    Key,
    /// Used as an integer.
    Int,
    /// Declared-but-unused slots accept either.
    Unused,
}

/// A parameterized transaction program: the unit of registration. See the
/// module docs for the execution model.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TxnProgram {
    /// Diagnostic name ("ycsb-point-write", "ticket-purchase").
    pub name: String,
    /// The key table: every fixed key the program can touch, interned once.
    /// Entries must be pairwise distinct.
    pub table: Vec<Key>,
    /// The operations, in program order. First-use order of key references
    /// here defines read order, mirroring `TxnSpec::touched_keys`.
    pub ops: Vec<PlanOp>,
    /// Serve reads at quorum instead of the local replica.
    pub quorum_reads: bool,
}

fn param_at(params: &[PlanParam], p: u8) -> Result<PlanParam, PlanError> {
    params
        .get(p as usize)
        .copied()
        .ok_or(PlanError::BadParamIndex(p))
}

fn int_param(params: &[PlanParam], p: u8) -> Result<i64, PlanError> {
    match param_at(params, p)? {
        PlanParam::Int(v) => Ok(v),
        PlanParam::Key(_) => Err(PlanError::BadParamType(p)),
    }
}

/// A program instantiated over concrete parameters: the read/write lists an
/// interpreted submission would carry. This is the semantic ground truth the
/// compiled execution path must match.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InstantiatedTxn {
    /// Keys read (beyond those written).
    pub reads: Vec<Key>,
    /// Writes in program order.
    pub writes: Vec<(Key, WriteOp)>,
    /// Whether reads are served at quorum.
    pub quorum_reads: bool,
}

impl TxnProgram {
    /// Start an empty program.
    pub fn new(name: impl Into<String>) -> Self {
        TxnProgram {
            name: name.into(),
            ..TxnProgram::default()
        }
    }

    /// Intern `key` into the table, returning its index (existing entry
    /// reused).
    pub fn intern(&mut self, key: Key) -> u32 {
        if let Some(i) = self.table.iter().position(|k| *k == key) {
            return i as u32;
        }
        self.table.push(key);
        (self.table.len() - 1) as u32
    }

    /// Append a read op (builder-style).
    pub fn read(mut self, key: KeyRef) -> Self {
        self.ops.push(PlanOp::Read(key));
        self
    }

    /// Append a write op (builder-style).
    pub fn write(mut self, key: KeyRef, op: OpTemplate) -> Self {
        self.ops.push(PlanOp::Write(key, op));
        self
    }

    /// Serve reads at quorum (builder-style).
    pub fn quorum_reads(mut self) -> Self {
        self.quorum_reads = true;
        self
    }

    /// Number of parameter slots (max used index + 1).
    pub fn param_count(&self) -> usize {
        self.param_types().len()
    }

    /// Infer each parameter slot's type from its uses. Conflicting uses
    /// surface later via [`TxnProgram::validate`].
    pub fn param_types(&self) -> Vec<ParamType> {
        let mut types: Vec<ParamType> = Vec::new();
        let mut note = |p: u8, t: ParamType| {
            let idx = p as usize;
            if types.len() <= idx {
                types.resize(idx + 1, ParamType::Unused);
            }
            // check:allow(panic): resized just above to cover `idx`
            let slot = &mut types[idx];
            if *slot == ParamType::Unused {
                *slot = t;
            }
        };
        for op in &self.ops {
            let (key, tmpl) = match op {
                PlanOp::Read(k) => (k, None),
                PlanOp::Write(k, t) => (k, Some(t)),
            };
            match key {
                KeyRef::Fixed(_) => {}
                KeyRef::Param(p) => note(*p, ParamType::Key),
                KeyRef::Derived(t) => {
                    for part in &t.parts {
                        if let TemplatePart::Param(p) = part {
                            note(*p, ParamType::Int);
                        }
                    }
                }
            }
            match tmpl {
                Some(OpTemplate::SetParam(p))
                | Some(OpTemplate::Add {
                    delta: DeltaRef::Param(p),
                    ..
                }) => note(*p, ParamType::Int),
                _ => {}
            }
        }
        types
    }

    /// Check static well-formedness: table indices in range, table entries
    /// distinct, parameter slots consistently typed, and no two writes
    /// naming the same key reference.
    pub fn validate(&self) -> Result<(), PlanError> {
        for (i, key) in self.table.iter().enumerate() {
            if self.table.iter().take(i).any(|k| k == key) {
                return Err(PlanError::DuplicateTableKey(i as u32));
            }
        }
        let check_ref = |r: &KeyRef| -> Result<(), PlanError> {
            if let KeyRef::Fixed(i) = r {
                if *i as usize >= self.table.len() {
                    return Err(PlanError::BadTableIndex(*i));
                }
            }
            Ok(())
        };
        let mut written: Vec<&KeyRef> = Vec::new();
        for op in &self.ops {
            match op {
                PlanOp::Read(k) => check_ref(k)?,
                PlanOp::Write(k, _) => {
                    check_ref(k)?;
                    if written.contains(&k) {
                        return Err(PlanError::DuplicateWrite);
                    }
                    written.push(k);
                }
            }
        }
        // A parameter slot used both as key and int has conflicting uses:
        // re-infer with conflict detection.
        let mut types: Vec<ParamType> = vec![ParamType::Unused; self.param_types().len()];
        let note = |p: u8, t: ParamType, types: &mut Vec<ParamType>| {
            let Some(slot) = types.get_mut(p as usize) else {
                return Err(PlanError::BadParamIndex(p));
            };
            if *slot == ParamType::Unused {
                *slot = t;
                Ok(())
            } else if *slot == t {
                Ok(())
            } else {
                Err(PlanError::BadParamType(p))
            }
        };
        for op in &self.ops {
            let (key, tmpl) = match op {
                PlanOp::Read(k) => (k, None),
                PlanOp::Write(k, t) => (k, Some(t)),
            };
            match key {
                KeyRef::Fixed(_) => {}
                KeyRef::Param(p) => note(*p, ParamType::Key, &mut types)?,
                KeyRef::Derived(t) => {
                    for part in &t.parts {
                        if let TemplatePart::Param(p) = part {
                            note(*p, ParamType::Int, &mut types)?;
                        }
                    }
                }
            }
            match tmpl {
                Some(OpTemplate::SetParam(p))
                | Some(OpTemplate::Add {
                    delta: DeltaRef::Param(p),
                    ..
                }) => note(*p, ParamType::Int, &mut types)?,
                _ => {}
            }
        }
        Ok(())
    }

    /// Resolve one key reference over concrete parameters.
    pub fn resolve_key(&self, r: &KeyRef, params: &[PlanParam]) -> Result<Key, PlanError> {
        match r {
            KeyRef::Fixed(i) => self
                .table
                .get(*i as usize)
                .cloned()
                .ok_or(PlanError::BadTableIndex(*i)),
            KeyRef::Param(p) => {
                let PlanParam::Key(i) = param_at(params, *p)? else {
                    return Err(PlanError::BadParamType(*p));
                };
                self.table
                    .get(i as usize)
                    .cloned()
                    .ok_or(PlanError::BadTableIndex(i))
            }
            KeyRef::Derived(t) => {
                let mut buf = String::new();
                t.render(params, &mut buf)?;
                Ok(Key::new(buf))
            }
        }
    }

    /// Instantiate the program over `params`: the concrete read/write lists
    /// an interpreted submission of this execution would carry, in program
    /// order. This defines the program's semantics; the compiled path is
    /// checked against it.
    pub fn instantiate(&self, params: &[PlanParam]) -> Result<InstantiatedTxn, PlanError> {
        let mut reads = Vec::new();
        let mut writes = Vec::new();
        for op in &self.ops {
            match op {
                PlanOp::Read(k) => reads.push(self.resolve_key(k, params)?),
                PlanOp::Write(k, t) => {
                    writes.push((self.resolve_key(k, params)?, t.materialize(params)?));
                }
            }
        }
        Ok(InstantiatedTxn {
            reads,
            writes,
            quorum_reads: self.quorum_reads,
        })
    }

    /// Lift a concrete read/write list into a zero-parameter program (every
    /// key becomes a fixed table entry). This is what `TxnBuilder::compile`
    /// uses: any interpreted transaction shape compiles, it just gains no
    /// parameterization. Fails if two writes name the same key (the
    /// interpreted path's semantics for that are accidental; keep it there).
    pub fn of_concrete(
        name: impl Into<String>,
        reads: &[Key],
        writes: &[(Key, WriteOp)],
        quorum_reads: bool,
    ) -> Result<Self, PlanError> {
        let mut prog = TxnProgram::new(name);
        prog.quorum_reads = quorum_reads;
        for key in reads {
            let idx = prog.intern(key.clone());
            prog.ops.push(PlanOp::Read(KeyRef::Fixed(idx)));
        }
        for (key, op) in writes {
            let idx = prog.intern(key.clone());
            prog.ops
                .push(PlanOp::Write(KeyRef::Fixed(idx), OpTemplate::of(op)));
        }
        prog.validate()?;
        Ok(prog)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn template_renders_params_in_decimal() {
        let t = KeyTemplate::new().lit("order:").param(0).lit(":").param(1);
        let mut buf = String::new();
        t.render(&[PlanParam::Int(3), PlanParam::Int(-7)], &mut buf)
            .expect("render");
        assert_eq!(buf, "order:3:-7");
        assert_eq!(
            t.render(&[PlanParam::Key(0), PlanParam::Int(1)], &mut buf),
            Err(PlanError::BadParamType(0))
        );
        assert_eq!(
            t.render(&[PlanParam::Int(0)], &mut buf),
            Err(PlanError::BadParamIndex(1))
        );
    }

    #[test]
    fn instantiate_matches_program_order() {
        let mut prog = TxnProgram::new("t");
        let a = prog.intern(Key::new("a"));
        let b = prog.intern(Key::new("b"));
        assert_eq!(prog.intern(Key::new("a")), a, "interning dedups");
        let prog = prog
            .read(KeyRef::Fixed(a))
            .write(
                KeyRef::Fixed(b),
                OpTemplate::Add {
                    delta: DeltaRef::Param(0),
                    lower: Some(0),
                    upper: None,
                },
            )
            .write(KeyRef::Param(1), OpTemplate::SetParam(2));
        prog.validate().expect("valid");
        assert_eq!(prog.param_count(), 3);
        let inst = prog
            .instantiate(&[PlanParam::Int(-2), PlanParam::Key(a), PlanParam::Int(9)])
            .expect("instantiate");
        assert_eq!(inst.reads, vec![Key::new("a")]);
        assert_eq!(
            inst.writes,
            vec![
                (Key::new("b"), WriteOp::add_with_floor(-2, 0)),
                (Key::new("a"), WriteOp::Set(Value::Int(9))),
            ]
        );
    }

    #[test]
    fn validate_rejects_malformed_programs() {
        let bad_idx = TxnProgram::new("x").read(KeyRef::Fixed(0));
        assert_eq!(bad_idx.validate(), Err(PlanError::BadTableIndex(0)));

        let mut dup_table = TxnProgram::new("x");
        dup_table.table = vec![Key::new("a"), Key::new("a")];
        assert_eq!(dup_table.validate(), Err(PlanError::DuplicateTableKey(1)));

        let mut dup_write = TxnProgram::new("x");
        let a = dup_write.intern(Key::new("a"));
        let dup_write = dup_write
            .write(KeyRef::Fixed(a), OpTemplate::Delete)
            .write(KeyRef::Fixed(a), OpTemplate::Delete);
        assert_eq!(dup_write.validate(), Err(PlanError::DuplicateWrite));

        // Param 0 used as both key and int.
        let conflicted = TxnProgram::new("x").read(KeyRef::Param(0)).write(
            KeyRef::Derived(KeyTemplate::new().param(0)),
            OpTemplate::Delete,
        );
        assert_eq!(conflicted.validate(), Err(PlanError::BadParamType(0)));
    }

    #[test]
    fn of_concrete_round_trips() {
        let reads = vec![Key::new("r")];
        let writes = vec![
            (Key::new("w1"), WriteOp::add(1)),
            (Key::new("w2"), WriteOp::Set(Value::Int(5))),
        ];
        let prog = TxnProgram::of_concrete("conc", &reads, &writes, false).expect("compiles");
        let inst = prog.instantiate(&[]).expect("instantiate");
        assert_eq!(inst.reads, reads);
        assert_eq!(inst.writes, writes);
        assert!(!inst.quorum_reads);
        // Duplicate writes are rejected rather than silently reordered.
        let dup = vec![
            (Key::new("w"), WriteOp::add(1)),
            (Key::new("w"), WriteOp::add(2)),
        ];
        assert_eq!(
            TxnProgram::of_concrete("dup", &[], &dup, false),
            Err(PlanError::DuplicateWrite)
        );
    }
}
