//! Crash-injection tests: quorum tolerance of replica failures, WAL-based
//! restart, and lazy catch-up after recovery.

use planet_mdcc::{build_sim, ClusterConfig, Msg, Outcome, Protocol, TestClient, TxnSpec};
use planet_sim::{ActorId, SimDuration, SimTime, Simulation, SiteId};
use planet_storage::{Key, Value, WriteOp};

fn client(sim: &Simulation<Msg>, id: ActorId) -> &TestClient {
    sim.actor_as::<TestClient>(id).expect("not a TestClient")
}

fn set_txn(key: &str, v: i64) -> TxnSpec {
    TxnSpec::write_one(Key::new(key), WriteOp::Set(Value::Int(v)))
}

#[test]
fn fast_path_survives_one_crashed_replica() {
    let mut config = ClusterConfig::new(5, Protocol::Fast);
    config.txn_timeout = SimDuration::from_secs(3);
    let (mut sim, cluster) = build_sim(planet_sim::topology::five_dc(), config, 1);
    // Crash ap-southeast before traffic starts.
    sim.inject_at(SimTime::from_micros(1), cluster.replicas[4], Msg::Crash);
    let script: Vec<(SimTime, TxnSpec)> = (0..10)
        .map(|i| {
            (
                SimTime::from_millis(5 + i * 500),
                set_txn(&format!("k{i}"), 1),
            )
        })
        .collect();
    let c = sim.add_actor(
        SiteId(0),
        Box::new(TestClient::new(cluster.coordinators[0], script)),
    );
    sim.run_for(SimDuration::from_secs(15));
    let tc = client(&sim, c);
    let commits = (0..10)
        .filter(|i| tc.outcome(*i) == Some(Outcome::Committed))
        .count();
    assert_eq!(commits, 10, "a 4/5 fast quorum exists without ap-southeast");
}

#[test]
fn fast_path_stalls_with_two_crashed_replicas_but_classic_survives() {
    for (protocol, expect_commit) in [(Protocol::Fast, false), (Protocol::Classic, true)] {
        let mut config = ClusterConfig::new(5, protocol);
        config.txn_timeout = SimDuration::from_secs(2);
        let (mut sim, cluster) = build_sim(planet_sim::topology::five_dc(), config, 2);
        // Key "crashkey" masters at some site; crash two *non-master*,
        // non-coordinator replicas so the classic majority (3) still exists.
        let cfg = ClusterConfig::new(5, protocol);
        let master = cfg.master_of(&Key::new("crashkey")).0 as usize;
        let mut crashed = 0;
        for site in (0..5).rev() {
            if site != master && site != 0 && crashed < 2 {
                sim.inject_at(SimTime::from_micros(1), cluster.replicas[site], Msg::Crash);
                crashed += 1;
            }
        }
        assert_eq!(crashed, 2);
        let c = sim.add_actor(
            SiteId(0),
            Box::new(TestClient::new(
                cluster.coordinators[0],
                vec![(SimTime::from_millis(5), set_txn("crashkey", 1))],
            )),
        );
        sim.run_for(SimDuration::from_secs(10));
        let outcome = client(&sim, c).outcome(0).unwrap();
        if expect_commit {
            assert_eq!(
                outcome,
                Outcome::Committed,
                "{protocol} should survive 2 crashes"
            );
        } else {
            assert_eq!(
                outcome,
                Outcome::TimedOut,
                "{protocol} cannot form a 4/5 quorum with 2 replicas down"
            );
        }
    }
}

#[test]
fn recovered_replica_restarts_from_wal_and_catches_up_on_new_writes() {
    let mut config = ClusterConfig::new(5, Protocol::Fast);
    config.txn_timeout = SimDuration::from_secs(3);
    let (mut sim, cluster) = build_sim(planet_sim::topology::five_dc(), config, 3);

    // Phase 1: write k0 while everyone is up.
    // Phase 2: crash site 4, write k1 (commits on the other four).
    // Phase 3: recover site 4, write k1 again — site 4 must converge on k1.
    sim.inject_at(SimTime::from_secs(3), cluster.replicas[4], Msg::Crash);
    sim.inject_at(SimTime::from_secs(8), cluster.replicas[4], Msg::Recover);
    let script = vec![
        (SimTime::from_millis(5), set_txn("k0", 10)),
        (SimTime::from_secs(4), set_txn("k1", 20)),
        (SimTime::from_secs(10), set_txn("k1", 30)),
    ];
    let c = sim.add_actor(
        SiteId(0),
        Box::new(TestClient::new(cluster.coordinators[0], script)),
    );
    sim.run_for(SimDuration::from_secs(20));
    let tc = client(&sim, c);
    for tag in 0..3 {
        assert_eq!(tc.outcome(tag), Some(Outcome::Committed), "txn {tag}");
    }

    let site4 = sim
        .actor_as::<planet_mdcc::ReplicaActor>(cluster.replicas[4])
        .unwrap();
    assert!(!site4.is_crashed());
    // k0 predates the crash: durable through the WAL restart.
    assert_eq!(site4.storage().read(&Key::new("k0")).value, Value::Int(10));
    // k1's second write happened after recovery: the Apply state transfer
    // brings site 4 to the latest version even though it missed the first.
    assert_eq!(site4.storage().read(&Key::new("k1")).value, Value::Int(30));
    // And the recovery invariant still holds on the restarted replica.
    assert!(site4.storage().verify_recovery().is_empty());
    assert_eq!(sim.metrics().counter_value("replica.crashes"), 1);
    assert_eq!(sim.metrics().counter_value("replica.recoveries"), 1);
}

#[test]
fn commits_during_crash_count_rejoiner_as_absent_voter() {
    // While a replica is down its votes simply never arrive; commit latency
    // rises to the RTT of the new 4th-fastest voter but commits continue.
    let mut config = ClusterConfig::new(5, Protocol::Fast);
    config.txn_timeout = SimDuration::from_secs(5);
    let (mut sim, cluster) = build_sim(planet_sim::topology::five_dc(), config, 4);
    // From us-east, the fast quorum normally completes at ap-ne (170ms RTT).
    // Crash ap-ne: the quorum must now include ap-se (200ms RTT).
    sim.inject_at(SimTime::from_micros(1), cluster.replicas[3], Msg::Crash);
    let script: Vec<(SimTime, TxnSpec)> = (0..10)
        .map(|i| {
            (
                SimTime::from_millis(5 + i * 500),
                set_txn(&format!("c{i}"), 1),
            )
        })
        .collect();
    let c = sim.add_actor(
        SiteId(0),
        Box::new(TestClient::new(cluster.coordinators[0], script)),
    );
    sim.run_for(SimDuration::from_secs(15));
    let tc = client(&sim, c);
    let mean: f64 = tc
        .completed
        .iter()
        .filter(|r| r.outcome.is_commit())
        .map(|r| {
            r.stats
                .decided_at
                .since(r.stats.submitted_at)
                .as_millis_f64()
        })
        .sum::<f64>()
        / 10.0;
    assert!(
        (185.0..260.0).contains(&mean),
        "quorum should complete at ap-se's ~200ms RTT, mean {mean}ms"
    );
}
