//! End-to-end protocol tests: commit/abort behaviour, latency shape per
//! commit path, replica convergence, fault handling.

use planet_mdcc::{build_sim, Cluster, ClusterConfig, Msg, Outcome, Protocol, TestClient, TxnSpec};
use planet_sim::{ActorId, Partition, SimDuration, SimTime, Simulation, SiteId};
use planet_storage::{Key, Value, WriteOp};

const FIVE: usize = 5;

fn five_dc(protocol: Protocol, seed: u64) -> (Simulation<Msg>, Cluster) {
    build_sim(
        planet_sim::topology::five_dc(),
        ClusterConfig::new(FIVE, protocol),
        seed,
    )
}

fn add_client(
    sim: &mut Simulation<Msg>,
    site: SiteId,
    coordinator: ActorId,
    script: Vec<(SimTime, TxnSpec)>,
) -> ActorId {
    sim.add_actor(site, Box::new(TestClient::new(coordinator, script)))
}

fn client(sim: &Simulation<Msg>, id: ActorId) -> &TestClient {
    sim.actor_as::<TestClient>(id).expect("not a TestClient")
}

fn set_txn(key: &str, v: i64) -> TxnSpec {
    TxnSpec::write_one(Key::new(key), WriteOp::Set(Value::Int(v)))
}

#[test]
fn single_write_commits_on_every_protocol() {
    for protocol in [Protocol::Fast, Protocol::Classic, Protocol::TwoPc] {
        let (mut sim, cluster) = five_dc(protocol, 11);
        let c = add_client(
            &mut sim,
            SiteId(0),
            cluster.coordinators[0],
            vec![(SimTime::from_millis(1), set_txn("alpha", 7))],
        );
        sim.run_for(SimDuration::from_secs(5));
        let tc = client(&sim, c);
        assert_eq!(
            tc.outcome(0),
            Some(Outcome::Committed),
            "protocol {protocol}"
        );
        assert!(tc.progress_counts > 0, "progress events must flow");
    }
}

#[test]
fn commit_latency_orders_fast_below_classic_below_twopc() {
    // One remote-mastered key, measured over several sequential txns.
    let mut means = Vec::new();
    for protocol in [Protocol::Fast, Protocol::Classic, Protocol::TwoPc] {
        let (mut sim, cluster) = five_dc(protocol, 21);
        let script: Vec<(SimTime, TxnSpec)> = (0..10)
            .map(|i| {
                (
                    SimTime::from_millis(1 + i * 2_000),
                    set_txn("hot", i as i64),
                )
            })
            .collect();
        add_client(&mut sim, SiteId(0), cluster.coordinators[0], script);
        sim.run_for(SimDuration::from_secs(30));
        let h = sim
            .metrics()
            .get_histogram(&format!("txn.commit_latency.{}", protocol.name()))
            .unwrap_or_else(|| panic!("no commits under {protocol}"));
        assert_eq!(h.count(), 10, "all 10 txns must commit under {protocol}");
        means.push(h.mean().unwrap());
    }
    let (fast, classic, twopc) = (means[0], means[1], means[2]);
    assert!(fast < classic, "fast {fast} should beat classic {classic}");
    assert!(
        classic < twopc,
        "classic {classic} should beat twopc {twopc}"
    );
    // Fast path from us-east: quorum of 4 needs the 3 fastest remote
    // one-way replies — round trip to the 4th fastest site (ap-ne, 170ms
    // RTT) dominates; allow generous slack for jitter.
    assert!(
        fast > 100_000.0 && fast < 260_000.0,
        "fast mean {fast}us out of range"
    );
}

#[test]
fn conflicting_physical_writes_abort_one() {
    // Two coordinators in different DCs race a Set on the same key.
    let (mut sim, cluster) = five_dc(Protocol::Fast, 31);
    let c0 = add_client(
        &mut sim,
        SiteId(0),
        cluster.coordinators[0],
        vec![(SimTime::from_millis(1), set_txn("contested", 1))],
    );
    let c1 = add_client(
        &mut sim,
        SiteId(2),
        cluster.coordinators[2],
        vec![(SimTime::from_millis(1), set_txn("contested", 2))],
    );
    sim.run_for(SimDuration::from_secs(5));
    let o0 = client(&sim, c0).outcome(0).unwrap();
    let o1 = client(&sim, c1).outcome(0).unwrap();
    let commits = [o0, o1].iter().filter(|o| o.is_commit()).count();
    assert!(
        commits <= 1,
        "at most one of two racing physical writes may commit"
    );
    assert!(
        [o0, o1].iter().any(|o| !o.is_commit()),
        "at least one must abort: {o0:?} {o1:?}"
    );
}

#[test]
fn commutative_writes_all_commit_under_contention() {
    // Five concurrent decrements with ample stock: all must commit even
    // though they hit the same record at the same time.
    let (mut sim, cluster) = five_dc(Protocol::Fast, 41);
    // Seed the stock record first.
    let seeder = add_client(
        &mut sim,
        SiteId(0),
        cluster.coordinators[0],
        vec![(SimTime::from_millis(1), set_txn("stock", 1_000))],
    );
    let buyers: Vec<ActorId> = (0..FIVE)
        .map(|site| {
            add_client(
                &mut sim,
                SiteId(site as u8),
                cluster.coordinators[site],
                vec![(
                    SimTime::from_secs(2),
                    TxnSpec::write_one(Key::new("stock"), WriteOp::add_with_floor(-1, 0)),
                )],
            )
        })
        .collect();
    sim.run_for(SimDuration::from_secs(10));
    assert_eq!(client(&sim, seeder).outcome(0), Some(Outcome::Committed));
    for (i, b) in buyers.iter().enumerate() {
        assert_eq!(
            client(&sim, *b).outcome(0),
            Some(Outcome::Committed),
            "buyer at site {i} must commit"
        );
    }
}

/// Stock of 3, five concurrent buyers of −2 each. Worst-case (demarcation)
/// accounting reserves 2 per accepted option, so at most one buyer can
/// commit. On the fast path, replicas may accept *different* buyers
/// (a fast-Paxos collision) and nobody reaches the fast quorum — zero
/// commits is legal; oversell never is. The classic path serialises
/// through the master, so exactly one buyer commits.
#[test]
fn demarcation_floor_rejects_oversell() {
    for (protocol, seed, exactly_one) in [
        (Protocol::Fast, 43u64, false),
        (Protocol::Classic, 44, true),
    ] {
        let (mut sim, cluster) = five_dc(protocol, seed);
        add_client(
            &mut sim,
            SiteId(0),
            cluster.coordinators[0],
            vec![(SimTime::from_millis(1), set_txn("scarce", 3))],
        );
        let buyers: Vec<ActorId> = (0..FIVE)
            .map(|site| {
                add_client(
                    &mut sim,
                    SiteId(site as u8),
                    cluster.coordinators[site],
                    vec![(
                        SimTime::from_secs(2),
                        TxnSpec::write_one(Key::new("scarce"), WriteOp::add_with_floor(-2, 0)),
                    )],
                )
            })
            .collect();
        sim.run_for(SimDuration::from_secs(30));
        let commits = buyers
            .iter()
            .filter(|b| client(&sim, **b).outcome(0) == Some(Outcome::Committed))
            .count();
        assert!(
            commits <= 1,
            "{protocol}: one -2 fits worst-case in stock of 3, got {commits}"
        );
        if exactly_one {
            assert_eq!(
                commits, 1,
                "{protocol}: the master must admit exactly one buyer"
            );
        }
        // The invariant that matters: no replica ever holds negative stock.
        for (site, replica) in cluster.replicas.iter().enumerate() {
            let v = replica_storage(&sim, *replica)
                .read(&Key::new("scarce"))
                .value;
            if let Value::Int(stock) = v {
                assert!(stock >= 0, "{protocol}: site {site} oversold to {stock}");
            }
        }
    }
}

#[test]
fn read_only_txn_commits_locally_fast() {
    let (mut sim, cluster) = five_dc(Protocol::Fast, 51);
    let c = add_client(
        &mut sim,
        SiteId(3),
        cluster.coordinators[3],
        vec![(
            SimTime::from_millis(1),
            TxnSpec::read_only([Key::new("whatever")]),
        )],
    );
    sim.run_for(SimDuration::from_secs(2));
    let tc = client(&sim, c);
    assert_eq!(tc.outcome(0), Some(Outcome::Committed));
    let stats = &tc.completed[0].stats;
    let latency = stats.decided_at.since(stats.submitted_at);
    assert!(
        latency < SimDuration::from_millis(20),
        "read-only txn must not cross the WAN, took {latency}"
    );
}

#[test]
fn replicas_converge_after_quiescence() {
    let (mut sim, cluster) = five_dc(Protocol::Fast, 61);
    // Writers at several sites over several keys, some conflicting.
    for site in 0..FIVE {
        let script: Vec<(SimTime, TxnSpec)> = (0..6)
            .map(|i| {
                (
                    SimTime::from_millis(1 + i * 700),
                    set_txn(
                        &format!("k{}", (site + i as usize) % 3),
                        (site * 100 + i as usize) as i64,
                    ),
                )
            })
            .collect();
        add_client(
            &mut sim,
            SiteId(site as u8),
            cluster.coordinators[site],
            script,
        );
    }
    sim.run_for(SimDuration::from_secs(60));

    // After quiescence every replica must hold identical committed values.
    let reference: Vec<(Key, planet_storage::ReadResult)> = {
        let r0 = replica_storage(&sim, cluster.replicas[0]);
        ["k0", "k1", "k2"]
            .iter()
            .map(|k| (Key::new(*k), r0.read(&Key::new(*k))))
            .collect()
    };
    for site in 1..FIVE {
        let r = replica_storage(&sim, cluster.replicas[site]);
        for (key, expect) in &reference {
            let got = r.read(key);
            assert_eq!(
                got.value, expect.value,
                "site {site} diverged on {key}: {:?} vs {:?}",
                got.value, expect.value
            );
            assert_eq!(
                got.version, expect.version,
                "site {site} version diverged on {key}"
            );
        }
    }
}

fn replica_storage(sim: &Simulation<Msg>, id: ActorId) -> &planet_storage::Replica {
    sim.actor_as::<planet_mdcc::ReplicaActor>(id)
        .expect("not a ReplicaActor")
        .storage()
}

#[test]
fn partition_triggers_timeout_or_abort_then_recovers() {
    let (mut sim, cluster) = five_dc(Protocol::TwoPc, 71);
    // Cut us-east off from the master's site for a while. Key "alpha"
    // masters somewhere deterministic; partition every path from site 0.
    let cfg = ClusterConfig::new(FIVE, Protocol::TwoPc);
    let master = cfg.master_of(&Key::new("alpha"));
    // Make the timeout short so the test runs quickly.
    // (The cluster was built with the default; rebuild with a short one.)
    let mut short = ClusterConfig::new(FIVE, Protocol::TwoPc);
    short.txn_timeout = SimDuration::from_secs(2);
    let (mut sim2, cluster2) = build_sim(planet_sim::topology::five_dc(), short, 72);
    drop((sim.network_mut(), cluster));

    if master != SiteId(0) {
        sim2.network_mut().add_partition(Partition {
            from: SimTime::ZERO,
            to: SimTime::from_secs(6),
            a: SiteId(0),
            b: master,
        });
    }
    let c = add_client(
        &mut sim2,
        SiteId(0),
        cluster2.coordinators[0],
        vec![
            (SimTime::from_millis(100), set_txn("alpha", 1)),
            // After the partition heals, a retry succeeds.
            (SimTime::from_secs(8), set_txn("alpha", 2)),
        ],
    );
    sim2.run_for(SimDuration::from_secs(20));
    let tc = client(&sim2, c);
    if master != SiteId(0) {
        assert_eq!(
            tc.outcome(0),
            Some(Outcome::TimedOut),
            "partitioned txn should time out"
        );
    }
    assert_eq!(
        tc.outcome(1),
        Some(Outcome::Committed),
        "post-heal txn commits"
    );
}

#[test]
fn runs_are_deterministic() {
    let run = |seed: u64| {
        let (mut sim, cluster) = five_dc(Protocol::Fast, seed);
        for site in 0..FIVE {
            let script: Vec<(SimTime, TxnSpec)> = (0..5)
                .map(|i| (SimTime::from_millis(1 + i * 300), set_txn("hot", i as i64)))
                .collect();
            add_client(
                &mut sim,
                SiteId(site as u8),
                cluster.coordinators[site],
                script,
            );
        }
        sim.run_for(SimDuration::from_secs(30));
        (
            sim.events_processed(),
            sim.metrics().counter_value("txn.committed.fast"),
            sim.metrics().counter_value("txn.aborted.fast"),
        )
    };
    assert_eq!(run(99), run(99));
    let a = run(99);
    let b = run(100);
    assert!(
        a != b || a.1 + a.2 > 0,
        "different seeds should usually differ"
    );
}

#[test]
fn commit_rate_degrades_with_physical_contention() {
    // All five sites hammer one key with physical writes concurrently;
    // abort rate must be substantial, and strictly higher than in the
    // spread-out case.
    let contended_commits = {
        let (mut sim, cluster) = five_dc(Protocol::Fast, 81);
        for site in 0..FIVE {
            let script: Vec<(SimTime, TxnSpec)> = (0..10)
                .map(|i| (SimTime::from_millis(1 + i * 100), set_txn("one", i as i64)))
                .collect();
            add_client(
                &mut sim,
                SiteId(site as u8),
                cluster.coordinators[site],
                script,
            );
        }
        sim.run_for(SimDuration::from_secs(60));
        sim.metrics().counter_value("txn.committed.fast")
    };
    let spread_commits = {
        let (mut sim, cluster) = five_dc(Protocol::Fast, 82);
        for site in 0..FIVE {
            let script: Vec<(SimTime, TxnSpec)> = (0..10)
                .map(|i| {
                    (
                        SimTime::from_millis(1 + i * 100),
                        set_txn(&format!("k{site}-{i}"), i as i64),
                    )
                })
                .collect();
            add_client(
                &mut sim,
                SiteId(site as u8),
                cluster.coordinators[site],
                script,
            );
        }
        sim.run_for(SimDuration::from_secs(60));
        sim.metrics().counter_value("txn.committed.fast")
    };
    assert_eq!(spread_commits, 50, "uncontended writes all commit");
    assert!(
        contended_commits < spread_commits,
        "contention must cost commits: {contended_commits} vs {spread_commits}"
    );
}
