//! Fault-model tests: message loss, wedged options, duplicate votes, and
//! behaviour at the edges of the quorum math.

use planet_mdcc::{build_sim, ClusterConfig, Msg, Outcome, Protocol, TestClient, TxnSpec};
use planet_sim::{ActorId, SimDuration, SimTime, Simulation, SiteId};
use planet_storage::{Key, Value, WriteOp};

fn client(sim: &Simulation<Msg>, id: ActorId) -> &TestClient {
    sim.actor_as::<TestClient>(id).expect("not a TestClient")
}

fn set_txn(key: &str, v: i64) -> TxnSpec {
    TxnSpec::write_one(Key::new(key), WriteOp::Set(Value::Int(v)))
}

#[test]
fn fast_path_tolerates_one_lost_vote() {
    // The fast quorum is 4 of 5: losing any single vote message must not
    // prevent commits. With 2% loss most transactions still commit.
    let mut config = ClusterConfig::new(5, Protocol::Fast);
    config.txn_timeout = SimDuration::from_secs(3);
    let (mut sim, cluster) = build_sim(planet_sim::topology::five_dc(), config, 5);
    sim.network_mut().loss_prob = 0.02;

    let script: Vec<(SimTime, TxnSpec)> = (0..50)
        .map(|i| {
            (
                SimTime::from_millis(1 + i * 500),
                set_txn(&format!("k{i}"), i as i64),
            )
        })
        .collect();
    let c = sim.add_actor(
        SiteId(0),
        Box::new(TestClient::new(cluster.coordinators[0], script)),
    );
    sim.run_for(SimDuration::from_secs(40));
    let tc = client(&sim, c);
    let commits = (0..50)
        .filter(|i| tc.outcome(*i) == Some(Outcome::Committed))
        .count();
    assert!(
        commits >= 40,
        "2% loss should rarely break a 4/5 quorum, got {commits}/50"
    );
    assert!(
        sim.dropped_messages() > 0,
        "loss must actually have occurred"
    );
}

#[test]
fn heavy_loss_times_out_rather_than_wedging() {
    let mut config = ClusterConfig::new(5, Protocol::Fast);
    config.txn_timeout = SimDuration::from_secs(2);
    let (mut sim, cluster) = build_sim(planet_sim::topology::five_dc(), config, 6);
    sim.network_mut().loss_prob = 0.6;

    let script: Vec<(SimTime, TxnSpec)> = (0..10)
        .map(|i| {
            (
                SimTime::from_millis(1 + i * 100),
                set_txn(&format!("k{i}"), 1),
            )
        })
        .collect();
    let c = sim.add_actor(
        SiteId(0),
        Box::new(TestClient::new(cluster.coordinators[0], script)),
    );
    sim.run_for(SimDuration::from_secs(10));
    let tc = client(&sim, c);
    // Every transaction terminates — committed or timed out, never stuck.
    assert_eq!(
        tc.completed.len(),
        10,
        "all txns must reach a terminal state"
    );
}

#[test]
fn lease_sweep_unwedges_a_record_after_lost_decides() {
    // Drop ~everything for a while so a pending option's Decide is lost,
    // then heal and verify a later transaction can still claim the record
    // (the lease sweep reclaimed the orphan).
    let mut config = ClusterConfig::new(5, Protocol::Fast);
    config.txn_timeout = SimDuration::from_secs(1);
    let (mut sim, cluster) = build_sim(planet_sim::topology::five_dc(), config, 7);

    let script = vec![
        (SimTime::from_millis(1), set_txn("wedge", 1)),
        // Well after the lease (= txn_timeout) plus sweep period.
        (SimTime::from_secs(8), set_txn("wedge", 2)),
    ];
    let c = sim.add_actor(
        SiteId(0),
        Box::new(TestClient::new(cluster.coordinators[0], script)),
    );
    // Heavy loss only during the first transaction.
    sim.network_mut().loss_prob = 0.9;
    sim.run_for(SimDuration::from_secs(4));
    sim.network_mut().loss_prob = 0.0;
    sim.run_for(SimDuration::from_secs(10));

    let tc = client(&sim, c);
    assert_eq!(tc.completed.len(), 2);
    assert_eq!(
        tc.outcome(1),
        Some(Outcome::Committed),
        "the record must be reclaimable after the lease expires"
    );
    assert!(sim.metrics().counter_value("replica.leases_expired") > 0);
}

#[test]
fn three_site_cluster_commits_with_majority_quorums() {
    // N=3: classic quorum 2, fast quorum 3 (fast Paxos needs all three).
    for protocol in [Protocol::Fast, Protocol::Classic, Protocol::TwoPc] {
        let (mut sim, cluster) = build_sim(
            planet_sim::topology::three_dc(),
            ClusterConfig::new(3, protocol),
            8,
        );
        let c = sim.add_actor(
            SiteId(0),
            Box::new(TestClient::new(
                cluster.coordinators[0],
                vec![(SimTime::from_millis(1), set_txn("tri", 1))],
            )),
        );
        sim.run_for(SimDuration::from_secs(5));
        assert_eq!(
            client(&sim, c).outcome(0),
            Some(Outcome::Committed),
            "{protocol}"
        );
    }
}

#[test]
fn single_site_cluster_is_a_local_database() {
    let (mut sim, cluster) = build_sim(
        planet_sim::topology::single_dc(),
        ClusterConfig::new(1, Protocol::Fast),
        9,
    );
    let c = sim.add_actor(
        SiteId(0),
        Box::new(TestClient::new(
            cluster.coordinators[0],
            vec![(SimTime::from_millis(1), set_txn("solo", 1))],
        )),
    );
    sim.run_for(SimDuration::from_secs(1));
    let tc = client(&sim, c);
    assert_eq!(tc.outcome(0), Some(Outcome::Committed));
    let latency = tc.completed[0]
        .stats
        .decided_at
        .since(tc.completed[0].stats.submitted_at);
    assert!(
        latency < SimDuration::from_millis(10),
        "single-site commit is local: {latency}"
    );
}

#[test]
fn multi_key_txn_with_mixed_masters_is_atomic() {
    // A transaction writing several keys mastered at different sites either
    // installs all of its writes or none.
    let (mut sim, cluster) = build_sim(
        planet_sim::topology::five_dc(),
        ClusterConfig::new(5, Protocol::Classic),
        10,
    );
    let spec = TxnSpec {
        writes: (0..6)
            .map(|i| {
                (
                    Key::new(format!("atomic:{i}")),
                    WriteOp::Set(Value::Int(77)),
                )
            })
            .collect(),
        ..Default::default()
    };
    let c = sim.add_actor(
        SiteId(1),
        Box::new(TestClient::new(
            cluster.coordinators[1],
            vec![(SimTime::from_millis(1), spec)],
        )),
    );
    sim.run_for(SimDuration::from_secs(10));
    let outcome = client(&sim, c).outcome(0).unwrap();
    assert_eq!(outcome, Outcome::Committed);
    for site in 0..5 {
        let storage = sim
            .actor_as::<planet_mdcc::ReplicaActor>(cluster.replicas[site])
            .unwrap()
            .storage();
        for i in 0..6 {
            assert_eq!(
                storage.read(&Key::new(format!("atomic:{i}"))).value,
                Value::Int(77),
                "site {site} key {i}"
            );
        }
    }
}

#[test]
fn validation_service_queue_adds_delay_under_burst() {
    // With a 20ms validation cost, a burst of 10 simultaneous proposals
    // queues ~200ms at each replica; commit latency must reflect that.
    let run = |service_ms: u64, seed: u64| {
        let mut config = ClusterConfig::new(5, Protocol::Fast);
        config.validation_service = SimDuration::from_millis(service_ms);
        let (mut sim, cluster) = build_sim(planet_sim::topology::five_dc(), config, seed);
        let script: Vec<(SimTime, TxnSpec)> = (0..10)
            .map(|i| (SimTime::from_millis(1), set_txn(&format!("b{i}"), 1)))
            .collect();
        let c = sim.add_actor(
            SiteId(0),
            Box::new(TestClient::new(cluster.coordinators[0], script)),
        );
        sim.run_for(SimDuration::from_secs(10));
        let tc = client(&sim, c);
        let mean: f64 = tc
            .completed
            .iter()
            .map(|r| {
                r.stats
                    .decided_at
                    .since(r.stats.submitted_at)
                    .as_millis_f64()
            })
            .sum::<f64>()
            / tc.completed.len() as f64;
        (
            tc.completed
                .iter()
                .filter(|r| r.outcome.is_commit())
                .count(),
            mean,
        )
    };
    let (commits_free, mean_free) = run(0, 11);
    let (commits_busy, mean_busy) = run(20, 12);
    assert_eq!(commits_free, 10);
    assert_eq!(commits_busy, 10, "queueing must delay, not break, commits");
    assert!(
        mean_busy > mean_free + 50.0,
        "queueing delay must show: {mean_free}ms vs {mean_busy}ms"
    );
}
