//! Sharded-execution tests: the key-partitioned cluster must be
//! observationally equivalent to the unsharded one on conflict-free
//! workloads, every shard must hold exactly its own keyspace slice, safety
//! must hold under contention at any shard count, and the periodic
//! checkpoint sweep must keep the recovery invariant while bounding the WAL.

use planet_mdcc::{
    build_sim, Cluster, ClusterConfig, Msg, Outcome, Protocol, ReplicaActor, TestClient, TxnSpec,
};
use planet_sim::{ActorId, DetRng, SimDuration, SimTime, Simulation, SiteId};
use planet_storage::{Key, Value, WriteOp};

const FIVE: usize = 5;

fn five_dc(config: ClusterConfig, seed: u64) -> (Simulation<Msg>, Cluster) {
    build_sim(planet_sim::topology::five_dc(), config, seed)
}

fn add_client(
    sim: &mut Simulation<Msg>,
    site: SiteId,
    coordinator: ActorId,
    script: Vec<(SimTime, TxnSpec)>,
) -> ActorId {
    sim.add_actor(site, Box::new(TestClient::new(coordinator, script)))
}

fn read_at(sim: &Simulation<Msg>, cluster: &Cluster, site: usize, key: &Key) -> Value {
    let shard = cluster.config.shard_of(key);
    sim.actor_as::<ReplicaActor>(cluster.replica(site, shard))
        .expect("replica actor")
        .storage()
        .read(key)
        .value
}

/// One client's timed transaction script.
type Script = Vec<(SimTime, TxnSpec)>;

/// A conflict-free randomized workload: each client owns a disjoint key
/// pool, so every transaction must commit and the final value of each key
/// is the sum of the deltas applied to it — at *any* shard count.
fn disjoint_scripts(seed: u64) -> (Vec<Script>, Vec<(Key, i64)>) {
    let mut rng = DetRng::new(seed);
    let mut scripts = Vec::new();
    let mut expected: std::collections::BTreeMap<Key, i64> = Default::default();
    for site in 0..3u64 {
        let pool: Vec<Key> = (0..6).map(|j| Key::new(format!("s{site}-k{j}"))).collect();
        let mut script = Vec::new();
        for i in 0..8u64 {
            let key = pool[rng.index(pool.len())].clone();
            let delta = rng.range_u64(1, 9) as i64;
            *expected.entry(key.clone()).or_insert(0) += delta;
            script.push((
                SimTime::from_millis(1 + i * 700),
                TxnSpec::write_one(key, WriteOp::add(delta)),
            ));
        }
        scripts.push(script);
    }
    (scripts, expected.into_iter().collect())
}

/// Per-client outcomes, final per-key values, and the run itself.
type DisjointRun = (
    Vec<Vec<Option<Outcome>>>,
    Vec<(Key, Value)>,
    Simulation<Msg>,
    Cluster,
);

fn run_disjoint(shards: usize, seed: u64) -> DisjointRun {
    let config = ClusterConfig::new(FIVE, Protocol::Fast).with_shards(shards);
    let (mut sim, cluster) = five_dc(config, seed);
    let (scripts, expected) = disjoint_scripts(0xD15C_0000 + seed);
    let clients: Vec<ActorId> = scripts
        .into_iter()
        .enumerate()
        .map(|(site, script)| {
            add_client(
                &mut sim,
                SiteId(site as u8),
                cluster.coordinators[site],
                script,
            )
        })
        .collect();
    sim.run_for(SimDuration::from_secs(20));
    let outcomes = clients
        .iter()
        .map(|&c| {
            let tc = sim.actor_as::<TestClient>(c).expect("test client");
            (0..8).map(|tag| tc.outcome(tag)).collect()
        })
        .collect();
    let finals = expected
        .iter()
        .map(|(key, _)| (key.clone(), read_at(&sim, &cluster, 0, key)))
        .collect();
    (outcomes, finals, sim, cluster)
}

/// Observational equivalence: the same conflict-free workload produces the
/// same outcomes and the same final committed values whether the cluster
/// runs one shard or four.
#[test]
fn sharded_matches_unsharded_on_disjoint_workload() {
    for seed in [7, 21] {
        let (o1, v1, _, _) = run_disjoint(1, seed);
        let (o4, v4, _, _) = run_disjoint(4, seed);
        assert_eq!(o1, o4, "seed {seed}: outcomes diverge between S=1 and S=4");
        for row in &o1 {
            for (tag, outcome) in row.iter().enumerate() {
                assert_eq!(
                    *outcome,
                    Some(Outcome::Committed),
                    "seed {seed}: conflict-free txn {tag} must commit"
                );
            }
        }
        assert_eq!(v1, v4, "seed {seed}: final values diverge");
        // And the values are exactly the sum of committed deltas.
        let (_, expected) = disjoint_scripts(0xD15C_0000 + seed);
        for ((key, got), (ekey, want)) in v4.iter().zip(expected.iter()) {
            assert_eq!(key, ekey);
            assert_eq!(got, &Value::Int(*want), "seed {seed}: {key:?}");
        }
    }
}

/// Every replica holds only keys of its own shard: the coordinator routing
/// invariant, observed from the stores after a run.
#[test]
fn shards_hold_disjoint_keyspace_slices() {
    let (_, _, sim, cluster) = run_disjoint(4, 7);
    let mut populated = 0;
    for shard in 0..4 {
        for site in 0..FIVE {
            let actor = sim
                .actor_as::<ReplicaActor>(cluster.replica(site, shard))
                .expect("replica actor");
            assert_eq!(actor.shard(), shard);
            for key in actor.storage().store().keys() {
                populated += 1;
                assert_eq!(
                    cluster.config.shard_of(key),
                    shard,
                    "replica (site {site}, shard {shard}) holds foreign key {key:?}"
                );
            }
        }
    }
    assert!(populated > 0, "the run must have populated some shards");
}

/// Two racing physical writes on one key still commit at most once with the
/// keyspace sharded — per-key ordering lives entirely inside one shard.
#[test]
fn contention_safety_holds_when_sharded() {
    let config = ClusterConfig::new(FIVE, Protocol::Fast).with_shards(4);
    let (mut sim, cluster) = five_dc(config, 31);
    let spec = |v| TxnSpec::write_one(Key::new("contested"), WriteOp::Set(Value::Int(v)));
    let c0 = add_client(
        &mut sim,
        SiteId(0),
        cluster.coordinators[0],
        vec![(SimTime::from_millis(1), spec(1))],
    );
    let c1 = add_client(
        &mut sim,
        SiteId(2),
        cluster.coordinators[2],
        vec![(SimTime::from_millis(1), spec(2))],
    );
    sim.run_for(SimDuration::from_secs(5));
    let o0 = sim.actor_as::<TestClient>(c0).unwrap().outcome(0).unwrap();
    let o1 = sim.actor_as::<TestClient>(c1).unwrap().outcome(0).unwrap();
    let commits = [o0, o1].iter().filter(|o| o.is_commit()).count();
    assert!(
        commits <= 1,
        "at most one racing write commits: {o0:?} {o1:?}"
    );
}

/// Under sustained traffic with an aggressive checkpoint threshold, the
/// periodic maintenance sweep must actually checkpoint (bounding the WAL)
/// while the recovery invariant keeps holding on every shard.
#[test]
fn checkpoint_sweep_preserves_recovery_under_load() {
    let mut config = ClusterConfig::new(FIVE, Protocol::Fast).with_shards(2);
    config.txn_timeout = SimDuration::from_secs(2); // sweep every second
    config.checkpoint_every = 4;
    config.gc_keep_versions = 1;
    let (mut sim, cluster) = five_dc(config, 93);
    let script: Vec<(SimTime, TxnSpec)> = (0..30)
        .map(|i| {
            (
                SimTime::from_millis(1 + i * 600),
                TxnSpec::write_one(Key::new(format!("ck{}", i % 4)), WriteOp::add(1)),
            )
        })
        .collect();
    add_client(&mut sim, SiteId(0), cluster.coordinators[0], script);
    sim.run_for(SimDuration::from_secs(30));

    let mut snapshots = 0;
    for shard in 0..2 {
        for site in 0..FIVE {
            let replica = sim
                .actor_as::<ReplicaActor>(cluster.replica(site, shard))
                .expect("replica actor")
                .storage();
            assert!(
                replica.verify_recovery().is_empty(),
                "site {site} shard {shard} diverged after checkpointing"
            );
            if replica.wal().has_snapshot() {
                snapshots += 1;
                assert!(
                    replica.wal().len() < 30,
                    "site {site} shard {shard}: WAL tail unbounded"
                );
            }
        }
    }
    assert!(snapshots > 0, "no shard ever checkpointed");
    assert!(
        sim.metrics().counter_value("replica.checkpoints") > 0,
        "checkpoint counter never incremented"
    );
}
