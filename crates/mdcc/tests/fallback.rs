//! Tests for the fast path's collision fallback: when the fast round's
//! votes split between competing options and nobody reaches the fast
//! quorum, retrying through the master must rescue a winner.

use planet_mdcc::{build_sim, ClusterConfig, Msg, Outcome, Protocol, TestClient, TxnSpec};
use planet_sim::{ActorId, SimDuration, SimTime, Simulation, SiteId};
use planet_storage::{Key, Value, WriteOp};

fn client(sim: &Simulation<Msg>, id: ActorId) -> &TestClient {
    sim.actor_as::<TestClient>(id).expect("not a TestClient")
}

fn set_txn(key: &str, v: i64) -> TxnSpec {
    TxnSpec::write_one(Key::new(key), WriteOp::Set(Value::Int(v)))
}

/// Five sites race −2 decrements on a stock of 3 (each replica can accept
/// only one option under worst-case demarcation accounting, so fast-round
/// votes scatter). Without fallback this frequently ends with *zero*
/// commits (the collision outcome); with fallback the master round rescues
/// exactly one winner.
fn race_scarce_stock(fallback: bool, seed: u64) -> usize {
    let mut config = ClusterConfig::new(5, Protocol::Fast);
    config.fast_fallback = fallback;
    let (mut sim, cluster) = build_sim(planet_sim::topology::five_dc(), config, seed);
    // Seed the stock.
    let seeder = sim.add_actor(
        SiteId(0),
        Box::new(TestClient::new(
            cluster.coordinators[0],
            vec![(SimTime::from_millis(1), set_txn("scarce", 3))],
        )),
    );
    let buyers: Vec<ActorId> = (0..5)
        .map(|site| {
            sim.add_actor(
                SiteId(site as u8),
                Box::new(TestClient::new(
                    cluster.coordinators[site],
                    vec![(
                        SimTime::from_secs(2),
                        TxnSpec::write_one(Key::new("scarce"), WriteOp::add_with_floor(-2, 0)),
                    )],
                )),
            )
        })
        .collect();
    sim.run_for(SimDuration::from_secs(30));
    assert_eq!(client(&sim, seeder).outcome(0), Some(Outcome::Committed));
    buyers
        .iter()
        .filter(|b| client(&sim, **b).outcome(0) == Some(Outcome::Committed))
        .count()
}

#[test]
fn fallback_rescues_collision_victims() {
    let mut rescued = 0;
    let mut without = 0;
    for seed in 0..8u64 {
        without += race_scarce_stock(false, 100 + seed);
        rescued += race_scarce_stock(true, 100 + seed);
    }
    // Never more than one winner per race (demarcation), in either mode.
    assert!(without <= 8 && rescued <= 8);
    assert!(
        rescued > without,
        "fallback must convert some collisions into commits: {rescued} vs {without} over 8 races"
    );
    assert!(
        rescued >= 6,
        "fallback should almost always find the winner, got {rescued}/8"
    );
}

#[test]
fn fallback_counts_in_metrics_and_preserves_atomicity() {
    let mut config = ClusterConfig::new(5, Protocol::Fast);
    config.fast_fallback = true;
    let (mut sim, cluster) = build_sim(planet_sim::topology::five_dc(), config, 300);
    // Heavy same-key racing to force collisions.
    let clients: Vec<ActorId> = (0..5)
        .map(|site| {
            let script: Vec<(SimTime, TxnSpec)> = (0..10)
                .map(|i| (SimTime::from_millis(1 + i * 100), set_txn("hot", i as i64)))
                .collect();
            sim.add_actor(
                SiteId(site as u8),
                Box::new(TestClient::new(cluster.coordinators[site], script)),
            )
        })
        .collect();
    sim.run_for(SimDuration::from_secs(60));
    for c in &clients {
        assert_eq!(client(&sim, *c).completed.len(), 10, "every txn terminates");
    }
    assert!(
        sim.metrics().counter_value("txn.fast_fallbacks") > 0,
        "racing must have triggered fallbacks"
    );
    // All replicas converge despite the mixed fast/fallback rounds.
    let reference = sim
        .actor_as::<planet_mdcc::ReplicaActor>(cluster.replicas[0])
        .unwrap()
        .storage()
        .read(&Key::new("hot"));
    for site in 1..5 {
        let got = sim
            .actor_as::<planet_mdcc::ReplicaActor>(cluster.replicas[site])
            .unwrap()
            .storage()
            .read(&Key::new("hot"));
        assert_eq!(got.value, reference.value, "site {site} diverged");
        assert_eq!(
            got.version, reference.version,
            "site {site} version diverged"
        );
    }
}

#[test]
fn fallback_costs_latency_only_on_collision() {
    // Uncontended traffic must not pay for the fallback feature.
    let run = |fallback: bool| {
        let mut config = ClusterConfig::new(5, Protocol::Fast);
        config.fast_fallback = fallback;
        let (mut sim, cluster) = build_sim(planet_sim::topology::five_dc(), config, 301);
        let script: Vec<(SimTime, TxnSpec)> = (0..20)
            .map(|i| {
                (
                    SimTime::from_millis(1 + i * 500),
                    set_txn(&format!("solo{i}"), 1),
                )
            })
            .collect();
        let c = sim.add_actor(
            SiteId(0),
            Box::new(TestClient::new(cluster.coordinators[0], script)),
        );
        sim.run_for(SimDuration::from_secs(20));
        let tc = client(&sim, c);
        let mean: f64 = tc
            .completed
            .iter()
            .map(|r| {
                r.stats
                    .decided_at
                    .since(r.stats.submitted_at)
                    .as_millis_f64()
            })
            .sum::<f64>()
            / tc.completed.len() as f64;
        (
            tc.completed
                .iter()
                .filter(|r| r.outcome.is_commit())
                .count(),
            mean,
        )
    };
    let (commits_off, mean_off) = run(false);
    let (commits_on, mean_on) = run(true);
    assert_eq!(commits_off, 20);
    assert_eq!(commits_on, 20);
    assert!(
        (mean_on - mean_off).abs() < 1.0,
        "identical uncontended latency expected: {mean_off}ms vs {mean_on}ms"
    );
}
