//! The storage replica actor: one per site, holding a full copy of the
//! keyspace.
//!
//! Responsibilities by protocol path:
//!
//! * **Fast path** — validate `FastPropose` options against local state and
//!   vote directly to the coordinator. Conflicts surface here, at every
//!   replica independently.
//! * **Classic path** — when this replica masters the key, validate
//!   `Propose`, then fan out `Replicate`; non-master replicas make the
//!   option durable and vote straight to the coordinator.
//! * **2PC path** — like classic, but durability acks route back to the
//!   master, which casts one vote per key once a majority is durable.
//! * **Apply/convergence** — the key's master serialises every committed
//!   version and ships it by state transfer (`Apply`); replicas install
//!   whatever is newer than what they hold, so all copies converge to the
//!   master's order regardless of message timing.
//!
//! Pending options are leased: a periodic sweep drops options older than the
//! transaction timeout, so a lost `Decide`/`DropPending` cannot wedge a
//! record forever.

use std::collections::{HashMap, VecDeque};

use planet_sim::{Actor, ActorId, Context, SimDuration, SimTime, SiteId};
use planet_storage::{Key, RecordOption, Replica, TxnId};

use crate::config::{ClusterConfig, Protocol};
use crate::messages::{KeyRead, Msg};

/// Pending 2PC replication state at a master: which sites have acked.
struct ReplState {
    acks: Vec<SiteId>,
    coordinator: ActorId,
    voted: bool,
}

/// The per-site storage replica actor.
pub struct ReplicaActor {
    config: ClusterConfig,
    /// Replica actor ids indexed by site.
    peers: Vec<ActorId>,
    storage: Replica,
    /// 2PC: replication ack collection per (txn, key) this site masters.
    repl_state: HashMap<(TxnId, Key), ReplState>,
    /// Lease bookkeeping: when each pending option was accepted.
    accepted_at: HashMap<(TxnId, Key), SimTime>,
    /// How long a pending option may live before the sweep reclaims it.
    lease: SimDuration,
    /// FIFO of validation work waiting for the (single) server, used when
    /// `validation_service > 0`.
    service_queue: VecDeque<(ActorId, Msg)>,
    /// True while the validation server is occupied.
    server_busy: bool,
    /// Fault injection: while true the replica ignores all traffic.
    crashed: bool,
}

/// Timer discriminator for the pending-option sweep.
const GC_TIMER: u32 = 0xC1EA;

impl ReplicaActor {
    /// Build a replica for a cluster whose replica actors are `peers`
    /// (indexed by site).
    pub fn new(config: ClusterConfig, peers: Vec<ActorId>) -> Self {
        let lease = config.txn_timeout;
        ReplicaActor {
            config,
            peers,
            storage: Replica::new(),
            repl_state: HashMap::new(),
            accepted_at: HashMap::new(),
            lease,
            service_queue: VecDeque::new(),
            server_busy: false,
            crashed: false,
        }
    }

    /// True while the replica is crash-injected.
    pub fn is_crashed(&self) -> bool {
        self.crashed
    }

    /// Current depth of the validation queue (diagnostics).
    pub fn service_queue_depth(&self) -> usize {
        self.service_queue.len()
    }

    /// Read access to the underlying storage (for tests and result harvest).
    pub fn storage(&self) -> &Replica {
        &self.storage
    }

    /// Mutable access to storage, used by harnesses to preload data.
    pub fn storage_mut(&mut self) -> &mut Replica {
        &mut self.storage
    }

    fn is_master(&self, key: &Key, ctx: &Context<'_, Msg>) -> bool {
        self.config.master_of(key) == ctx.self_site()
    }

    fn other_peers(&self, ctx: &Context<'_, Msg>) -> impl Iterator<Item = ActorId> + '_ {
        let me = ctx.self_id();
        self.peers.iter().copied().filter(move |&p| p != me)
    }

    fn try_accept(
        &mut self,
        key: &Key,
        option: RecordOption,
        now: SimTime,
    ) -> Result<(), planet_storage::RejectReason> {
        let txn = option.txn;
        // Idempotent re-proposal: a later round (fast-path fallback, retry)
        // may re-present an option this replica already holds.
        if self.storage.has_pending(key, txn) {
            return Ok(());
        }
        match self.storage.accept(key, option) {
            Ok(()) => {
                self.accepted_at.insert((txn, key.clone()), now);
                Ok(())
            }
            Err(reason) => {
                self.storage.note_rejection();
                Err(reason)
            }
        }
    }

    fn handle_read(
        &mut self,
        from: ActorId,
        txn: TxnId,
        keys: Vec<Key>,
        ctx: &mut Context<'_, Msg>,
    ) {
        let results = keys
            .iter()
            .map(|k| {
                let r = self.storage.read(k);
                KeyRead {
                    key: k.clone(),
                    version: r.version,
                    value: r.value,
                    pending: r.pending,
                }
            })
            .collect();
        ctx.send(from, Msg::ReadResp { txn, results });
    }

    fn handle_fast_propose(
        &mut self,
        from: ActorId,
        txn: TxnId,
        key: Key,
        option: RecordOption,
        round: u8,
        ctx: &mut Context<'_, Msg>,
    ) {
        let result = self.try_accept(&key, option, ctx.now());
        ctx.send(
            from,
            Msg::Vote {
                txn,
                key,
                site: ctx.self_site(),
                accept: result.is_ok(),
                reason: result.err(),
                round,
            },
        );
    }

    fn handle_propose(
        &mut self,
        txn: TxnId,
        key: Key,
        option: RecordOption,
        coordinator: ActorId,
        round: u8,
        ctx: &mut Context<'_, Msg>,
    ) {
        debug_assert!(self.is_master(&key, ctx), "Propose sent to non-master");
        match self.try_accept(&key, option.clone(), ctx.now()) {
            Err(reason) => {
                // Master says no: the key cannot be accepted; no replication.
                ctx.send(
                    coordinator,
                    Msg::Vote {
                        txn,
                        key,
                        site: ctx.self_site(),
                        accept: false,
                        reason: Some(reason),
                        round,
                    },
                );
            }
            Ok(()) => {
                match self.config.protocol {
                    // Classic proper, or a fast-path collision-fallback
                    // round: master votes immediately; other replicas ack
                    // directly to the coordinator.
                    Protocol::Classic | Protocol::Fast => {
                        ctx.send(
                            coordinator,
                            Msg::Vote {
                                txn,
                                key: key.clone(),
                                site: ctx.self_site(),
                                accept: true,
                                reason: None,
                                round,
                            },
                        );
                    }
                    Protocol::TwoPc => {
                        // Collect acks here; vote once a majority (counting
                        // ourselves) is durable.
                        self.repl_state.insert(
                            (txn, key.clone()),
                            ReplState {
                                acks: vec![ctx.self_site()],
                                coordinator,
                                voted: false,
                            },
                        );
                        self.maybe_vote_2pc(txn, &key, ctx);
                    }
                }
                let me = ctx.self_id();
                for peer in self.other_peers(ctx).collect::<Vec<_>>() {
                    ctx.send(
                        peer,
                        Msg::Replicate {
                            txn,
                            key: key.clone(),
                            option: option.clone(),
                            coordinator,
                            master: me,
                            round,
                        },
                    );
                }
            }
        }
    }

    #[allow(clippy::too_many_arguments)] // mirrors the wire message's fields
    fn handle_replicate(
        &mut self,
        txn: TxnId,
        key: Key,
        option: RecordOption,
        coordinator: ActorId,
        master: ActorId,
        round: u8,
        ctx: &mut Context<'_, Msg>,
    ) {
        // The master already validated; we store the option for durability
        // and demarcation accounting but our ack does not depend on local
        // validation succeeding (our copy may simply be stale).
        let _ = self.try_accept(&key, option, ctx.now());
        match self.config.protocol {
            // Classic proper, or a fast-path fallback round.
            Protocol::Classic | Protocol::Fast => ctx.send(
                coordinator,
                Msg::Vote {
                    txn,
                    key,
                    site: ctx.self_site(),
                    accept: true,
                    reason: None,
                    round,
                },
            ),
            Protocol::TwoPc => {
                ctx.send(
                    master,
                    Msg::ReplicateAck {
                        txn,
                        key,
                        site: ctx.self_site(),
                    },
                );
            }
        }
    }

    fn maybe_vote_2pc(&mut self, txn: TxnId, key: &Key, ctx: &mut Context<'_, Msg>) {
        let quorum = self.config.classic_quorum();
        let site = ctx.self_site();
        if let Some(state) = self.repl_state.get_mut(&(txn, key.clone())) {
            if !state.voted && state.acks.len() >= quorum {
                state.voted = true;
                let coordinator = state.coordinator;
                ctx.send(
                    coordinator,
                    Msg::Vote {
                        txn,
                        key: key.clone(),
                        site,
                        accept: true,
                        reason: None,
                        round: 0,
                    },
                );
            }
        }
    }

    fn handle_replicate_ack(
        &mut self,
        txn: TxnId,
        key: Key,
        site: SiteId,
        ctx: &mut Context<'_, Msg>,
    ) {
        if let Some(state) = self.repl_state.get_mut(&(txn, key.clone())) {
            if !state.acks.contains(&site) {
                state.acks.push(site);
            }
        }
        self.maybe_vote_2pc(txn, &key, ctx);
    }

    fn handle_decide(
        &mut self,
        txn: TxnId,
        key: Key,
        option: RecordOption,
        commit: bool,
        ctx: &mut Context<'_, Msg>,
    ) {
        debug_assert!(self.is_master(&key, ctx), "Decide sent to non-master");
        self.accepted_at.remove(&(txn, key.clone()));
        self.repl_state.remove(&(txn, key.clone()));
        if commit {
            let new_version = match self.storage.decide(&key, txn, true) {
                Some(v) => v,
                None => {
                    // This master never accepted the option (fast-path commit
                    // carried by other replicas): force-apply by state
                    // transfer onto the current head.
                    let cur = self.storage.read(&key);
                    let value = option.op.apply(&cur.value);
                    let v = cur.version + 1;
                    self.storage.install(&key, v, value, txn);
                    v
                }
            };
            let value = self.storage.read(&key).value;
            ctx.metrics().counter("replica.versions_committed").inc();
            for peer in self.other_peers(ctx).collect::<Vec<_>>() {
                ctx.send(
                    peer,
                    Msg::Apply {
                        key: key.clone(),
                        version: new_version,
                        value: value.clone(),
                        txn,
                    },
                );
            }
        } else {
            self.storage.decide(&key, txn, false);
            for peer in self.other_peers(ctx).collect::<Vec<_>>() {
                ctx.send(
                    peer,
                    Msg::DropPending {
                        key: key.clone(),
                        txn,
                    },
                );
            }
        }
    }

    fn handle_apply(
        &mut self,
        key: Key,
        version: planet_storage::VersionNo,
        value: planet_storage::Value,
        txn: TxnId,
        ctx: &mut Context<'_, Msg>,
    ) {
        self.accepted_at.remove(&(txn, key.clone()));
        if self.storage.install(&key, version, value, txn) {
            ctx.metrics().counter("replica.versions_installed").inc();
        }
    }

    fn handle_drop_pending(&mut self, key: Key, txn: TxnId) {
        self.accepted_at.remove(&(txn, key.clone()));
        self.storage.decide(&key, txn, false);
    }

    fn sweep_leases(&mut self, ctx: &mut Context<'_, Msg>) {
        let now = ctx.now();
        let lease = self.lease;
        let mut expired: Vec<(TxnId, Key)> = self
            .accepted_at
            .iter() // check:allow(determinism): order is fixed by the sort below
            .filter(|(_, &at)| now.since(at) > lease)
            .map(|(k, _)| k.clone())
            .collect();
        // HashMap iteration order is nondeterministic; the decide order
        // below has observable effects, so fix it.
        expired.sort();
        for (txn, key) in expired {
            self.accepted_at.remove(&(txn, key.clone()));
            self.repl_state.remove(&(txn, key.clone()));
            self.storage.decide(&key, txn, false);
            ctx.metrics().counter("replica.leases_expired").inc();
        }
    }
}

impl ReplicaActor {
    /// True for messages that cost validation-server time.
    fn is_costly(msg: &Msg) -> bool {
        matches!(
            msg,
            Msg::FastPropose { .. } | Msg::Propose { .. } | Msg::Replicate { .. }
        )
    }

    /// Admit one unit of validation work: run it if the server is idle,
    /// otherwise queue it.
    fn enqueue_work(&mut self, from: ActorId, msg: Msg, ctx: &mut Context<'_, Msg>) {
        if self.server_busy {
            self.service_queue.push_back((from, msg));
            return;
        }
        self.server_busy = true;
        self.dispatch(from, msg, ctx);
        ctx.schedule(self.config.validation_service, Msg::ReplicaServiceDone);
    }

    fn service_done(&mut self, ctx: &mut Context<'_, Msg>) {
        match self.service_queue.pop_front() {
            Some((from, msg)) => {
                self.dispatch(from, msg, ctx);
                ctx.schedule(self.config.validation_service, Msg::ReplicaServiceDone);
            }
            None => self.server_busy = false,
        }
    }

    fn dispatch(&mut self, from: ActorId, msg: Msg, ctx: &mut Context<'_, Msg>) {
        match msg {
            Msg::ReadReq { txn, keys } => self.handle_read(from, txn, keys, ctx),
            Msg::FastPropose {
                txn,
                key,
                option,
                round,
            } => self.handle_fast_propose(from, txn, key, option, round, ctx),
            Msg::Propose {
                txn,
                key,
                option,
                coordinator,
                round,
            } => self.handle_propose(txn, key, option, coordinator, round, ctx),
            Msg::Replicate {
                txn,
                key,
                option,
                coordinator,
                master,
                round,
            } => self.handle_replicate(txn, key, option, coordinator, master, round, ctx),
            Msg::ReplicateAck { txn, key, site } => self.handle_replicate_ack(txn, key, site, ctx),
            Msg::Decide {
                txn,
                key,
                option,
                commit,
            } => self.handle_decide(txn, key, option, commit, ctx),
            Msg::Apply {
                key,
                version,
                value,
                txn,
            } => self.handle_apply(key, version, value, txn, ctx),
            Msg::DropPending { key, txn } => self.handle_drop_pending(key, txn),
            Msg::ClientTimer { kind: GC_TIMER, .. } => {
                self.sweep_leases(ctx);
                let period = SimDuration::from_micros((self.lease.as_micros() / 2).max(1));
                ctx.schedule(
                    period,
                    Msg::ClientTimer {
                        kind: GC_TIMER,
                        tag: 0,
                    },
                );
            }
            other => {
                debug_assert!(false, "replica received unexpected message: {other:?}");
            }
        }
    }
}

impl Actor<Msg> for ReplicaActor {
    fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
        let period = SimDuration::from_micros((self.lease.as_micros() / 2).max(1));
        ctx.schedule(
            period,
            Msg::ClientTimer {
                kind: GC_TIMER,
                tag: 0,
            },
        );
    }

    fn on_message(&mut self, from: ActorId, msg: Msg, ctx: &mut Context<'_, Msg>) {
        match msg {
            Msg::Crash => {
                self.crashed = true;
                // A crash loses volatile protocol state; only the WAL (and
                // therefore the store it reconstructs) survives.
                self.repl_state.clear();
                self.service_queue.clear();
                self.server_busy = false;
                ctx.metrics().counter("replica.crashes").inc();
            }
            Msg::Recover => {
                if self.crashed {
                    self.crashed = false;
                    // Restart: rebuild storage from the write-ahead log.
                    self.storage = Replica::recover(self.storage.wal().clone());
                    ctx.metrics().counter("replica.recoveries").inc();
                }
            }
            // The lease-sweep timer chain must survive a crash (it models
            // the process restarting with its background tasks), but the
            // sweep itself does nothing while down.
            Msg::ClientTimer { kind: GC_TIMER, .. } if self.crashed => {
                let period = SimDuration::from_micros((self.lease.as_micros() / 2).max(1));
                ctx.schedule(
                    period,
                    Msg::ClientTimer {
                        kind: GC_TIMER,
                        tag: 0,
                    },
                );
            }
            _ if self.crashed => { /* down: drop everything else */ }
            Msg::ReplicaServiceDone => self.service_done(ctx),
            m if self.config.validation_service > SimDuration::ZERO && Self::is_costly(&m) => {
                self.enqueue_work(from, m, ctx)
            }
            m => self.dispatch(from, m, ctx),
        }
    }
}
