//! The storage replica actor: one per site *and shard*, holding the shard's
//! slice of the keyspace.
//!
//! A site runs `config.num_shards` replica actors; [`ClusterConfig::shard_of`]
//! partitions the keyspace among them, and every key-carrying message is
//! routed to the key's shard by the sender (coordinators fan out per shard;
//! a shard's `peers` are the same-shard replicas at the other sites). Each
//! shard owns an independent [`Replica`] (store + WAL), so in live mode the
//! per-site validation hot path runs on `num_shards` threads while per-key
//! ordering stays exactly what a single replica would produce.
//!
//! Responsibilities by protocol path:
//!
//! * **Fast path** — validate `FastPropose` options against local state and
//!   vote directly to the coordinator. Conflicts surface here, at every
//!   replica independently.
//! * **Classic path** — when this replica masters the key, validate
//!   `Propose`, then fan out `Replicate`; non-master replicas make the
//!   option durable and vote straight to the coordinator.
//! * **2PC path** — like classic, but durability acks route back to the
//!   master, which casts one vote per key once a majority is durable.
//! * **Apply/convergence** — the key's master serialises every committed
//!   version and ships it by state transfer (`Apply`); replicas install
//!   whatever is newer than what they hold, so all copies converge to the
//!   master's order regardless of message timing.
//!
//! Pending options are leased: a periodic sweep drops options older than the
//! transaction timeout, so a lost `Decide`/`DropPending` cannot wedge a
//! record forever.

use std::collections::{HashMap, VecDeque};

use planet_sim::{Actor, ActorId, Context, SimDuration, SimTime, SiteId};
use planet_storage::{Key, KeyId, RecordOption, Replica, TxnId};

use crate::config::{ClusterConfig, Protocol};
use crate::messages::{KeyRead, Msg};

/// Pending 2PC replication state at a master: which sites have acked.
struct ReplState {
    acks: Vec<SiteId>,
    coordinator: ActorId,
    voted: bool,
}

/// The per-site, per-shard storage replica actor.
pub struct ReplicaActor {
    config: ClusterConfig,
    /// Same-shard replica actor ids indexed by site (this shard's
    /// replication group).
    peers: Vec<ActorId>,
    /// Which keyspace shard this replica owns (`config.shard_of`).
    shard: usize,
    storage: Replica,
    /// 2PC: replication ack collection per (txn, key) this site masters.
    /// Keys are interned ids — valid within this shard's store only.
    repl_state: HashMap<(TxnId, KeyId), ReplState>,
    /// Lease bookkeeping: when each pending option was accepted.
    accepted_at: HashMap<(TxnId, KeyId), SimTime>,
    /// How long a pending option may live before the sweep reclaims it.
    lease: SimDuration,
    /// FIFO of validation work waiting for the (single) server, used when
    /// `validation_service > 0`.
    service_queue: VecDeque<(ActorId, Msg)>,
    /// True while the validation server is occupied.
    server_busy: bool,
    /// Fault injection: while true the replica ignores all traffic.
    crashed: bool,
}

/// Timer discriminator for the pending-option sweep.
const GC_TIMER: u32 = 0xC1EA;

impl ReplicaActor {
    /// Build the `shard`-th replica of a site. `peers` are the same-shard
    /// replica actor ids at every site (indexed by site) — the group this
    /// shard replicates with.
    pub fn new(config: ClusterConfig, peers: Vec<ActorId>, shard: usize) -> Self {
        debug_assert!(shard < config.num_shards.max(1));
        let lease = config.txn_timeout;
        ReplicaActor {
            config,
            peers,
            shard,
            storage: Replica::new(),
            repl_state: HashMap::new(),
            accepted_at: HashMap::new(),
            lease,
            service_queue: VecDeque::new(),
            server_busy: false,
            crashed: false,
        }
    }

    /// True while the replica is crash-injected.
    pub fn is_crashed(&self) -> bool {
        self.crashed
    }

    /// The keyspace shard this replica owns.
    pub fn shard(&self) -> usize {
        self.shard
    }

    /// Routing invariant: every key-carrying message this replica handles
    /// must be for a key in its shard.
    fn owns(&self, key: &Key) -> bool {
        self.config.shard_of(key) == self.shard
    }

    /// Current depth of the validation queue (diagnostics).
    pub fn service_queue_depth(&self) -> usize {
        self.service_queue.len()
    }

    /// Read access to the underlying storage (for tests and result harvest).
    pub fn storage(&self) -> &Replica {
        &self.storage
    }

    /// Mutable access to storage, used by harnesses to preload data.
    pub fn storage_mut(&mut self) -> &mut Replica {
        &mut self.storage
    }

    /// Digest every piece of protocol-visible state into `h`, remapping
    /// site/actor ids through `map` (see [`crate::digest`]). Hash-map
    /// contents are visited in sorted order so the digest is independent of
    /// insertion history; interned key ids are resolved to key names because
    /// intern order varies with message arrival order.
    pub fn mck_digest<H: std::hash::Hasher>(&self, map: &crate::digest::DigestMap, h: &mut H) {
        use std::hash::Hash;
        self.shard.hash(h);
        self.crashed.hash(h);
        self.server_busy.hash(h);
        self.lease.hash(h);
        let store = self.storage.store();
        let mut keys: Vec<&Key> = store.keys().collect();
        keys.sort();
        for k in keys {
            k.hash(h);
            let Some(rec) = store.record(k) else { continue };
            for v in rec.versions() {
                v.version.hash(h);
                crate::digest::dbg_hash(&v.value, h);
                v.txn.hash(h);
            }
            let mut pending: Vec<&RecordOption> = rec.pending().iter().collect();
            pending.sort_by_key(|o| o.txn);
            for o in pending {
                crate::digest::digest_option(o, h);
            }
        }
        let mut repl: Vec<((TxnId, &Key), &ReplState)> = self
            .repl_state
            .iter() // check:allow(determinism): sorted by (txn, key) below
            .map(|((t, kid), st)| ((*t, store.key_name(*kid)), st))
            .collect();
        repl.sort_by_key(|(k, _)| *k);
        for ((txn, key), st) in repl {
            txn.hash(h);
            key.hash(h);
            let mut acks: Vec<u8> = st.acks.iter().map(|s| map.site(*s)).collect();
            acks.sort_unstable();
            acks.hash(h);
            map.actor(st.coordinator).hash(h);
            st.voted.hash(h);
        }
        let mut leases: Vec<((TxnId, &Key), SimTime)> = self
            .accepted_at
            .iter() // check:allow(determinism): sorted by (txn, key) below
            .map(|((t, kid), at)| ((*t, store.key_name(*kid)), *at))
            .collect();
        leases.sort_by_key(|(k, _)| *k);
        for ((txn, key), at) in leases {
            txn.hash(h);
            key.hash(h);
            at.hash(h);
        }
        self.service_queue.len().hash(h);
        for (from, msg) in &self.service_queue {
            map.actor(*from).hash(h);
            crate::digest::digest_msg(msg, map, h);
        }
    }

    fn is_master(&self, key: &Key, ctx: &Context<'_, Msg>) -> bool {
        self.config.master_of(key) == ctx.self_site()
    }

    fn other_peers(&self, ctx: &Context<'_, Msg>) -> impl Iterator<Item = ActorId> + '_ {
        let me = ctx.self_id();
        self.peers.iter().copied().filter(move |&p| p != me)
    }

    fn try_accept(
        &mut self,
        key: &Key,
        option: RecordOption,
        now: SimTime,
    ) -> Result<(), planet_storage::RejectReason> {
        debug_assert!(self.owns(key), "option for {key} routed to wrong shard");
        let txn = option.txn;
        // One string hash at the boundary; everything below runs on the id.
        let id = self.storage.intern(key);
        // Idempotent re-proposal: a later round (fast-path fallback, retry)
        // may re-present an option this replica already holds.
        if self.storage.has_pending_id(id, txn) {
            return Ok(());
        }
        match self.storage.accept_id(id, option) {
            Ok(()) => {
                self.accepted_at.insert((txn, id), now);
                Ok(())
            }
            Err(reason) => {
                self.storage.note_rejection();
                Err(reason)
            }
        }
    }

    fn handle_read(
        &mut self,
        from: ActorId,
        txn: TxnId,
        keys: Vec<Key>,
        ctx: &mut Context<'_, Msg>,
    ) {
        let results = keys
            .into_iter()
            .map(|k| {
                debug_assert!(self.owns(&k), "read of {k} routed to wrong shard");
                let r = self.storage.read(&k);
                KeyRead {
                    key: k,
                    version: r.version,
                    value: r.value,
                    pending: r.pending,
                }
            })
            .collect();
        ctx.send(from, Msg::ReadResp { txn, results });
    }

    fn handle_fast_propose(
        &mut self,
        from: ActorId,
        txn: TxnId,
        key: Key,
        option: RecordOption,
        round: u8,
        ctx: &mut Context<'_, Msg>,
    ) {
        let result = self.try_accept(&key, option, ctx.now());
        ctx.send(
            from,
            Msg::Vote {
                txn,
                key,
                site: ctx.self_site(),
                accept: result.is_ok(),
                reason: result.err(),
                round,
            },
        );
    }

    fn handle_propose(
        &mut self,
        txn: TxnId,
        key: Key,
        option: RecordOption,
        coordinator: ActorId,
        round: u8,
        ctx: &mut Context<'_, Msg>,
    ) {
        debug_assert!(self.is_master(&key, ctx), "Propose sent to non-master");
        match self.try_accept(&key, option.clone(), ctx.now()) {
            Err(reason) => {
                // Master says no: the key cannot be accepted; no replication.
                ctx.send(
                    coordinator,
                    Msg::Vote {
                        txn,
                        key,
                        site: ctx.self_site(),
                        accept: false,
                        reason: Some(reason),
                        round,
                    },
                );
            }
            Ok(()) => {
                match self.config.protocol {
                    // Classic proper, or a fast-path collision-fallback
                    // round: master votes immediately; other replicas ack
                    // directly to the coordinator.
                    Protocol::Classic | Protocol::Fast => {
                        ctx.send(
                            coordinator,
                            Msg::Vote {
                                txn,
                                key: key.clone(),
                                site: ctx.self_site(),
                                accept: true,
                                reason: None,
                                round,
                            },
                        );
                    }
                    Protocol::TwoPc => {
                        // Collect acks here; vote once a majority (counting
                        // ourselves) is durable.
                        let id = self.storage.intern(&key);
                        self.repl_state.insert(
                            (txn, id),
                            ReplState {
                                acks: vec![ctx.self_site()],
                                coordinator,
                                voted: false,
                            },
                        );
                        self.maybe_vote_2pc(txn, id, &key, ctx);
                    }
                }
                let me = ctx.self_id();
                for peer in self.other_peers(ctx).collect::<Vec<_>>() {
                    ctx.send(
                        peer,
                        Msg::Replicate {
                            txn,
                            key: key.clone(),
                            option: option.clone(),
                            coordinator,
                            master: me,
                            round,
                        },
                    );
                }
            }
        }
    }

    #[allow(clippy::too_many_arguments)] // mirrors the wire message's fields
    fn handle_replicate(
        &mut self,
        txn: TxnId,
        key: Key,
        option: RecordOption,
        coordinator: ActorId,
        master: ActorId,
        round: u8,
        ctx: &mut Context<'_, Msg>,
    ) {
        // The master already validated; we store the option for durability
        // and demarcation accounting but our ack does not depend on local
        // validation succeeding (our copy may simply be stale).
        let _ = self.try_accept(&key, option, ctx.now());
        match self.config.protocol {
            // Classic proper, or a fast-path fallback round.
            Protocol::Classic | Protocol::Fast => ctx.send(
                coordinator,
                Msg::Vote {
                    txn,
                    key,
                    site: ctx.self_site(),
                    accept: true,
                    reason: None,
                    round,
                },
            ),
            Protocol::TwoPc => {
                ctx.send(
                    master,
                    Msg::ReplicateAck {
                        txn,
                        key,
                        site: ctx.self_site(),
                    },
                );
            }
        }
    }

    fn maybe_vote_2pc(&mut self, txn: TxnId, id: KeyId, key: &Key, ctx: &mut Context<'_, Msg>) {
        let quorum = self.config.classic_quorum();
        let site = ctx.self_site();
        if let Some(state) = self.repl_state.get_mut(&(txn, id)) {
            if !state.voted && state.acks.len() >= quorum {
                state.voted = true;
                let coordinator = state.coordinator;
                ctx.send(
                    coordinator,
                    Msg::Vote {
                        txn,
                        key: key.clone(),
                        site,
                        accept: true,
                        reason: None,
                        round: 0,
                    },
                );
            }
        }
    }

    fn handle_replicate_ack(
        &mut self,
        txn: TxnId,
        key: Key,
        site: SiteId,
        ctx: &mut Context<'_, Msg>,
    ) {
        let id = self.storage.intern(&key);
        if let Some(state) = self.repl_state.get_mut(&(txn, id)) {
            if !state.acks.contains(&site) {
                state.acks.push(site);
            }
        }
        self.maybe_vote_2pc(txn, id, &key, ctx);
    }

    fn handle_decide(
        &mut self,
        txn: TxnId,
        key: Key,
        option: RecordOption,
        commit: bool,
        ctx: &mut Context<'_, Msg>,
    ) {
        debug_assert!(self.is_master(&key, ctx), "Decide sent to non-master");
        debug_assert!(self.owns(&key), "Decide for {key} routed to wrong shard");
        let id = self.storage.intern(&key);
        self.accepted_at.remove(&(txn, id));
        self.repl_state.remove(&(txn, id));
        if commit {
            let new_version = match self.storage.decide_id(id, txn, true) {
                Some(v) => v,
                None => {
                    // This master never accepted the option (fast-path commit
                    // carried by other replicas): force-apply by state
                    // transfer onto the current head.
                    let cur = self.storage.read_id(id);
                    let value = option.op.apply(&cur.value);
                    let v = cur.version + 1;
                    self.storage.install_id(id, v, value, txn);
                    v
                }
            };
            let value = self.storage.read_id(id).value;
            ctx.metrics().counter("replica.versions_committed").inc();
            if self.config.trace.is_on() {
                self.config.trace.emit(crate::trace::TraceEvent::Commit {
                    txn,
                    key: key.clone(),
                    version: new_version,
                    site: ctx.self_site(),
                    shard: self.shard,
                    at: ctx.now(),
                });
            }
            for peer in self.other_peers(ctx).collect::<Vec<_>>() {
                ctx.send(
                    peer,
                    Msg::Apply {
                        key: key.clone(),
                        version: new_version,
                        value: value.clone(),
                        txn,
                    },
                );
            }
        } else {
            self.storage.decide_id(id, txn, false);
            for peer in self.other_peers(ctx).collect::<Vec<_>>() {
                ctx.send(
                    peer,
                    Msg::DropPending {
                        key: key.clone(),
                        txn,
                    },
                );
            }
        }
    }

    fn handle_apply(
        &mut self,
        key: Key,
        version: planet_storage::VersionNo,
        value: planet_storage::Value,
        txn: TxnId,
        ctx: &mut Context<'_, Msg>,
    ) {
        debug_assert!(self.owns(&key), "Apply for {key} routed to wrong shard");
        let id = self.storage.intern(&key);
        self.accepted_at.remove(&(txn, id));
        if self.storage.install_id(id, version, value, txn) {
            ctx.metrics().counter("replica.versions_installed").inc();
            if self.config.trace.is_on() {
                self.config.trace.emit(crate::trace::TraceEvent::Install {
                    txn,
                    key: key.clone(),
                    version,
                    site: ctx.self_site(),
                    shard: self.shard,
                    at: ctx.now(),
                });
            }
        }
    }

    fn handle_drop_pending(&mut self, key: Key, txn: TxnId) {
        debug_assert!(
            self.owns(&key),
            "DropPending for {key} routed to wrong shard"
        );
        let id = self.storage.intern(&key);
        self.accepted_at.remove(&(txn, id));
        self.storage.decide_id(id, txn, false);
    }

    fn sweep_leases(&mut self, ctx: &mut Context<'_, Msg>) {
        let now = ctx.now();
        let lease = self.lease;
        let mut expired: Vec<(TxnId, KeyId)> = self
            .accepted_at
            .iter() // check:allow(determinism): order is fixed by the sort below
            .filter(|(_, &at)| now.since(at) > lease)
            .map(|(k, _)| *k)
            .collect();
        // HashMap iteration order is nondeterministic; the decide order
        // below has observable effects, so fix it. Interned ids are
        // assigned in (deterministic) arrival order, so sorting by id is
        // as reproducible as sorting by key name.
        expired.sort();
        for (txn, id) in expired {
            self.accepted_at.remove(&(txn, id));
            self.repl_state.remove(&(txn, id));
            self.storage.decide_id(id, txn, false);
            ctx.metrics().counter("replica.leases_expired").inc();
        }
    }

    /// Periodic maintenance riding the lease-sweep timer: trim committed
    /// version chains and checkpoint the WAL once its tail has grown past
    /// the configured threshold. Both keep sustained-load memory bounded;
    /// neither changes observable state (reads see the chain head, and
    /// replay restarts from the checkpoint snapshot).
    fn maintain_storage(&mut self, ctx: &mut Context<'_, Msg>) {
        if self.config.gc_keep_versions > 0 {
            self.storage.gc(self.config.gc_keep_versions);
        }
        if self.storage.maybe_checkpoint(self.config.checkpoint_every) {
            ctx.metrics().counter("replica.checkpoints").inc();
        }
    }
}

impl ReplicaActor {
    /// True for messages that cost validation-server time.
    fn is_costly(msg: &Msg) -> bool {
        matches!(
            msg,
            Msg::FastPropose { .. } | Msg::Propose { .. } | Msg::Replicate { .. }
        )
    }

    /// Admit one unit of validation work: run it if the server is idle,
    /// otherwise queue it.
    fn enqueue_work(&mut self, from: ActorId, msg: Msg, ctx: &mut Context<'_, Msg>) {
        if self.server_busy {
            self.service_queue.push_back((from, msg));
            return;
        }
        self.server_busy = true;
        self.dispatch(from, msg, ctx);
        ctx.schedule(self.config.validation_service, Msg::ReplicaServiceDone);
    }

    fn service_done(&mut self, ctx: &mut Context<'_, Msg>) {
        match self.service_queue.pop_front() {
            Some((from, msg)) => {
                self.dispatch(from, msg, ctx);
                ctx.schedule(self.config.validation_service, Msg::ReplicaServiceDone);
            }
            None => self.server_busy = false,
        }
    }

    fn dispatch(&mut self, from: ActorId, msg: Msg, ctx: &mut Context<'_, Msg>) {
        match msg {
            Msg::ReadReq { txn, keys } => self.handle_read(from, txn, keys, ctx),
            Msg::FastPropose {
                txn,
                key,
                option,
                round,
            } => self.handle_fast_propose(from, txn, key, option, round, ctx),
            Msg::Propose {
                txn,
                key,
                option,
                coordinator,
                round,
            } => self.handle_propose(txn, key, option, coordinator, round, ctx),
            Msg::Replicate {
                txn,
                key,
                option,
                coordinator,
                master,
                round,
            } => self.handle_replicate(txn, key, option, coordinator, master, round, ctx),
            Msg::ReplicateAck { txn, key, site } => self.handle_replicate_ack(txn, key, site, ctx),
            Msg::Decide {
                txn,
                key,
                option,
                commit,
            } => self.handle_decide(txn, key, option, commit, ctx),
            Msg::Apply {
                key,
                version,
                value,
                txn,
            } => self.handle_apply(key, version, value, txn, ctx),
            Msg::DropPending { key, txn } => self.handle_drop_pending(key, txn),
            Msg::ClientTimer { kind: GC_TIMER, .. } => {
                self.sweep_leases(ctx);
                self.maintain_storage(ctx);
                let period = SimDuration::from_micros((self.lease.as_micros() / 2).max(1));
                ctx.schedule(
                    period,
                    Msg::ClientTimer {
                        kind: GC_TIMER,
                        tag: 0,
                    },
                );
            }
            other => {
                debug_assert!(false, "replica received unexpected message: {other:?}");
            }
        }
    }
}

impl Actor<Msg> for ReplicaActor {
    fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
        let period = SimDuration::from_micros((self.lease.as_micros() / 2).max(1));
        ctx.schedule(
            period,
            Msg::ClientTimer {
                kind: GC_TIMER,
                tag: 0,
            },
        );
    }

    fn on_message(&mut self, from: ActorId, msg: Msg, ctx: &mut Context<'_, Msg>) {
        match msg {
            Msg::Crash => {
                self.crashed = true;
                // A crash loses volatile protocol state; only the WAL (and
                // therefore the store it reconstructs) survives.
                self.repl_state.clear();
                self.service_queue.clear();
                self.server_busy = false;
                ctx.metrics().counter("replica.crashes").inc();
            }
            Msg::Recover => {
                if self.crashed {
                    self.crashed = false;
                    // Restart: rebuild storage from the write-ahead log.
                    self.storage = Replica::recover(self.storage.wal().clone());
                    ctx.metrics().counter("replica.recoveries").inc();
                }
            }
            // The lease-sweep timer chain must survive a crash (it models
            // the process restarting with its background tasks), but the
            // sweep itself does nothing while down.
            Msg::ClientTimer { kind: GC_TIMER, .. } if self.crashed => {
                let period = SimDuration::from_micros((self.lease.as_micros() / 2).max(1));
                ctx.schedule(
                    period,
                    Msg::ClientTimer {
                        kind: GC_TIMER,
                        tag: 0,
                    },
                );
            }
            _ if self.crashed => { /* down: drop everything else */ }
            Msg::ReplicaServiceDone => self.service_done(ctx),
            m if self.config.validation_service > SimDuration::ZERO && Self::is_costly(&m) => {
                self.enqueue_work(from, m, ctx)
            }
            m => self.dispatch(from, m, ctx),
        }
    }
}
