//! The wire protocol: every message exchanged between clients, transaction
//! coordinators and storage replicas, plus the progress-event vocabulary the
//! PLANET layer observes.
//!
//! The simulation engine requires a single message type per simulation, so
//! this enum is the shared vocabulary of the whole system; the variants under
//! "client-side" exist for the layers above (planet-core, planet-workload)
//! and are never interpreted by the protocol actors.

use planet_sim::{ActorId, SimTime, SiteId};
use planet_storage::{Key, RecordOption, RejectReason, TxnId, Value, VersionNo, WriteOp};

/// Where a transaction's reads are served.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReadLevel {
    /// Read the local replica's committed state — sub-millisecond, but it
    /// may trail the masters by up to one apply propagation (~1 WAN hop).
    /// This is MDCC/PLANET's default read-committed behaviour.
    #[default]
    Local,
    /// Read a majority of replicas and take the highest committed version
    /// per key — bounded-staleness freshness at the cost of a WAN round
    /// trip to the median replica.
    Quorum,
}

/// What a transaction wants to do. The coordinator reads every key named in
/// `reads` and every key written, then proposes one option per write.
#[derive(Debug, Clone, Default)]
pub struct TxnSpec {
    /// Keys the transaction reads (beyond those it writes).
    pub reads: Vec<Key>,
    /// Writes: the coordinator turns each into an option based on the
    /// version it read.
    pub writes: Vec<(Key, WriteOp)>,
    /// Where reads are served.
    pub read_level: ReadLevel,
}

impl TxnSpec {
    /// A read-only transaction.
    pub fn read_only(keys: impl IntoIterator<Item = Key>) -> Self {
        TxnSpec {
            reads: keys.into_iter().collect(),
            writes: Vec::new(),
            read_level: ReadLevel::Local,
        }
    }

    /// A single-key blind write.
    pub fn write_one(key: Key, op: WriteOp) -> Self {
        TxnSpec {
            reads: Vec::new(),
            writes: vec![(key, op)],
            read_level: ReadLevel::Local,
        }
    }

    /// Every key the transaction touches, deduplicated, in first-use order.
    pub fn touched_keys(&self) -> Vec<Key> {
        let mut keys = Vec::with_capacity(self.reads.len() + self.writes.len());
        self.for_each_touched(|k| keys.push(k.clone()));
        keys
    }

    /// Visit every touched key once, in first-use order, without cloning.
    /// Dedup runs over borrowed keys — a linear scan for the small specs
    /// that dominate, a sorted seen-set above that — instead of the old
    /// owned-`Vec::contains` walk that paid quadratic string compares *and*
    /// cloned every key before checking it.
    pub fn for_each_touched(&self, mut f: impl FnMut(&Key)) {
        const SMALL: usize = 16;
        let total = self.reads.len() + self.writes.len();
        let iter = self.reads.iter().chain(self.writes.iter().map(|(k, _)| k));
        let mut seen: Vec<&Key> = Vec::with_capacity(total);
        if total <= SMALL {
            for k in iter {
                if !seen.contains(&k) {
                    seen.push(k);
                    f(k);
                }
            }
        } else {
            for k in iter {
                if let Err(pos) = seen.binary_search(&k) {
                    seen.insert(pos, k);
                    f(k);
                }
            }
        }
    }

    /// True if the transaction writes nothing.
    pub fn is_read_only(&self) -> bool {
        self.writes.is_empty()
    }
}

/// A single key's read result as returned to clients.
#[derive(Debug, Clone)]
pub struct KeyRead {
    /// The key.
    pub key: Key,
    /// Committed version at the replica that served the read.
    pub version: VersionNo,
    /// Committed value.
    pub value: Value,
    /// Options pending on the record at read time — the contention signal
    /// the likelihood model consumes.
    pub pending: usize,
}

/// Fine-grained transaction progress, emitted by the coordinator to whoever
/// submitted the transaction. This is the PLANET paper's "internal progress
/// of the transaction" made visible.
#[derive(Debug, Clone)]
pub enum ProgressStage {
    /// The coordinator admitted the transaction and is reading.
    Started,
    /// All reads completed; option proposals are going out. Carries the read
    /// results (clients use them; the predictor uses the pending counts).
    ReadsDone {
        /// Read results for every touched key.
        reads: Vec<KeyRead>,
    },
    /// A replica voted on one key's option.
    Vote {
        /// The voted key.
        key: Key,
        /// The replica's site.
        site: SiteId,
        /// Whether the replica accepted the option.
        accept: bool,
        /// Rejection reason when `accept` is false.
        reason: Option<RejectReason>,
        /// Time from proposal send to this vote's arrival.
        elapsed_us: u64,
    },
    /// The fast round collided (split votes, no quorum possible); the key is
    /// being retried through its master. Observers should reset their
    /// per-key vote tracking for the new round.
    KeyFallback {
        /// The key being retried.
        key: Key,
    },
    /// One key reached its quorum (or failed definitively).
    KeyResolved {
        /// The resolved key.
        key: Key,
        /// Whether the key's option achieved its quorum.
        accepted: bool,
    },
}

/// The terminal outcome of a transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// All options reached quorum; the transaction is durable.
    Committed,
    /// Some option was rejected or could not reach quorum.
    Aborted,
    /// The server-side timeout expired before all votes arrived.
    TimedOut,
}

impl Outcome {
    /// True for `Committed`.
    pub fn is_commit(&self) -> bool {
        matches!(self, Outcome::Committed)
    }
}

/// Summary statistics the coordinator attaches to the terminal outcome.
#[derive(Debug, Clone)]
pub struct TxnStats {
    /// When the coordinator accepted the transaction.
    pub submitted_at: SimTime,
    /// When the outcome was determined.
    pub decided_at: SimTime,
    /// When the coordinator dispatched the proposals (after reads
    /// completed); `SimTime::ZERO` if none ever went out (read-only
    /// transaction, or a timeout before reads finished). The gap to
    /// `decided_at` is the quorum wait — the span the coordinator spent
    /// blocked on replica votes.
    pub proposals_sent_at: SimTime,
    /// Number of keys written.
    pub write_keys: usize,
    /// Votes received before the decision.
    pub votes_received: usize,
    /// Rejections received before the decision.
    pub rejections: usize,
}

impl TxnStats {
    /// Microseconds the coordinator held the transaction, submit to
    /// decision.
    pub fn server_us(&self) -> u64 {
        self.decided_at.since(self.submitted_at).as_micros()
    }

    /// Microseconds spent waiting on replica votes (proposal dispatch to
    /// decision); zero if proposals never went out.
    pub fn quorum_wait_us(&self) -> u64 {
        if self.proposals_sent_at == SimTime::ZERO {
            return 0;
        }
        self.decided_at.since(self.proposals_sent_at).as_micros()
    }
}

/// Every message in the system.
#[derive(Debug, Clone)]
pub enum Msg {
    // ---- client → coordinator ----
    /// Submit a transaction; progress and the outcome flow back to `reply_to`.
    Submit {
        /// The transaction body.
        spec: TxnSpec,
        /// Actor to receive `Progress`/`TxnDone` messages.
        reply_to: ActorId,
        /// Client-chosen tag echoed back in every reply, letting a client
        /// multiplex many in-flight transactions.
        tag: u64,
    },
    /// Register a transaction program under a client-chosen plan id at a
    /// coordinator; the coordinator compiles it once against its
    /// configuration and keeps the [`planet_plan::CompiledPlan`] for the
    /// lifetime of the actor. Re-registering an id replaces the program.
    /// Acknowledged with [`Msg::PlanReady`].
    RegisterPlan {
        /// Client-chosen plan id, scoped to the receiving coordinator.
        plan: planet_plan::PlanId,
        /// The program to compile.
        program: planet_plan::TxnProgram,
        /// Actor to receive `PlanReady`.
        reply_to: ActorId,
    },
    /// Submit one execution of a registered plan: the compiled hot path.
    /// Replaces `Submit`'s full key-string spec with `(plan, params)`;
    /// progress and the outcome flow back exactly as for `Submit`.
    SubmitPlan {
        /// The registered plan.
        plan: planet_plan::PlanId,
        /// Submit-time arguments.
        params: Vec<planet_plan::PlanParam>,
        /// Actor to receive `Progress`/`TxnDone` messages.
        reply_to: ActorId,
        /// Client-chosen tag echoed back in every reply.
        tag: u64,
    },

    // ---- coordinator → replica ----
    /// Read a batch of keys at a replica.
    ReadReq {
        /// Transaction performing the read.
        txn: TxnId,
        /// Keys to read.
        keys: Vec<Key>,
    },
    /// Fast path: propose an option directly at a replica for validation.
    FastPropose {
        /// Proposing transaction.
        txn: TxnId,
        /// Target key.
        key: Key,
        /// The conditional write.
        option: RecordOption,
        /// Per-key proposal round (0 = first attempt; bumped on fallback).
        round: u8,
    },
    /// Classic/2PC: propose an option at the key's master (also used by the
    /// fast path's collision-fallback round).
    Propose {
        /// Proposing transaction.
        txn: TxnId,
        /// Target key.
        key: Key,
        /// The conditional write.
        option: RecordOption,
        /// Coordinator to receive votes (directly on the classic path).
        coordinator: ActorId,
        /// Per-key proposal round.
        round: u8,
    },
    /// Master → other replicas: make an accepted option durable.
    Replicate {
        /// Proposing transaction.
        txn: TxnId,
        /// Target key.
        key: Key,
        /// The conditional write.
        option: RecordOption,
        /// Coordinator (classic path: replicas vote straight back to it).
        coordinator: ActorId,
        /// Master that accepted the option (2PC path: acks return here).
        master: ActorId,
        /// Per-key proposal round.
        round: u8,
    },
    /// Decision for one key, sent to the key's master (which applies and
    /// fans out `Apply`). Carries the option so the master can force-apply
    /// a commit it never validated (possible on the fast path).
    Decide {
        /// Deciding transaction.
        txn: TxnId,
        /// The key being decided.
        key: Key,
        /// The option that was voted on.
        option: RecordOption,
        /// Commit or abort.
        commit: bool,
    },

    // ---- replica → coordinator / master ----
    /// A read response.
    ReadResp {
        /// Transaction that asked.
        txn: TxnId,
        /// One entry per requested key.
        results: Vec<KeyRead>,
    },
    /// A validation vote for one key's option.
    Vote {
        /// Voting on behalf of this transaction.
        txn: TxnId,
        /// The voted key.
        key: Key,
        /// The voting replica's site.
        site: SiteId,
        /// Accept or reject.
        accept: bool,
        /// Rejection reason when `accept` is false.
        reason: Option<RejectReason>,
        /// Echo of the proposal round being voted on.
        round: u8,
    },
    /// 2PC path: a replica acknowledges durability of a replicated option to
    /// the key's master.
    ReplicateAck {
        /// Transaction whose option was made durable.
        txn: TxnId,
        /// The key.
        key: Key,
        /// The acking replica's site.
        site: SiteId,
    },

    // ---- master → other replicas ----
    /// State transfer of a newly committed version. Replicas install it if
    /// it is newer than what they have; application order is therefore the
    /// master's order and replicas converge regardless of message timing.
    Apply {
        /// The key.
        key: Key,
        /// New committed version number (master-assigned).
        version: VersionNo,
        /// New committed value.
        value: Value,
        /// Transaction that produced it.
        txn: TxnId,
    },
    /// A transaction aborted: drop its pending option (frees demarcation
    /// headroom and physical locks at fast-path validators).
    DropPending {
        /// The key.
        key: Key,
        /// The aborted transaction.
        txn: TxnId,
    },

    // ---- coordinator → client ----
    /// A progress callback event.
    Progress {
        /// Client-chosen tag from `Submit`.
        tag: u64,
        /// Transaction id assigned by the coordinator.
        txn: TxnId,
        /// What happened.
        stage: ProgressStage,
    },
    /// Terminal outcome.
    TxnDone {
        /// Client-chosen tag from `Submit`.
        tag: u64,
        /// The transaction.
        txn: TxnId,
        /// Commit / abort / timeout.
        outcome: Outcome,
        /// Summary statistics.
        stats: TxnStats,
    },
    /// Acknowledges a [`Msg::RegisterPlan`]: the plan compiled and is
    /// submittable. A malformed program gets no reply (the registering
    /// client's wait times out; `plan.register_rejected` counts it).
    PlanReady {
        /// The registered plan id.
        plan: planet_plan::PlanId,
    },

    // ---- fault injection (harness → replica) ----
    /// Crash a replica: it stops processing and answering everything until
    /// `Recover` arrives. In-memory protocol state is lost; the WAL survives.
    Crash,
    /// Recover a crashed replica: its storage is rebuilt by replaying the
    /// WAL (the recovery path the storage layer guarantees), after which it
    /// resumes serving. State committed cluster-wide while it was down
    /// reaches it lazily via later `Apply` state transfers.
    Recover,

    // ---- timers ----
    /// Replica-internal: the validation server finished one unit of work
    /// (only used when `validation_service > 0`).
    ReplicaServiceDone,
    /// Coordinator-internal per-transaction timeout.
    TxnTimeout {
        /// The transaction that may have expired.
        txn: TxnId,
    },
    /// Client-side timer. The protocol actors never touch this; the PLANET
    /// layer uses it for deadlines and periodic work. `kind` is caller-defined.
    ClientTimer {
        /// Caller-defined discriminator.
        kind: u32,
        /// Caller-defined payload (e.g. a transaction tag).
        tag: u64,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn touched_keys_dedups_preserving_order() {
        let spec = TxnSpec {
            reads: vec![Key::new("a"), Key::new("b")],
            writes: vec![
                (Key::new("b"), WriteOp::add(1)),
                (Key::new("c"), WriteOp::add(1)),
            ],
            read_level: ReadLevel::Local,
        };
        let keys = spec.touched_keys();
        assert_eq!(keys, vec![Key::new("a"), Key::new("b"), Key::new("c")]);
    }

    #[test]
    fn touched_keys_dedups_above_the_small_spec_threshold() {
        // 3 distinct keys, each repeated 8 times → 24 total, exercising the
        // sorted seen-set branch. First-use order must survive the sort.
        let reads: Vec<Key> = (0..24).map(|i| Key::new(format!("k{}", i % 3))).collect();
        let spec = TxnSpec {
            reads,
            writes: vec![(Key::new("w"), WriteOp::add(1))],
            read_level: ReadLevel::Local,
        };
        assert_eq!(
            spec.touched_keys(),
            vec![
                Key::new("k0"),
                Key::new("k1"),
                Key::new("k2"),
                Key::new("w")
            ]
        );
    }

    #[test]
    fn constructors() {
        let ro = TxnSpec::read_only([Key::new("x")]);
        assert!(ro.is_read_only());
        let w = TxnSpec::write_one(Key::new("y"), WriteOp::add(1));
        assert!(!w.is_read_only());
        assert_eq!(w.touched_keys(), vec![Key::new("y")]);
    }

    #[test]
    fn outcome_is_commit() {
        assert!(Outcome::Committed.is_commit());
        assert!(!Outcome::Aborted.is_commit());
        assert!(!Outcome::TimedOut.is_commit());
    }
}
