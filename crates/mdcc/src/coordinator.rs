//! The transaction coordinator: the app-server-side state machine that
//! executes a transaction end to end and streams progress events back to the
//! submitting client.
//!
//! Lifecycle of a transaction:
//!
//! 1. `Submit` — assign a [`TxnId`], start the server-side timeout, read all
//!    touched keys at the local replica.
//! 2. `ReadResp` — hand the read results to the client (`ReadsDone`), build
//!    one option per write, and propose them along the configured path
//!    (fast: to every replica; classic/2PC: to each key's master).
//! 3. `Vote*` — forward every vote as a `Progress` event (this is the raw
//!    signal PLANET's likelihood model feeds on), resolve keys as quorums
//!    form or become impossible, and decide the instant all keys resolve.
//! 4. Broadcast per-key `Decide` to the masters and emit `TxnDone`.
//!
//! Read-only transactions commit locally after step 2 — they never touch the
//! WAN, mirroring MDCC's local read-committed reads.
//!
//! # Compiled plans
//!
//! Next to the interpreted `Submit` path the coordinator runs a *compiled*
//! one: clients register a [`planet_plan::TxnProgram`] once (`RegisterPlan`),
//! the coordinator specializes it against its own `ClusterConfig` into a
//! [`CompiledPlan`], and every subsequent `SubmitPlan { plan, params }`
//! executes the precompiled shape — no key strings hashed (shard and master
//! routes were baked in at compile time), no `touched_keys()` dedup (the
//! slot array *is* the deduplicated key set), no per-submit `BTreeMap`s
//! (per-execution state lives in a pooled [`PlanExec`] slab slot whose
//! vectors retain their capacity across transactions). The two paths emit
//! bit-identical message sequences for equivalent inputs — that equivalence
//! is what the property tests and the model checker's digest-neutrality
//! check pin down.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use planet_plan::{CompiledPlan, KeyRoute, PlanError, PlanId, PlanParam, TxnProgram};
use planet_sim::{Actor, ActorId, Context, SimTime, SiteId};
use planet_storage::{Key, RecordOption, TxnId, WriteOp};

use crate::config::{ClusterConfig, Protocol};
use crate::messages::{KeyRead, Msg, Outcome, ProgressStage, ReadLevel, TxnSpec, TxnStats};

/// A set of sites packed into a 64-bit mask (`ClusterConfig::new` caps
/// clusters at 64 sites). Vote tallies used to be `Vec<SiteId>` pairs — two
/// heap allocations per written key per transaction; the mask makes vote
/// bookkeeping allocation-free and membership tests a single AND.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct SiteMask(u64);

impl SiteMask {
    fn contains(self, site: SiteId) -> bool {
        // `& 63` keeps the shift in range even for out-of-contract ids.
        self.0 & (1u64 << (site.0 & 63)) != 0
    }

    fn insert(&mut self, site: SiteId) {
        self.0 |= 1u64 << (site.0 & 63);
    }

    fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    fn is_empty(self) -> bool {
        self.0 == 0
    }

    fn clear(&mut self) {
        self.0 = 0;
    }

    /// Member sites in ascending id order.
    fn sites(self) -> impl Iterator<Item = SiteId> {
        (0u8..64)
            .filter(move |b| self.0 & (1u64 << b) != 0)
            .map(SiteId)
    }
}

/// Vote bookkeeping for one key. `Copy`: both tallies are site masks.
#[derive(Debug, Clone, Copy, Default)]
struct KeyVotes {
    accepts: SiteMask,
    rejects: SiteMask,
    resolved: Option<bool>,
    /// Current proposal round: 0 = first attempt; 1 = the fast path's
    /// master-routed fallback after a collision. Stale votes from earlier
    /// rounds are discarded by comparing against this.
    round: u8,
}

/// A transaction in flight at this coordinator (interpreted path).
struct TxnState {
    tag: u64,
    reply_to: ActorId,
    spec: TxnSpec,
    submitted_at: SimTime,
    proposals_sent_at: Option<SimTime>,
    // BTreeMaps: iteration order feeds message send order, which must be
    // deterministic for replays to be exact.
    options: BTreeMap<Key, RecordOption>,
    votes: BTreeMap<Key, KeyVotes>,
    votes_received: usize,
    rejections: usize,
    /// Read responses collected so far (one entry per responding replica).
    read_buffer: Vec<Vec<KeyRead>>,
    /// Responses still required per touched shard before reads complete
    /// (1 per shard for local reads, a classic quorum for quorum reads).
    reads_outstanding: BTreeMap<usize, usize>,
    /// True once reads completed and proposals went out (late `ReadResp`s
    /// are then ignored).
    reads_done: bool,
}

/// One compiled-plan execution: the flat mirror of [`TxnState`]. Every
/// collection is a plain vector indexed by the plan's slot/step numbers, and
/// the whole struct lives in a slab slot that is recycled (capacities
/// retained) when the transaction finishes — steady-state executions touch
/// the allocator only for the payloads they ship in messages.
struct PlanExec {
    plan: PlanId,
    tag: u64,
    reply_to: ActorId,
    params: Vec<PlanParam>,
    submitted_at: SimTime,
    proposals_sent_at: Option<SimTime>,
    /// Resolved key per plan slot (first-use order, exactly the order
    /// `TxnSpec::touched_keys` would produce).
    keys: Vec<Key>,
    /// Route per plan slot, parallel to `keys`.
    routes: Vec<KeyRoute>,
    /// Materialized write op per plan step (program order); turned into
    /// options once reads complete.
    ops: Vec<WriteOp>,
    /// One option per plan step, built at reads-done (empty before).
    options: Vec<RecordOption>,
    /// One tally per plan step, parallel to `options`.
    votes: Vec<KeyVotes>,
    /// Step indices in key-sorted order (the `Decide` broadcast order the
    /// interpreted path gets from its options `BTreeMap`); filled at
    /// reads-done from the plan's precomputed permutation when available.
    sorted_steps: Vec<u16>,
    votes_received: usize,
    rejections: usize,
    read_buffer: Vec<Vec<KeyRead>>,
    /// `(shard, responses still required)`, ascending by shard — the flat
    /// twin of `TxnState::reads_outstanding`.
    reads_outstanding: Vec<(u32, usize)>,
    reads_done: bool,
}

impl Default for PlanExec {
    fn default() -> Self {
        PlanExec {
            plan: 0,
            tag: 0,
            reply_to: ActorId(0),
            params: Vec::new(),
            submitted_at: SimTime::ZERO,
            proposals_sent_at: None,
            keys: Vec::new(),
            routes: Vec::new(),
            ops: Vec::new(),
            options: Vec::new(),
            votes: Vec::new(),
            sorted_steps: Vec::new(),
            votes_received: 0,
            rejections: 0,
            read_buffer: Vec::new(),
            reads_outstanding: Vec::new(),
            reads_done: false,
        }
    }
}

impl PlanExec {
    /// Reset for reuse, retaining every vector's capacity.
    fn clear(&mut self) {
        self.plan = 0;
        self.tag = 0;
        self.reply_to = ActorId(0);
        self.params.clear();
        self.submitted_at = SimTime::ZERO;
        self.proposals_sent_at = None;
        self.keys.clear();
        self.routes.clear();
        self.ops.clear();
        self.options.clear();
        self.votes.clear();
        self.sorted_steps.clear();
        self.votes_received = 0;
        self.rejections = 0;
        self.read_buffer.clear();
        self.reads_outstanding.clear();
        self.reads_done = false;
    }
}

/// Forwarding state for a decided transaction, kept until its original
/// timeout fires so that *late* votes still reach the client — the
/// likelihood model needs the slowest replicas' response times, which by
/// definition arrive after the quorum decided.
struct RecentTxn {
    tag: u64,
    reply_to: ActorId,
    proposals_sent_at: Option<SimTime>,
}

/// The coordinator actor. One per site; clients submit to their local
/// coordinator.
pub struct CoordinatorActor {
    config: ClusterConfig,
    /// Replica actor ids, shard-major: `replicas[shard * num_sites + site]`.
    /// Every key-carrying send resolves its destination through
    /// [`ClusterConfig::shard_of`] or a compiled route derived from it, so a
    /// key only ever talks to its shard.
    replicas: Vec<ActorId>,
    site: SiteId,
    next_seq: u64,
    inflight: HashMap<TxnId, TxnState>,
    recent: HashMap<TxnId, RecentTxn>,
    /// Registered plans, compiled against `config`. Excluded from
    /// `mck_digest` for the same reason `config` is: plans are registered
    /// before traffic and never mutate mid-run.
    plans: HashMap<PlanId, Arc<CompiledPlan>>,
    /// Slab of execution slots; `free_execs` holds recycled indices and
    /// `exec_of` maps an in-flight plan transaction to its slot.
    execs: Vec<PlanExec>,
    free_execs: Vec<u32>,
    exec_of: HashMap<TxnId, u32>,
    /// Recycled `TxnState::read_buffer` outer vectors (interpreted path).
    read_buffer_pool: Vec<Vec<Vec<KeyRead>>>,
    /// Scratch for the interpreted proposal round, reused across txns.
    proposal_scratch: Vec<(Key, RecordOption)>,
}

/// Cap on pooled read buffers: enough for any realistic in-flight window,
/// bounded so a burst doesn't pin memory forever.
const READ_BUFFER_POOL_MAX: usize = 256;

impl CoordinatorActor {
    /// Build a coordinator for `site` over the given replicas, laid out
    /// shard-major (`replicas[shard * num_sites + site]`; with one shard
    /// this is simply "indexed by site").
    pub fn new(config: ClusterConfig, replicas: Vec<ActorId>, site: SiteId) -> Self {
        assert_eq!(
            replicas.len(),
            config.num_sites * config.num_shards.max(1),
            "one replica per (site, shard)"
        );
        CoordinatorActor {
            config,
            replicas,
            site,
            next_seq: 0,
            inflight: HashMap::new(),
            recent: HashMap::new(),
            plans: HashMap::new(),
            execs: Vec::new(),
            free_execs: Vec::new(),
            exec_of: HashMap::new(),
            read_buffer_pool: Vec::new(),
            proposal_scratch: Vec::new(),
        }
    }

    /// Number of transactions currently in flight (for tests/diagnostics),
    /// counting both interpreted and compiled executions.
    pub fn inflight_count(&self) -> usize {
        self.inflight.len() + self.exec_of.len()
    }

    /// Compile and register a plan directly (the message-free twin of
    /// `RegisterPlan`, used by harnesses that own the actor — the model
    /// checker installs plans before exploration starts so registration
    /// itself adds no interleavings).
    pub fn install_plan(&mut self, plan: PlanId, program: TxnProgram) -> Result<(), PlanError> {
        let compiled = CompiledPlan::compile(program, &self.config)?;
        self.plans.insert(plan, Arc::new(compiled));
        Ok(())
    }

    /// True if `plan` is registered and submittable.
    pub fn has_plan(&self, plan: PlanId) -> bool {
        self.plans.contains_key(&plan)
    }

    /// Digest every piece of protocol-visible state into `h`, remapping
    /// site/actor ids through `map` (see [`crate::digest`]). Hash-map
    /// contents are visited in txn-id order so the digest is independent of
    /// insertion history. Compiled executions digest *as the interpreted
    /// state they mirror* — same spec rendering, same key-sorted option and
    /// vote order — so a compiled run that tracks an interpreted run
    /// message-for-message also tracks it fingerprint-for-fingerprint.
    pub fn mck_digest<H: std::hash::Hasher>(&self, map: &crate::digest::DigestMap, h: &mut H) {
        use std::hash::Hash;
        map.site(self.site).hash(h);
        self.next_seq.hash(h);

        enum Entry<'a> {
            Spec(&'a TxnState),
            Plan(&'a PlanExec),
        }
        let mut inflight: Vec<(TxnId, Entry<'_>)> = Vec::new();
        // check:allow(determinism): sorted by txn id before hashing
        for (txn, state) in &self.inflight {
            inflight.push((*txn, Entry::Spec(state)));
        }
        // check:allow(determinism): gathered into the sorted Vec below
        for (txn, &idx) in &self.exec_of {
            if let Some(exec) = self.execs.get(idx as usize) {
                inflight.push((*txn, Entry::Plan(exec)));
            }
        }
        inflight.sort_by_key(|(t, _)| *t);
        // check:allow(determinism): iterates the sorted Vec, not the maps
        for (txn, entry) in inflight {
            txn.hash(h);
            match entry {
                Entry::Spec(st) => {
                    st.tag.hash(h);
                    map.actor(st.reply_to).hash(h);
                    crate::digest::dbg_hash(&st.spec, h);
                    st.submitted_at.hash(h);
                    st.proposals_sent_at.hash(h);
                    for (key, option) in &st.options {
                        key.hash(h);
                        crate::digest::digest_option(option, h);
                    }
                    for (key, votes) in &st.votes {
                        key.hash(h);
                        Self::digest_votes(votes, map, h);
                    }
                    st.votes_received.hash(h);
                    st.rejections.hash(h);
                    crate::digest::dbg_hash(&st.read_buffer, h);
                    for (shard, need) in &st.reads_outstanding {
                        shard.hash(h);
                        need.hash(h);
                    }
                    st.reads_done.hash(h);
                }
                Entry::Plan(exec) => {
                    exec.tag.hash(h);
                    map.actor(exec.reply_to).hash(h);
                    // Render the spec the interpreted path would have
                    // carried for the same inputs and hash that, so the
                    // two paths' states are digest-equal.
                    let plan = self.plans.get(&exec.plan);
                    let spec = plan
                        .and_then(|p| p.instantiate(&exec.params).ok())
                        .map(|inst| TxnSpec {
                            reads: inst.reads,
                            writes: inst.writes,
                            read_level: if inst.quorum_reads {
                                ReadLevel::Quorum
                            } else {
                                ReadLevel::Local
                            },
                        })
                        .unwrap_or_default();
                    crate::digest::dbg_hash(&spec, h);
                    exec.submitted_at.hash(h);
                    exec.proposals_sent_at.hash(h);
                    if let Some(plan) = plan {
                        // Options, then votes, both in key-sorted step
                        // order — the interpreted BTreeMap iteration order.
                        for &si in &exec.sorted_steps {
                            let Some(step) = plan.steps.get(si as usize) else {
                                continue;
                            };
                            let (Some(key), Some(option)) = (
                                exec.keys.get(step.slot as usize),
                                exec.options.get(si as usize),
                            ) else {
                                continue;
                            };
                            key.hash(h);
                            crate::digest::digest_option(option, h);
                        }
                        for &si in &exec.sorted_steps {
                            let Some(step) = plan.steps.get(si as usize) else {
                                continue;
                            };
                            let (Some(key), Some(votes)) = (
                                exec.keys.get(step.slot as usize),
                                exec.votes.get(si as usize),
                            ) else {
                                continue;
                            };
                            key.hash(h);
                            Self::digest_votes(votes, map, h);
                        }
                    }
                    exec.votes_received.hash(h);
                    exec.rejections.hash(h);
                    crate::digest::dbg_hash(&exec.read_buffer, h);
                    for &(shard, need) in &exec.reads_outstanding {
                        (shard as usize).hash(h);
                        need.hash(h);
                    }
                    exec.reads_done.hash(h);
                }
            }
        }
        // check:allow(determinism): sorted by txn id before hashing
        let mut recent: Vec<(&TxnId, &RecentTxn)> = self.recent.iter().collect();
        recent.sort_by_key(|(t, _)| **t);
        // check:allow(determinism): iterates the sorted Vec, not the map
        for (txn, r) in recent {
            txn.hash(h);
            r.tag.hash(h);
            map.actor(r.reply_to).hash(h);
            r.proposals_sent_at.hash(h);
        }
    }

    /// Digest one key's tally. Masks iterate ascending by raw site id, but
    /// the digest must be stable under the checker's site remapping, so the
    /// mapped ids are re-sorted — exactly what the Vec-based tally digested.
    fn digest_votes<H: std::hash::Hasher>(
        votes: &KeyVotes,
        map: &crate::digest::DigestMap,
        h: &mut H,
    ) {
        use std::hash::Hash;
        let mut accepts: Vec<u8> = votes.accepts.sites().map(|s| map.site(s)).collect();
        accepts.sort_unstable();
        accepts.hash(h);
        let mut rejects: Vec<u8> = votes.rejects.sites().map(|s| map.site(s)).collect();
        rejects.sort_unstable();
        rejects.hash(h);
        votes.resolved.hash(h);
        votes.round.hash(h);
    }

    /// The replication group of `key`'s shard: the same-shard replica at
    /// every site, indexed by site.
    fn shard_replicas(&self, key: &Key) -> &[ActorId] {
        let n = self.config.num_sites;
        let shard = self.config.shard_of(key);
        // In bounds: the constructor asserts `replicas.len() == shards * n`
        // and `shard_of` ranges over `0..shards`.
        // check:allow(panic)
        &self.replicas[shard * n..(shard + 1) * n]
    }

    /// The replica mastering `key`: the master site's member of the key's
    /// shard group.
    fn master_replica_for(&self, key: &Key) -> ActorId {
        // In bounds: the group has `num_sites` members and `master_of`
        // ranges over `0..num_sites`.
        // check:allow(panic)
        self.shard_replicas(key)[self.config.master_of(key).0 as usize]
    }

    /// The replication group of a precompiled shard route: the compiled twin
    /// of [`Self::shard_replicas`] — the shard index comes from the plan's
    /// `KeyRoute` instead of hashing the key.
    fn route_replicas(&self, shard: u32) -> &[ActorId] {
        let n = self.config.num_sites;
        let shard = shard as usize;
        // In bounds: the constructor asserts `replicas.len() == shards * n`
        // and compiled routes come from `shard_of`, ranging over `0..shards`.
        // check:allow(panic)
        &self.replicas[shard * n..(shard + 1) * n]
    }

    /// The replica mastering a routed key: the compiled twin of
    /// [`Self::master_replica_for`].
    fn route_master(&self, route: KeyRoute) -> ActorId {
        // In bounds: the group has `num_sites` members and compiled masters
        // come from `master_of`, ranging over `0..num_sites`.
        // check:allow(panic)
        self.route_replicas(route.shard)[route.master as usize]
    }

    /// How many voters will ever speak for a key under the current protocol.
    fn voters_per_key(&self) -> usize {
        match self.config.protocol {
            Protocol::Fast | Protocol::Classic => self.config.num_sites,
            Protocol::TwoPc => 1,
        }
    }

    fn progress(
        &self,
        state: &TxnState,
        txn: TxnId,
        stage: ProgressStage,
        ctx: &mut Context<'_, Msg>,
    ) {
        ctx.send(
            state.reply_to,
            Msg::Progress {
                tag: state.tag,
                txn,
                stage,
            },
        );
    }

    fn handle_submit(
        &mut self,
        spec: TxnSpec,
        reply_to: ActorId,
        tag: u64,
        ctx: &mut Context<'_, Msg>,
    ) {
        let txn = TxnId::new(self.site.0, self.next_seq);
        self.next_seq += 1;
        // Partition the touched keys by shard: one ReadReq per shard group
        // (spec order preserved within a group), since each shard's replica
        // only holds its own keyspace slice. `for_each_touched` visits the
        // deduplicated keys by reference — no intermediate key vector.
        let mut groups: BTreeMap<usize, Vec<Key>> = BTreeMap::new();
        spec.for_each_touched(|key| {
            let shard = self.config.shard_of(key);
            groups.entry(shard).or_default().push(key.clone());
        });
        let mut state = TxnState {
            tag,
            reply_to,
            spec,
            submitted_at: ctx.now(),
            proposals_sent_at: None,
            options: BTreeMap::new(),
            votes: BTreeMap::new(),
            votes_received: 0,
            rejections: 0,
            read_buffer: self.read_buffer_pool.pop().unwrap_or_default(),
            reads_outstanding: BTreeMap::new(),
            reads_done: false,
        };
        let read_level = state.spec.read_level;
        let need = match read_level {
            ReadLevel::Local => 1,
            ReadLevel::Quorum => self.config.classic_quorum(),
        };
        for &shard in groups.keys() {
            state.reads_outstanding.insert(shard, need);
        }
        self.progress(&state, txn, ProgressStage::Started, ctx);
        let timeout = self.config.txn_timeout;
        self.inflight.insert(txn, state);
        ctx.schedule(timeout, Msg::TxnTimeout { txn });

        if groups.is_empty() {
            self.finish(txn, Outcome::Committed, ctx);
            return;
        }
        let n = self.config.num_sites;
        let site = self.site.0 as usize;
        for (shard, keys) in groups {
            match read_level {
                ReadLevel::Local => {
                    // This site's member of the key group's shard (shard_of
                    // routed: the group was keyed by `shard_of` above).
                    // In bounds: constructor-asserted shard-major layout.
                    // check:allow(panic)
                    ctx.send(self.replicas[shard * n + site], Msg::ReadReq { txn, keys });
                }
                ReadLevel::Quorum => {
                    // In bounds: constructor-asserted shard-major layout.
                    // check:allow(panic)
                    for &replica in &self.replicas[shard * n..(shard + 1) * n] {
                        ctx.send(
                            replica,
                            Msg::ReadReq {
                                txn,
                                keys: keys.clone(),
                            },
                        );
                    }
                }
            }
        }
    }

    /// Compile and register a plan in response to a `RegisterPlan` message.
    /// Success is acknowledged with `PlanReady`; a program that fails to
    /// validate gets no reply (counted in `plan.register_rejected`).
    fn handle_register_plan(
        &mut self,
        plan: PlanId,
        program: TxnProgram,
        reply_to: ActorId,
        ctx: &mut Context<'_, Msg>,
    ) {
        match self.install_plan(plan, program) {
            Ok(()) => ctx.send(reply_to, Msg::PlanReady { plan }),
            Err(_) => {
                ctx.metrics().counter("plan.register_rejected").inc();
            }
        }
    }

    /// Reject a plan submission that cannot start (unknown plan, bad
    /// parameters): report `Aborted` immediately so closed-loop clients make
    /// progress instead of waiting out the server-side timeout.
    fn reject_submission(
        &mut self,
        reply_to: ActorId,
        tag: u64,
        why: &str,
        ctx: &mut Context<'_, Msg>,
    ) {
        ctx.metrics().counter(&format!("plan.{why}")).inc();
        let txn = TxnId::new(self.site.0, self.next_seq);
        self.next_seq += 1;
        let now = ctx.now();
        ctx.send(
            reply_to,
            Msg::TxnDone {
                tag,
                txn,
                outcome: Outcome::Aborted,
                stats: TxnStats {
                    submitted_at: now,
                    decided_at: now,
                    proposals_sent_at: SimTime::ZERO,
                    write_keys: 0,
                    votes_received: 0,
                    rejections: 0,
                },
            },
        );
    }

    /// The compiled submit path: resolve the plan's key slots (clones of
    /// interned keys plus precomputed routes — no hashing), materialize the
    /// write ops straight from the params, and issue the shard-grouped read
    /// round. Emits exactly the message sequence `handle_submit` would for
    /// the instantiated equivalent.
    fn handle_submit_plan(
        &mut self,
        plan_id: PlanId,
        params: Vec<PlanParam>,
        reply_to: ActorId,
        tag: u64,
        ctx: &mut Context<'_, Msg>,
    ) {
        let Some(plan) = self.plans.get(&plan_id).cloned() else {
            self.reject_submission(reply_to, tag, "unknown", ctx);
            return;
        };
        let idx = match self.free_execs.pop() {
            Some(i) => i as usize,
            None => {
                self.execs.push(PlanExec::default());
                self.execs.len() - 1
            }
        };
        // In bounds: idx is from the free list or the push above.
        // check:allow(panic)
        let exec = &mut self.execs[idx];
        exec.clear();
        exec.plan = plan_id;
        exec.tag = tag;
        exec.reply_to = reply_to;
        exec.params = params;
        exec.submitted_at = ctx.now();
        if let Err(err) =
            plan.resolve_slots(&exec.params, &self.config, &mut exec.keys, &mut exec.routes)
        {
            let params = std::mem::take(&mut exec.params);
            exec.clear();
            self.free_execs.push(idx as u32);
            if err == PlanError::AliasedKeys {
                // Two references resolved to the same key at runtime: the
                // compiled one-slot-per-key layout no longer matches, so run
                // this execution through the interpreted path instead.
                if let Ok(inst) = plan.instantiate(&params) {
                    ctx.metrics().counter("plan.fallback_interpreted").inc();
                    let spec = TxnSpec {
                        reads: inst.reads,
                        writes: inst.writes,
                        read_level: if inst.quorum_reads {
                            ReadLevel::Quorum
                        } else {
                            ReadLevel::Local
                        },
                    };
                    self.handle_submit(spec, reply_to, tag, ctx);
                    return;
                }
            }
            self.reject_submission(reply_to, tag, "bad_params", ctx);
            return;
        }
        // Devirtualized write ops: constant steps clone a prebuilt op,
        // parameterized steps read straight from the argument slice.
        for step in &plan.steps {
            match step.op.materialize(&exec.params) {
                Ok(op) => exec.ops.push(op),
                Err(_) => {
                    exec.clear();
                    self.free_execs.push(idx as u32);
                    self.reject_submission(reply_to, tag, "bad_params", ctx);
                    return;
                }
            }
        }
        // One read round per touched shard group (ascending shard order,
        // like the interpreted path's BTreeMap), a classic quorum each for
        // quorum-read plans.
        let need = if plan.quorum_reads {
            self.config.classic_quorum()
        } else {
            1
        };
        let PlanExec {
            ref routes,
            ref mut reads_outstanding,
            ..
        } = *exec;
        for route in routes {
            match reads_outstanding.binary_search_by_key(&route.shard, |e| e.0) {
                Ok(_) => {}
                Err(pos) => reads_outstanding.insert(pos, (route.shard, need)),
            }
        }
        let txn = TxnId::new(self.site.0, self.next_seq);
        self.next_seq += 1;
        ctx.send(
            exec.reply_to,
            Msg::Progress {
                tag: exec.tag,
                txn,
                stage: ProgressStage::Started,
            },
        );
        let no_keys = exec.routes.is_empty();
        self.exec_of.insert(txn, idx as u32);
        ctx.schedule(self.config.txn_timeout, Msg::TxnTimeout { txn });
        if no_keys {
            self.finish_plan(txn, Outcome::Committed, ctx);
            return;
        }
        // In bounds: just filled above.
        // check:allow(panic)
        let exec = &self.execs[idx];
        let site = self.site.0 as usize;
        for &(shard, _) in &exec.reads_outstanding {
            // This shard's keys in slot order — the order `touched_keys`
            // would have produced within the group.
            let keys: Vec<Key> = exec
                .keys
                .iter()
                .zip(&exec.routes)
                .filter(|&(_, r)| r.shard == shard)
                .map(|(k, _)| k.clone())
                .collect();
            if plan.quorum_reads {
                for &replica in self.route_replicas(shard) {
                    ctx.send(
                        replica,
                        Msg::ReadReq {
                            txn,
                            keys: keys.clone(),
                        },
                    );
                }
            } else {
                // In bounds: `site < num_sites` by construction.
                // check:allow(panic)
                ctx.send(self.route_replicas(shard)[site], Msg::ReadReq { txn, keys });
            }
        }
    }

    /// Merge quorum read responses: per key, keep the freshest committed
    /// version; report the most pessimistic (largest) pending count as the
    /// contention hint.
    fn merge_reads(buffer: &[Vec<KeyRead>]) -> Vec<KeyRead> {
        let mut merged: BTreeMap<Key, KeyRead> = BTreeMap::new();
        for resp in buffer {
            for read in resp {
                merged
                    .entry(read.key.clone())
                    .and_modify(|best| {
                        if read.version > best.version {
                            best.version = read.version;
                            best.value = read.value.clone();
                        }
                        best.pending = best.pending.max(read.pending);
                    })
                    .or_insert_with(|| read.clone());
            }
        }
        merged.into_values().collect()
    }

    fn handle_read_resp(&mut self, txn: TxnId, results: Vec<KeyRead>, ctx: &mut Context<'_, Msg>) {
        // A response covers exactly one shard group (ReadReqs were
        // partitioned by `shard_of`), so its first key identifies the group.
        let Some(shard) = results.first().map(|r| self.config.shard_of(&r.key)) else {
            return;
        };
        // Phase 1: buffer the response; bail until every group's quorum is
        // satisfied.
        {
            let Some(state) = self.inflight.get_mut(&txn) else {
                return;
            };
            if state.reads_done {
                return; // late response from a quorum read already satisfied
            }
            let Some(remaining) = state.reads_outstanding.get_mut(&shard) else {
                return; // this shard group is already satisfied
            };
            state.read_buffer.push(results);
            *remaining -= 1;
            if *remaining == 0 {
                state.reads_outstanding.remove(&shard);
            }
            if !state.reads_outstanding.is_empty() {
                return; // keep waiting for the remaining groups / quorums
            }
        }
        // Phase 2: reads complete — merge, build the proposal round into the
        // reusable scratch vector, then send.
        let mut proposals = std::mem::take(&mut self.proposal_scratch);
        proposals.clear();
        let (results, writes_empty, tag, reply_to) = {
            let Some(state) = self.inflight.get_mut(&txn) else {
                self.proposal_scratch = proposals;
                return;
            };
            // Single local response: pass it through in spec order. Anything
            // buffered from several replicas or shards merges to key order.
            let results = match (state.spec.read_level, state.read_buffer.len()) {
                (ReadLevel::Local, 1) => state.read_buffer.pop().unwrap_or_default(),
                _ => Self::merge_reads(&state.read_buffer),
            };
            state.reads_done = true;
            // Borrow the writes out of the spec (restored below) so options
            // build without cloning the write list.
            let writes = std::mem::take(&mut state.spec.writes);
            let writes_empty = writes.is_empty();
            if !writes_empty {
                state.proposals_sent_at = Some(ctx.now());
                for (key, op) in &writes {
                    // Specs are small: a linear scan beats building a
                    // version map per transaction.
                    let read_version = results
                        .iter()
                        .find(|r| r.key == *key)
                        .map_or(0, |r| r.version);
                    let option = RecordOption::new(txn, read_version, op.clone());
                    state.options.insert(key.clone(), option.clone());
                    state.votes.insert(key.clone(), KeyVotes::default());
                    proposals.push((key.clone(), option));
                }
            }
            state.spec.writes = writes;
            (results, writes_empty, state.tag, state.reply_to)
        };
        if self.config.trace.is_on() {
            for r in &results {
                self.config.trace.emit(crate::trace::TraceEvent::Read {
                    txn,
                    key: r.key.clone(),
                    version: r.version,
                    site: self.site,
                    shard: self.config.shard_of(&r.key),
                    at: ctx.now(),
                });
            }
        }
        ctx.send(
            reply_to,
            Msg::Progress {
                tag,
                txn,
                stage: ProgressStage::ReadsDone { reads: results },
            },
        );
        if writes_empty {
            self.proposal_scratch = proposals;
            self.finish(txn, Outcome::Committed, ctx);
            return;
        }
        let me = ctx.self_id();
        for (key, option) in proposals.drain(..) {
            match self.config.protocol {
                Protocol::Fast => {
                    for &replica in self.shard_replicas(&key) {
                        ctx.send(
                            replica,
                            Msg::FastPropose {
                                txn,
                                key: key.clone(),
                                option: option.clone(),
                                round: 0,
                            },
                        );
                    }
                }
                Protocol::Classic | Protocol::TwoPc => {
                    let master = self.master_replica_for(&key);
                    ctx.send(
                        master,
                        Msg::Propose {
                            txn,
                            key,
                            option,
                            coordinator: me,
                            round: 0,
                        },
                    );
                }
            }
        }
        self.proposal_scratch = proposals;
    }

    /// The compiled read-completion path: slot lookups replace key hashing,
    /// options materialize from the prebuilt ops, and the decide order comes
    /// from the plan's precomputed permutation.
    fn plan_read_resp(&mut self, txn: TxnId, results: Vec<KeyRead>, ctx: &mut Context<'_, Msg>) {
        let Some(&idx) = self.exec_of.get(&txn) else {
            return;
        };
        let idx = idx as usize;
        let Some(plan) = self
            .execs
            .get(idx)
            .and_then(|e| self.plans.get(&e.plan))
            .cloned()
        else {
            return;
        };
        let (results, tag, reply_to, steps_empty) = {
            // In bounds: `exec_of` only holds live slab indices.
            // check:allow(panic)
            let exec = &mut self.execs[idx];
            if exec.reads_done {
                return; // late response from a quorum read already satisfied
            }
            let Some(first) = results.first() else {
                return;
            };
            // The response covers one shard group; its first key identifies
            // the group — found by slot scan, not by re-hashing the key.
            let Some(slot) = exec.keys.iter().position(|k| *k == first.key) else {
                return;
            };
            // In bounds: `routes` is parallel to `keys`.
            // check:allow(panic)
            let shard = exec.routes[slot].shard;
            let Some(pos) = exec.reads_outstanding.iter().position(|e| e.0 == shard) else {
                return; // this shard group is already satisfied
            };
            exec.read_buffer.push(results);
            // In bounds: `pos` came from `position` just above.
            // check:allow(panic)
            let group = &mut exec.reads_outstanding[pos];
            group.1 -= 1;
            if group.1 == 0 {
                exec.reads_outstanding.remove(pos);
            }
            if !exec.reads_outstanding.is_empty() {
                return; // keep waiting for the remaining groups / quorums
            }
            let results = if !plan.quorum_reads && exec.read_buffer.len() == 1 {
                exec.read_buffer.pop().unwrap_or_default()
            } else {
                Self::merge_reads(&exec.read_buffer)
            };
            exec.reads_done = true;
            if !plan.steps.is_empty() {
                exec.proposals_sent_at = Some(ctx.now());
            }
            let PlanExec {
                ref keys,
                ref ops,
                ref mut options,
                ref mut votes,
                ref mut sorted_steps,
                ..
            } = *exec;
            for (step, op) in plan.steps.iter().zip(ops) {
                // In bounds: `resolve_slots` filled `keys` 1:1 with the
                // plan's slots, which `step.slot` indexes.
                // check:allow(panic)
                let key = &keys[step.slot as usize];
                let version = results
                    .iter()
                    .find(|r| r.key == *key)
                    .map_or(0, |r| r.version);
                options.push(RecordOption::new(txn, version, op.clone()));
                votes.push(KeyVotes::default());
            }
            match &plan.sorted_steps {
                Some(order) => sorted_steps.extend_from_slice(order),
                None => {
                    // Some written key was parameter- or template-derived:
                    // fix the decide order now that the keys are known.
                    sorted_steps.extend(0..plan.steps.len() as u16);
                    // In bounds: step indices index `plan.steps`, slots
                    // index `keys` (as above).
                    let slot_key = |s: u16| {
                        // check:allow(panic)
                        &keys[plan.steps[s as usize].slot as usize]
                    };
                    sorted_steps.sort_by(|&a, &b| slot_key(a).cmp(slot_key(b)));
                }
            }
            (results, exec.tag, exec.reply_to, plan.steps.is_empty())
        };
        if self.config.trace.is_on() {
            // Trace-only (off on the hot path): hashing here keeps the
            // emitted shard ids identical to the interpreted path's.
            for r in &results {
                self.config.trace.emit(crate::trace::TraceEvent::Read {
                    txn,
                    key: r.key.clone(),
                    version: r.version,
                    site: self.site,
                    shard: self.config.shard_of(&r.key),
                    at: ctx.now(),
                });
            }
        }
        ctx.send(
            reply_to,
            Msg::Progress {
                tag,
                txn,
                stage: ProgressStage::ReadsDone { reads: results },
            },
        );
        if steps_empty {
            self.finish_plan(txn, Outcome::Committed, ctx);
            return;
        }
        // In bounds: checked at entry.
        // check:allow(panic)
        let exec = &self.execs[idx];
        let me = ctx.self_id();
        for (i, step) in plan.steps.iter().enumerate() {
            let slot = step.slot as usize;
            // In bounds: slots resolved 1:1 into keys/routes; options are
            // parallel to steps (built above).
            // check:allow(panic)
            let key = exec.keys[slot].clone();
            // check:allow(panic)
            let option = exec.options[i].clone();
            match self.config.protocol {
                Protocol::Fast => {
                    // check:allow(panic)
                    for &replica in self.route_replicas(exec.routes[slot].shard) {
                        ctx.send(
                            replica,
                            Msg::FastPropose {
                                txn,
                                key: key.clone(),
                                option: option.clone(),
                                round: 0,
                            },
                        );
                    }
                }
                Protocol::Classic | Protocol::TwoPc => {
                    // check:allow(panic)
                    let master = self.route_master(exec.routes[slot]);
                    ctx.send(
                        master,
                        Msg::Propose {
                            txn,
                            key,
                            option,
                            coordinator: me,
                            round: 0,
                        },
                    );
                }
            }
        }
    }

    #[allow(clippy::too_many_arguments)] // mirrors the wire message's fields
    fn handle_vote(
        &mut self,
        txn: TxnId,
        key: Key,
        site: SiteId,
        accept: bool,
        reason: Option<planet_storage::RejectReason>,
        round: u8,
        ctx: &mut Context<'_, Msg>,
    ) {
        let voters = self.voters_per_key();
        let Some(state) = self.inflight.get_mut(&txn) else {
            // Late vote for a decided transaction: still forward it so the
            // client's latency model learns the slow paths.
            if let Some(recent) = self.recent.get(&txn) {
                let elapsed_us = recent
                    .proposals_sent_at
                    .map_or(0, |at| ctx.now().since(at).as_micros());
                ctx.send(
                    recent.reply_to,
                    Msg::Progress {
                        tag: recent.tag,
                        txn,
                        stage: ProgressStage::Vote {
                            key,
                            site,
                            accept,
                            reason,
                            elapsed_us,
                        },
                    },
                );
            }
            return;
        };
        let elapsed_us = state
            .proposals_sent_at
            .map_or(0, |at| ctx.now().since(at).as_micros());
        let Some(kv) = state.votes.get_mut(&key) else {
            return;
        };
        // Stale votes from a superseded round are meaningless for the tally.
        if round != kv.round {
            return;
        }
        // Drop duplicate votes from the same site (possible under retries).
        if kv.accepts.contains(site) || kv.rejects.contains(site) {
            return;
        }
        if accept {
            kv.accepts.insert(site);
        } else {
            kv.rejects.insert(site);
            state.rejections += 1;
        }
        state.votes_received += 1;

        // Master-routed rounds — classic, 2PC, or a fast-path fallback
        // round — hear rejects only from the master, whose rejection is
        // definitive (no replication happened). Quorum size also depends on
        // the round: the fallback round needs only a classic majority.
        let master_routed = !matches!(self.config.protocol, Protocol::Fast) || kv.round > 0;
        let quorum = if kv.round > 0 {
            self.config.classic_quorum()
        } else {
            self.config.required_quorum()
        };
        let mut resolved_now = None;
        let mut fallback_now = false;
        if kv.resolved.is_none() {
            if kv.accepts.len() >= quorum {
                kv.resolved = Some(true);
                resolved_now = Some(true);
            } else if (master_routed && !kv.rejects.is_empty())
                || voters - kv.rejects.len() < quorum
            {
                if self.config.protocol == Protocol::Fast
                    && self.config.fast_fallback
                    && kv.round == 0
                    && kv.rejects.len() < self.config.classic_quorum()
                {
                    // Collision, not a definitive loss: fewer than a
                    // majority rejected, so the option may still win a
                    // classic round through the master. Reset the tally and
                    // retry once.
                    kv.round = 1;
                    kv.accepts.clear();
                    kv.rejects.clear();
                    fallback_now = true;
                } else {
                    kv.resolved = Some(false);
                    resolved_now = Some(false);
                }
            }
        }
        if fallback_now {
            // The votes entry implies the option was recorded with it; if it
            // somehow is not there, skip the retry rather than crash the
            // coordinator — the txn then resolves through the timeout path.
            if let Some(option) = state.options.get(&key).cloned() {
                let master = self.master_replica_for(&key);
                let me = ctx.self_id();
                ctx.send(
                    master,
                    Msg::Propose {
                        txn,
                        key: key.clone(),
                        option,
                        coordinator: me,
                        round: 1,
                    },
                );
                ctx.metrics().counter("txn.fast_fallbacks").inc();
                let Some(state) = self.inflight.get(&txn) else {
                    return;
                };
                self.progress(
                    state,
                    txn,
                    ProgressStage::KeyFallback { key: key.clone() },
                    ctx,
                );
            }
        }

        let Some(state) = self.inflight.get(&txn) else {
            return;
        };
        self.progress(
            state,
            txn,
            ProgressStage::Vote {
                key: key.clone(),
                site,
                accept,
                reason,
                elapsed_us,
            },
            ctx,
        );
        if let Some(ok) = resolved_now {
            self.progress(
                state,
                txn,
                ProgressStage::KeyResolved { key, accepted: ok },
                ctx,
            );
        }

        // Decide as soon as every key has resolved, or any key failed.
        let Some(state) = self.inflight.get(&txn) else {
            return;
        };
        let any_failed = state.votes.values().any(|kv| kv.resolved == Some(false));
        let all_ok = state.votes.values().all(|kv| kv.resolved == Some(true));
        if any_failed {
            self.finish(txn, Outcome::Aborted, ctx);
        } else if all_ok {
            self.finish(txn, Outcome::Committed, ctx);
        }
    }

    /// The compiled vote path: identical tally/quorum/fallback logic to
    /// [`Self::handle_vote`], over slot-indexed vectors.
    #[allow(clippy::too_many_arguments)] // mirrors the wire message's fields
    fn plan_vote(
        &mut self,
        txn: TxnId,
        key: Key,
        site: SiteId,
        accept: bool,
        reason: Option<planet_storage::RejectReason>,
        round: u8,
        ctx: &mut Context<'_, Msg>,
    ) {
        let Some(&idx) = self.exec_of.get(&txn) else {
            return;
        };
        let idx = idx as usize;
        let Some(plan) = self
            .execs
            .get(idx)
            .and_then(|e| self.plans.get(&e.plan))
            .cloned()
        else {
            return;
        };
        let voters = self.voters_per_key();
        let classic = self.config.classic_quorum();
        let round0_quorum = self.config.required_quorum();
        let protocol = self.config.protocol;
        let fast_fallback = self.config.fast_fallback;
        let (tag, reply_to, elapsed_us, resolved_now, fallback) = {
            // In bounds: `exec_of` only holds live slab indices.
            // check:allow(panic)
            let exec = &mut self.execs[idx];
            let elapsed_us = exec
                .proposals_sent_at
                .map_or(0, |at| ctx.now().since(at).as_micros());
            let Some(slot) = exec.keys.iter().position(|k| *k == key) else {
                return;
            };
            // A vote for a read-only slot has no tally — ignore it, exactly
            // as the interpreted path ignores keys absent from its votes map.
            let Some(step) = plan.slots.get(slot).and_then(|s| s.step) else {
                return;
            };
            let Some(kv) = exec.votes.get_mut(step as usize) else {
                return;
            };
            if round != kv.round {
                return;
            }
            if kv.accepts.contains(site) || kv.rejects.contains(site) {
                return;
            }
            if accept {
                kv.accepts.insert(site);
            } else {
                kv.rejects.insert(site);
                exec.rejections += 1;
            }
            exec.votes_received += 1;
            // In bounds: `get_mut` above proved `step` indexes `votes`.
            // check:allow(panic)
            let kv = &mut exec.votes[step as usize];
            let master_routed = !matches!(protocol, Protocol::Fast) || kv.round > 0;
            let quorum = if kv.round > 0 { classic } else { round0_quorum };
            let mut resolved_now = None;
            let mut fallback_now = false;
            if kv.resolved.is_none() {
                if kv.accepts.len() >= quorum {
                    kv.resolved = Some(true);
                    resolved_now = Some(true);
                } else if (master_routed && !kv.rejects.is_empty())
                    || voters - kv.rejects.len() < quorum
                {
                    if protocol == Protocol::Fast
                        && fast_fallback
                        && kv.round == 0
                        && kv.rejects.len() < classic
                    {
                        kv.round = 1;
                        kv.accepts.clear();
                        kv.rejects.clear();
                        fallback_now = true;
                    } else {
                        kv.resolved = Some(false);
                        resolved_now = Some(false);
                    }
                }
            }
            let fallback = if fallback_now {
                match (exec.options.get(step as usize), exec.routes.get(slot)) {
                    (Some(option), Some(route)) => Some((option.clone(), *route)),
                    _ => None,
                }
            } else {
                None
            };
            (exec.tag, exec.reply_to, elapsed_us, resolved_now, fallback)
        };
        if let Some((option, route)) = fallback {
            let master = self.route_master(route);
            let me = ctx.self_id();
            ctx.send(
                master,
                Msg::Propose {
                    txn,
                    key: key.clone(),
                    option,
                    coordinator: me,
                    round: 1,
                },
            );
            ctx.metrics().counter("txn.fast_fallbacks").inc();
            ctx.send(
                reply_to,
                Msg::Progress {
                    tag,
                    txn,
                    stage: ProgressStage::KeyFallback { key: key.clone() },
                },
            );
        }
        ctx.send(
            reply_to,
            Msg::Progress {
                tag,
                txn,
                stage: ProgressStage::Vote {
                    key: key.clone(),
                    site,
                    accept,
                    reason,
                    elapsed_us,
                },
            },
        );
        if let Some(ok) = resolved_now {
            ctx.send(
                reply_to,
                Msg::Progress {
                    tag,
                    txn,
                    stage: ProgressStage::KeyResolved { key, accepted: ok },
                },
            );
        }
        // In bounds: checked at entry.
        // check:allow(panic)
        let exec = &self.execs[idx];
        let any_failed = exec.votes.iter().any(|kv| kv.resolved == Some(false));
        let all_ok = exec.votes.iter().all(|kv| kv.resolved == Some(true));
        if any_failed {
            self.finish_plan(txn, Outcome::Aborted, ctx);
        } else if all_ok {
            self.finish_plan(txn, Outcome::Committed, ctx);
        }
    }

    fn handle_timeout(&mut self, txn: TxnId, ctx: &mut Context<'_, Msg>) {
        if self.inflight.contains_key(&txn) {
            self.finish(txn, Outcome::TimedOut, ctx);
            // `finish` just parked the txn in `recent` to keep the late-vote
            // forwarding window open, but the timer that expires that window
            // was consumed by this very firing — re-arm it, or the entry
            // leaks forever.
            ctx.schedule(self.config.txn_timeout, Msg::TxnTimeout { txn });
        } else if self.exec_of.contains_key(&txn) {
            self.finish_plan(txn, Outcome::TimedOut, ctx);
            ctx.schedule(self.config.txn_timeout, Msg::TxnTimeout { txn });
        } else {
            // The timeout doubles as the expiry of the late-vote forwarding
            // window.
            self.recent.remove(&txn);
        }
    }

    /// Outcome counters and commit-latency histograms, shared by the
    /// interpreted and compiled finish paths.
    /// Record the per-transaction latency-attribution span this actor owns:
    /// `span.quorum_wait_us`, proposal dispatch to decision — the slice of
    /// the commit path spent blocked on replica votes. (The other spans —
    /// queueing, WAL drive, network — are recorded by the runtime and the
    /// client, which are the actors that can observe them.)
    fn span_metrics(&self, stats: &TxnStats, ctx: &mut Context<'_, Msg>) {
        if stats.proposals_sent_at != SimTime::ZERO {
            ctx.metrics()
                .histogram("span.quorum_wait_us")
                .record(stats.quorum_wait_us());
        }
    }

    fn outcome_metrics(
        &self,
        outcome: Outcome,
        any_writes: bool,
        latency_us: u64,
        ctx: &mut Context<'_, Msg>,
    ) {
        let proto = self.config.protocol.name();
        match outcome {
            Outcome::Committed => {
                ctx.metrics()
                    .counter(&format!("txn.committed.{proto}"))
                    .inc();
                if any_writes {
                    ctx.metrics()
                        .histogram(&format!("txn.commit_latency.{proto}"))
                        .record(latency_us);
                    let site = self.site;
                    ctx.metrics()
                        .histogram(&format!("txn.commit_latency.{proto}.site{}", site.0))
                        .record(latency_us);
                }
            }
            Outcome::Aborted => {
                ctx.metrics().counter(&format!("txn.aborted.{proto}")).inc();
            }
            Outcome::TimedOut => {
                ctx.metrics()
                    .counter(&format!("txn.timedout.{proto}"))
                    .inc();
            }
        }
    }

    /// Broadcast per-key decisions, emit the terminal event, drop state.
    fn finish(&mut self, txn: TxnId, outcome: Outcome, ctx: &mut Context<'_, Msg>) {
        let Some(state) = self.inflight.remove(&txn) else {
            return;
        };
        let commit = outcome.is_commit();
        for (key, option) in &state.options {
            let master = self.master_replica_for(key);
            ctx.send(
                master,
                Msg::Decide {
                    txn,
                    key: key.clone(),
                    option: option.clone(),
                    commit,
                },
            );
        }
        let stats = TxnStats {
            submitted_at: state.submitted_at,
            decided_at: ctx.now(),
            proposals_sent_at: state.proposals_sent_at.unwrap_or(SimTime::ZERO),
            write_keys: state.options.len(),
            votes_received: state.votes_received,
            rejections: state.rejections,
        };
        self.recent.insert(
            txn,
            RecentTxn {
                tag: state.tag,
                reply_to: state.reply_to,
                proposals_sent_at: state.proposals_sent_at,
            },
        );
        let latency = stats.decided_at.since(stats.submitted_at).as_micros();
        self.span_metrics(&stats, ctx);
        self.outcome_metrics(outcome, !state.options.is_empty(), latency, ctx);
        if self.config.trace.is_on() {
            self.config.trace.emit(crate::trace::TraceEvent::Finish {
                txn,
                outcome,
                at: ctx.now(),
            });
        }
        ctx.send(
            state.reply_to,
            Msg::TxnDone {
                tag: state.tag,
                txn,
                outcome,
                stats,
            },
        );
        // Recycle the read buffer's outer vector.
        let mut buf = state.read_buffer;
        if self.read_buffer_pool.len() < READ_BUFFER_POOL_MAX {
            buf.clear();
            self.read_buffer_pool.push(buf);
        }
    }

    /// The compiled finish path: decisions broadcast in precomputed
    /// key-sorted order, then the execution slot returns to the slab.
    fn finish_plan(&mut self, txn: TxnId, outcome: Outcome, ctx: &mut Context<'_, Msg>) {
        let Some(idx) = self.exec_of.remove(&txn) else {
            return;
        };
        let idx = idx as usize;
        let commit = outcome.is_commit();
        let plan = self
            .execs
            .get(idx)
            .and_then(|e| self.plans.get(&e.plan))
            .cloned();
        // In bounds: `exec_of` only holds live slab indices.
        // check:allow(panic)
        let exec = &self.execs[idx];
        if let Some(plan) = &plan {
            for &si in &exec.sorted_steps {
                let si = si as usize;
                // In bounds: `sorted_steps` indexes `plan.steps`; slots
                // resolved 1:1 into keys/routes; options parallel to steps.
                // check:allow(panic)
                let slot = plan.steps[si].slot as usize;
                // check:allow(panic)
                let master = self.route_master(exec.routes[slot]);
                ctx.send(
                    master,
                    Msg::Decide {
                        txn,
                        // check:allow(panic)
                        key: exec.keys[slot].clone(),
                        // check:allow(panic)
                        option: exec.options[si].clone(),
                        commit,
                    },
                );
            }
        }
        let stats = TxnStats {
            submitted_at: exec.submitted_at,
            decided_at: ctx.now(),
            proposals_sent_at: exec.proposals_sent_at.unwrap_or(SimTime::ZERO),
            write_keys: exec.options.len(),
            votes_received: exec.votes_received,
            rejections: exec.rejections,
        };
        let tag = exec.tag;
        let reply_to = exec.reply_to;
        let proposals_sent_at = exec.proposals_sent_at;
        let any_writes = !exec.options.is_empty();
        self.recent.insert(
            txn,
            RecentTxn {
                tag,
                reply_to,
                proposals_sent_at,
            },
        );
        let latency = stats.decided_at.since(stats.submitted_at).as_micros();
        self.span_metrics(&stats, ctx);
        self.outcome_metrics(outcome, any_writes, latency, ctx);
        if self.config.trace.is_on() {
            self.config.trace.emit(crate::trace::TraceEvent::Finish {
                txn,
                outcome,
                at: ctx.now(),
            });
        }
        ctx.send(
            reply_to,
            Msg::TxnDone {
                tag,
                txn,
                outcome,
                stats,
            },
        );
        // Return the slot to the slab, capacities intact.
        // check:allow(panic)
        let exec = &mut self.execs[idx];
        exec.clear();
        self.free_execs.push(idx as u32);
    }
}

impl Actor<Msg> for CoordinatorActor {
    fn on_message(&mut self, _from: ActorId, msg: Msg, ctx: &mut Context<'_, Msg>) {
        match msg {
            Msg::Submit {
                spec,
                reply_to,
                tag,
            } => self.handle_submit(spec, reply_to, tag, ctx),
            Msg::RegisterPlan {
                plan,
                program,
                reply_to,
            } => self.handle_register_plan(plan, program, reply_to, ctx),
            Msg::SubmitPlan {
                plan,
                params,
                reply_to,
                tag,
            } => self.handle_submit_plan(plan, params, reply_to, tag, ctx),
            Msg::ReadResp { txn, results } => {
                if self.exec_of.contains_key(&txn) {
                    self.plan_read_resp(txn, results, ctx);
                } else {
                    self.handle_read_resp(txn, results, ctx);
                }
            }
            Msg::Vote {
                txn,
                key,
                site,
                accept,
                reason,
                round,
            } => {
                if self.exec_of.contains_key(&txn) {
                    self.plan_vote(txn, key, site, accept, reason, round, ctx);
                } else {
                    self.handle_vote(txn, key, site, accept, reason, round, ctx);
                }
            }
            Msg::TxnTimeout { txn } => self.handle_timeout(txn, ctx),
            other => {
                debug_assert!(false, "coordinator received unexpected message: {other:?}");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use planet_plan::{KeyRef, OpTemplate};

    #[test]
    fn site_mask_basics() {
        let mut m = SiteMask::default();
        assert!(m.is_empty());
        m.insert(SiteId(0));
        m.insert(SiteId(5));
        m.insert(SiteId(5)); // idempotent
        assert_eq!(m.len(), 2);
        assert!(m.contains(SiteId(0)));
        assert!(m.contains(SiteId(5)));
        assert!(!m.contains(SiteId(1)));
        let sites: Vec<u8> = m.sites().map(|s| s.0).collect();
        assert_eq!(sites, vec![0, 5]);
        m.clear();
        assert!(m.is_empty());
        assert!(!m.contains(SiteId(5)));
    }

    #[test]
    fn install_plan_compiles_against_the_cluster_config() {
        let config = ClusterConfig::new(3, Protocol::Fast);
        let replicas = (0..3).map(ActorId).collect();
        let mut coord = CoordinatorActor::new(config, replicas, SiteId(0));
        let mut prog = TxnProgram::new("bump");
        let k = prog.intern(Key::new("x"));
        let prog = prog.write(KeyRef::Fixed(k), OpTemplate::of(&WriteOp::add(1)));
        coord.install_plan(7, prog).expect("valid program installs");
        assert!(coord.has_plan(7));
        assert!(!coord.has_plan(8));

        // A program referencing a table entry that does not exist must be
        // rejected at registration, not at execution.
        let bad = TxnProgram::new("bad").read(KeyRef::Fixed(42));
        assert!(coord.install_plan(8, bad).is_err());
        assert!(!coord.has_plan(8));
    }
}
