//! The transaction coordinator: the app-server-side state machine that
//! executes a transaction end to end and streams progress events back to the
//! submitting client.
//!
//! Lifecycle of a transaction:
//!
//! 1. `Submit` — assign a [`TxnId`], start the server-side timeout, read all
//!    touched keys at the local replica.
//! 2. `ReadResp` — hand the read results to the client (`ReadsDone`), build
//!    one option per write, and propose them along the configured path
//!    (fast: to every replica; classic/2PC: to each key's master).
//! 3. `Vote*` — forward every vote as a `Progress` event (this is the raw
//!    signal PLANET's likelihood model feeds on), resolve keys as quorums
//!    form or become impossible, and decide the instant all keys resolve.
//! 4. Broadcast per-key `Decide` to the masters and emit `TxnDone`.
//!
//! Read-only transactions commit locally after step 2 — they never touch the
//! WAN, mirroring MDCC's local read-committed reads.

use std::collections::{BTreeMap, HashMap};

use planet_sim::{Actor, ActorId, Context, SimTime, SiteId};
use planet_storage::{Key, RecordOption, TxnId};

use crate::config::{ClusterConfig, Protocol};
use crate::messages::{KeyRead, Msg, Outcome, ProgressStage, ReadLevel, TxnSpec, TxnStats};

/// Vote bookkeeping for one key.
#[derive(Debug, Default)]
struct KeyVotes {
    accepts: Vec<SiteId>,
    rejects: Vec<SiteId>,
    resolved: Option<bool>,
    /// Current proposal round: 0 = first attempt; 1 = the fast path's
    /// master-routed fallback after a collision. Stale votes from earlier
    /// rounds are discarded by comparing against this.
    round: u8,
}

/// A transaction in flight at this coordinator.
struct TxnState {
    tag: u64,
    reply_to: ActorId,
    spec: TxnSpec,
    submitted_at: SimTime,
    proposals_sent_at: Option<SimTime>,
    // BTreeMaps: iteration order feeds message send order, which must be
    // deterministic for replays to be exact.
    options: BTreeMap<Key, RecordOption>,
    votes: BTreeMap<Key, KeyVotes>,
    votes_received: usize,
    rejections: usize,
    /// Read responses collected so far (one entry per responding replica).
    read_buffer: Vec<Vec<KeyRead>>,
    /// Responses still required per touched shard before reads complete
    /// (1 per shard for local reads, a classic quorum for quorum reads).
    reads_outstanding: BTreeMap<usize, usize>,
    /// True once reads completed and proposals went out (late `ReadResp`s
    /// are then ignored).
    reads_done: bool,
}

/// Forwarding state for a decided transaction, kept until its original
/// timeout fires so that *late* votes still reach the client — the
/// likelihood model needs the slowest replicas' response times, which by
/// definition arrive after the quorum decided.
struct RecentTxn {
    tag: u64,
    reply_to: ActorId,
    proposals_sent_at: Option<SimTime>,
}

/// The coordinator actor. One per site; clients submit to their local
/// coordinator.
pub struct CoordinatorActor {
    config: ClusterConfig,
    /// Replica actor ids, shard-major: `replicas[shard * num_sites + site]`.
    /// Every key-carrying send resolves its destination through
    /// [`ClusterConfig::shard_of`] so a key only ever talks to its shard.
    replicas: Vec<ActorId>,
    site: SiteId,
    next_seq: u64,
    inflight: HashMap<TxnId, TxnState>,
    recent: HashMap<TxnId, RecentTxn>,
}

impl CoordinatorActor {
    /// Build a coordinator for `site` over the given replicas, laid out
    /// shard-major (`replicas[shard * num_sites + site]`; with one shard
    /// this is simply "indexed by site").
    pub fn new(config: ClusterConfig, replicas: Vec<ActorId>, site: SiteId) -> Self {
        assert_eq!(
            replicas.len(),
            config.num_sites * config.num_shards.max(1),
            "one replica per (site, shard)"
        );
        CoordinatorActor {
            config,
            replicas,
            site,
            next_seq: 0,
            inflight: HashMap::new(),
            recent: HashMap::new(),
        }
    }

    /// Number of transactions currently in flight (for tests/diagnostics).
    pub fn inflight_count(&self) -> usize {
        self.inflight.len()
    }

    /// Digest every piece of protocol-visible state into `h`, remapping
    /// site/actor ids through `map` (see [`crate::digest`]). Hash-map
    /// contents are visited in txn-id order so the digest is independent of
    /// insertion history.
    pub fn mck_digest<H: std::hash::Hasher>(&self, map: &crate::digest::DigestMap, h: &mut H) {
        use std::hash::Hash;
        map.site(self.site).hash(h);
        self.next_seq.hash(h);
        // check:allow(determinism): sorted by txn id before hashing
        let mut inflight: Vec<(&TxnId, &TxnState)> = self.inflight.iter().collect();
        inflight.sort_by_key(|(t, _)| **t);
        // check:allow(determinism): iterates the sorted Vec, not the map
        for (txn, st) in inflight {
            txn.hash(h);
            st.tag.hash(h);
            map.actor(st.reply_to).hash(h);
            crate::digest::dbg_hash(&st.spec, h);
            st.submitted_at.hash(h);
            st.proposals_sent_at.hash(h);
            for (key, option) in &st.options {
                key.hash(h);
                crate::digest::digest_option(option, h);
            }
            for (key, votes) in &st.votes {
                key.hash(h);
                let mut accepts: Vec<u8> = votes.accepts.iter().map(|s| map.site(*s)).collect();
                accepts.sort_unstable();
                accepts.hash(h);
                let mut rejects: Vec<u8> = votes.rejects.iter().map(|s| map.site(*s)).collect();
                rejects.sort_unstable();
                rejects.hash(h);
                votes.resolved.hash(h);
                votes.round.hash(h);
            }
            st.votes_received.hash(h);
            st.rejections.hash(h);
            crate::digest::dbg_hash(&st.read_buffer, h);
            for (shard, need) in &st.reads_outstanding {
                shard.hash(h);
                need.hash(h);
            }
            st.reads_done.hash(h);
        }
        // check:allow(determinism): sorted by txn id before hashing
        let mut recent: Vec<(&TxnId, &RecentTxn)> = self.recent.iter().collect();
        recent.sort_by_key(|(t, _)| **t);
        // check:allow(determinism): iterates the sorted Vec, not the map
        for (txn, r) in recent {
            txn.hash(h);
            r.tag.hash(h);
            map.actor(r.reply_to).hash(h);
            r.proposals_sent_at.hash(h);
        }
    }

    /// The replication group of `key`'s shard: the same-shard replica at
    /// every site, indexed by site.
    fn shard_replicas(&self, key: &Key) -> &[ActorId] {
        let n = self.config.num_sites;
        let shard = self.config.shard_of(key);
        // In bounds: the constructor asserts `replicas.len() == shards * n`
        // and `shard_of` ranges over `0..shards`.
        // check:allow(panic)
        &self.replicas[shard * n..(shard + 1) * n]
    }

    /// The replica mastering `key`: the master site's member of the key's
    /// shard group.
    fn master_replica_for(&self, key: &Key) -> ActorId {
        // In bounds: the group has `num_sites` members and `master_of`
        // ranges over `0..num_sites`.
        // check:allow(panic)
        self.shard_replicas(key)[self.config.master_of(key).0 as usize]
    }

    /// How many voters will ever speak for a key under the current protocol.
    fn voters_per_key(&self) -> usize {
        match self.config.protocol {
            Protocol::Fast | Protocol::Classic => self.config.num_sites,
            Protocol::TwoPc => 1,
        }
    }

    fn progress(
        &self,
        state: &TxnState,
        txn: TxnId,
        stage: ProgressStage,
        ctx: &mut Context<'_, Msg>,
    ) {
        ctx.send(
            state.reply_to,
            Msg::Progress {
                tag: state.tag,
                txn,
                stage,
            },
        );
    }

    fn handle_submit(
        &mut self,
        spec: TxnSpec,
        reply_to: ActorId,
        tag: u64,
        ctx: &mut Context<'_, Msg>,
    ) {
        let txn = TxnId::new(self.site.0, self.next_seq);
        self.next_seq += 1;
        let keys = spec.touched_keys();
        // Partition the touched keys by shard: one ReadReq per shard group
        // (spec order preserved within a group), since each shard's replica
        // only holds its own keyspace slice.
        let mut groups: BTreeMap<usize, Vec<Key>> = BTreeMap::new();
        for key in keys {
            let shard = self.config.shard_of(&key);
            groups.entry(shard).or_default().push(key);
        }
        let mut state = TxnState {
            tag,
            reply_to,
            spec,
            submitted_at: ctx.now(),
            proposals_sent_at: None,
            options: BTreeMap::new(),
            votes: BTreeMap::new(),
            votes_received: 0,
            rejections: 0,
            read_buffer: Vec::new(),
            reads_outstanding: BTreeMap::new(),
            reads_done: false,
        };
        let read_level = state.spec.read_level;
        let need = match read_level {
            ReadLevel::Local => 1,
            ReadLevel::Quorum => self.config.classic_quorum(),
        };
        for &shard in groups.keys() {
            state.reads_outstanding.insert(shard, need);
        }
        self.progress(&state, txn, ProgressStage::Started, ctx);
        let timeout = self.config.txn_timeout;
        self.inflight.insert(txn, state);
        ctx.schedule(timeout, Msg::TxnTimeout { txn });

        if groups.is_empty() {
            self.finish(txn, Outcome::Committed, ctx);
            return;
        }
        let n = self.config.num_sites;
        let site = self.site.0 as usize;
        for (shard, keys) in groups {
            match read_level {
                ReadLevel::Local => {
                    // This site's member of the key group's shard (shard_of
                    // routed: the group was keyed by `shard_of` above).
                    // In bounds: constructor-asserted shard-major layout.
                    // check:allow(panic)
                    ctx.send(self.replicas[shard * n + site], Msg::ReadReq { txn, keys });
                }
                ReadLevel::Quorum => {
                    // In bounds: constructor-asserted shard-major layout.
                    // check:allow(panic)
                    for &replica in &self.replicas[shard * n..(shard + 1) * n] {
                        ctx.send(
                            replica,
                            Msg::ReadReq {
                                txn,
                                keys: keys.clone(),
                            },
                        );
                    }
                }
            }
        }
    }

    /// Merge quorum read responses: per key, keep the freshest committed
    /// version; report the most pessimistic (largest) pending count as the
    /// contention hint.
    fn merge_reads(buffer: &[Vec<KeyRead>]) -> Vec<KeyRead> {
        let mut merged: BTreeMap<Key, KeyRead> = BTreeMap::new();
        for resp in buffer {
            for read in resp {
                merged
                    .entry(read.key.clone())
                    .and_modify(|best| {
                        if read.version > best.version {
                            best.version = read.version;
                            best.value = read.value.clone();
                        }
                        best.pending = best.pending.max(read.pending);
                    })
                    .or_insert_with(|| read.clone());
            }
        }
        merged.into_values().collect()
    }

    fn handle_read_resp(&mut self, txn: TxnId, results: Vec<KeyRead>, ctx: &mut Context<'_, Msg>) {
        // A response covers exactly one shard group (ReadReqs were
        // partitioned by `shard_of`), so its first key identifies the group.
        let Some(shard) = results.first().map(|r| self.config.shard_of(&r.key)) else {
            return;
        };
        let Some(state) = self.inflight.get_mut(&txn) else {
            return;
        };
        if state.reads_done {
            return; // late response from a quorum read already satisfied
        }
        let Some(remaining) = state.reads_outstanding.get_mut(&shard) else {
            return; // this shard group is already satisfied
        };
        state.read_buffer.push(results);
        *remaining -= 1;
        if *remaining == 0 {
            state.reads_outstanding.remove(&shard);
        }
        if !state.reads_outstanding.is_empty() {
            return; // keep waiting for the remaining groups / quorums
        }
        // Single local response: pass it through in spec order. Anything
        // buffered from several replicas or shards merges to key order.
        let results = match (state.spec.read_level, state.read_buffer.len()) {
            (ReadLevel::Local, 1) => state.read_buffer.pop().unwrap_or_default(),
            _ => Self::merge_reads(&state.read_buffer),
        };
        state.reads_done = true;
        let writes = state.spec.writes.clone();
        if self.config.trace.is_on() {
            for r in &results {
                self.config.trace.emit(crate::trace::TraceEvent::Read {
                    txn,
                    key: r.key.clone(),
                    version: r.version,
                    site: self.site,
                    shard: self.config.shard_of(&r.key),
                    at: ctx.now(),
                });
            }
        }
        let Some(state) = self.inflight.get(&txn) else {
            return;
        };
        self.progress(
            state,
            txn,
            ProgressStage::ReadsDone {
                reads: results.clone(),
            },
            ctx,
        );
        if writes.is_empty() {
            self.finish(txn, Outcome::Committed, ctx);
            return;
        }
        let versions: HashMap<&Key, u64> = results.iter().map(|r| (&r.key, r.version)).collect();

        let Some(state) = self.inflight.get_mut(&txn) else {
            return;
        };
        state.proposals_sent_at = Some(ctx.now());
        let mut proposals = Vec::new();
        for (key, op) in &writes {
            let read_version = versions.get(key).copied().unwrap_or(0);
            let option = RecordOption::new(txn, read_version, op.clone());
            state.options.insert(key.clone(), option.clone());
            state.votes.insert(key.clone(), KeyVotes::default());
            proposals.push((key.clone(), option));
        }
        let me = ctx.self_id();
        for (key, option) in proposals {
            match self.config.protocol {
                Protocol::Fast => {
                    for &replica in self.shard_replicas(&key) {
                        ctx.send(
                            replica,
                            Msg::FastPropose {
                                txn,
                                key: key.clone(),
                                option: option.clone(),
                                round: 0,
                            },
                        );
                    }
                }
                Protocol::Classic | Protocol::TwoPc => {
                    let master = self.master_replica_for(&key);
                    ctx.send(
                        master,
                        Msg::Propose {
                            txn,
                            key,
                            option,
                            coordinator: me,
                            round: 0,
                        },
                    );
                }
            }
        }
    }

    #[allow(clippy::too_many_arguments)] // mirrors the wire message's fields
    fn handle_vote(
        &mut self,
        txn: TxnId,
        key: Key,
        site: SiteId,
        accept: bool,
        reason: Option<planet_storage::RejectReason>,
        round: u8,
        ctx: &mut Context<'_, Msg>,
    ) {
        let voters = self.voters_per_key();
        let Some(state) = self.inflight.get_mut(&txn) else {
            // Late vote for a decided transaction: still forward it so the
            // client's latency model learns the slow paths.
            if let Some(recent) = self.recent.get(&txn) {
                let elapsed_us = recent
                    .proposals_sent_at
                    .map_or(0, |at| ctx.now().since(at).as_micros());
                ctx.send(
                    recent.reply_to,
                    Msg::Progress {
                        tag: recent.tag,
                        txn,
                        stage: ProgressStage::Vote {
                            key,
                            site,
                            accept,
                            reason,
                            elapsed_us,
                        },
                    },
                );
            }
            return;
        };
        let elapsed_us = state
            .proposals_sent_at
            .map_or(0, |at| ctx.now().since(at).as_micros());
        let Some(kv) = state.votes.get_mut(&key) else {
            return;
        };
        // Stale votes from a superseded round are meaningless for the tally.
        if round != kv.round {
            return;
        }
        // Drop duplicate votes from the same site (possible under retries).
        if kv.accepts.contains(&site) || kv.rejects.contains(&site) {
            return;
        }
        if accept {
            kv.accepts.push(site);
        } else {
            kv.rejects.push(site);
            state.rejections += 1;
        }
        state.votes_received += 1;

        // Master-routed rounds — classic, 2PC, or a fast-path fallback
        // round — hear rejects only from the master, whose rejection is
        // definitive (no replication happened). Quorum size also depends on
        // the round: the fallback round needs only a classic majority.
        let master_routed = !matches!(self.config.protocol, Protocol::Fast) || kv.round > 0;
        let quorum = if kv.round > 0 {
            self.config.classic_quorum()
        } else {
            self.config.required_quorum()
        };
        let mut resolved_now = None;
        let mut fallback_now = false;
        if kv.resolved.is_none() {
            if kv.accepts.len() >= quorum {
                kv.resolved = Some(true);
                resolved_now = Some(true);
            } else if (master_routed && !kv.rejects.is_empty())
                || voters - kv.rejects.len() < quorum
            {
                if self.config.protocol == Protocol::Fast
                    && self.config.fast_fallback
                    && kv.round == 0
                    && kv.rejects.len() < self.config.classic_quorum()
                {
                    // Collision, not a definitive loss: fewer than a
                    // majority rejected, so the option may still win a
                    // classic round through the master. Reset the tally and
                    // retry once.
                    kv.round = 1;
                    kv.accepts.clear();
                    kv.rejects.clear();
                    fallback_now = true;
                } else {
                    kv.resolved = Some(false);
                    resolved_now = Some(false);
                }
            }
        }
        if fallback_now {
            // The votes entry implies the option was recorded with it; if it
            // somehow is not there, skip the retry rather than crash the
            // coordinator — the txn then resolves through the timeout path.
            if let Some(option) = state.options.get(&key).cloned() {
                let master = self.master_replica_for(&key);
                let me = ctx.self_id();
                ctx.send(
                    master,
                    Msg::Propose {
                        txn,
                        key: key.clone(),
                        option,
                        coordinator: me,
                        round: 1,
                    },
                );
                ctx.metrics().counter("txn.fast_fallbacks").inc();
                let Some(state) = self.inflight.get(&txn) else {
                    return;
                };
                self.progress(
                    state,
                    txn,
                    ProgressStage::KeyFallback { key: key.clone() },
                    ctx,
                );
            }
        }

        let Some(state) = self.inflight.get(&txn) else {
            return;
        };
        self.progress(
            state,
            txn,
            ProgressStage::Vote {
                key: key.clone(),
                site,
                accept,
                reason,
                elapsed_us,
            },
            ctx,
        );
        if let Some(ok) = resolved_now {
            self.progress(
                state,
                txn,
                ProgressStage::KeyResolved { key, accepted: ok },
                ctx,
            );
        }

        // Decide as soon as every key has resolved, or any key failed.
        let Some(state) = self.inflight.get(&txn) else {
            return;
        };
        let any_failed = state.votes.values().any(|kv| kv.resolved == Some(false));
        let all_ok = state.votes.values().all(|kv| kv.resolved == Some(true));
        if any_failed {
            self.finish(txn, Outcome::Aborted, ctx);
        } else if all_ok {
            self.finish(txn, Outcome::Committed, ctx);
        }
    }

    fn handle_timeout(&mut self, txn: TxnId, ctx: &mut Context<'_, Msg>) {
        if self.inflight.contains_key(&txn) {
            self.finish(txn, Outcome::TimedOut, ctx);
            // `finish` just parked the txn in `recent` to keep the late-vote
            // forwarding window open, but the timer that expires that window
            // was consumed by this very firing — re-arm it, or the entry
            // leaks forever.
            ctx.schedule(self.config.txn_timeout, Msg::TxnTimeout { txn });
        } else {
            // The timeout doubles as the expiry of the late-vote forwarding
            // window.
            self.recent.remove(&txn);
        }
    }

    /// Broadcast per-key decisions, emit the terminal event, drop state.
    fn finish(&mut self, txn: TxnId, outcome: Outcome, ctx: &mut Context<'_, Msg>) {
        let Some(state) = self.inflight.remove(&txn) else {
            return;
        };
        let commit = outcome.is_commit();
        for (key, option) in &state.options {
            let master = self.master_replica_for(key);
            ctx.send(
                master,
                Msg::Decide {
                    txn,
                    key: key.clone(),
                    option: option.clone(),
                    commit,
                },
            );
        }
        let stats = TxnStats {
            submitted_at: state.submitted_at,
            decided_at: ctx.now(),
            write_keys: state.options.len(),
            votes_received: state.votes_received,
            rejections: state.rejections,
        };
        self.recent.insert(
            txn,
            RecentTxn {
                tag: state.tag,
                reply_to: state.reply_to,
                proposals_sent_at: state.proposals_sent_at,
            },
        );
        let latency = stats.decided_at.since(stats.submitted_at).as_micros();
        let proto = self.config.protocol.name();
        match outcome {
            Outcome::Committed => {
                ctx.metrics()
                    .counter(&format!("txn.committed.{proto}"))
                    .inc();
                if !state.options.is_empty() {
                    ctx.metrics()
                        .histogram(&format!("txn.commit_latency.{proto}"))
                        .record(latency);
                    let site = self.site;
                    ctx.metrics()
                        .histogram(&format!("txn.commit_latency.{proto}.site{}", site.0))
                        .record(latency);
                }
            }
            Outcome::Aborted => {
                ctx.metrics().counter(&format!("txn.aborted.{proto}")).inc();
            }
            Outcome::TimedOut => {
                ctx.metrics()
                    .counter(&format!("txn.timedout.{proto}"))
                    .inc();
            }
        }
        if self.config.trace.is_on() {
            self.config.trace.emit(crate::trace::TraceEvent::Finish {
                txn,
                outcome,
                at: ctx.now(),
            });
        }
        ctx.send(
            state.reply_to,
            Msg::TxnDone {
                tag: state.tag,
                txn,
                outcome,
                stats,
            },
        );
    }
}

impl Actor<Msg> for CoordinatorActor {
    fn on_message(&mut self, _from: ActorId, msg: Msg, ctx: &mut Context<'_, Msg>) {
        match msg {
            Msg::Submit {
                spec,
                reply_to,
                tag,
            } => self.handle_submit(spec, reply_to, tag, ctx),
            Msg::ReadResp { txn, results } => self.handle_read_resp(txn, results, ctx),
            Msg::Vote {
                txn,
                key,
                site,
                accept,
                reason,
                round,
            } => self.handle_vote(txn, key, site, accept, reason, round, ctx),
            Msg::TxnTimeout { txn } => self.handle_timeout(txn, ctx),
            other => {
                debug_assert!(false, "coordinator received unexpected message: {other:?}");
            }
        }
    }
}
