//! Cluster assembly: wire one replica and one coordinator per site into a
//! simulation, plus a blocking-style test client for direct protocol use.

use planet_sim::{Actor, ActorId, Context, NetworkModel, SimTime, Simulation, SiteId};
use planet_storage::{Key, Value, WriteOp};

use crate::config::ClusterConfig;
use crate::coordinator::CoordinatorActor;
use crate::messages::{Msg, Outcome, TxnSpec, TxnStats};
use crate::replica_actor::ReplicaActor;

/// Ids of the actors a built cluster consists of.
#[derive(Debug, Clone)]
pub struct Cluster {
    /// Replica actors, shard-major: `replicas[shard * num_sites + site]`.
    /// With one shard (the default) this is simply "indexed by site".
    pub replicas: Vec<ActorId>,
    /// Coordinator actor per site, indexed by site.
    pub coordinators: Vec<ActorId>,
    /// The configuration the cluster runs.
    pub config: ClusterConfig,
}

impl Cluster {
    /// The replica actor for `(site, shard)`.
    pub fn replica(&self, site: usize, shard: usize) -> ActorId {
        self.replicas[shard * self.config.num_sites + site]
    }

    /// All of `site`'s replica shards, in shard order.
    pub fn site_replicas(&self, site: usize) -> Vec<ActorId> {
        (0..self.config.num_shards.max(1))
            .map(|s| self.replica(site, s))
            .collect()
    }
}

/// Build a cluster into `sim`: `num_shards` replicas and one coordinator per
/// site. The sim runs the sharded actors on its single deterministic thread,
/// so seed experiments are reproducible at any shard count.
///
/// Panics if the network model has fewer sites than the configuration.
pub fn build_cluster(sim: &mut Simulation<Msg>, config: ClusterConfig) -> Cluster {
    let n = config.num_sites;
    let shards = config.num_shards.max(1);
    // Replica actors need their peer ids before they are constructed, so
    // they are predicted from the engine's dense assignment order. That
    // prediction is only valid on a fresh simulation (asserted below):
    // replicas take ids 0..shards*n shard-major (shard s's replication
    // group is the contiguous slice [s*n, s*n + n)), coordinators follow.
    let replica_ids: Vec<ActorId> = (0..shards * n).map(|i| ActorId(i as u32)).collect();

    let mut actual_ids = Vec::with_capacity(shards * n);
    for shard in 0..shards {
        let peers: Vec<ActorId> = replica_ids[shard * n..(shard + 1) * n].to_vec();
        for site in 0..n {
            let actor = ReplicaActor::new(config.clone(), peers.clone(), shard);
            let id = sim.add_actor(SiteId(site as u8), Box::new(actor));
            actual_ids.push(id);
        }
    }
    assert_eq!(
        actual_ids, replica_ids,
        "build_cluster requires a fresh simulation"
    );

    let coordinators: Vec<ActorId> = (0..n)
        .map(|site| {
            let actor =
                CoordinatorActor::new(config.clone(), replica_ids.clone(), SiteId(site as u8));
            sim.add_actor(SiteId(site as u8), Box::new(actor))
        })
        .collect();

    Cluster {
        replicas: replica_ids,
        coordinators,
        config,
    }
}

/// Convenience: a fresh simulation plus a cluster over the given topology.
pub fn build_sim(
    net: NetworkModel,
    config: ClusterConfig,
    seed: u64,
) -> (Simulation<Msg>, Cluster) {
    assert!(
        net.num_sites() >= config.num_sites,
        "topology too small for cluster"
    );
    let mut sim = Simulation::new(net, seed);
    let cluster = build_cluster(&mut sim, config);
    (sim, cluster)
}

/// A terminal record captured by the [`TestClient`].
#[derive(Debug, Clone)]
pub struct CompletedTxn {
    /// Client tag from the submission.
    pub tag: u64,
    /// Outcome.
    pub outcome: Outcome,
    /// Coordinator statistics.
    pub stats: TxnStats,
}

/// A minimal client actor: submits a scripted list of transactions at given
/// times to a coordinator and records the outcomes. Used by protocol tests
/// and micro-experiments; the PLANET layer has its own, richer client.
pub struct TestClient {
    coordinator: ActorId,
    /// (submit time, spec) pairs, consumed in order.
    script: Vec<(SimTime, TxnSpec)>,
    /// Completed transactions by tag.
    pub completed: Vec<CompletedTxn>,
    /// Progress events seen, by (tag, description) — coarse, for assertions.
    pub progress_counts: usize,
}

impl TestClient {
    /// A client that will submit `script` (times must be non-decreasing).
    pub fn new(coordinator: ActorId, script: Vec<(SimTime, TxnSpec)>) -> Self {
        TestClient {
            coordinator,
            script,
            completed: Vec::new(),
            progress_counts: 0,
        }
    }

    /// The outcome recorded for submission `tag`, if finished.
    pub fn outcome(&self, tag: u64) -> Option<Outcome> {
        self.completed
            .iter()
            .find(|c| c.tag == tag)
            .map(|c| c.outcome)
    }
}

impl Actor<Msg> for TestClient {
    fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
        for (i, (at, _)) in self.script.iter().enumerate() {
            let delay = at.since(SimTime::ZERO);
            ctx.schedule(
                delay,
                Msg::ClientTimer {
                    kind: 0,
                    tag: i as u64,
                },
            );
        }
    }

    fn on_message(&mut self, _from: ActorId, msg: Msg, ctx: &mut Context<'_, Msg>) {
        match msg {
            Msg::ClientTimer { kind: 0, tag } => {
                // Timers are only armed for script entries, but a forged or
                // duplicated timer tag must not crash the client actor.
                let Some((_, spec)) = self.script.get(tag as usize) else {
                    return;
                };
                let spec = spec.clone();
                let me = ctx.self_id();
                ctx.send(
                    self.coordinator,
                    Msg::Submit {
                        spec,
                        reply_to: me,
                        tag,
                    },
                );
            }
            Msg::Progress { .. } => self.progress_counts += 1,
            Msg::TxnDone {
                tag,
                outcome,
                stats,
                ..
            } => {
                self.completed.push(CompletedTxn {
                    tag,
                    outcome,
                    stats,
                });
            }
            _ => {}
        }
    }
}

/// Build a write-one-key spec helper.
pub fn set_spec(key: &str, value: i64) -> TxnSpec {
    TxnSpec::write_one(Key::new(key), WriteOp::Set(Value::Int(value)))
}
