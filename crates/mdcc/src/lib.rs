//! # planet-mdcc
//!
//! A geo-replicated, strongly consistent transactional store in the style of
//! MDCC (Kraska et al., EuroSys 2013) — the substrate the PLANET SIGMOD 2014
//! evaluation ran on, rebuilt from scratch because no open-source version
//! exists (see DESIGN.md).
//!
//! Three commit paths are provided:
//!
//! * [`Protocol::Fast`] — coordinator proposes options directly to every
//!   replica; a fast quorum (⌈3N/4⌉) of independent validations commits a
//!   key in one coordinator↔replica round trip.
//! * [`Protocol::Classic`] — options route through each key's master, which
//!   validates and replicates; replicas ack straight to the coordinator.
//! * [`Protocol::TwoPc`] — the primary-copy 2PC baseline: acks return via
//!   the master, which votes once a majority is durable.
//!
//! Replica convergence uses master-sequenced state transfer (`Apply`
//! messages), so every copy converges to the master's commit order
//! regardless of WAN message timing; pending options are leased so lost
//! decisions cannot wedge a record.
//!
//! The coordinator streams fine-grained [`ProgressStage`] events (per-replica
//! votes with elapsed times, per-key resolutions) to the submitting client —
//! this event stream is exactly what `planet-core`'s commit-likelihood
//! predictor consumes.

#![warn(missing_docs)]

mod cluster;
mod config;
mod coordinator;
pub mod digest;
mod messages;
mod replica_actor;
pub mod trace;

pub use cluster::{build_cluster, build_sim, set_spec, Cluster, CompletedTxn, TestClient};
pub use config::{ClusterConfig, Protocol};
pub use coordinator::CoordinatorActor;
pub use messages::{KeyRead, Msg, Outcome, ProgressStage, ReadLevel, TxnSpec, TxnStats};
pub use replica_actor::ReplicaActor;
#[cfg(feature = "trace")]
pub use trace::{FileSink, TraceSink, VecSink};
pub use trace::{Trace, TraceEvent};
