//! Protocol configuration: commit path, quorum sizes, mastership.

use planet_sim::{SimDuration, SiteId};
use planet_storage::Key;

use crate::trace::Trace;

/// Which commit protocol the cluster runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Protocol {
    /// MDCC fast path: the coordinator proposes options directly to every
    /// replica; each replica validates independently; a *fast quorum*
    /// (⌈3N/4⌉) of accepts commits a key in a single coordinator↔replica
    /// round trip.
    Fast,
    /// MDCC classic path: the coordinator proposes to the record's master,
    /// which validates and replicates to the other replicas; replicas ack
    /// directly to the coordinator. A classic (majority) quorum commits.
    Classic,
    /// Baseline two-phase commit over primary copies: like `Classic`, but
    /// acks route back through the master, which casts a single vote to the
    /// coordinator once a majority of replicas is durable — the extra hop
    /// the MDCC paths exist to avoid.
    TwoPc,
}

impl Protocol {
    /// Short lowercase name used in metric keys and reports.
    pub fn name(&self) -> &'static str {
        match self {
            Protocol::Fast => "fast",
            Protocol::Classic => "classic",
            Protocol::TwoPc => "twopc",
        }
    }
}

impl std::fmt::Display for Protocol {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Static cluster configuration shared by every actor.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of sites; one full replica lives at each.
    pub num_sites: usize,
    /// The commit path.
    pub protocol: Protocol,
    /// Hard server-side cap on a transaction's lifetime: if votes are still
    /// missing after this long the coordinator aborts.
    pub txn_timeout: SimDuration,
    /// When the fast path cannot assemble a fast quorum for a key but the
    /// key is not definitively lost (a fast-Paxos collision: votes split
    /// between competing options), retry the key once through its master —
    /// MDCC's classic-path fallback. Costs an extra round trip on collision;
    /// turns split-vote "nobody wins" outcomes into wins.
    pub fast_fallback: bool,
    /// CPU/IO cost of validating one option proposal at a replica. Proposals
    /// queue FIFO behind a single server per replica, so offered load beyond
    /// `1/validation_service` saturates the replica and queueing delay
    /// explodes — the resource dimension the admission-control experiments
    /// need. `ZERO` (the default) disables the model.
    pub validation_service: SimDuration,
    /// Number of replica shards per site. Each site's keyspace is
    /// partitioned by [`ClusterConfig::shard_of`] across `num_shards`
    /// independent replica actors (each with its own store + WAL); in live
    /// mode each shard runs on its own thread. Every key-carrying message
    /// routes to the key's shard, so per-key ordering is exactly what a
    /// single replica would produce. Default 1 (unsharded — the simulation
    /// seed experiments are bit-identical).
    pub num_shards: usize,
    /// Checkpoint a shard's WAL once its retained tail reaches this many
    /// records (0 disables). Checked on the periodic GC sweep.
    pub checkpoint_every: usize,
    /// Committed versions to keep per record when the periodic GC sweep
    /// trims version chains (0 disables trimming).
    pub gc_keep_versions: usize,
    /// Execution-trace handle for the isolation auditor (see
    /// [`crate::trace`]). Rides in the config because every actor already
    /// receives a config clone; [`Trace::off`] by default, and never part of
    /// `mck_digest` (the digests hash protocol state, not configuration), so
    /// attaching a sink is digest-neutral by construction.
    pub trace: Trace,
}

impl ClusterConfig {
    /// A configuration with the given site count and protocol and a default
    /// 10 s server-side timeout.
    pub fn new(num_sites: usize, protocol: Protocol) -> Self {
        assert!(num_sites >= 1);
        // The coordinator tallies per-key votes in a 64-bit site mask.
        assert!(num_sites <= 64, "at most 64 sites");
        ClusterConfig {
            num_sites,
            protocol,
            txn_timeout: SimDuration::from_secs(10),
            fast_fallback: false,
            validation_service: SimDuration::ZERO,
            num_shards: 1,
            checkpoint_every: 4096,
            gc_keep_versions: 64,
            trace: Trace::off(),
        }
    }

    /// Same configuration with `num_shards` replica shards per site.
    pub fn with_shards(mut self, num_shards: usize) -> Self {
        assert!(num_shards >= 1, "at least one shard per site");
        self.num_shards = num_shards;
        self
    }

    /// Classic (majority) quorum size: ⌊N/2⌋ + 1.
    pub fn classic_quorum(&self) -> usize {
        self.num_sites / 2 + 1
    }

    /// Fast quorum size: ⌈3N/4⌉ — the smallest quorum for which any two fast
    /// quorums intersect in a classic quorum (Fast Paxos requirement).
    pub fn fast_quorum(&self) -> usize {
        (3 * self.num_sites).div_ceil(4)
    }

    /// The quorum the configured protocol needs per key.
    pub fn required_quorum(&self) -> usize {
        match self.protocol {
            Protocol::Fast => self.fast_quorum(),
            Protocol::Classic => self.classic_quorum(),
            // The master's single vote stands for a durable majority.
            Protocol::TwoPc => 1,
        }
    }

    /// The site mastering a key, assigned by stable hash so that mastership
    /// is uniform and deterministic.
    pub fn master_of(&self, key: &Key) -> SiteId {
        // FNV-1a over the key bytes; cheap, stable across runs.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in key.as_str().as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        SiteId((h % self.num_sites as u64) as u8)
    }

    /// The replica shard owning a key at every site. Deterministic and
    /// decorrelated from [`ClusterConfig::master_of`] (the hash runs over
    /// the key bytes twice, so shard and mastership assignments do not
    /// align), identical across sites so a shard's peer group replicates
    /// exactly its own keyspace slice. Every key-carrying message must be
    /// routed with this — it is the per-key ordering invariant the sharded
    /// hot path rests on (planet-check STATE006).
    pub fn shard_of(&self, key: &Key) -> usize {
        if self.num_shards == 1 {
            return 0;
        }
        // Double-rounded FNV-1a: feed the first pass's digest back through
        // so the shard index is independent of `master_of`'s residue, then
        // xor-fold — FNV's low bits alone disperse poorly under
        // power-of-two shard counts.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for _ in 0..2 {
            for b in key.as_str().as_bytes() {
                h ^= *b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
        h ^= h >> 32;
        (h % self.num_shards as u64) as usize
    }
}

/// The routing facts the plan specializer bakes into a
/// [`planet_plan::CompiledPlan`]: compiling against the config that every
/// actor runs makes the precomputed routes exactly the ones the interpreted
/// path would have hashed per submission.
impl planet_plan::PlanEnv for ClusterConfig {
    fn num_sites(&self) -> usize {
        self.num_sites
    }

    fn shard_of(&self, key: &Key) -> usize {
        ClusterConfig::shard_of(self, key)
    }

    fn master_site_of(&self, key: &Key) -> u8 {
        ClusterConfig::master_of(self, key).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quorum_sizes_for_five() {
        let c = ClusterConfig::new(5, Protocol::Fast);
        assert_eq!(c.classic_quorum(), 3);
        assert_eq!(c.fast_quorum(), 4);
        assert_eq!(c.required_quorum(), 4);
        assert_eq!(
            ClusterConfig::new(5, Protocol::Classic).required_quorum(),
            3
        );
        assert_eq!(ClusterConfig::new(5, Protocol::TwoPc).required_quorum(), 1);
    }

    #[test]
    fn quorum_sizes_for_three() {
        let c = ClusterConfig::new(3, Protocol::Fast);
        assert_eq!(c.classic_quorum(), 2);
        assert_eq!(c.fast_quorum(), 3);
    }

    #[test]
    fn mastership_is_stable_and_in_range() {
        let c = ClusterConfig::new(5, Protocol::Fast);
        for i in 0..100 {
            let k = Key::new(format!("key:{i}"));
            let m1 = c.master_of(&k);
            let m2 = c.master_of(&k);
            assert_eq!(m1, m2);
            assert!((m1.0 as usize) < 5);
        }
    }

    #[test]
    fn mastership_spreads_over_sites() {
        let c = ClusterConfig::new(5, Protocol::Fast);
        let mut seen = std::collections::HashSet::new();
        for i in 0..200 {
            seen.insert(c.master_of(&Key::new(format!("key:{i}"))));
        }
        assert_eq!(seen.len(), 5, "200 keys should hit all 5 masters");
    }

    #[test]
    fn shard_assignment_is_stable_spread_and_in_range() {
        let c = ClusterConfig::new(3, Protocol::Fast).with_shards(4);
        let mut seen = std::collections::HashSet::new();
        for i in 0..200 {
            let k = Key::new(format!("key:{i}"));
            let s1 = c.shard_of(&k);
            assert_eq!(s1, c.shard_of(&k), "stable");
            assert!(s1 < 4);
            seen.insert(s1);
        }
        assert_eq!(seen.len(), 4, "200 keys should hit all 4 shards");
        // Unsharded config: everything lands on shard 0.
        let c1 = ClusterConfig::new(3, Protocol::Fast);
        assert_eq!(c1.num_shards, 1);
        assert_eq!(c1.shard_of(&Key::new("anything")), 0);
    }

    #[test]
    fn shard_and_mastership_do_not_align() {
        // With num_shards == num_sites a single-hash assignment would pin
        // every key's shard to its master site; the double-rounded hash
        // must decorrelate them.
        let c = ClusterConfig::new(4, Protocol::Fast).with_shards(4);
        let disagree = (0..200)
            .filter(|i| {
                let k = Key::new(format!("key:{i}"));
                c.shard_of(&k) != c.master_of(&k).0 as usize
            })
            .count();
        assert!(disagree > 100, "only {disagree}/200 keys decorrelated");
    }

    #[test]
    fn protocol_names() {
        assert_eq!(Protocol::Fast.to_string(), "fast");
        assert_eq!(Protocol::Classic.to_string(), "classic");
        assert_eq!(Protocol::TwoPc.to_string(), "twopc");
    }
}
