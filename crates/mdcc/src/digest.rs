//! Protocol-state digests for the model checker (`planet-mck`).
//!
//! The explicit-state checker deduplicates explored states by fingerprint,
//! and applies a symmetry reduction over site ids: two global states that
//! differ only by a permutation of *free* sites (sites hosting no client and
//! mastering no workload key) are behaviourally equivalent, so they should
//! hash identically. That requires digests which can *remap* every site id
//! and actor id they encounter — a plain `Hash` impl cannot do that, hence
//! this module.
//!
//! Digests cover exactly the protocol-visible state: anything that can
//! influence a future message, timer or client-visible event. Metrics
//! counters and the WAL tail are excluded (the checker never crash-recovers
//! a replica, so the WAL only mirrors the store it would rebuild).
//!
//! Transaction ids embed the minting coordinator's site. The checker pins
//! every client-hosting site, and only pinned coordinators receive
//! submissions, so txn ids never contain a free site id and are hashed raw.

use std::hash::{Hash, Hasher};

use planet_sim::{ActorId, SiteId};
use planet_storage::RecordOption;

use crate::messages::{Msg, ProgressStage};

/// A site/actor id remapping applied while digesting. Identity maps hash
/// the true state; the checker builds one map per permutation of the free
/// sites and takes the minimum fingerprint as the canonical form.
#[derive(Debug, Clone)]
pub struct DigestMap {
    /// Canonical site id per raw site id (index = raw `SiteId.0`).
    pub sites: Vec<u8>,
    /// Canonical actor id per raw actor id (index = raw `ActorId.0`).
    pub actors: Vec<u32>,
}

impl DigestMap {
    /// The identity map over `num_sites` sites and `num_actors` actors.
    pub fn identity(num_sites: usize, num_actors: usize) -> Self {
        DigestMap {
            sites: (0..num_sites as u8).collect(),
            actors: (0..num_actors as u32).collect(),
        }
    }

    /// Canonical id for a site (ids beyond the map pass through unchanged).
    pub fn site(&self, s: SiteId) -> u8 {
        self.sites.get(s.0 as usize).copied().unwrap_or(s.0)
    }

    /// Canonical id for an actor (ids beyond the map pass through unchanged).
    pub fn actor(&self, a: ActorId) -> u32 {
        self.actors.get(a.0 as usize).copied().unwrap_or(a.0)
    }
}

/// Hash a value through its `Debug` rendering. Used for payloads that carry
/// no site/actor ids (keys, values, write ops, reject reasons): their Debug
/// form is a faithful, deterministic encoding and saves a field-by-field
/// walk that would have to chase every future payload change.
pub fn dbg_hash<T: std::fmt::Debug, H: Hasher>(t: &T, h: &mut H) {
    format!("{t:?}").hash(h);
}

/// Digest an option. Txn ids are minted by pinned coordinators (see module
/// doc), so no remapping is needed.
pub fn digest_option<H: Hasher>(o: &RecordOption, h: &mut H) {
    o.txn.hash(h);
    o.read_version.hash(h);
    dbg_hash(&o.op, h);
}

/// Digest a message, remapping every embedded site/actor id through `map`.
pub fn digest_msg<H: Hasher>(m: &Msg, map: &DigestMap, h: &mut H) {
    std::mem::discriminant(m).hash(h);
    match m {
        Msg::Submit {
            spec,
            reply_to,
            tag,
        } => {
            dbg_hash(spec, h);
            map.actor(*reply_to).hash(h);
            tag.hash(h);
        }
        Msg::RegisterPlan {
            plan,
            program,
            reply_to,
        } => {
            plan.hash(h);
            dbg_hash(program, h);
            map.actor(*reply_to).hash(h);
        }
        Msg::SubmitPlan {
            plan,
            params,
            reply_to,
            tag,
        } => {
            plan.hash(h);
            dbg_hash(params, h);
            map.actor(*reply_to).hash(h);
            tag.hash(h);
        }
        Msg::PlanReady { plan } => plan.hash(h),
        Msg::ReadReq { txn, keys } => {
            txn.hash(h);
            dbg_hash(keys, h);
        }
        Msg::FastPropose {
            txn,
            key,
            option,
            round,
        } => {
            txn.hash(h);
            key.hash(h);
            digest_option(option, h);
            round.hash(h);
        }
        Msg::Propose {
            txn,
            key,
            option,
            coordinator,
            round,
        } => {
            txn.hash(h);
            key.hash(h);
            digest_option(option, h);
            map.actor(*coordinator).hash(h);
            round.hash(h);
        }
        Msg::Replicate {
            txn,
            key,
            option,
            coordinator,
            master,
            round,
        } => {
            txn.hash(h);
            key.hash(h);
            digest_option(option, h);
            map.actor(*coordinator).hash(h);
            map.actor(*master).hash(h);
            round.hash(h);
        }
        Msg::Decide {
            txn,
            key,
            option,
            commit,
        } => {
            txn.hash(h);
            key.hash(h);
            digest_option(option, h);
            commit.hash(h);
        }
        Msg::ReadResp { txn, results } => {
            txn.hash(h);
            dbg_hash(results, h);
        }
        Msg::Vote {
            txn,
            key,
            site,
            accept,
            reason,
            round,
        } => {
            txn.hash(h);
            key.hash(h);
            map.site(*site).hash(h);
            accept.hash(h);
            dbg_hash(reason, h);
            round.hash(h);
        }
        Msg::ReplicateAck { txn, key, site } => {
            txn.hash(h);
            key.hash(h);
            map.site(*site).hash(h);
        }
        Msg::Apply {
            key,
            version,
            value,
            txn,
        } => {
            key.hash(h);
            version.hash(h);
            dbg_hash(value, h);
            txn.hash(h);
        }
        Msg::DropPending { key, txn } => {
            key.hash(h);
            txn.hash(h);
        }
        Msg::Progress { tag, txn, stage } => {
            tag.hash(h);
            txn.hash(h);
            digest_stage(stage, map, h);
        }
        Msg::TxnDone {
            tag,
            txn,
            outcome,
            stats,
        } => {
            tag.hash(h);
            txn.hash(h);
            dbg_hash(outcome, h);
            dbg_hash(stats, h);
        }
        Msg::Crash | Msg::Recover | Msg::ReplicaServiceDone => {}
        Msg::TxnTimeout { txn } => txn.hash(h),
        Msg::ClientTimer { kind, tag } => {
            kind.hash(h);
            tag.hash(h);
        }
    }
}

fn digest_stage<H: Hasher>(stage: &ProgressStage, map: &DigestMap, h: &mut H) {
    std::mem::discriminant(stage).hash(h);
    match stage {
        ProgressStage::Started => {}
        ProgressStage::ReadsDone { reads } => dbg_hash(reads, h),
        ProgressStage::Vote {
            key,
            site,
            accept,
            reason,
            elapsed_us,
        } => {
            key.hash(h);
            map.site(*site).hash(h);
            accept.hash(h);
            dbg_hash(reason, h);
            elapsed_us.hash(h);
        }
        ProgressStage::KeyFallback { key } => key.hash(h),
        ProgressStage::KeyResolved { key, accepted } => {
            key.hash(h);
            accepted.hash(h);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use planet_storage::{Key, TxnId, WriteOp};
    use std::collections::hash_map::DefaultHasher;

    fn fp(f: impl Fn(&mut DefaultHasher)) -> u64 {
        let mut h = DefaultHasher::new();
        f(&mut h);
        h.finish()
    }

    #[test]
    fn identity_map_passes_through() {
        let m = DigestMap::identity(3, 6);
        assert_eq!(m.site(SiteId(2)), 2);
        assert_eq!(m.actor(ActorId(5)), 5);
        // Out of range: pass through rather than panic.
        assert_eq!(m.site(SiteId(9)), 9);
    }

    #[test]
    fn vote_digest_tracks_site_map() {
        let vote = |site| Msg::Vote {
            txn: TxnId::new(0, 1),
            key: Key::new("k"),
            site: SiteId(site),
            accept: true,
            reason: None,
            round: 0,
        };
        let ident = DigestMap::identity(3, 6);
        let mut swapped = DigestMap::identity(3, 6);
        swapped.sites.swap(1, 2);
        // A vote from site 1 under the swap hashes like a vote from site 2
        // under identity — the symmetry reduction's core property.
        assert_eq!(
            fp(|h| digest_msg(&vote(1), &swapped, h)),
            fp(|h| digest_msg(&vote(2), &ident, h))
        );
        assert_ne!(
            fp(|h| digest_msg(&vote(1), &ident, h)),
            fp(|h| digest_msg(&vote(2), &ident, h))
        );
    }

    #[test]
    fn option_digest_distinguishes_ops() {
        let o1 = RecordOption::new(TxnId::new(0, 1), 0, WriteOp::add(1));
        let o2 = RecordOption::new(TxnId::new(0, 1), 0, WriteOp::add(2));
        assert_ne!(fp(|h| digest_option(&o1, h)), fp(|h| digest_option(&o2, h)));
    }
}
