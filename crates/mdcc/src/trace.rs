//! Execution tracing for the isolation auditor (`planet-audit`).
//!
//! The protocol actors emit one [`TraceEvent`] per isolation-relevant step —
//! a coordinator observing committed reads, a master minting a committed
//! version, a replica installing one by state transfer, a transaction
//! reaching its terminal outcome. The auditor replays the event stream into
//! an Adya-style dependency graph and searches it for unserializable cycles.
//!
//! Design constraints, in order:
//!
//! * **Deterministic.** Every timestamp is the engine's logical clock
//!   (`ctx.now()`); no wall clock escapes into the stream, so a traced sim
//!   run replays bit-identically and `mck` can trace inside its DFS.
//! * **Cheap when off.** The [`Trace`] handle lives inside
//!   [`ClusterConfig`](crate::ClusterConfig) (every actor already clones the
//!   config), and all emission sites are guarded by [`Trace::is_on`]. With
//!   the `trace` cargo feature disabled the handle is a zero-sized struct and
//!   `is_on()` is a compile-time `false`, so the emission blocks — event
//!   construction included — are dead code the optimizer removes.
//! * **Digest-neutral.** `mck_digest` hashes protocol state, never the
//!   config, so attaching a sink cannot perturb model-checker fingerprints.
//!
//! Events cross process boundaries (a live `planetd --trace` per site) as
//! plain text lines — [`TraceEvent::to_line`] / [`TraceEvent::parse_line`] —
//! so traces from several processes can be concatenated and fed to the
//! auditor in any order; the auditor keys everything by (txn, key, version),
//! not by file position.

use std::fmt;

use planet_sim::{SimTime, SiteId};
use planet_storage::{Key, TxnId, VersionNo};

use crate::messages::Outcome;

/// One isolation-relevant step of an execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// The coordinator completed a transaction's reads: `txn` observed
    /// `key` at committed `version`. Emitted once per touched key (written
    /// keys are read too — the option's base version), at the coordinator's
    /// site.
    Read {
        /// The reading transaction.
        txn: TxnId,
        /// The key read.
        key: Key,
        /// Committed version observed (0 = never written).
        version: VersionNo,
        /// The coordinator's site.
        site: SiteId,
        /// The key's replica shard.
        shard: usize,
        /// Logical time of the observation.
        at: SimTime,
    },
    /// The key's master committed a new version on behalf of `txn` — the
    /// authoritative version-order event (masters serialize all commits to
    /// their keys).
    Commit {
        /// The writing transaction.
        txn: TxnId,
        /// The key written.
        key: Key,
        /// The new committed version number.
        version: VersionNo,
        /// The master's site.
        site: SiteId,
        /// The key's replica shard.
        shard: usize,
        /// Logical commit time at the master.
        at: SimTime,
    },
    /// A non-master replica installed a committed version by `Apply` state
    /// transfer (the `Store`/`Wal` install path). Redundant with the
    /// master's `Commit` for graph building, but it timestamps when each
    /// site's copy converged — the signal the fractured-read analysis of
    /// local reads rests on.
    Install {
        /// The transaction whose write was installed.
        txn: TxnId,
        /// The key.
        key: Key,
        /// The installed version number.
        version: VersionNo,
        /// The installing replica's site.
        site: SiteId,
        /// The key's replica shard.
        shard: usize,
        /// Logical install time.
        at: SimTime,
    },
    /// The coordinator reached a terminal outcome for `txn`.
    Finish {
        /// The transaction.
        txn: TxnId,
        /// Commit / abort / timeout.
        outcome: Outcome,
        /// Logical decision time.
        at: SimTime,
    },
}

impl TraceEvent {
    /// The transaction the event belongs to.
    pub fn txn(&self) -> TxnId {
        match self {
            TraceEvent::Read { txn, .. }
            | TraceEvent::Commit { txn, .. }
            | TraceEvent::Install { txn, .. }
            | TraceEvent::Finish { txn, .. } => *txn,
        }
    }

    /// The event's logical timestamp.
    pub fn at(&self) -> SimTime {
        match self {
            TraceEvent::Read { at, .. }
            | TraceEvent::Commit { at, .. }
            | TraceEvent::Install { at, .. }
            | TraceEvent::Finish { at, .. } => *at,
        }
    }

    /// Serialize to one text line (no trailing newline):
    ///
    /// ```text
    /// R t0.5 <key> <version> <site> <shard> <at_us>
    /// C t0.5 <key> <version> <site> <shard> <at_us>
    /// I t0.5 <key> <version> <site> <shard> <at_us>
    /// F t0.5 <C|A|T> <at_us>
    /// ```
    ///
    /// Keys are percent-escaped so whitespace in a key cannot break the
    /// field structure.
    pub fn to_line(&self) -> String {
        match self {
            TraceEvent::Read {
                txn,
                key,
                version,
                site,
                shard,
                at,
            } => format!(
                "R {txn} {} {version} {} {shard} {}",
                escape_key(key),
                site.0,
                at.as_micros()
            ),
            TraceEvent::Commit {
                txn,
                key,
                version,
                site,
                shard,
                at,
            } => format!(
                "C {txn} {} {version} {} {shard} {}",
                escape_key(key),
                site.0,
                at.as_micros()
            ),
            TraceEvent::Install {
                txn,
                key,
                version,
                site,
                shard,
                at,
            } => format!(
                "I {txn} {} {version} {} {shard} {}",
                escape_key(key),
                site.0,
                at.as_micros()
            ),
            TraceEvent::Finish { txn, outcome, at } => {
                let o = match outcome {
                    Outcome::Committed => "C",
                    Outcome::Aborted => "A",
                    Outcome::TimedOut => "T",
                };
                format!("F {txn} {o} {}", at.as_micros())
            }
        }
    }

    /// Parse a line produced by [`TraceEvent::to_line`]. Returns `None` on
    /// malformed input (blank lines and `#` comments included), so a
    /// truncated trace file degrades to a shorter history rather than an
    /// error.
    pub fn parse_line(line: &str) -> Option<TraceEvent> {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            return None;
        }
        let mut f = line.split_ascii_whitespace();
        let kind = f.next()?;
        let txn = parse_txn(f.next()?)?;
        match kind {
            "R" | "C" | "I" => {
                let key = unescape_key(f.next()?);
                let version: VersionNo = f.next()?.parse().ok()?;
                let site = SiteId(f.next()?.parse().ok()?);
                let shard: usize = f.next()?.parse().ok()?;
                let at = SimTime::from_micros(f.next()?.parse().ok()?);
                Some(match kind {
                    "R" => TraceEvent::Read {
                        txn,
                        key,
                        version,
                        site,
                        shard,
                        at,
                    },
                    "C" => TraceEvent::Commit {
                        txn,
                        key,
                        version,
                        site,
                        shard,
                        at,
                    },
                    _ => TraceEvent::Install {
                        txn,
                        key,
                        version,
                        site,
                        shard,
                        at,
                    },
                })
            }
            "F" => {
                let outcome = match f.next()? {
                    "C" => Outcome::Committed,
                    "A" => Outcome::Aborted,
                    "T" => Outcome::TimedOut,
                    _ => return None,
                };
                let at = SimTime::from_micros(f.next()?.parse().ok()?);
                Some(TraceEvent::Finish { txn, outcome, at })
            }
            _ => None,
        }
    }
}

fn escape_key(key: &Key) -> String {
    let s = key.as_str();
    if !s.bytes().any(|b| b == b' ' || b == b'%' || b == b'\n') {
        return s.to_string();
    }
    let mut out = String::with_capacity(s.len() + 4);
    for b in s.bytes() {
        match b {
            b' ' => out.push_str("%20"),
            b'%' => out.push_str("%25"),
            b'\n' => out.push_str("%0A"),
            _ => out.push(b as char),
        }
    }
    out
}

fn unescape_key(s: &str) -> Key {
    if !s.contains('%') {
        return Key::new(s);
    }
    let mut out = String::with_capacity(s.len());
    let mut bytes = s.bytes();
    while let Some(b) = bytes.next() {
        if b == b'%' {
            let hi = bytes.next().unwrap_or(b'0');
            let lo = bytes.next().unwrap_or(b'0');
            let hex = |c: u8| (c as char).to_digit(16).unwrap_or(0) as u8;
            out.push((hex(hi) * 16 + hex(lo)) as char);
        } else {
            out.push(b as char);
        }
    }
    Key::new(out)
}

fn parse_txn(s: &str) -> Option<TxnId> {
    let rest = s.strip_prefix('t')?;
    let (site, seq) = rest.split_once('.')?;
    Some(TxnId::new(site.parse().ok()?, seq.parse().ok()?))
}

/// Where trace events go. Implementations must be internally synchronized:
/// in live mode every replica/coordinator thread of a process shares one
/// sink.
#[cfg(feature = "trace")]
pub trait TraceSink: Send + Sync {
    /// Record one event.
    fn record(&self, event: TraceEvent);
}

/// A cheaply cloneable handle to an optional [`TraceSink`], carried inside
/// [`ClusterConfig`](crate::ClusterConfig) so it reaches every actor without
/// touching constructor signatures. [`Trace::off`] (the `Default`) records
/// nothing; with the `trace` cargo feature disabled the handle is a
/// zero-sized no-op regardless.
#[derive(Clone, Default)]
pub struct Trace {
    #[cfg(feature = "trace")]
    sink: Option<std::sync::Arc<dyn TraceSink>>,
}

impl Trace {
    /// A disabled handle (the default).
    pub fn off() -> Self {
        Trace::default()
    }
}

#[cfg(feature = "trace")]
impl Trace {
    /// A handle recording into `sink`.
    pub fn to(sink: std::sync::Arc<dyn TraceSink>) -> Self {
        Trace { sink: Some(sink) }
    }

    /// True if a sink is attached. Emission sites branch on this before
    /// constructing the event, so a disabled trace costs one null check.
    #[inline]
    pub fn is_on(&self) -> bool {
        self.sink.is_some()
    }

    /// Record one event (no-op without a sink).
    #[inline]
    pub fn emit(&self, event: TraceEvent) {
        if let Some(sink) = &self.sink {
            sink.record(event);
        }
    }
}

#[cfg(not(feature = "trace"))]
impl Trace {
    /// Tracing is compiled out: always `false`.
    #[inline]
    pub fn is_on(&self) -> bool {
        false
    }

    /// Tracing is compiled out: a no-op.
    #[inline]
    pub fn emit(&self, _event: TraceEvent) {}
}

impl fmt::Debug for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_on() {
            f.write_str("Trace(on)")
        } else {
            f.write_str("Trace(off)")
        }
    }
}

/// An in-memory sink: events in arrival order behind a mutex. The sim-side
/// capture buffer (`planet-audit --run`, the mck predicate).
#[cfg(feature = "trace")]
#[derive(Default)]
pub struct VecSink {
    events: std::sync::Mutex<Vec<TraceEvent>>,
}

#[cfg(feature = "trace")]
impl VecSink {
    /// An empty sink.
    pub fn new() -> Self {
        VecSink::default()
    }

    /// Drain all recorded events.
    pub fn take(&self) -> Vec<TraceEvent> {
        match self.events.lock() {
            Ok(mut g) => std::mem::take(&mut *g),
            Err(_) => Vec::new(),
        }
    }

    /// Copy the recorded events without draining.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        match self.events.lock() {
            Ok(g) => g.clone(),
            Err(_) => Vec::new(),
        }
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.events.lock().map(|g| g.len()).unwrap_or(0)
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(feature = "trace")]
impl TraceSink for VecSink {
    fn record(&self, event: TraceEvent) {
        if let Ok(mut g) = self.events.lock() {
            g.push(event);
        }
    }
}

/// A line-per-event file sink for live runs (`planetd --trace`,
/// `planet-load --trace`). Buffered; flushed on drop.
#[cfg(feature = "trace")]
pub struct FileSink {
    writer: std::sync::Mutex<std::io::BufWriter<std::fs::File>>,
}

#[cfg(feature = "trace")]
impl FileSink {
    /// Create (truncate) `path` and stream events into it.
    pub fn create(path: &std::path::Path) -> std::io::Result<Self> {
        let file = std::fs::File::create(path)?;
        Ok(FileSink {
            writer: std::sync::Mutex::new(std::io::BufWriter::new(file)),
        })
    }

    /// Flush buffered lines to the OS.
    pub fn flush(&self) -> std::io::Result<()> {
        use std::io::Write;
        match self.writer.lock() {
            Ok(mut g) => g.flush(),
            Err(_) => Ok(()),
        }
    }
}

#[cfg(feature = "trace")]
impl TraceSink for FileSink {
    fn record(&self, event: TraceEvent) {
        use std::io::Write;
        if let Ok(mut g) = self.writer.lock() {
            let _ = writeln!(g, "{}", event.to_line());
        }
    }
}

#[cfg(feature = "trace")]
impl Drop for FileSink {
    fn drop(&mut self) {
        let _ = self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(e: TraceEvent) {
        let line = e.to_line();
        assert_eq!(TraceEvent::parse_line(&line), Some(e), "line = {line:?}");
    }

    #[test]
    fn line_codec_roundtrips_every_variant() {
        roundtrip(TraceEvent::Read {
            txn: TxnId::new(2, 17),
            key: Key::new("stock:42"),
            version: 3,
            site: SiteId(1),
            shard: 2,
            at: SimTime::from_micros(123_456),
        });
        roundtrip(TraceEvent::Commit {
            txn: TxnId::new(0, 0),
            key: Key::new("a"),
            version: 1,
            site: SiteId(0),
            shard: 0,
            at: SimTime::ZERO,
        });
        roundtrip(TraceEvent::Install {
            txn: TxnId::new(255, u64::MAX),
            key: Key::new("k"),
            version: u64::MAX,
            site: SiteId(255),
            shard: 31,
            at: SimTime::from_secs(9),
        });
        for outcome in [Outcome::Committed, Outcome::Aborted, Outcome::TimedOut] {
            roundtrip(TraceEvent::Finish {
                txn: TxnId::new(1, 5),
                outcome,
                at: SimTime::from_millis(7),
            });
        }
    }

    #[test]
    fn keys_with_spaces_and_percents_survive() {
        roundtrip(TraceEvent::Read {
            txn: TxnId::new(0, 1),
            key: Key::new("odd key %20 name"),
            version: 1,
            site: SiteId(0),
            shard: 0,
            at: SimTime::ZERO,
        });
    }

    #[test]
    fn malformed_lines_parse_to_none() {
        for line in [
            "",
            "# comment",
            "R",
            "R notatxn k 1 0 0 0",
            "F t0.1 X 0",
            "Z t0.1 k 1 0 0 0",
            "R t0.1 k notanumber 0 0 0",
        ] {
            assert_eq!(TraceEvent::parse_line(line), None, "line = {line:?}");
        }
    }

    #[test]
    fn accessors() {
        let e = TraceEvent::Finish {
            txn: TxnId::new(3, 9),
            outcome: Outcome::Committed,
            at: SimTime::from_micros(42),
        };
        assert_eq!(e.txn(), TxnId::new(3, 9));
        assert_eq!(e.at(), SimTime::from_micros(42));
    }

    #[cfg(feature = "trace")]
    #[test]
    fn vec_sink_records_in_order() {
        use std::sync::Arc;
        let sink = Arc::new(VecSink::new());
        let trace = Trace::to(sink.clone());
        assert!(trace.is_on());
        assert!(!Trace::off().is_on());
        for seq in 0..3 {
            trace.emit(TraceEvent::Finish {
                txn: TxnId::new(0, seq),
                outcome: Outcome::Committed,
                at: SimTime::from_micros(seq),
            });
        }
        assert_eq!(sink.len(), 3);
        let events = sink.take();
        assert_eq!(events.len(), 3);
        assert!(sink.is_empty());
        assert_eq!(events[2].txn(), TxnId::new(0, 2));
    }
}
