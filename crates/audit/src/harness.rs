//! Deterministic sim-run harness: execute a named workload from
//! `planet-workload`'s anomaly registry on a traced in-process cluster and
//! return the captured trace.
//!
//! This is what `planet-audit --run <workload>` (and CI) uses: no external
//! processes, one seed, bit-identical traces on every run. Transactions are
//! scheduled in overlapping waves across the sites' coordinators so the
//! conflict windows the anomaly recipes need actually occur — consecutive
//! transactions (e.g. a write-skew mirror pair) land on *different* sites at
//! the *same* submit time, well inside one WAN round trip of each other.

use std::sync::Arc;

use planet_mdcc::{
    build_sim, ClusterConfig, Outcome, Protocol, TestClient, Trace, TraceEvent, TxnSpec, VecSink,
};
use planet_sim::{DetRng, NetworkModel, SimTime};
use planet_workload::SpecGen;

/// Configuration for one harness run.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Workload name (see [`planet_workload::ANOMALY_WORKLOADS`]).
    pub workload: String,
    /// Transactions to submit.
    pub txns: usize,
    /// Sites in the cluster.
    pub sites: usize,
    /// Replica shards per site.
    pub shards: usize,
    /// Commit protocol.
    pub protocol: Protocol,
    /// Seed for both workload generation and the network model.
    pub seed: u64,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            workload: "ycsb".to_string(),
            txns: 200,
            sites: 3,
            shards: 1,
            protocol: Protocol::Fast,
            seed: 0xA0D17,
        }
    }
}

/// What a harness run produced.
#[derive(Debug)]
pub struct RunOutcome {
    /// The captured trace, in emission order.
    pub events: Vec<TraceEvent>,
    /// Transactions that committed.
    pub committed: usize,
    /// Transactions that aborted or timed out.
    pub aborted: usize,
    /// The anomaly the workload is designed to provoke, if any.
    pub expected_anomaly: Option<&'static str>,
}

/// Submission cadence: one wave of (one txn per site) every 5 ms. Far inside
/// the ~80 ms WAN commit latency, so tens of transactions overlap (the
/// conflict windows the recipes need) — but long enough that a few-hundred-txn
/// run outlasts commit+apply propagation, so late transactions *read* earlier
/// committed versions (`wr`/`rw` edges and fractured-read windows need that).
const WAVE_GAP_MS: u64 = 5;

/// Run `cfg.workload` on a traced sim cluster and capture the trace.
///
/// Returns `Err` for an unknown workload name.
pub fn run_workload(cfg: &RunConfig) -> Result<RunOutcome, String> {
    let mut gen = SpecGen::by_name(&cfg.workload).ok_or_else(|| {
        format!(
            "unknown workload {:?} (expected one of {})",
            cfg.workload,
            planet_workload::ANOMALY_WORKLOADS.join(", ")
        )
    })?;
    let expected_anomaly = gen.expected_anomaly();
    assert!(cfg.sites >= 1 && cfg.txns >= 1);

    // A WAN-ish topology: 80 ms RTT between sites, 0.5 ms locally, with the
    // default jitter model — the apply-propagation raciness that local
    // reads (and therefore fractured reads) depend on.
    let rtt: Vec<Vec<f64>> = (0..cfg.sites)
        .map(|i| {
            (0..cfg.sites)
                .map(|j| if i == j { 0.5 } else { 80.0 })
                .collect()
        })
        .collect();
    let net = NetworkModel::from_rtt_ms(&rtt);

    let sink = Arc::new(VecSink::new());
    let mut config = ClusterConfig::new(cfg.sites, cfg.protocol).with_shards(cfg.shards.max(1));
    config.trace = Trace::to(sink.clone());

    let (mut sim, cluster) = build_sim(net, config, cfg.seed);

    // Scripts: txn i goes to site (i % sites) at wave (i / sites).
    let mut rng = DetRng::new(cfg.seed ^ 0x5EC5);
    let mut scripts: Vec<Vec<(SimTime, TxnSpec)>> = vec![Vec::new(); cfg.sites];
    let mut last_wave = 0;
    for i in 0..cfg.txns {
        let wave = (i / cfg.sites) as u64;
        last_wave = wave;
        let at = SimTime::from_millis(wave * WAVE_GAP_MS);
        scripts[i % cfg.sites].push((at, gen.next_spec(&mut rng)));
    }
    let clients: Vec<_> = scripts
        .into_iter()
        .enumerate()
        .map(|(site, script)| {
            let client = TestClient::new(cluster.coordinators[site], script);
            sim.add_actor(planet_sim::SiteId(site as u8), Box::new(client))
        })
        .collect();

    // Every transaction resolves within the 10 s server-side timeout; one
    // extra timeout covers the stragglers' Decide/Apply propagation.
    sim.run_until(SimTime::from_millis(last_wave * WAVE_GAP_MS).add_secs(22));

    let (mut committed, mut aborted) = (0, 0);
    for id in clients {
        let client = sim
            .actor_as::<TestClient>(id)
            .ok_or("client actor vanished")?;
        for done in &client.completed {
            match done.outcome {
                Outcome::Committed => committed += 1,
                _ => aborted += 1,
            }
        }
    }
    Ok(RunOutcome {
        events: sink.take(),
        committed,
        aborted,
        expected_anomaly,
    })
}

/// Tiny helper: `SimTime + whole seconds` (keeps the call site readable).
trait AddSecs {
    fn add_secs(self, s: u64) -> SimTime;
}

impl AddSecs for SimTime {
    fn add_secs(self, s: u64) -> SimTime {
        SimTime::from_micros(self.as_micros() + s * 1_000_000)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::audit;

    #[test]
    fn harness_runs_are_deterministic() {
        let cfg = RunConfig {
            workload: "write-skew".into(),
            txns: 24,
            ..RunConfig::default()
        };
        let a = run_workload(&cfg).expect("known workload");
        let b = run_workload(&cfg).expect("known workload");
        assert_eq!(a.events, b.events, "same seed, same trace");
        assert!(a.committed > 0);
    }

    #[test]
    fn unknown_workload_is_an_error() {
        let cfg = RunConfig {
            workload: "nope".into(),
            ..RunConfig::default()
        };
        assert!(run_workload(&cfg).is_err());
    }

    #[test]
    fn write_skew_run_provokes_write_skew() {
        let out = run_workload(&RunConfig {
            workload: "write-skew".into(),
            txns: 60,
            ..RunConfig::default()
        })
        .expect("known workload");
        let v = audit(&out.events);
        assert!(
            v.has("write-skew"),
            "expected a write-skew witness; verdict: {}",
            v.summary()
        );
    }

    #[test]
    fn snapshot_mix_run_provokes_fractured_reads() {
        let out = run_workload(&RunConfig {
            workload: "snapshot-mix".into(),
            txns: 300,
            ..RunConfig::default()
        })
        .expect("known workload");
        let v = audit(&out.events);
        assert!(
            v.has("fractured-read"),
            "expected a fractured-read witness; verdict: {}",
            v.summary()
        );
    }

    #[test]
    fn counter_fanout_run_provokes_g2() {
        let out = run_workload(&RunConfig {
            workload: "counter-fanout".into(),
            txns: 120,
            ..RunConfig::default()
        })
        .expect("known workload");
        let v = audit(&out.events);
        assert!(v.has("g2"), "expected a G2 cycle; verdict: {}", v.summary());
    }

    #[test]
    fn ycsb_control_run_is_clean() {
        let out = run_workload(&RunConfig {
            workload: "ycsb".into(),
            txns: 120,
            ..RunConfig::default()
        })
        .expect("known workload");
        let v = audit(&out.events);
        assert!(v.clean(), "serializable control flagged: {}", v.summary());
        assert!(v.committed_txns > 0);
    }
}
