//! # planet-audit
//!
//! A dynamic isolation auditor for MDCC executions, in the spirit of
//! IsoPredict-style dependency analysis: replay a recorded
//! [`TraceEvent`] stream into an Adya-style direct serialization graph
//! (DSG) and search it for unserializable behavior.
//!
//! The pipeline:
//!
//! 1. **History** ([`History::build`]) — fold the events into per-key
//!    committed version orders (`Commit`/`Install`), per-transaction read
//!    and write sets, and the committed-transaction set (`Finish` plus any
//!    transaction that minted a version: a committed version implies a
//!    commit decision even if the coordinator's `Finish` line was lost).
//! 2. **Edges** ([`History::edges`]) — derive the three Adya dependencies
//!    between distinct committed transactions:
//!    * `wr` (read-from): W committed version `v` of `k`, R read `(k, v)`;
//!    * `ww` (version order): W1's version of `k` immediately precedes
//!      W2's;
//!    * `rw` (anti-dependency): R read `(k, v)` and W wrote the first
//!      committed version after `v` — R logically ran before the write it
//!      failed to see.
//! 3. **Verdict** ([`audit`]) — strongly connected components of the edge
//!    graph give the unserializable cycles: a cycle with no `rw` edge is
//!    Adya's **G1c**, with an `rw` edge **G2**, and the special two-cycle of
//!    pure anti-dependencies is reported as **write-skew**. A separate
//!    read-atomicity pass flags **fractured-read**: a reader that observed
//!    some of a multi-key writer's versions at full freshness and another
//!    of its keys at an older version.
//!
//! Everything is deterministic (`BTreeMap`-ordered) so the same trace
//! always produces the identical verdict, byte for byte — the property the
//! CI gate and the mck reachability predicate rest on.

#![warn(missing_docs)]

pub mod harness;

use std::collections::{BTreeMap, BTreeSet};

use planet_mdcc::{Outcome, TraceEvent};
use planet_storage::{Key, TxnId, VersionNo};

/// The kind of a dependency edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum EdgeKind {
    /// Read-from: the writer's version was read by the target.
    Wr,
    /// Version order: the writer's version immediately precedes the
    /// target's on the same key.
    Ww,
    /// Anti-dependency: the reader missed the target's later version.
    Rw,
}

impl EdgeKind {
    /// Lowercase name used in JSON ("wr" / "ww" / "rw").
    pub fn name(&self) -> &'static str {
        match self {
            EdgeKind::Wr => "wr",
            EdgeKind::Ww => "ww",
            EdgeKind::Rw => "rw",
        }
    }
}

/// One dependency edge of the serialization graph.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Edge {
    /// Source transaction.
    pub from: TxnId,
    /// Target transaction.
    pub to: TxnId,
    /// Dependency kind.
    pub kind: EdgeKind,
    /// The key the dependency runs through.
    pub key: Key,
}

/// One detected anomaly, with a replayable transaction/edge witness.
#[derive(Debug, Clone)]
pub struct Anomaly {
    /// `"g1c"`, `"g2"`, `"write-skew"` or `"fractured-read"`.
    pub kind: &'static str,
    /// The offending transactions (cycle order for cycles; `[writer,
    /// reader]` for fractured reads).
    pub txns: Vec<TxnId>,
    /// The witness edges: the dependency cycle, or for fractured reads the
    /// read-from edges that were observed fresh.
    pub edges: Vec<Edge>,
    /// Human-readable explanation of the witness.
    pub note: String,
}

/// The rebuilt execution history.
#[derive(Debug, Default)]
pub struct History {
    /// Transactions known to have committed.
    pub committed: BTreeSet<TxnId>,
    /// Transactions that finished without committing (abort/timeout).
    pub not_committed: BTreeSet<TxnId>,
    /// Per-transaction reads: key → committed version observed.
    pub reads: BTreeMap<TxnId, BTreeMap<Key, VersionNo>>,
    /// Per-transaction committed writes: key → version minted.
    pub writes: BTreeMap<TxnId, BTreeMap<Key, VersionNo>>,
    /// Per-key committed version order: version → writer.
    pub versions: BTreeMap<Key, BTreeMap<VersionNo, TxnId>>,
    /// Events folded in (diagnostic).
    pub events: usize,
}

impl History {
    /// Fold a trace (any event order, traces from several processes
    /// concatenated) into a history.
    pub fn build(events: &[TraceEvent]) -> Self {
        let mut h = History {
            events: events.len(),
            ..History::default()
        };
        for e in events {
            match e {
                TraceEvent::Read {
                    txn, key, version, ..
                } => {
                    h.reads
                        .entry(*txn)
                        .or_default()
                        .entry(key.clone())
                        .or_insert(*version);
                }
                // A minted or installed version is commit evidence even if
                // the coordinator's Finish line is missing (per-site trace
                // files): masters only commit on a commit decision.
                TraceEvent::Commit {
                    txn, key, version, ..
                }
                | TraceEvent::Install {
                    txn, key, version, ..
                } => {
                    h.versions
                        .entry(key.clone())
                        .or_default()
                        .insert(*version, *txn);
                    h.writes
                        .entry(*txn)
                        .or_default()
                        .insert(key.clone(), *version);
                    h.committed.insert(*txn);
                }
                TraceEvent::Finish { txn, outcome, .. } => match outcome {
                    Outcome::Committed => {
                        h.committed.insert(*txn);
                    }
                    Outcome::Aborted | Outcome::TimedOut => {
                        h.not_committed.insert(*txn);
                    }
                },
            }
        }
        // Commit evidence (a version in the committed order) outranks a
        // Finish(Aborted/TimedOut) line — it cannot happen in a well-formed
        // trace, but merged partial traces should resolve deterministically.
        for txn in &h.committed {
            h.not_committed.remove(txn);
        }
        h
    }

    /// Derive the dependency edges between distinct committed transactions,
    /// deduplicated and deterministically ordered.
    pub fn edges(&self) -> Vec<Edge> {
        let mut edges = BTreeSet::new();
        // ww: consecutive committed versions of each key.
        for (key, order) in &self.versions {
            let mut prev: Option<TxnId> = None;
            for txn in order.values() {
                if let Some(p) = prev {
                    if p != *txn {
                        edges.insert(Edge {
                            from: p,
                            to: *txn,
                            kind: EdgeKind::Ww,
                            key: key.clone(),
                        });
                    }
                }
                prev = Some(*txn);
            }
        }
        // wr and rw from each committed reader's observations.
        for (reader, reads) in &self.reads {
            if !self.committed.contains(reader) {
                continue;
            }
            for (key, version) in reads {
                let Some(order) = self.versions.get(key) else {
                    continue;
                };
                if *version > 0 {
                    if let Some(writer) = order.get(version) {
                        if writer != reader {
                            edges.insert(Edge {
                                from: *writer,
                                to: *reader,
                                kind: EdgeKind::Wr,
                                key: key.clone(),
                            });
                        }
                    }
                }
                // The first committed version after the one read: the write
                // this reader failed to observe. If that writer is the
                // reader itself (it read its own base version) there is no
                // anti-dependency.
                if let Some((_, writer)) = order.range(version + 1..).next() {
                    if writer != reader {
                        edges.insert(Edge {
                            from: *reader,
                            to: *writer,
                            kind: EdgeKind::Rw,
                            key: key.clone(),
                        });
                    }
                }
            }
        }
        edges.into_iter().collect()
    }
}

/// The auditor's report over one trace.
#[derive(Debug, Clone)]
pub struct Verdict {
    /// Events folded in.
    pub events: usize,
    /// Committed transactions in the history.
    pub committed_txns: usize,
    /// Finished-without-commit transactions (context, not part of the DSG).
    pub aborted_txns: usize,
    /// Edge counts by kind: (wr, ww, rw).
    pub edge_counts: (usize, usize, usize),
    /// Detected anomalies, most fundamental first (cycles, then fractured
    /// reads), capped at [`ANOMALY_CAP`] per class.
    pub anomalies: Vec<Anomaly>,
}

/// Reported anomalies are capped per class so a pathological trace cannot
/// produce an unbounded report; the counts still reflect the full graph.
pub const ANOMALY_CAP: usize = 16;

impl Verdict {
    /// True if no anomaly was detected.
    pub fn clean(&self) -> bool {
        self.anomalies.is_empty()
    }

    /// True if an anomaly of `kind` was detected.
    pub fn has(&self, kind: &str) -> bool {
        self.anomalies.iter().any(|a| a.kind == kind)
    }

    /// Render as JSON (stable field order, deterministic content).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str("{\n");
        out.push_str(&format!("  \"events\": {},\n", self.events));
        out.push_str(&format!("  \"committed_txns\": {},\n", self.committed_txns));
        out.push_str(&format!("  \"aborted_txns\": {},\n", self.aborted_txns));
        let (wr, ww, rw) = self.edge_counts;
        out.push_str(&format!(
            "  \"edges\": {{ \"wr\": {wr}, \"ww\": {ww}, \"rw\": {rw} }},\n"
        ));
        out.push_str(&format!("  \"clean\": {},\n", self.clean()));
        out.push_str("  \"anomalies\": [");
        for (i, a) in self.anomalies.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    { \"kind\": \"");
            out.push_str(a.kind);
            out.push_str("\", \"txns\": [");
            for (j, t) in a.txns.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!("\"{t}\""));
            }
            out.push_str("], \"witness\": [");
            for (j, e) in a.edges.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!(
                    "{{ \"from\": \"{}\", \"to\": \"{}\", \"kind\": \"{}\", \"key\": \"{}\" }}",
                    e.from,
                    e.to,
                    e.kind.name(),
                    json_escape(e.key.as_str())
                ));
            }
            out.push_str("], \"note\": \"");
            out.push_str(&json_escape(&a.note));
            out.push_str("\" }");
        }
        if !self.anomalies.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }

    /// One-line human summary.
    pub fn summary(&self) -> String {
        let (wr, ww, rw) = self.edge_counts;
        if self.clean() {
            format!(
                "clean: {} committed txns, {} events, edges wr={wr} ww={ww} rw={rw}, no anomalies",
                self.committed_txns, self.events
            )
        } else {
            let kinds: Vec<&str> = self.anomalies.iter().map(|a| a.kind).collect();
            format!(
                "ANOMALIES [{}]: {} committed txns, {} events, edges wr={wr} ww={ww} rw={rw}",
                kinds.join(", "),
                self.committed_txns,
                self.events
            )
        }
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Audit a trace: rebuild the history, derive the dependency graph, search
/// for cycles and fractured reads.
pub fn audit(events: &[TraceEvent]) -> Verdict {
    let history = History::build(events);
    audit_history(&history)
}

/// Audit an already-built [`History`].
pub fn audit_history(history: &History) -> Verdict {
    let edges = history.edges();
    let mut counts = (0usize, 0usize, 0usize);
    for e in &edges {
        match e.kind {
            EdgeKind::Wr => counts.0 += 1,
            EdgeKind::Ww => counts.1 += 1,
            EdgeKind::Rw => counts.2 += 1,
        }
    }
    let mut anomalies = cycle_anomalies(&edges);
    anomalies.extend(fractured_reads(history));
    Verdict {
        events: history.events,
        committed_txns: history.committed.len(),
        aborted_txns: history.not_committed.len(),
        edge_counts: counts,
        anomalies,
    }
}

// ---- cycle search ------------------------------------------------------

/// Dense node indexing for the SCC passes.
struct Graph {
    nodes: Vec<TxnId>,
    /// Outgoing edge indices per node.
    out: Vec<Vec<usize>>,
    /// Incoming edge indices per node.
    inc: Vec<Vec<usize>>,
    /// (from, to) as node indices, parallel to `edges`.
    ends: Vec<(usize, usize)>,
}

fn build_graph(edges: &[Edge]) -> Graph {
    let mut index: BTreeMap<TxnId, usize> = BTreeMap::new();
    for e in edges {
        let n = index.len();
        index.entry(e.from).or_insert(n);
        let n = index.len();
        index.entry(e.to).or_insert(n);
    }
    let nodes: Vec<TxnId> = {
        let mut v = vec![TxnId::new(0, 0); index.len()];
        for (t, i) in &index {
            v[*i] = *t;
        }
        v
    };
    let mut out = vec![Vec::new(); nodes.len()];
    let mut inc = vec![Vec::new(); nodes.len()];
    let mut ends = Vec::with_capacity(edges.len());
    for (ei, e) in edges.iter().enumerate() {
        let (f, t) = (index[&e.from], index[&e.to]);
        out[f].push(ei);
        inc[t].push(ei);
        ends.push((f, t));
    }
    Graph {
        nodes,
        out,
        inc,
        ends,
    }
}

/// Kosaraju SCC with explicit stacks (no recursion — a long serializable
/// history is a deep DAG). Returns each node's component id.
fn sccs(g: &Graph) -> Vec<usize> {
    let n = g.nodes.len();
    // Pass 1: forward DFS finish order.
    let mut finish = Vec::with_capacity(n);
    let mut seen = vec![false; n];
    for start in 0..n {
        if seen[start] {
            continue;
        }
        // Stack of (node, next out-edge position).
        let mut stack = vec![(start, 0usize)];
        seen[start] = true;
        while let Some(&mut (v, ref mut pos)) = stack.last_mut() {
            if *pos < g.out[v].len() {
                let ei = g.out[v][*pos];
                *pos += 1;
                let (_, w) = g.ends[ei];
                if !seen[w] {
                    seen[w] = true;
                    stack.push((w, 0));
                }
            } else {
                finish.push(v);
                stack.pop();
            }
        }
    }
    // Pass 2: reverse DFS in reverse finish order.
    let mut comp = vec![usize::MAX; n];
    let mut next_comp = 0;
    for &start in finish.iter().rev() {
        if comp[start] != usize::MAX {
            continue;
        }
        let mut stack = vec![start];
        comp[start] = next_comp;
        while let Some(v) = stack.pop() {
            for &ei in &g.inc[v] {
                let (w, _) = g.ends[ei];
                if comp[w] == usize::MAX {
                    comp[w] = next_comp;
                    stack.push(w);
                }
            }
        }
        next_comp += 1;
    }
    comp
}

/// Find a shortest cycle through `start` using only `allowed` edges
/// (BFS over edge indices); returns the edge index path.
fn shortest_cycle(g: &Graph, start: usize, allowed: &dyn Fn(usize) -> bool) -> Option<Vec<usize>> {
    use std::collections::VecDeque;
    let n = g.nodes.len();
    let mut parent_edge: Vec<Option<usize>> = vec![None; n];
    let mut visited = vec![false; n];
    let mut queue = VecDeque::new();
    visited[start] = true;
    queue.push_back(start);
    while let Some(v) = queue.pop_front() {
        for &ei in &g.out[v] {
            if !allowed(ei) {
                continue;
            }
            let (_, w) = g.ends[ei];
            if w == start {
                // Close the cycle: walk parents back to start.
                let mut path = vec![ei];
                let mut cur = v;
                while cur != start {
                    let pe = parent_edge[cur]?;
                    path.push(pe);
                    cur = g.ends[pe].0;
                }
                path.reverse();
                return Some(path);
            }
            if !visited[w] {
                visited[w] = true;
                parent_edge[w] = Some(ei);
                queue.push_back(w);
            }
        }
    }
    None
}

/// Classify every non-trivial SCC into one anomaly with a witness cycle.
fn cycle_anomalies(edges: &[Edge]) -> Vec<Anomaly> {
    let g = build_graph(edges);
    let comp = sccs(&g);
    // Group nodes per component.
    let mut members: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for (v, &c) in comp.iter().enumerate() {
        members.entry(c).or_default().push(v);
    }
    let mut anomalies = Vec::new();
    // Deterministic order: by smallest member txn.
    let mut groups: Vec<Vec<usize>> = members.into_values().filter(|m| m.len() > 1).collect();
    groups.sort_by_key(|m| m.iter().map(|&v| g.nodes[v]).min());
    for group in groups {
        if anomalies.len() >= ANOMALY_CAP {
            break;
        }
        let in_scc: BTreeSet<usize> = group.iter().copied().collect();
        let scc_edge = |ei: usize| {
            let (f, t) = g.ends[ei];
            in_scc.contains(&f) && in_scc.contains(&t)
        };
        // Prefer the sharpest witness: a pure anti-dependency two-cycle.
        let mut witness: Option<(Vec<usize>, &'static str)> = None;
        'skew: for &v in &group {
            for &ei in &g.out[v] {
                if edges[ei].kind != EdgeKind::Rw || !scc_edge(ei) {
                    continue;
                }
                let (_, w) = g.ends[ei];
                for &back in &g.out[w] {
                    if edges[back].kind == EdgeKind::Rw && g.ends[back].1 == v && v < w {
                        witness = Some((vec![ei, back], "write-skew"));
                        break 'skew;
                    }
                }
            }
        }
        let (path, kind) = match witness {
            Some(w) => w,
            None => {
                let start = group
                    .iter()
                    .copied()
                    .min_by_key(|&v| g.nodes[v])
                    .unwrap_or(group[0]);
                let Some(path) = shortest_cycle(&g, start, &scc_edge) else {
                    continue; // unreachable for a >1-node SCC
                };
                let kind = if path.iter().any(|&ei| edges[ei].kind == EdgeKind::Rw) {
                    "g2"
                } else {
                    "g1c"
                };
                (path, kind)
            }
        };
        let cycle: Vec<Edge> = path.iter().map(|&ei| edges[ei].clone()).collect();
        let txns: Vec<TxnId> = cycle.iter().map(|e| e.from).collect();
        let note = format!(
            "{} transactions in an unserializable cycle: {}",
            txns.len(),
            cycle
                .iter()
                .map(|e| format!("{} -{}-> {} (key {})", e.from, e.kind.name(), e.to, e.key))
                .collect::<Vec<_>>()
                .join("; ")
        );
        anomalies.push(Anomaly {
            kind,
            txns,
            edges: cycle,
            note,
        });
    }
    anomalies
}

// ---- read atomicity ----------------------------------------------------

/// Fractured (non-atomic) reads: R observed some of multi-key writer W's
/// versions fresh and another of W's keys at an older version.
fn fractured_reads(h: &History) -> Vec<Anomaly> {
    // key → committed readers of that key (candidate pruning).
    let mut readers_of: BTreeMap<&Key, Vec<TxnId>> = BTreeMap::new();
    for (reader, reads) in &h.reads {
        if !h.committed.contains(reader) {
            continue;
        }
        for key in reads.keys() {
            readers_of.entry(key).or_default().push(*reader);
        }
    }
    let mut anomalies = Vec::new();
    for (writer, writes) in &h.writes {
        if writes.len() < 2 || anomalies.len() >= ANOMALY_CAP {
            continue;
        }
        let mut candidates: BTreeSet<TxnId> = BTreeSet::new();
        for key in writes.keys() {
            if let Some(rs) = readers_of.get(key) {
                candidates.extend(rs.iter().copied());
            }
        }
        candidates.remove(writer);
        for reader in candidates {
            if anomalies.len() >= ANOMALY_CAP {
                break;
            }
            let reads = &h.reads[&reader];
            let mut fresh: Vec<(&Key, VersionNo)> = Vec::new();
            let mut stale: Vec<(&Key, VersionNo, VersionNo)> = Vec::new();
            for (key, wv) in writes {
                match reads.get(key) {
                    Some(rv) if rv == wv => fresh.push((key, *wv)),
                    Some(rv) if rv < wv => stale.push((key, *rv, *wv)),
                    _ => {}
                }
            }
            if fresh.is_empty() || stale.is_empty() {
                continue;
            }
            let edges: Vec<Edge> = fresh
                .iter()
                .map(|(key, _)| Edge {
                    from: *writer,
                    to: reader,
                    kind: EdgeKind::Wr,
                    key: (*key).clone(),
                })
                .collect();
            let (sk, srv, swv) = stale[0];
            let note = format!(
                "{reader} read {}@v{} from {writer} but {sk}@v{srv} predates {writer}'s v{swv}: \
                 non-atomic observation of a {}-key transaction",
                fresh[0].0,
                fresh[0].1,
                writes.len()
            );
            anomalies.push(Anomaly {
                kind: "fractured-read",
                txns: vec![*writer, reader],
                edges,
                note,
            });
        }
    }
    anomalies
}

#[cfg(test)]
mod tests {
    use super::*;
    use planet_sim::{SimTime, SiteId};

    fn t(site: u8, seq: u64) -> TxnId {
        TxnId::new(site, seq)
    }

    fn commit(txn: TxnId, key: &str, version: VersionNo) -> TraceEvent {
        TraceEvent::Commit {
            txn,
            key: Key::new(key),
            version,
            site: SiteId(0),
            shard: 0,
            at: SimTime::ZERO,
        }
    }

    fn read(txn: TxnId, key: &str, version: VersionNo) -> TraceEvent {
        TraceEvent::Read {
            txn,
            key: Key::new(key),
            version,
            site: SiteId(0),
            shard: 0,
            at: SimTime::ZERO,
        }
    }

    fn finish(txn: TxnId, outcome: Outcome) -> TraceEvent {
        TraceEvent::Finish {
            txn,
            outcome,
            at: SimTime::ZERO,
        }
    }

    #[test]
    fn serializable_history_is_clean() {
        // T1 writes a@1; T2 reads a@1 and writes a@2; T3 reads a@2.
        let (t1, t2, t3) = (t(0, 1), t(0, 2), t(1, 1));
        let events = vec![
            read(t1, "a", 0),
            commit(t1, "a", 1),
            finish(t1, Outcome::Committed),
            read(t2, "a", 1),
            commit(t2, "a", 2),
            finish(t2, Outcome::Committed),
            read(t3, "a", 2),
            finish(t3, Outcome::Committed),
        ];
        let v = audit(&events);
        assert!(v.clean(), "{:?}", v.anomalies);
        assert_eq!(v.committed_txns, 3);
        // wr: t1→t2 (a@1), t2→t3 (a@2); ww: t1→t2; rw: t1→t2? t1 read a@0,
        // next version is its own → skipped; no rw from t3 (nothing newer).
        assert_eq!(v.edge_counts, (2, 1, 0));
    }

    #[test]
    fn write_skew_two_cycle_detected() {
        // T1 reads b@0 writes a@1; T2 reads a@0 writes b@1: rw both ways.
        let (t1, t2) = (t(0, 1), t(1, 1));
        let events = vec![
            read(t1, "b", 0),
            read(t1, "a", 0),
            commit(t1, "a", 1),
            finish(t1, Outcome::Committed),
            read(t2, "a", 0),
            read(t2, "b", 0),
            commit(t2, "b", 1),
            finish(t2, Outcome::Committed),
        ];
        let v = audit(&events);
        assert!(v.has("write-skew"), "{:?}", v.anomalies);
        let a = &v.anomalies[0];
        assert_eq!(a.edges.len(), 2);
        assert!(a.edges.iter().all(|e| e.kind == EdgeKind::Rw));
        let names: BTreeSet<TxnId> = a.txns.iter().copied().collect();
        assert_eq!(names, BTreeSet::from([t1, t2]));
    }

    #[test]
    fn lost_update_cycle_is_g2() {
        // Classic lost update: both read a@0, both commit (v1, v2).
        // ww t1→t2 plus rw t2→t1 (t2 read 0, missed t1's v1).
        let (t1, t2) = (t(0, 1), t(1, 1));
        let events = vec![
            read(t1, "a", 0),
            read(t2, "a", 0),
            commit(t1, "a", 1),
            commit(t2, "a", 2),
            finish(t1, Outcome::Committed),
            finish(t2, Outcome::Committed),
        ];
        let v = audit(&events);
        assert!(v.has("g2"), "{:?}", v.anomalies);
        assert!(!v.has("write-skew"));
    }

    #[test]
    fn wr_ww_only_cycle_is_g1c() {
        // Force a pure ww/wr cycle: t1 writes a then t2 overwrites a
        // (ww t1→t2) and t1 reads t2's write of b (wr t2→t1). Not a real
        // MDCC execution — a codec-level graph test.
        let (t1, t2) = (t(0, 1), t(1, 1));
        let events = vec![
            commit(t1, "a", 1),
            commit(t2, "a", 2),
            read(t1, "b", 1),
            commit(t2, "b", 1),
            finish(t1, Outcome::Committed),
            finish(t2, Outcome::Committed),
        ];
        let v = audit(&events);
        assert!(v.has("g1c"), "{:?}", v.anomalies);
    }

    #[test]
    fn fractured_read_detected() {
        // W writes a@1 and b@1 atomically; R reads a@1 but b@0.
        let (w, r) = (t(0, 1), t(1, 1));
        let events = vec![
            commit(w, "a", 1),
            commit(w, "b", 1),
            finish(w, Outcome::Committed),
            read(r, "a", 1),
            read(r, "b", 0),
            finish(r, Outcome::Committed),
        ];
        let v = audit(&events);
        assert!(v.has("fractured-read"), "{:?}", v.anomalies);
        let a = v
            .anomalies
            .iter()
            .find(|a| a.kind == "fractured-read")
            .expect("checked above");
        assert_eq!(a.txns, vec![w, r]);
    }

    #[test]
    fn atomic_observation_is_not_fractured() {
        // R sees both of W's keys fresh — atomic, clean. R2 sees both at
        // the old versions — also atomic (reads a consistent prefix).
        let (w, r, r2) = (t(0, 1), t(1, 1), t(2, 1));
        let events = vec![
            commit(w, "a", 1),
            commit(w, "b", 1),
            finish(w, Outcome::Committed),
            read(r, "a", 1),
            read(r, "b", 1),
            finish(r, Outcome::Committed),
            read(r2, "a", 0),
            read(r2, "b", 0),
            finish(r2, Outcome::Committed),
        ];
        let v = audit(&events);
        assert!(!v.has("fractured-read"), "{:?}", v.anomalies);
    }

    #[test]
    fn aborted_transactions_are_excluded() {
        // The aborted reader's observations must not create edges.
        let (t1, t2) = (t(0, 1), t(1, 1));
        let events = vec![
            read(t1, "a", 0),
            commit(t1, "a", 1),
            finish(t1, Outcome::Committed),
            read(t2, "a", 0),
            finish(t2, Outcome::Aborted),
        ];
        let v = audit(&events);
        assert!(v.clean());
        assert_eq!(v.committed_txns, 1);
        assert_eq!(v.aborted_txns, 1);
        assert_eq!(v.edge_counts, (0, 0, 0));
    }

    #[test]
    fn commit_evidence_implies_committed_without_finish() {
        let t1 = t(0, 1);
        let v = audit(&[commit(t1, "a", 1)]);
        assert_eq!(v.committed_txns, 1);
    }

    #[test]
    fn verdict_json_is_well_formed_and_stable() {
        let (t1, t2) = (t(0, 1), t(1, 1));
        let events = vec![
            read(t1, "b", 0),
            commit(t1, "a", 1),
            finish(t1, Outcome::Committed),
            read(t2, "a", 0),
            commit(t2, "b", 1),
            finish(t2, Outcome::Committed),
        ];
        let v = audit(&events);
        let json = v.to_json();
        assert_eq!(json, audit(&events).to_json(), "deterministic");
        assert!(json.contains("\"clean\": false"));
        assert!(json.contains("\"kind\": \"write-skew\""));
        assert!(json.contains("\"witness\""));
        // Crude balance check on the hand-rolled JSON.
        let balance = |open: char, close: char| {
            json.chars().filter(|&c| c == open).count()
                == json.chars().filter(|&c| c == close).count()
        };
        assert!(balance('{', '}') && balance('[', ']'));
    }

    #[test]
    fn summary_names_kinds() {
        let (t1, t2) = (t(0, 1), t(1, 1));
        let events = vec![
            read(t1, "b", 0),
            commit(t1, "a", 1),
            finish(t1, Outcome::Committed),
            read(t2, "a", 0),
            commit(t2, "b", 1),
            finish(t2, Outcome::Committed),
        ];
        assert!(audit(&events).summary().contains("write-skew"));
        assert!(audit(&[]).summary().starts_with("clean"));
    }
}
