//! `planet-audit` — offline isolation-anomaly auditor.
//!
//! Two modes:
//!
//! * **Offline** (`--trace f1 [f2 ...]`): parse one or more trace files
//!   (written by `planetd --trace` or `planet-load --trace`), merge them into
//!   a single history, and audit it.
//! * **Run** (`--run <workload>`): execute a named anomaly workload on the
//!   deterministic in-process sim cluster with tracing on, then audit the
//!   captured trace. This is what CI uses — no servers, no wall clock.
//!
//! Exit codes: without `--expect-anomaly`, 0 iff the history is clean.
//! With `--expect-anomaly <kind>`, 0 iff that anomaly *was* found (the run
//! is a detector regression test), 1 otherwise. 2 for usage errors.

use std::io::{BufRead, BufReader, Write};

use planet_audit::harness::{run_workload, RunConfig};
use planet_audit::{audit, Verdict};
use planet_mdcc::{Protocol, TraceEvent};
use planet_workload::ANOMALY_WORKLOADS;

struct Args {
    traces: Vec<String>,
    run: Option<String>,
    txns: usize,
    sites: usize,
    shards: usize,
    seed: u64,
    protocol: Protocol,
    json: Option<String>,
    expect_anomaly: Option<String>,
    quiet: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: planet-audit (--trace <file>... | --run <workload>) [options]\n\
         \n\
         modes:\n\
         \x20 --trace <file>...        audit one or more recorded trace files\n\
         \x20 --run <workload>         run a sim workload with tracing and audit it\n\
         \x20                          (workloads: {})\n\
         options:\n\
         \x20 --txns <n>               transactions for --run (default 200)\n\
         \x20 --sites <n>              sites for --run (default 3)\n\
         \x20 --shards <n>             shards per site for --run (default 1)\n\
         \x20 --seed <n>               deterministic seed for --run\n\
         \x20 --protocol fast|classic|twopc   commit protocol for --run\n\
         \x20 --json <path>            write the full JSON verdict to <path>\n\
         \x20 --expect-anomaly <kind>  exit 0 iff <kind> was detected\n\
         \x20 --quiet                  suppress the summary line",
        ANOMALY_WORKLOADS.join(", ")
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut out = Args {
        traces: Vec::new(),
        run: None,
        txns: 200,
        sites: 3,
        shards: 1,
        seed: 0xA0D17,
        protocol: Protocol::Fast,
        json: None,
        expect_anomaly: None,
        quiet: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--trace" => match args.next() {
                Some(f) => out.traces.push(f),
                None => usage(),
            },
            "--run" => match args.next() {
                Some(w) => out.run = Some(w),
                None => usage(),
            },
            "--txns" => match args.next().and_then(|v| v.parse().ok()).filter(|&v| v > 0) {
                Some(v) => out.txns = v,
                None => usage(),
            },
            "--sites" => match args.next().and_then(|v| v.parse().ok()).filter(|&v| v > 0) {
                Some(v) => out.sites = v,
                None => usage(),
            },
            "--shards" => match args.next().and_then(|v| v.parse().ok()).filter(|&v| v > 0) {
                Some(v) => out.shards = v,
                None => usage(),
            },
            "--seed" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => out.seed = v,
                None => usage(),
            },
            "--protocol" => match args.next().as_deref() {
                Some("fast") => out.protocol = Protocol::Fast,
                Some("classic") => out.protocol = Protocol::Classic,
                Some("twopc") => out.protocol = Protocol::TwoPc,
                _ => usage(),
            },
            "--json" => match args.next() {
                Some(p) => out.json = Some(p),
                None => usage(),
            },
            "--expect-anomaly" => match args.next() {
                Some(k) => out.expect_anomaly = Some(k),
                None => usage(),
            },
            "--quiet" => out.quiet = true,
            _ => usage(),
        }
    }
    // Exactly one mode.
    if out.traces.is_empty() == out.run.is_none() {
        usage();
    }
    out
}

/// Parse one trace file, counting (but tolerating) malformed lines — a
/// truncated final line from a killed server must not sink the whole audit.
fn read_trace(path: &str) -> Result<(Vec<TraceEvent>, usize), String> {
    let file = std::fs::File::open(path).map_err(|e| format!("{path}: {e}"))?;
    let mut events = Vec::new();
    let mut malformed = 0;
    for line in BufReader::new(file).lines() {
        let line = line.map_err(|e| format!("{path}: {e}"))?;
        if line.trim().is_empty() {
            continue;
        }
        match TraceEvent::parse_line(&line) {
            Some(ev) => events.push(ev),
            None => malformed += 1,
        }
    }
    Ok((events, malformed))
}

fn run() -> Result<i32, String> {
    let args = parse_args();

    let verdict: Verdict = if let Some(workload) = &args.run {
        let out = run_workload(&RunConfig {
            workload: workload.clone(),
            txns: args.txns,
            sites: args.sites,
            shards: args.shards,
            protocol: args.protocol,
            seed: args.seed,
        })?;
        if !args.quiet {
            eprintln!(
                "ran {workload}: {} committed, {} aborted, {} trace events",
                out.committed,
                out.aborted,
                out.events.len()
            );
        }
        audit(&out.events)
    } else {
        let mut events = Vec::new();
        for path in &args.traces {
            let (mut evs, malformed) = read_trace(path)?;
            if malformed > 0 {
                eprintln!("warning: {path}: skipped {malformed} malformed line(s)");
            }
            events.append(&mut evs);
        }
        // Merged multi-site traces interleave arbitrarily; the auditor keys
        // everything off (txn, key, version), so raw order is fine, but sort
        // by logical time for a stable verdict regardless of file order.
        events.sort_by_key(|e| (e.at(), e.to_line()));
        audit(&events)
    };

    if let Some(path) = &args.json {
        let mut f = std::fs::File::create(path).map_err(|e| format!("{path}: {e}"))?;
        f.write_all(verdict.to_json().as_bytes())
            .and_then(|()| f.write_all(b"\n"))
            .map_err(|e| format!("{path}: {e}"))?;
    }
    if !args.quiet {
        println!("{}", verdict.summary());
        for a in &verdict.anomalies {
            println!("  {}: {}", a.kind, a.note);
        }
    }

    let code = match &args.expect_anomaly {
        Some(kind) => {
            if verdict.has(kind) {
                0
            } else {
                eprintln!("expected anomaly {kind:?} was NOT detected");
                1
            }
        }
        None => {
            if verdict.clean() {
                0
            } else {
                1
            }
        }
    };
    Ok(code)
}

fn main() {
    match run() {
        Ok(code) => std::process::exit(code),
        Err(e) => {
            eprintln!("planet-audit: {e}");
            std::process::exit(2);
        }
    }
}
