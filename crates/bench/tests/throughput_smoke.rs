//! Smoke-scale live-cluster throughput gate for CI.
//!
//! Runs the closed-loop load harness at small concurrency on the in-process
//! channel transport and enforces two floors: every completion commits
//! (`commit_rate == 1.0` — commutative increments under Fast Paxos must
//! never abort or time out at this scale), and throughput stays above a
//! deliberately loose ops/s floor that only a scheduling regression (e.g.
//! reintroducing a polling tick in the node loop) would trip. Results land
//! in `BENCH_throughput_smoke.json` as a CI artifact.
//!
//! `#[ignore]`d because it is wall-clock-sensitive: run it explicitly with
//! `cargo test --release -p planet-bench --test throughput_smoke -- --ignored`.

use std::sync::mpsc::channel;
use std::time::{Duration, Instant};

use planet_cluster::{LiveCluster, LoadClient, LoadRecord, PlaneConfig};
use planet_mdcc::{ClusterConfig, Outcome, Protocol};
use planet_sim::NetworkModel;
use planet_storage::Key;

const SITES: usize = 3;
const KEYS: usize = 64;
const OPS_FLOOR: f64 = 100.0;

struct SmokePoint {
    clients: usize,
    shards: usize,
    ops_per_sec: f64,
    commit_rate: f64,
    completions: u64,
    shed: u64,
}

fn lan() -> NetworkModel {
    let rtt: Vec<Vec<f64>> = (0..SITES)
        .map(|i| (0..SITES).map(|j| if i == j { 0.1 } else { 2.0 }).collect())
        .collect();
    NetworkModel::from_rtt_ms(&rtt)
}

fn run_point(clients: usize, shards: usize) -> SmokePoint {
    let config = ClusterConfig::new(SITES, Protocol::Fast).with_shards(shards);
    let mut cluster = LiveCluster::builder(config)
        .network(lan())
        .seed(0x540C ^ clients as u64 ^ (shards as u64) << 32)
        .plane(PlaneConfig::default())
        .build();
    let keys: Vec<Key> = (0..KEYS).map(|i| Key::new(format!("smoke-{i}"))).collect();
    let (tx, rx) = channel::<LoadRecord>();
    for k in 0..clients {
        let site = k % SITES;
        let coordinator = cluster.coordinator(site);
        cluster.spawn_client(
            site,
            Box::new(LoadClient::new(coordinator, keys.clone(), tx.clone())),
        );
    }
    drop(tx);

    let warm_end = Instant::now() + Duration::from_millis(300);
    while Instant::now() < warm_end {
        let _ = rx.recv_timeout(warm_end - Instant::now());
    }

    let window = Duration::from_secs(1);
    let started = Instant::now();
    let mut committed = 0u64;
    let mut completions = 0u64;
    while started.elapsed() < window {
        let remaining = window - started.elapsed();
        if let Ok(record) = rx.recv_timeout(remaining.min(Duration::from_millis(50))) {
            completions += 1;
            if record.outcome == Outcome::Committed {
                committed += 1;
            }
        }
    }
    let elapsed = started.elapsed().as_secs_f64();
    let harvest = cluster.shutdown();

    SmokePoint {
        clients,
        shards,
        ops_per_sec: completions as f64 / elapsed,
        commit_rate: if completions > 0 {
            committed as f64 / completions as f64
        } else {
            0.0
        },
        completions,
        shed: harvest.shed,
    }
}

#[test]
#[ignore = "wall-clock throughput gate; run explicitly in the CI smoke job"]
fn smoke_scale_throughput_holds_the_floor() {
    // Unsharded ladder plus one sharded point: the key-partitioned cluster
    // must hold the exact same floors (commutative increments never abort
    // regardless of how the keyspace is split across shard actors).
    let points: Vec<SmokePoint> = [(4usize, 1usize), (8, 1), (8, 2)]
        .iter()
        .map(|&(c, s)| run_point(c, s))
        .collect();

    let mut out = String::from("{\n  \"experiment\": \"throughput_smoke\",\n");
    out.push_str(&format!(
        "  \"sites\": {SITES},\n  \"keys\": {KEYS},\n  \"ops_floor\": {OPS_FLOOR},\n  \"transport\": \"channel\",\n  \"points\": [\n"
    ));
    for (i, p) in points.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"clients\": {}, \"shards\": {}, \"ops_per_sec\": {:.1}, \"commit_rate\": {:.4}, \"completions\": {}, \"shed\": {}}}{}\n",
            p.clients,
            p.shards,
            p.ops_per_sec,
            p.commit_rate,
            p.completions,
            p.shed,
            if i + 1 < points.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    std::fs::write("BENCH_throughput_smoke.json", &out).expect("write smoke artifact");
    eprintln!("wrote BENCH_throughput_smoke.json:\n{out}");

    for p in &points {
        assert!(
            p.completions > 0,
            "{} clients: no transactions completed",
            p.clients
        );
        assert_eq!(
            p.commit_rate, 1.0,
            "{} clients: commutative increments must all commit",
            p.clients
        );
        assert_eq!(p.shed, 0, "{} clients: nothing should shed", p.clients);
        assert!(
            p.ops_per_sec >= OPS_FLOOR,
            "{} clients: {:.1} ops/s under the {OPS_FLOOR} floor",
            p.clients,
            p.ops_per_sec
        );
    }
}
