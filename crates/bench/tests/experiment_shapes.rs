//! Shape tests: every figure/table of the reconstructed evaluation must
//! reproduce the *qualitative* result the paper reports — who wins, by
//! roughly what factor, where the crossovers fall. Run at `Scale::Quick`.

use planet_bench::{run_experiment, Scale, Table, EXPERIMENTS};

fn run(id: &str) -> Table {
    run_experiment(id, Scale::Quick).expect("known experiment id")
}

/// Parse `key=value` out of a table's notes.
fn note_metric(table: &Table, key: &str) -> Option<f64> {
    for note in &table.notes {
        if let Some(pos) = note.find(&format!("{key}=")) {
            let rest = &note[pos + key.len() + 1..];
            let end = rest.find([',', ' ', ')']).unwrap_or(rest.len());
            if let Ok(v) = rest[..end].parse() {
                return Some(v);
            }
        }
    }
    None
}

#[test]
fn every_experiment_id_runs() {
    // Cheap sanity: unknown ids are rejected; the list is complete.
    assert_eq!(EXPERIMENTS.len(), 14);
    assert!(run_experiment("nope", Scale::Quick).is_none());
}

#[test]
fn tab3_read_levels_trade_freshness_for_latency() {
    let t = run("tab3-reads");
    // Row 0 = local, row 1 = quorum.
    let local_fresh = t.cell_f64(0, "fresh reads").unwrap();
    let quorum_fresh = t.cell_f64(1, "fresh reads").unwrap();
    assert!(
        local_fresh < 20.0,
        "local reads must be mostly stale in-window: {local_fresh}%"
    );
    assert!(
        quorum_fresh > 90.0,
        "quorum reads must be fresh: {quorum_fresh}%"
    );
    let local_p50 = t.cell_f64(0, "p50 latency").unwrap();
    let quorum_p50 = t.cell_f64(1, "p50 latency").unwrap();
    assert!(local_p50 < 5.0, "local read is intra-site: {local_p50}ms");
    assert!(
        quorum_p50 > 50.0 && quorum_p50 < 250.0,
        "quorum read costs ~1 WAN RTT: {quorum_p50}ms"
    );
}

#[test]
fn fig1_rtt_matches_topology_shape() {
    let t = run("fig1-rtt");
    assert_eq!(t.rows.len(), 5);
    // us-east commits at ~ the RTT to its 4th-closest replica (ap-ne, 170ms).
    let us_east_p50 = t.cell_f64(0, "p50").unwrap();
    assert!(
        (130.0..=220.0).contains(&us_east_p50),
        "us-east p50 {us_east_p50}ms"
    );
    // eu-west is the worst-placed origin (its fast quorum crosses two oceans).
    let eu_west_p50 = t.cell_f64(2, "p50").unwrap();
    let us_west_p50 = t.cell_f64(1, "p50").unwrap();
    assert!(
        eu_west_p50 > us_west_p50,
        "eu {eu_west_p50} vs usw {us_west_p50}"
    );
    // Every p99 ≥ p50.
    for row in 0..5 {
        assert!(t.cell_f64(row, "p99").unwrap() >= t.cell_f64(row, "p50").unwrap());
    }
}

#[test]
fn fig2_prediction_is_calibrated_and_skilled() {
    let t = run("fig2-calibration");
    let skill = note_metric(&t, "skill").expect("skill recorded");
    assert!(
        skill > 0.1,
        "prediction must beat base-rate guessing, skill={skill}"
    );
    let brier = note_metric(&t, "brier").expect("brier recorded");
    assert!(brier < 0.25, "brier {brier} must beat a coin");
    // Reliability: in the lowest bins almost nothing commits; in the highest
    // bins most things do.
    let first_pred = t.cell_f64(0, "mean predicted").unwrap();
    let first_obs = t.cell_f64(0, "observed commit rate").unwrap();
    if first_pred < 0.2 {
        assert!(first_obs < 0.45, "low-predicted bin observed {first_obs}");
    }
    let last = t.rows.len() - 1;
    let last_pred = t.cell_f64(last, "mean predicted").unwrap();
    let last_obs = t.cell_f64(last, "observed commit rate").unwrap();
    if last_pred > 0.8 {
        assert!(last_obs > 0.5, "high-predicted bin observed {last_obs}");
    }
}

#[test]
fn fig3_prediction_sharpens_with_votes() {
    let t = run("fig3-progress");
    assert!(t.rows.len() >= 3);
    let first_brier = t.cell_f64(0, "brier").unwrap();
    let last_brier = t.cell_f64(t.rows.len() - 1, "brier").unwrap();
    assert!(
        last_brier < first_brier * 0.5,
        "late predictions must be much sharper: {first_brier} -> {last_brier}"
    );
    assert!(
        last_brier < 0.02,
        "near-certainty at the end, got {last_brier}"
    );
}

#[test]
fn fig4_speculation_tradeoff() {
    let t = run("fig4-speculation");
    assert_eq!(t.rows.len(), 6);
    let low_tau_apology = t.cell_f64(0, "apology rate").unwrap();
    let high_tau_apology = t.cell_f64(5, "apology rate").unwrap();
    assert!(
        high_tau_apology <= low_tau_apology,
        "raising the threshold must not raise apologies: {low_tau_apology}% -> {high_tau_apology}%"
    );
    for row in 0..6 {
        let spec = t.cell_f64(row, "p50 speculative resp").unwrap();
        let fin = t.cell_f64(row, "p50 final commit").unwrap();
        assert!(
            spec < fin,
            "row {row}: speculative {spec}ms !< final {fin}ms"
        );
    }
}

#[test]
fn fig5_strategy_ordering() {
    let t = run("fig5-latency-cdf");
    let p50 = |row: usize| t.cell_f64(row, "p50").unwrap();
    // Row order: planet-speculative, fast, classic, twopc.
    assert!(p50(0) < p50(1), "speculative {} !< fast {}", p50(0), p50(1));
    assert!(p50(1) < p50(3), "fast {} !< twopc {}", p50(1), p50(3));
    assert!(p50(2) < p50(3), "classic {} !< twopc {}", p50(2), p50(3));
    // Speculation answers at least 3x sooner than the fast final commit.
    assert!(p50(0) * 3.0 < p50(1));
}

#[test]
fn fig6_admission_control_wins_past_the_knee() {
    let t = run("fig6-admission");
    assert_eq!(t.rows.len(), 2, "quick scale brackets the crossover");
    // Below the knee: no-AC is fine (AC may cost a little goodput).
    let low_no_ac = t.cell_f64(0, "goodput (no AC)").unwrap();
    let low_ac = t.cell_f64(0, "goodput (AC)").unwrap();
    assert!(low_ac > low_no_ac * 0.5, "AC shouldn't cripple light load");
    // In the collapse regime: AC must win on goodput AND commit rate.
    let hi_no_ac = t.cell_f64(1, "goodput (no AC)").unwrap();
    let hi_ac = t.cell_f64(1, "goodput (AC)").unwrap();
    assert!(
        hi_ac > hi_no_ac,
        "admission control must win in the collapse regime: {hi_ac} vs {hi_no_ac}"
    );
    let commit_no_ac = t.cell_f64(1, "commit% (no AC)").unwrap();
    let commit_ac = t.cell_f64(1, "commit% (AC)").unwrap();
    assert!(
        commit_ac > commit_no_ac + 10.0,
        "admitted commit% must be much higher"
    );
}

#[test]
fn fig7_spike_blows_up_final_latency_but_not_effective_response() {
    let t = run("fig7-spike");
    let spike_rows: Vec<usize> = (0..t.rows.len())
        .filter(|&r| t.cell(r, "in spike") == Some("*"))
        .collect();
    let calm_rows: Vec<usize> = (0..t.rows.len())
        .filter(|&r| t.cell(r, "in spike") == Some(""))
        .collect();
    assert!(!spike_rows.is_empty() && !calm_rows.is_empty());
    let calm_final = t.cell_f64(calm_rows[0], "p95 final").unwrap();
    let spike_final = t.cell_f64(spike_rows[0], "p95 final").unwrap();
    assert!(
        spike_final > calm_final * 2.0,
        "the spike must be visible in final latency: {calm_final} -> {spike_final}"
    );
    for &r in &spike_rows {
        let eff = t.cell_f64(r, "p95 effective resp").unwrap();
        assert!(
            eff <= 401.0,
            "effective response must stay bounded by the 400ms deadline, got {eff}ms"
        );
    }
}

#[test]
fn fig8_confidence_levels_resolve_in_order() {
    let t = run("fig8-callbacks");
    let mut prev = -1.0;
    for row in 0..t.rows.len() {
        let time_to_x = t.cell_f64(row, "median time-to-X").unwrap();
        assert!(
            time_to_x + 1e-9 >= prev,
            "time to higher confidence must not decrease: row {row}"
        );
        prev = time_to_x;
    }
    // Low confidence is known essentially immediately; it saves nearly the
    // whole commit latency.
    let t50 = t.cell_f64(0, "median time-to-X").unwrap();
    let final50 = t.cell_f64(0, "median final commit").unwrap();
    assert!(t50 * 20.0 < final50, "{t50}ms vs final {final50}ms");
}

#[test]
fn tab1_twopc_slowest_everywhere() {
    let t = run("tab1-percentiles");
    assert_eq!(t.rows.len(), 15);
    // Rows 0..5 fast, 5..10 classic, 10..15 twopc, same origin order.
    for origin in 0..5 {
        let fast = t.cell_f64(origin, "p50").unwrap();
        let twopc = t.cell_f64(origin + 10, "p50").unwrap();
        assert!(
            twopc > fast,
            "origin {origin}: twopc {twopc} !> fast {fast}"
        );
    }
}

#[test]
fn throughput_scales_with_concurrency() {
    let t = run("throughput");
    assert!(t.rows.len() >= 3);
    let ops = |row: usize| t.cell_f64(row, "ops/sec").unwrap();
    // More closed-loop clients must buy more throughput on a LAN-ish model
    // (1 → 16 clients: well before any saturation knee).
    assert!(
        ops(t.rows.len() - 1) > ops(0) * 2.0,
        "throughput must scale: {} ops/s at 1 client vs {} at max",
        ops(0),
        ops(t.rows.len() - 1)
    );
    // Nearly everything commits: the load is commutative increments.
    for row in 0..t.rows.len() {
        let rate = t.cell_f64(row, "commit rate").unwrap();
        assert!(rate > 90.0, "row {row}: commit rate {rate}%");
    }
}

#[test]
fn tab2_commutative_tolerates_contention() {
    let t = run("tab2-contention");
    // Rows: 0 fast+physical, 1 fast+fallback+physical, 2 fast+commutative,
    //       3 classic+physical, 4 classic+commutative, 5 twopc+physical.
    let rate = |row: usize| t.cell_f64(row, "commit rate").unwrap();
    // Commutative ≫ physical on both MDCC paths.
    assert!(rate(2) > rate(0) + 30.0, "fast: {} vs {}", rate(2), rate(0));
    assert!(
        rate(4) > rate(3) + 30.0,
        "classic: {} vs {}",
        rate(4),
        rate(3)
    );
    // Commutative commits nearly everything.
    assert!(rate(2) > 90.0);
    // The collision fallback lifts the fast path's physical commit rate.
    assert!(rate(1) > rate(0), "fallback: {} !> {}", rate(1), rate(0));
    // Goodput follows the commit rates.
    let good = |row: usize| t.cell_f64(row, "goodput").unwrap();
    assert!(good(2) > good(0) * 1.5);
}
