//! Trace-overhead gate for the isolation auditor.
//!
//! Runs the same smoke-scale closed-loop harness as `throughput_smoke`
//! twice — tracing off, then tracing into a live `VecSink` — and enforces
//! that the traced run keeps at least 95% of the untraced throughput. The
//! trace layer sits on the coordinator/replica hot paths (reads, commits,
//! applies), so this is the gate that keeps it honest: one mutex push per
//! event, and nothing at all when no sink is attached.
//!
//! Both points land in `BENCH_audit.json` as a CI artifact. Each
//! configuration takes the best of three 1-second windows to damp scheduler
//! noise; the 5% envelope is on those bests.
//!
//! `#[ignore]`d because it is wall-clock-sensitive: run it explicitly with
//! `cargo test --release -p planet-bench --test audit_overhead -- --ignored`.

use std::sync::mpsc::channel;
use std::sync::Arc;
use std::time::{Duration, Instant};

use planet_cluster::{LiveCluster, LoadClient, LoadRecord, PlaneConfig};
use planet_mdcc::{ClusterConfig, Outcome, Protocol, Trace, VecSink};
use planet_sim::NetworkModel;
use planet_storage::Key;

const SITES: usize = 3;
const KEYS: usize = 64;
const CLIENTS: usize = 8;
const REPS: usize = 3;
/// Traced throughput must stay within 5% of untraced.
const MIN_RATIO: f64 = 0.95;

struct Point {
    traced: bool,
    ops_per_sec: f64,
    commit_rate: f64,
    completions: u64,
    trace_events: usize,
}

fn lan() -> NetworkModel {
    let rtt: Vec<Vec<f64>> = (0..SITES)
        .map(|i| (0..SITES).map(|j| if i == j { 0.1 } else { 2.0 }).collect())
        .collect();
    NetworkModel::from_rtt_ms(&rtt)
}

fn run_window(traced: bool) -> Point {
    let mut config = ClusterConfig::new(SITES, Protocol::Fast).with_shards(1);
    let sink = Arc::new(VecSink::new());
    if traced {
        config.trace = Trace::to(sink.clone());
    }
    let mut cluster = LiveCluster::builder(config)
        .network(lan())
        .seed(0xA0D1 ^ traced as u64)
        .plane(PlaneConfig::default())
        .build();
    let keys: Vec<Key> = (0..KEYS).map(|i| Key::new(format!("audit-{i}"))).collect();
    let (tx, rx) = channel::<LoadRecord>();
    for k in 0..CLIENTS {
        let site = k % SITES;
        let coordinator = cluster.coordinator(site);
        cluster.spawn_client(
            site,
            Box::new(LoadClient::new(coordinator, keys.clone(), tx.clone())),
        );
    }
    drop(tx);

    let warm_end = Instant::now() + Duration::from_millis(300);
    while Instant::now() < warm_end {
        let _ = rx.recv_timeout(warm_end - Instant::now());
    }

    let window = Duration::from_secs(1);
    let started = Instant::now();
    let mut committed = 0u64;
    let mut completions = 0u64;
    while started.elapsed() < window {
        let remaining = window - started.elapsed();
        if let Ok(record) = rx.recv_timeout(remaining.min(Duration::from_millis(50))) {
            completions += 1;
            if record.outcome == Outcome::Committed {
                committed += 1;
            }
        }
    }
    let elapsed = started.elapsed().as_secs_f64();
    cluster.shutdown();

    Point {
        traced,
        ops_per_sec: completions as f64 / elapsed,
        commit_rate: if completions > 0 {
            committed as f64 / completions as f64
        } else {
            0.0
        },
        completions,
        trace_events: sink.len(),
    }
}

fn best_of(traced: bool) -> Point {
    (0..REPS)
        .map(|_| run_window(traced))
        .max_by(|a, b| a.ops_per_sec.total_cmp(&b.ops_per_sec))
        .expect("REPS >= 1")
}

#[test]
#[ignore = "wall-clock overhead gate; run explicitly in the CI smoke job"]
fn tracing_overhead_stays_inside_the_envelope() {
    let off = best_of(false);
    let on = best_of(true);
    let ratio = if off.ops_per_sec > 0.0 {
        on.ops_per_sec / off.ops_per_sec
    } else {
        0.0
    };

    let mut out = String::from("{\n  \"experiment\": \"audit_overhead\",\n");
    out.push_str(&format!(
        "  \"sites\": {SITES},\n  \"clients\": {CLIENTS},\n  \"keys\": {KEYS},\n  \
         \"reps\": {REPS},\n  \"min_ratio\": {MIN_RATIO},\n  \"ratio\": {ratio:.4},\n  \"points\": [\n"
    ));
    for (i, p) in [&off, &on].iter().enumerate() {
        out.push_str(&format!(
            "    {{\"traced\": {}, \"ops_per_sec\": {:.1}, \"commit_rate\": {:.4}, \"completions\": {}, \"trace_events\": {}}}{}\n",
            p.traced,
            p.ops_per_sec,
            p.commit_rate,
            p.completions,
            p.trace_events,
            if i == 0 { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_audit.json");
    std::fs::write(path, &out).expect("write audit overhead artifact");
    eprintln!("wrote BENCH_audit.json:\n{out}");

    for p in [&off, &on] {
        assert!(p.completions > 0, "traced={}: nothing completed", p.traced);
        assert_eq!(
            p.commit_rate, 1.0,
            "traced={}: commutative increments must all commit",
            p.traced
        );
    }
    assert_eq!(off.trace_events, 0, "no sink, no events");
    assert!(
        on.trace_events > 0,
        "traced run must actually record events"
    );
    assert!(
        ratio >= MIN_RATIO,
        "tracing costs too much: {:.1} -> {:.1} ops/s (ratio {ratio:.3} < {MIN_RATIO})",
        off.ops_per_sec,
        on.ops_per_sec
    );
}
