//! Smoke-scale compiled-plan gate for CI.
//!
//! Drives the `plan` ablation harness (`planet_bench::exp_plan`) at small
//! concurrency on both transports and enforces the compiled path's
//! contract against its interpreted twin: every completion commits on both
//! paths (the keyspace is preloaded, so bounded decrements never hit their
//! floor), the compiled path's throughput never drops below a loose
//! fraction of interpreted (it must not cost anything), and it allocates
//! strictly less per transaction (the point of compiling). Results land in
//! `BENCH_plan.json` at the repo root (scale "smoke") as a CI artifact —
//! the committed copy of that file holds the full-scale 256-client run.
//!
//! `#[ignore]`d because it is wall-clock-sensitive: run it explicitly with
//! `cargo test --release -p planet-bench --test plan_smoke -- --ignored`.

use std::time::Duration;

use planet_bench::exp_plan::{run_case, write_plan_json, Mode, TransportKind, Workload};

const CLIENTS: usize = 8;
/// Compiled may not regress throughput below this fraction of interpreted.
const OPS_FRACTION_FLOOR: f64 = 0.85;
/// Compiled must allocate at most this fraction of interpreted, per txn.
const ALLOC_FRACTION_CEILING: f64 = 0.95;

#[test]
#[ignore = "wall-clock ablation gate; run explicitly in the CI smoke job"]
fn compiled_plans_hold_the_smoke_floors() {
    let warmup = Duration::from_millis(200);
    let window = Duration::from_secs(1);
    let cases = [
        (Workload::YcsbPoint, TransportKind::Channel),
        (Workload::YcsbPoint, TransportKind::Tcp),
        (Workload::Ticket, TransportKind::Channel),
        (Workload::Ticket, TransportKind::Tcp),
    ];

    let mut points = Vec::new();
    for (workload, transport) in cases {
        let seed = 0xBEE5;
        let interpreted = run_case(
            workload,
            transport,
            Mode::Interpreted,
            CLIENTS,
            warmup,
            window,
            seed,
        );
        let compiled = run_case(
            workload,
            transport,
            Mode::Compiled,
            CLIENTS,
            warmup,
            window,
            seed,
        );

        for p in [&interpreted, &compiled] {
            let case = format!("{}/{}/{}", p.workload, p.transport, p.mode);
            assert!(p.completions > 0, "{case}: no transactions completed");
            assert_eq!(
                p.commit_rate, 1.0,
                "{case}: preloaded bounded decrements must all commit"
            );
            assert_eq!(p.shed, 0, "{case}: nothing should shed at smoke scale");
        }
        assert!(
            compiled.ops_per_sec >= OPS_FRACTION_FLOOR * interpreted.ops_per_sec,
            "{}/{}: compiled {:.1} ops/s under {OPS_FRACTION_FLOOR}x of interpreted {:.1}",
            compiled.workload,
            compiled.transport,
            compiled.ops_per_sec,
            interpreted.ops_per_sec
        );
        assert!(
            compiled.allocs_per_txn <= ALLOC_FRACTION_CEILING * interpreted.allocs_per_txn,
            "{}/{}: compiled {:.1} allocs/txn not under {ALLOC_FRACTION_CEILING}x of interpreted {:.1}",
            compiled.workload,
            compiled.transport,
            compiled.allocs_per_txn,
            interpreted.allocs_per_txn
        );
        points.push(interpreted);
        points.push(compiled);
    }

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_plan.json");
    write_plan_json(path, "smoke", &points, warmup, window, 1);
}
