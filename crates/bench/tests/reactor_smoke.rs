//! Reactor-runtime smoke gate for CI.
//!
//! Runs the closed-loop load harness with 256 clients multiplexed over a
//! 2-worker reactor on the in-process channel transport, next to the
//! thread-per-actor baseline at the same concurrency, and enforces three
//! floors: every reactor completion commits (`commit_rate == 1.0` —
//! commutative increments under Fast Paxos must never abort or time out at
//! this scale), reactor throughput is no worse than the thread-per-actor
//! baseline (median of three trials each — the whole point of the runtime
//! is removing thread-thrash, so losing to 250+ pooled threads is a
//! regression), and all four per-txn latency-attribution spans (queue,
//! quorum wait, WAL, network) are populated. Both points land with their
//! span histograms in `BENCH_reactor_smoke.json` as a CI artifact.
//!
//! `#[ignore]`d because it is wall-clock-sensitive: run it explicitly with
//! `cargo test --release -p planet-bench --test reactor_smoke -- --ignored`.

use std::sync::mpsc::channel;
use std::time::{Duration, Instant};

use planet_cluster::{LiveCluster, LoadClient, LoadRecord, PlaneConfig};
use planet_mdcc::{ClusterConfig, Msg, Outcome, Protocol};
use planet_sim::metrics::Metrics;
use planet_sim::{Actor, NetworkModel};
use planet_storage::Key;

const SITES: usize = 3;
const KEYS: usize = 64;
const CLIENTS: usize = 256;
const WORKERS: usize = 2;
const TRIALS: usize = 3;

struct SpanStat {
    p50_us: u64,
    p99_us: u64,
    count: u64,
}

struct SmokePoint {
    workers: usize,
    ops_per_sec: f64,
    commit_rate: f64,
    completions: u64,
    shed: u64,
    spans: Vec<(&'static str, SpanStat)>,
}

fn lan() -> NetworkModel {
    let rtt: Vec<Vec<f64>> = (0..SITES)
        .map(|i| (0..SITES).map(|j| if i == j { 0.1 } else { 2.0 }).collect())
        .collect();
    NetworkModel::from_rtt_ms(&rtt)
}

fn span_stats(metrics: &mut Metrics) -> Vec<(&'static str, SpanStat)> {
    [
        "span.queue_us",
        "span.quorum_wait_us",
        "span.wal_us",
        "span.network_us",
    ]
    .iter()
    .map(|&name| {
        let h = metrics.histogram(name);
        (
            name,
            SpanStat {
                p50_us: h.quantile(0.50).unwrap_or(0),
                p99_us: h.quantile(0.99).unwrap_or(0),
                count: h.count(),
            },
        )
    })
    .collect()
}

/// One measured point: 256 clients over the 2ms-RTT channel fabric, either
/// multiplexed as reactor tasks (`workers > 0`) or pooled on a thread per
/// site (`workers == 0`).
fn run_point(workers: usize, seed: u64) -> SmokePoint {
    let plane = if workers > 0 {
        PlaneConfig::default().with_workers(workers)
    } else {
        PlaneConfig::thread_per_actor()
    };
    let config = ClusterConfig::new(SITES, Protocol::Fast);
    let mut cluster = LiveCluster::builder(config)
        .network(lan())
        .seed(seed)
        .plane(plane)
        .build();
    let keys: Vec<Key> = (0..KEYS).map(|i| Key::new(format!("rsmoke-{i}"))).collect();
    let (tx, rx) = channel::<LoadRecord>();
    for site in 0..SITES {
        let coordinator = cluster.coordinator(site);
        let actors: Vec<Box<dyn Actor<Msg>>> = (0..CLIENTS)
            .filter(|k| k % SITES == site)
            .map(|_| Box::new(LoadClient::new(coordinator, keys.clone(), tx.clone())) as _)
            .collect();
        cluster.spawn_client_pool(site, actors);
    }
    drop(tx);

    // Coarse poll-and-drain (not per-record blocking recv): at tens of
    // thousands of completions per second, waking the harness thread per
    // record would preempt the system under test once per transaction and
    // measure the kernel's wakeup behavior instead of the cluster.
    let warm_end = Instant::now() + Duration::from_millis(300);
    while Instant::now() < warm_end {
        std::thread::sleep(Duration::from_millis(10));
        while rx.try_recv().is_ok() {}
    }

    let window = Duration::from_secs(1);
    let started = Instant::now();
    let mut committed = 0u64;
    let mut completions = 0u64;
    while started.elapsed() < window {
        std::thread::sleep(Duration::from_millis(10).min(window - started.elapsed()));
        while let Ok(record) = rx.try_recv() {
            completions += 1;
            if record.outcome == Outcome::Committed {
                committed += 1;
            }
        }
    }
    let elapsed = started.elapsed().as_secs_f64();
    if let Some(reactor) = cluster.reactor() {
        let (busy, idle, drives, parks) = reactor.worker_stats();
        eprintln!(
            "workers={workers}: {completions} completions, busy {busy}us, idle {idle}us, {drives} drives, {parks} parks, {} steals",
            reactor.steals()
        );
    }
    let harvest = cluster.shutdown();
    let mut merged = harvest.merged_metrics();

    SmokePoint {
        workers,
        ops_per_sec: completions as f64 / elapsed,
        commit_rate: if completions > 0 {
            committed as f64 / completions as f64
        } else {
            0.0
        },
        completions,
        shed: harvest.shed,
        spans: span_stats(&mut merged),
    }
}

/// Median-of-trials by ops/sec, interleaving the two modes so ambient load
/// on the CI runner hits both equally.
fn run_median(workers: usize) -> SmokePoint {
    let mut points: Vec<SmokePoint> = (0..TRIALS)
        .map(|t| run_point(workers, 0x2EAC ^ (workers as u64) << 8 ^ t as u64))
        .collect();
    points.sort_by(|a, b| a.ops_per_sec.total_cmp(&b.ops_per_sec));
    points.remove(points.len() / 2)
}

#[test]
#[ignore = "wall-clock throughput gate; run explicitly in the CI smoke job"]
fn reactor_multiplexing_beats_thread_per_actor_and_commits_everything() {
    let baseline = run_median(0);
    let reactor = run_median(WORKERS);

    let mut out = String::from("{\n  \"experiment\": \"reactor_smoke\",\n");
    out.push_str(&format!(
        "  \"sites\": {SITES},\n  \"keys\": {KEYS},\n  \"clients\": {CLIENTS},\n  \"trials\": {TRIALS},\n  \"transport\": \"channel\",\n  \"points\": [\n"
    ));
    for (i, p) in [&baseline, &reactor].iter().enumerate() {
        let spans = p
            .spans
            .iter()
            .map(|(name, s)| {
                let key = name.strip_prefix("span.").unwrap_or(name);
                format!(
                    "\"{key}\": {{\"p50_us\": {}, \"p99_us\": {}, \"count\": {}}}",
                    s.p50_us, s.p99_us, s.count
                )
            })
            .collect::<Vec<_>>()
            .join(", ");
        out.push_str(&format!(
            "    {{\"workers\": {}, \"ops_per_sec\": {:.1}, \"commit_rate\": {:.4}, \"completions\": {}, \"shed\": {}, \"spans\": {{{spans}}}}}{}\n",
            p.workers,
            p.ops_per_sec,
            p.commit_rate,
            p.completions,
            p.shed,
            if i == 0 { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    std::fs::write("BENCH_reactor_smoke.json", &out).expect("write reactor smoke artifact");
    eprintln!("wrote BENCH_reactor_smoke.json:\n{out}");

    for p in [&baseline, &reactor] {
        assert!(
            p.completions > 0,
            "workers={}: no transactions completed",
            p.workers
        );
        assert_eq!(p.shed, 0, "workers={}: nothing should shed", p.workers);
    }
    assert_eq!(
        reactor.commit_rate, 1.0,
        "reactor: commutative increments must all commit at {CLIENTS} clients"
    );
    // The headline gate: multiplexing 250+ clients over {WORKERS} worker
    // threads must not lose to giving them dedicated pool threads.
    assert!(
        reactor.ops_per_sec >= baseline.ops_per_sec,
        "reactor {:.1} ops/s under the thread-per-actor baseline {:.1}",
        reactor.ops_per_sec,
        baseline.ops_per_sec
    );
    // Span attribution must be live: every committed txn contributes to all
    // four histograms.
    for (name, s) in &reactor.spans {
        assert!(s.count > 0, "reactor: span histogram {name} is empty");
    }
}
