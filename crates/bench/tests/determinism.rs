//! Determinism regression: the simulated deployment must be perfectly
//! replayable. Two runs of the same configuration — same seed, same
//! workload, same injected network chaos — must produce *identical*
//! per-transaction outcomes, latencies and prediction traces.
//!
//! This is the property the live cluster mode (planet-cluster) explicitly
//! gives up, and the reason the simulation stays the ground truth for every
//! experiment; this test pins it against regressions from engine or
//! protocol refactors (e.g. the factored `drive` step shared with the live
//! node loop).

use planet_core::{Planet, PlanetTxn, Protocol, SimDuration, TxnRecord};
use planet_sim::{Partition, SimTime, SiteId, Spike};

/// One full chaotic run: writes from every site, cross-site conflicts on a
/// hot key, a delay spike, a partition, and background loss.
fn chaotic_run(seed: u64) -> Vec<TxnRecord> {
    let mut db = Planet::builder()
        .protocol(Protocol::Fast)
        .seed(seed)
        .build();
    db.network_mut().loss_prob = 0.02;
    db.network_mut().add_spike(Spike {
        from: SimTime::from_secs(2),
        to: SimTime::from_secs(4),
        site: Some(SiteId(1)),
        factor: 5.0,
    });
    db.network_mut().add_partition(Partition {
        from: SimTime::from_secs(5),
        to: SimTime::from_secs(6),
        a: SiteId(0),
        b: SiteId(2),
    });
    for site in 0..db.num_sites() {
        for i in 0..12u64 {
            // Unique-key writes plus contended writes to one hot key.
            let txn = if i % 3 == 0 {
                PlanetTxn::builder().add("hot", 1).build()
            } else {
                PlanetTxn::builder()
                    .set(format!("d:{site}:{i}"), i as i64)
                    .build()
            };
            db.submit_at(site, SimTime::from_millis(1 + i * 700), txn);
        }
    }
    db.run_for(SimDuration::from_secs(20));
    db.all_records().into_iter().cloned().collect()
}

#[test]
fn identical_config_replays_identically() {
    let first = chaotic_run(1234);
    let second = chaotic_run(1234);
    assert_eq!(first.len(), second.len(), "same number of finished txns");
    assert!(
        first.len() >= 50,
        "the workload actually ran: {}",
        first.len()
    );
    for (a, b) in first.iter().zip(&second) {
        assert_eq!(a.handle, b.handle);
        assert_eq!(a.outcome, b.outcome, "{}: outcome diverged", a.handle);
        assert_eq!(a.submitted_at, b.submitted_at, "{}", a.handle);
        assert_eq!(a.latency, b.latency, "{}: latency diverged", a.handle);
        assert_eq!(a.speculated_at, b.speculated_at, "{}", a.handle);
        assert_eq!(a.reads, b.reads, "{}: reads diverged", a.handle);
        assert_eq!(
            a.predictions.len(),
            b.predictions.len(),
            "{}: prediction trace diverged",
            a.handle
        );
        for (pa, pb) in a.predictions.iter().zip(&b.predictions) {
            assert_eq!(pa.elapsed_us, pb.elapsed_us, "{}", a.handle);
            assert!(
                (pa.likelihood - pb.likelihood).abs() < 1e-12,
                "{}",
                a.handle
            );
            assert_eq!(pa.votes_seen, pb.votes_seen, "{}", a.handle);
        }
    }
}

#[test]
fn different_seeds_diverge() {
    // Sanity check on the check: the comparison is strong enough to notice a
    // genuinely different run (otherwise the test above proves nothing).
    let first = chaotic_run(1234);
    let other = chaotic_run(5678);
    let same = first.len() == other.len()
        && first
            .iter()
            .zip(&other)
            .all(|(a, b)| a.outcome == b.outcome && a.latency == b.latency);
    assert!(!same, "two seeds should not replay identically");
}
