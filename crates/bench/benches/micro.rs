//! Micro-benchmarks for the hot data structures: the prediction math (these
//! run on every progress event of every transaction), the metrics histogram,
//! storage validation, and workload sampling. Driven by the in-repo timing
//! harness (`planet_bench::timing`).

use planet_bench::timing::{black_box, Harness};

use planet_predict::likelihood::{KeyState, LikelihoodModel, TxnSnapshot};
use planet_predict::quorum::prob_at_least;
use planet_predict::LatencyEcdf;
use planet_sim::{DetRng, Histogram};
use planet_storage::{Key, RecordOption, Store, TxnId, Value, WriteOp};
use planet_workload::Zipf;

fn bench_quorum(h: &mut Harness) {
    let probs5 = [0.9, 0.8, 0.95, 0.7, 0.85];
    let probs16: Vec<f64> = (0..16).map(|i| 0.5 + (i as f64) * 0.03).collect();
    h.bench("quorum/poisson_binomial_5_of_4", || {
        prob_at_least(black_box(&probs5), black_box(4))
    });
    h.bench("quorum/poisson_binomial_16_of_11", || {
        prob_at_least(black_box(&probs16), black_box(11))
    });
}

fn bench_likelihood(h: &mut Harness) {
    let mut model = LikelihoodModel::new(5, 512);
    let mut rng = DetRng::new(7);
    for _ in 0..512 {
        for site in 0..5u8 {
            let rtt = 100_000 + (rng.unit_f64() * 50_000.0) as u64;
            model.observe_vote(site, rtt, rng.bernoulli(0.9), 1, 42);
        }
        model.observe_key_resolution(42, rng.bernoulli(0.8));
    }
    let snap = TxnSnapshot {
        keys: vec![
            KeyState {
                accepts: 1,
                rejects: 0,
                outstanding: vec![1, 2, 3, 4],
                pending_at_read: 1,
                key_hash: 42,
                quorum: 4,
                voters: 5,
            },
            KeyState {
                accepts: 0,
                rejects: 0,
                outstanding: vec![0, 1, 2, 3, 4],
                pending_at_read: 0,
                key_hash: 43,
                quorum: 4,
                voters: 5,
            },
        ],
        elapsed_us: 40_000,
    };
    h.bench("likelihood/two_key_snapshot", || {
        model.likelihood(black_box(&snap), black_box(200_000))
    });
    let mut i = 0u64;
    h.bench("likelihood/observe_vote", || {
        i += 1;
        model.observe_vote((i % 5) as u8, 100_000 + i % 1000, true, 0, i % 64);
    });
}

fn bench_ecdf(h: &mut Harness) {
    let mut ecdf = LatencyEcdf::new(512);
    for i in 0..512u64 {
        ecdf.record(100_000 + i * 37 % 50_000);
    }
    h.bench("ecdf/conditional_within_warm", || {
        ecdf.conditional_within(black_box(40_000), black_box(150_000))
    });
    let mut i = 0u64;
    h.bench("ecdf/record_and_query", || {
        i += 1;
        ecdf.record(100_000 + i % 10_000);
        ecdf.cdf(black_box(120_000))
    });
}

fn bench_histogram(h: &mut Harness) {
    let mut hist = Histogram::new();
    let mut i = 0u64;
    h.bench("histogram/record", || {
        i = i.wrapping_mul(6364136223846793005).wrapping_add(1);
        hist.record(black_box(i % 10_000_000));
    });
    let mut hist = Histogram::new();
    for v in (0..1_000_000).step_by(37) {
        hist.record(v);
    }
    h.bench("histogram/quantile", || hist.quantile(black_box(0.99)));
}

fn bench_storage(h: &mut Harness) {
    let mut store = Store::new();
    let key = Key::new("bench");
    let mut seq = 0u64;
    h.bench("storage/accept_decide_physical", || {
        let read = store.read(&key);
        let txn = TxnId::new(0, seq);
        seq += 1;
        let opt = RecordOption::new(txn, read.version, WriteOp::Set(Value::Int(seq as i64)));
        store.accept(&key, opt).expect("bench accept");
        store.decide(&key, txn, true);
        // Bound memory growth during long bench runs.
        if seq.is_multiple_of(1024) {
            store.gc(4);
        }
    });

    let mut store = Store::new();
    let key = Key::new("stock");
    store
        .accept(
            &key,
            RecordOption::new(TxnId::new(0, 0), 0, WriteOp::Set(Value::Int(1_000_000))),
        )
        .expect("bench accept");
    store.decide(&key, TxnId::new(0, 0), true);
    // A standing crowd of pending deltas to sum over.
    for i in 1..=16u64 {
        store
            .accept(
                &key,
                RecordOption::new(TxnId::new(0, i), 0, WriteOp::add_with_floor(-1, 0)),
            )
            .expect("bench accept");
    }
    let probe = RecordOption::new(TxnId::new(1, 0), 0, WriteOp::add_with_floor(-1, 0));
    h.bench("storage/demarcation_validate", || {
        store.validate(&key, black_box(&probe))
    });
}

fn bench_zipf(h: &mut Harness) {
    let zipf = Zipf::new(1_000_000, 0.99);
    let mut rng = DetRng::new(3);
    h.bench("workload/zipf_sample", || zipf.sample(&mut rng));
}

fn main() {
    let mut h = Harness::from_args();
    bench_quorum(&mut h);
    bench_likelihood(&mut h);
    bench_ecdf(&mut h);
    bench_histogram(&mut h);
    bench_storage(&mut h);
    bench_zipf(&mut h);
}
