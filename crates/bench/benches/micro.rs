//! Criterion micro-benchmarks for the hot data structures: the prediction
//! math (these run on every progress event of every transaction), the
//! metrics histogram, storage validation, and workload sampling.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use planet_predict::likelihood::{KeyState, LikelihoodModel, TxnSnapshot};
use planet_predict::quorum::prob_at_least;
use planet_predict::LatencyEcdf;
use planet_sim::{DetRng, Histogram};
use planet_storage::{Key, RecordOption, Store, TxnId, Value, WriteOp};
use planet_workload::Zipf;

fn bench_quorum(c: &mut Criterion) {
    let probs5 = [0.9, 0.8, 0.95, 0.7, 0.85];
    let probs16: Vec<f64> = (0..16).map(|i| 0.5 + (i as f64) * 0.03).collect();
    c.bench_function("quorum/poisson_binomial_5_of_4", |b| {
        b.iter(|| prob_at_least(black_box(&probs5), black_box(4)))
    });
    c.bench_function("quorum/poisson_binomial_16_of_11", |b| {
        b.iter(|| prob_at_least(black_box(&probs16), black_box(11)))
    });
}

fn bench_likelihood(c: &mut Criterion) {
    let mut model = LikelihoodModel::new(5, 512);
    let mut rng = DetRng::new(7);
    for _ in 0..512 {
        for site in 0..5u8 {
            let rtt = 100_000 + (rng.unit_f64() * 50_000.0) as u64;
            model.observe_vote(site, rtt, rng.bernoulli(0.9), 1, 42);
        }
        model.observe_key_resolution(42, rng.bernoulli(0.8));
    }
    let snap = TxnSnapshot {
        keys: vec![
            KeyState {
                accepts: 1,
                rejects: 0,
                outstanding: vec![1, 2, 3, 4],
                pending_at_read: 1,
                key_hash: 42,
                quorum: 4,
                voters: 5,
            },
            KeyState {
                accepts: 0,
                rejects: 0,
                outstanding: vec![0, 1, 2, 3, 4],
                pending_at_read: 0,
                key_hash: 43,
                quorum: 4,
                voters: 5,
            },
        ],
        elapsed_us: 40_000,
    };
    c.bench_function("likelihood/two_key_snapshot", |b| {
        b.iter(|| model.likelihood(black_box(&snap), black_box(200_000)))
    });
    c.bench_function("likelihood/observe_vote", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            model.observe_vote((i % 5) as u8, 100_000 + i % 1000, true, 0, i % 64);
        })
    });
}

fn bench_ecdf(c: &mut Criterion) {
    let mut ecdf = LatencyEcdf::new(512);
    for i in 0..512u64 {
        ecdf.record(100_000 + i * 37 % 50_000);
    }
    c.bench_function("ecdf/conditional_within_warm", |b| {
        b.iter(|| ecdf.conditional_within(black_box(40_000), black_box(150_000)))
    });
    c.bench_function("ecdf/record_and_query", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            ecdf.record(100_000 + i % 10_000);
            ecdf.cdf(black_box(120_000))
        })
    });
}

fn bench_histogram(c: &mut Criterion) {
    let mut h = Histogram::new();
    c.bench_function("histogram/record", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_mul(6364136223846793005).wrapping_add(1);
            h.record(black_box(i % 10_000_000));
        })
    });
    for v in (0..1_000_000).step_by(37) {
        h.record(v);
    }
    c.bench_function("histogram/quantile", |b| {
        b.iter(|| h.quantile(black_box(0.99)))
    });
}

fn bench_storage(c: &mut Criterion) {
    c.bench_function("storage/accept_decide_physical", |b| {
        let mut store = Store::new();
        let key = Key::new("bench");
        let mut seq = 0u64;
        b.iter(|| {
            let read = store.read(&key);
            let txn = TxnId::new(0, seq);
            seq += 1;
            let opt = RecordOption::new(txn, read.version, WriteOp::Set(Value::Int(seq as i64)));
            store.accept(&key, opt).unwrap();
            store.decide(&key, txn, true);
        });
        // Bound memory growth during long bench runs.
        store.gc(4);
    });
    c.bench_function("storage/demarcation_validate", |b| {
        let mut store = Store::new();
        let key = Key::new("stock");
        store
            .accept(&key, RecordOption::new(TxnId::new(0, 0), 0, WriteOp::Set(Value::Int(1_000_000))))
            .unwrap();
        store.decide(&key, TxnId::new(0, 0), true);
        // A standing crowd of pending deltas to sum over.
        for i in 1..=16u64 {
            store
                .accept(&key, RecordOption::new(TxnId::new(0, i), 0, WriteOp::add_with_floor(-1, 0)))
                .unwrap();
        }
        let probe = RecordOption::new(TxnId::new(1, 0), 0, WriteOp::add_with_floor(-1, 0));
        b.iter(|| store.validate(&key, black_box(&probe)))
    });
}

fn bench_zipf(c: &mut Criterion) {
    let zipf = Zipf::new(1_000_000, 0.99);
    let mut rng = DetRng::new(3);
    c.bench_function("workload/zipf_sample", |b| b.iter(|| zipf.sample(&mut rng)));
}

criterion_group!(
    benches,
    bench_quorum,
    bench_likelihood,
    bench_ecdf,
    bench_histogram,
    bench_storage,
    bench_zipf
);
criterion_main!(benches);
