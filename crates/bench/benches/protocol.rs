//! Benchmarks of whole-protocol simulation throughput: how many simulated
//! transactions per wall-clock second the deterministic engine sustains per
//! commit path. These guard the *simulator's* performance — the full-scale
//! experiments run millions of events.

use planet_bench::timing::Harness;

use planet_core::{Planet, PlanetTxn, Protocol, SimDuration};

/// Run a fixed batch of single-key writes end to end and return the
/// deployment (so the work cannot be optimised away).
fn run_batch(protocol: Protocol, n: u64, seed: u64) -> Planet {
    let mut db = Planet::builder().protocol(protocol).seed(seed).build();
    let base = db.now();
    for i in 0..n {
        let txn = PlanetTxn::builder().set(format!("k{i}"), i as i64).build();
        db.submit_at(0, base + SimDuration::from_millis(1 + i * 5), txn);
    }
    db.run_for(SimDuration::from_secs(n * 5 / 1000 + 5));
    assert!(db.metrics().counter_value("planet.committed") >= n * 9 / 10);
    db
}

fn bench_protocols(h: &mut Harness) {
    for protocol in [Protocol::Fast, Protocol::Classic, Protocol::TwoPc] {
        let mut seed = 0;
        h.bench(
            &format!("protocol_sim_throughput/100_txns/{}", protocol.name()),
            || {
                seed += 1;
                run_batch(protocol, 100, seed)
            },
        );
    }
}

fn bench_contended(h: &mut Harness) {
    let mut seed = 1000;
    h.bench("protocol_sim_contended/five_site_hot_key_batch", || {
        seed += 1;
        let mut db = Planet::builder()
            .protocol(Protocol::Fast)
            .seed(seed)
            .build();
        let base = db.now();
        for i in 0..20u64 {
            for site in 0..5usize {
                let txn = PlanetTxn::builder().set("hot", i as i64).build();
                db.submit_at(site, base + SimDuration::from_millis(1 + i * 50), txn);
            }
        }
        db.run_for(SimDuration::from_secs(15));
        db
    });
}

fn main() {
    let mut h = Harness::from_args();
    bench_protocols(&mut h);
    bench_contended(&mut h);
}
