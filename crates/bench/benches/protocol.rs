//! Criterion benchmarks of whole-protocol simulation throughput: how many
//! simulated transactions per wall-clock second the deterministic engine
//! sustains per commit path. These guard the *simulator's* performance —
//! the full-scale experiments run millions of events.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use planet_core::{Planet, PlanetTxn, Protocol, SimDuration};

/// Run a fixed batch of single-key writes end to end and return the
/// deployment (so the work cannot be optimised away).
fn run_batch(protocol: Protocol, n: u64, seed: u64) -> Planet {
    let mut db = Planet::builder().protocol(protocol).seed(seed).build();
    let base = db.now();
    for i in 0..n {
        let txn = PlanetTxn::builder().set(format!("k{i}"), i as i64).build();
        db.submit_at(0, base + SimDuration::from_millis(1 + i * 5), txn);
    }
    db.run_for(SimDuration::from_secs(n * 5 / 1000 + 5));
    assert!(db.metrics().counter_value("planet.committed") >= n * 9 / 10);
    db
}

fn bench_protocols(c: &mut Criterion) {
    let mut group = c.benchmark_group("protocol_sim_throughput");
    group.sample_size(10);
    for protocol in [Protocol::Fast, Protocol::Classic, Protocol::TwoPc] {
        group.bench_with_input(
            BenchmarkId::new("100_txns", protocol.name()),
            &protocol,
            |b, &p| {
                let mut seed = 0;
                b.iter(|| {
                    seed += 1;
                    run_batch(p, 100, seed)
                })
            },
        );
    }
    group.finish();
}

fn bench_contended(c: &mut Criterion) {
    let mut group = c.benchmark_group("protocol_sim_contended");
    group.sample_size(10);
    group.bench_function("five_site_hot_key_batch", |b| {
        let mut seed = 1000;
        b.iter(|| {
            seed += 1;
            let mut db = Planet::builder().protocol(Protocol::Fast).seed(seed).build();
            let base = db.now();
            for i in 0..20u64 {
                for site in 0..5usize {
                    let txn = PlanetTxn::builder().set("hot", i as i64).build();
                    db.submit_at(site, base + SimDuration::from_millis(1 + i * 50), txn);
                }
            }
            db.run_for(SimDuration::from_secs(15));
            db
        })
    });
    group.finish();
}

criterion_group!(benches, bench_protocols, bench_contended);
criterion_main!(benches);
