//! A minimal wall-clock micro-benchmark harness.
//!
//! Replaces Criterion (external crates are unavailable in the offline build
//! environment) with the part we actually rely on: calibrated repetition,
//! a handful of samples, and a median ns/iter report. Benches register with
//! `harness = false` in Cargo.toml and drive this from `fn main()`.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target wall time per sample; iteration counts are doubled until a sample
/// takes at least this long, so cheap operations are measured in bulk.
const TARGET_SAMPLE: Duration = Duration::from_millis(10);

/// Samples per benchmark; the median is reported, which is robust to the
/// odd descheduling blip without Criterion's full bootstrap machinery.
const SAMPLES: usize = 11;

/// A named group of benchmarks with an optional substring filter taken from
/// the command line (`cargo bench -- <filter>`).
pub struct Harness {
    filter: Option<String>,
}

impl Harness {
    /// Build from `std::env::args`, ignoring flags (cargo passes `--bench`).
    pub fn from_args() -> Self {
        let filter = std::env::args().skip(1).find(|a| !a.starts_with("--"));
        Harness { filter }
    }

    /// Measure `f`, printing `name ... <median> ns/iter`. The closure's
    /// return value is black-boxed so the work cannot be optimised away.
    pub fn bench<T, F: FnMut() -> T>(&mut self, name: &str, mut f: F) {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        // Calibrate: double the per-sample iteration count until one sample
        // takes long enough to time reliably.
        let mut iters: u64 = 1;
        loop {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = t.elapsed();
            if elapsed >= TARGET_SAMPLE || iters >= 1 << 30 {
                break;
            }
            // Jump close to the target in one step once we have a signal.
            if elapsed > Duration::from_micros(50) {
                let scale = TARGET_SAMPLE.as_nanos() as f64 / elapsed.as_nanos().max(1) as f64;
                iters = ((iters as f64 * scale).ceil() as u64).clamp(iters + 1, iters * 128);
            } else {
                iters *= 8;
            }
        }

        let mut per_iter: Vec<f64> = (0..SAMPLES)
            .map(|_| {
                let t = Instant::now();
                for _ in 0..iters {
                    black_box(f());
                }
                t.elapsed().as_nanos() as f64 / iters as f64
            })
            .collect();
        per_iter.sort_by(|a, b| a.partial_cmp(b).expect("latencies are never NaN"));
        let median = per_iter[SAMPLES / 2];
        let (lo, hi) = (per_iter[0], per_iter[SAMPLES - 1]);
        println!(
            "{name:<44} {:>12} ns/iter  (min {}, max {}, {iters} iters x {SAMPLES} samples)",
            fmt_ns(median),
            fmt_ns(lo),
            fmt_ns(hi),
        );
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3}s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2}ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2}us", ns / 1e3)
    } else {
        format!("{ns:.0}")
    }
}
