//! Compiled-vs-interpreted plan ablation: the same closed-loop workloads
//! driven through `Msg::Submit` (a full [`TxnSpec`] per transaction — key
//! strings, write ops, the lot) and through `Msg::SubmitPlan` (a plan id
//! plus two or three scalar parameters against a program registered once),
//! on both live transports.
//!
//! Two workload shapes, matching `planet-workload`'s interpreted/compiled
//! twins: **ycsb-point** (single-key commutative bounded decrement over a
//! uniform keyspace) and **ticket** (read stock, decrement with floor,
//! insert a unique order record via a derived-key template). Every point
//! reports allocations-per-transaction measured by the crate's counting
//! allocator alongside ops/sec and latency — the compiled path's claim is
//! as much about allocation hygiene as raw speed, and on a one-core host
//! the alloc column is the less noisy of the two. Keyspaces are preloaded
//! (stock the decrements draw down) by a finite [`Preloader`] client before
//! any load client spawns, so every completion should commit on both paths.
//!
//! At `Scale::Full` the whole matrix runs at 256 clients and lands in
//! `BENCH_plan.json`; the `plan_smoke` CI test reruns a reduced matrix
//! through the same [`run_case`] harness.

use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::time::{Duration, Instant};

use planet_cluster::{
    mailbox, spawn_node, spawn_pool, Clock, LiveCluster, LoadClient, LoadRecord, PlaneConfig,
    PoolMembers, SpecSource, TcpTransport, Transport,
};
use planet_core::PlanId;
use planet_mdcc::{
    ClusterConfig, CoordinatorActor, Msg, Outcome, Protocol, ReadLevel, ReplicaActor, TxnSpec,
};
use planet_sim::metrics::Histogram;
use planet_sim::{Actor, ActorId, Context, NetworkModel, SimDuration, SiteId};
use planet_storage::{Key, Value, WriteOp};
use planet_workload::{
    stock_key, ticket_program, ycsb_point_program, KeyChooser, KeyDistribution, TicketConfig,
    TicketPlanParams, WriteKind, YcsbPointParams,
};

use crate::alloc_counter;
use crate::common::Scale;
use crate::report::Table;

const SITES: usize = 3;
const KEYS: u64 = 64;
const EVENTS: u64 = 64;
/// Preloaded stock per key: large enough that no bounded decrement ever
/// hits its floor inside a measurement window.
const STOCK: i64 = 1_000_000_000;
/// The shared YCSB plan id (every client registers the identical program).
const YCSB_PLAN: PlanId = 7;
/// Ticket plans are per-client (each bakes its own order-key prefix).
const TICKET_PLAN_BASE: PlanId = 1000;

/// Which workload shape a case drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// Single-key commutative bounded decrement, uniform keyspace.
    YcsbPoint,
    /// Read stock, decrement with floor, insert a unique order record.
    Ticket,
}

impl Workload {
    /// Label used in tables and JSON.
    pub fn name(self) -> &'static str {
        match self {
            Workload::YcsbPoint => "ycsb-point",
            Workload::Ticket => "ticket",
        }
    }
}

/// Interpreted (`Submit` a full spec) vs compiled (`SubmitPlan` against a
/// registered program).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Full `TxnSpec` per transaction.
    Interpreted,
    /// `(PlanId, params)` per transaction.
    Compiled,
}

impl Mode {
    /// Label used in tables and JSON.
    pub fn name(self) -> &'static str {
        match self {
            Mode::Interpreted => "interpreted",
            Mode::Compiled => "compiled",
        }
    }
}

/// Which live transport carries the case.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportKind {
    /// In-process [`LiveCluster`] channel fabric (2 ms cross-site RTT).
    Channel,
    /// In-process planetd-style TCP deployment over loopback sockets.
    Tcp,
}

impl TransportKind {
    /// Label used in tables and JSON.
    pub fn name(self) -> &'static str {
        match self {
            TransportKind::Channel => "channel",
            TransportKind::Tcp => "tcp",
        }
    }
}

/// One measured point of the ablation matrix.
pub struct PlanPoint {
    /// Workload label.
    pub workload: &'static str,
    /// Transport label.
    pub transport: &'static str,
    /// Mode label.
    pub mode: &'static str,
    /// Closed-loop clients across all sites.
    pub clients: usize,
    /// Completions per wall-clock second inside the window.
    pub ops_per_sec: f64,
    /// Median submit-to-decision latency.
    pub p50_us: u64,
    /// Tail submit-to-decision latency.
    pub p99_us: u64,
    /// Committed fraction of completions.
    pub commit_rate: f64,
    /// Completions inside the window.
    pub completions: u64,
    /// Process-wide allocations per completion inside the window.
    pub allocs_per_txn: f64,
    /// Submissions shed by full mailboxes.
    pub shed: u64,
}

/// Same LAN-ish model as the throughput sweeps: 2 ms cross-site RTT.
fn lan() -> NetworkModel {
    let rtt: Vec<Vec<f64>> = (0..SITES)
        .map(|i| (0..SITES).map(|j| if i == j { 0.1 } else { 2.0 }).collect())
        .collect();
    NetworkModel::from_rtt_ms(&rtt)
}

fn ycsb_chooser() -> KeyChooser {
    KeyChooser::new("plan-y", KeyDistribution::Uniform { n: KEYS })
}

fn ticket_config() -> TicketConfig {
    TicketConfig {
        events: EVENTS,
        initial_stock: STOCK,
        ..Default::default()
    }
}

/// The preload writes for a workload: `Set` the full keyspace so bounded
/// decrements never hit their floor mid-window.
fn preload_specs(workload: Workload) -> Vec<TxnSpec> {
    match workload {
        Workload::YcsbPoint => {
            let chooser = ycsb_chooser();
            (0..KEYS)
                .map(|i| TxnSpec::write_one(chooser.key_at(i), WriteOp::Set(Value::Int(STOCK))))
                .collect()
        }
        Workload::Ticket => (0..EVENTS)
            .map(|e| TxnSpec::write_one(stock_key(e), WriteOp::Set(Value::Int(STOCK))))
            .collect(),
    }
}

/// A finite, sequential preload client: submits each spec once, retries a
/// lost one after a deadline (`Set`s are idempotent), signals `done` when
/// the queue drains, then goes quiet.
struct Preloader {
    coordinator: ActorId,
    pending: Vec<TxnSpec>,
    tag: u64,
    done: Sender<()>,
}

impl Preloader {
    fn new(coordinator: ActorId, mut specs: Vec<TxnSpec>, done: Sender<()>) -> Self {
        // Submit in declaration order (pop from the back).
        specs.reverse();
        Preloader {
            coordinator,
            pending: specs,
            tag: 0,
            done,
        }
    }

    fn submit_current(&mut self, ctx: &mut Context<'_, Msg>) {
        match self.pending.last() {
            Some(spec) => {
                let me = ctx.self_id();
                ctx.send(
                    self.coordinator,
                    Msg::Submit {
                        spec: spec.clone(),
                        reply_to: me,
                        tag: self.tag,
                    },
                );
                ctx.schedule(
                    SimDuration::from_secs(2),
                    Msg::ClientTimer {
                        kind: 1,
                        tag: self.tag,
                    },
                );
            }
            None => {
                let _ = self.done.send(());
            }
        }
    }
}

impl Actor<Msg> for Preloader {
    fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
        self.submit_current(ctx);
    }

    fn on_message(&mut self, _from: ActorId, msg: Msg, ctx: &mut Context<'_, Msg>) {
        match msg {
            Msg::TxnDone { tag, .. } if tag == self.tag => {
                self.pending.pop();
                self.tag += 1;
                self.submit_current(ctx);
            }
            Msg::ClientTimer { kind: 1, tag } if tag == self.tag => {
                // The submit or its reply was lost: resend under the same
                // tag — a stale duplicate completing later no longer
                // matches `self.tag` and is ignored.
                self.submit_current(ctx);
            }
            _ => {}
        }
    }
}

/// Build one closed-loop client for `(workload, mode)`. `k` is the global
/// client index: the ticket workload bakes it into the order-key prefix so
/// concurrent clients never write the same order record.
fn load_client(
    workload: Workload,
    mode: Mode,
    k: usize,
    coordinator: ActorId,
    tx: Sender<LoadRecord>,
) -> LoadClient {
    let keys: Vec<Key> = (0..KEYS).map(|i| ycsb_chooser().key_at(i)).collect();
    let base = LoadClient::new(coordinator, keys, tx);
    match (workload, mode) {
        (Workload::YcsbPoint, Mode::Interpreted) => {
            let chooser = ycsb_chooser();
            let source: SpecSource = Box::new(move |rng| {
                TxnSpec::write_one(chooser.sample(rng), WriteOp::add_with_floor(-1, 0))
            });
            base.with_spec_source(source)
        }
        (Workload::YcsbPoint, Mode::Compiled) => {
            let chooser = ycsb_chooser();
            base.with_plan(
                YCSB_PLAN,
                ycsb_point_program(&chooser, WriteKind::Commutative),
                YcsbPointParams::new(chooser, WriteKind::Commutative).into_source(),
            )
        }
        (Workload::Ticket, Mode::Interpreted) => {
            let cfg = ticket_config();
            let events = KeyChooser::new(
                "event",
                KeyDistribution::Zipfian {
                    n: cfg.events,
                    theta: cfg.theta,
                },
            );
            let per = cfg.tickets_per_purchase;
            let mut issued: i64 = 0;
            let source: SpecSource = Box::new(move |rng| {
                let e = events.sample_index(rng);
                let stock = stock_key(e);
                let order = Key::new(format!("order:{k}:{issued}"));
                issued += 1;
                TxnSpec {
                    reads: vec![stock.clone()],
                    writes: vec![
                        (stock, WriteOp::add_with_floor(-per, 0)),
                        (order, WriteOp::Set(Value::Int(e as i64))),
                    ],
                    read_level: ReadLevel::Local,
                }
            });
            base.with_spec_source(source)
        }
        (Workload::Ticket, Mode::Compiled) => {
            let cfg = ticket_config();
            debug_assert!(k < 256, "ticket order prefixes are one byte");
            base.with_plan(
                TICKET_PLAN_BASE + k as PlanId,
                ticket_program(&cfg, k as u8),
                TicketPlanParams::new(&cfg).into_source(),
            )
        }
    }
}

struct Measured {
    ops_per_sec: f64,
    p50_us: u64,
    p99_us: u64,
    commit_rate: f64,
    completions: u64,
    allocs_per_txn: f64,
}

/// Drain the completion channel through a warmup, then measure a window,
/// attributing the process-wide allocation delta to its completions.
fn measure(rx: &Receiver<LoadRecord>, warmup: Duration, window: Duration) -> Measured {
    let warm_end = Instant::now() + warmup;
    while Instant::now() < warm_end {
        let _ = rx.recv_timeout(warm_end - Instant::now());
    }
    let alloc_start = alloc_counter::alloc_count();
    let started = Instant::now();
    let mut latencies = Histogram::new();
    let mut committed = 0u64;
    let mut completions = 0u64;
    while started.elapsed() < window {
        let remaining = window - started.elapsed();
        if let Ok(record) = rx.recv_timeout(remaining.min(Duration::from_millis(50))) {
            completions += 1;
            latencies.record(record.latency_us());
            if record.outcome == Outcome::Committed {
                committed += 1;
            }
        }
    }
    let elapsed = started.elapsed().as_secs_f64();
    let allocs = alloc_counter::alloc_count() - alloc_start;
    Measured {
        ops_per_sec: completions as f64 / elapsed,
        p50_us: latencies.quantile(0.50).unwrap_or(0),
        p99_us: latencies.quantile(0.99).unwrap_or(0),
        commit_rate: if completions > 0 {
            committed as f64 / completions as f64
        } else {
            0.0
        },
        completions,
        allocs_per_txn: allocs as f64 / completions.max(1) as f64,
    }
}

fn point(
    workload: Workload,
    transport: TransportKind,
    mode: Mode,
    clients: usize,
    m: Measured,
    shed: u64,
) -> PlanPoint {
    PlanPoint {
        workload: workload.name(),
        transport: transport.name(),
        mode: mode.name(),
        clients,
        ops_per_sec: m.ops_per_sec,
        p50_us: m.p50_us,
        p99_us: m.p99_us,
        commit_rate: m.commit_rate,
        completions: m.completions,
        allocs_per_txn: m.allocs_per_txn,
        shed,
    }
}

/// One case on the in-process channel transport.
fn run_channel_case(
    workload: Workload,
    mode: Mode,
    clients: usize,
    warmup: Duration,
    window: Duration,
    seed: u64,
) -> PlanPoint {
    let config = ClusterConfig::new(SITES, Protocol::Fast);
    let mut cluster = LiveCluster::builder(config)
        .network(lan())
        .seed(seed)
        .plane(PlaneConfig::default())
        .build();

    let (ptx, prx) = channel::<()>();
    cluster.spawn_client(
        0,
        Box::new(Preloader::new(
            cluster.coordinator(0),
            preload_specs(workload),
            ptx,
        )),
    );
    prx.recv_timeout(Duration::from_secs(30))
        .expect("preload finished");

    let (tx, rx) = channel::<LoadRecord>();
    for site in 0..SITES {
        let coordinator = cluster.coordinator(site);
        let actors: Vec<Box<dyn Actor<Msg>>> = (0..clients)
            .filter(|k| k % SITES == site)
            .map(|k| Box::new(load_client(workload, mode, k, coordinator, tx.clone())) as _)
            .collect();
        if !actors.is_empty() {
            cluster.spawn_client_pool(site, actors);
        }
    }
    drop(tx);
    let m = measure(&rx, warmup, window);
    let harvest = cluster.shutdown();
    point(
        workload,
        TransportKind::Channel,
        mode,
        clients,
        m,
        harvest.shed,
    )
}

/// One case over real sockets: the planetd/planet-load split inside one
/// process, exactly as `exp_throughput_sharded`'s tcp points (one server
/// transport per site hosting its replica and coordinator, one client-side
/// transport carrying pooled load clients), with a preload pool running to
/// completion before any load client spawns.
fn run_tcp_case(
    workload: Workload,
    mode: Mode,
    clients: usize,
    warmup: Duration,
    window: Duration,
    seed: u64,
) -> PlanPoint {
    let n = SITES;
    let config = ClusterConfig::new(n, Protocol::Fast);
    let clock = Clock::new();
    let plane = PlaneConfig::default();
    let replica_ids: Vec<ActorId> = (0..n).map(|i| ActorId(i as u32)).collect();
    let server_ids: Vec<u32> = (0..2 * n).map(|i| i as u32).collect();

    let transports: Vec<Arc<TcpTransport>> = (0..n).map(|_| TcpTransport::new()).collect();
    let addrs: Vec<_> = transports
        .iter()
        .map(|t| {
            let any = "127.0.0.1:0".parse().expect("loopback addr");
            t.listen(any).expect("bind")
        })
        .collect();
    let client_transport = TcpTransport::new();
    for t in transports.iter().chain(std::iter::once(&client_transport)) {
        for &id in &server_ids {
            // Replica site = id and coordinator n + site are both served by
            // site's transport.
            t.add_route(id, addrs[id as usize % n]);
        }
    }

    let mut nodes = Vec::new();
    for (site, transport) in transports.iter().enumerate() {
        let hosted: Vec<(u32, Box<dyn Actor<Msg>>)> = vec![
            (
                site as u32,
                Box::new(ReplicaActor::new(config.clone(), replica_ids.clone(), 0)),
            ),
            (
                (n + site) as u32,
                Box::new(CoordinatorActor::new(
                    config.clone(),
                    replica_ids.clone(),
                    SiteId(site as u8),
                )),
            ),
        ];
        for (id, actor) in hosted {
            let (tx, rx) = mailbox(plane.mailbox_capacity);
            transport.host(id, tx.clone());
            nodes.push(spawn_node(
                ActorId(id),
                SiteId(site as u8),
                actor,
                tx,
                rx,
                transport.clone() as Arc<dyn Transport>,
                clock,
                seed,
                plane,
            ));
        }
    }

    let mut next_client = (2 * n) as u32;

    // Preload through site 0's coordinator before any load client exists.
    let (ptx, prx) = channel::<()>();
    let preloader_id = ActorId(next_client);
    next_client += 1;
    let (pmtx, pmrx) = mailbox(plane.mailbox_capacity);
    client_transport.host(preloader_id.0, pmtx.clone());
    let preloader: PoolMembers = vec![(
        preloader_id,
        Box::new(Preloader::new(
            ActorId(n as u32),
            preload_specs(workload),
            ptx,
        )) as Box<dyn Actor<Msg>>,
    )];
    let preload_pool = spawn_pool(
        preloader,
        SiteId(0),
        pmtx,
        pmrx,
        client_transport.clone() as Arc<dyn Transport>,
        clock,
        seed,
        plane,
    );
    prx.recv_timeout(Duration::from_secs(30))
        .expect("preload finished");

    let (tx, rx) = channel::<LoadRecord>();
    let mut pools = Vec::new();
    for site in 0..n {
        let coordinator = ActorId((n + site) as u32);
        let (mtx, mrx) = mailbox(plane.mailbox_capacity);
        let members: PoolMembers = (0..clients)
            .filter(|k| k % n == site)
            .map(|k| {
                let id = ActorId(next_client);
                next_client += 1;
                client_transport.host(id.0, mtx.clone());
                let actor: Box<dyn Actor<Msg>> =
                    Box::new(load_client(workload, mode, k, coordinator, tx.clone()));
                (id, actor)
            })
            .collect();
        if !members.is_empty() {
            pools.push(spawn_pool(
                members,
                SiteId(site as u8),
                mtx,
                mrx,
                client_transport.clone() as Arc<dyn Transport>,
                clock,
                seed,
                plane,
            ));
        }
    }
    drop(tx);

    let m = measure(&rx, warmup, window);

    preload_pool.stop_and_join();
    for pool in pools {
        pool.stop_and_join();
    }
    // Coordinators before replicas, as LiveCluster::shutdown does.
    for node in nodes.into_iter().rev() {
        node.stop_and_join();
    }
    let mut shed = client_transport.shed();
    client_transport.stop();
    for t in &transports {
        shed += t.shed();
        t.stop();
    }
    point(workload, TransportKind::Tcp, mode, clients, m, shed)
}

/// Run one `(workload, transport, mode)` case once. Public so the
/// `plan_smoke` CI test drives the identical harness at reduced scale.
pub fn run_case(
    workload: Workload,
    transport: TransportKind,
    mode: Mode,
    clients: usize,
    warmup: Duration,
    window: Duration,
    seed: u64,
) -> PlanPoint {
    match transport {
        TransportKind::Channel => run_channel_case(workload, mode, clients, warmup, window, seed),
        TransportKind::Tcp => run_tcp_case(workload, mode, clients, warmup, window, seed),
    }
}

/// Median-of-`trials` by ops/sec, same policy as the throughput sweeps.
fn run_trials(
    workload: Workload,
    transport: TransportKind,
    mode: Mode,
    clients: usize,
    warmup: Duration,
    window: Duration,
    trials: usize,
) -> PlanPoint {
    let mut points: Vec<PlanPoint> = (0..trials)
        .map(|t| {
            let seed = 0x9_1A4 + 1000 * t as u64 + clients as u64;
            run_case(workload, transport, mode, clients, warmup, window, seed)
        })
        .collect();
    points.sort_by(|a, b| a.ops_per_sec.total_cmp(&b.ops_per_sec));
    points.remove(points.len() / 2)
}

/// Render the matrix as `BENCH_plan.json` at `path`.
pub fn write_plan_json(
    path: &str,
    scale_label: &str,
    points: &[PlanPoint],
    warmup: Duration,
    window: Duration,
    trials: usize,
) {
    let mut out = String::from("{\n  \"experiment\": \"plan\",\n");
    out.push_str(&format!(
        "  \"scale\": \"{scale_label}\",\n  \"sites\": {SITES},\n  \"keys\": {KEYS},\n  \"events\": {EVENTS},\n  \"warmup_secs\": {},\n  \"window_secs\": {},\n  \"trials\": {trials},\n  \"points\": [\n",
        warmup.as_secs_f64(),
        window.as_secs_f64(),
    ));
    for (i, p) in points.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"workload\": \"{}\", \"transport\": \"{}\", \"mode\": \"{}\", \"clients\": {}, \"ops_per_sec\": {:.1}, \"p50_us\": {}, \"p99_us\": {}, \"commit_rate\": {:.4}, \"completions\": {}, \"allocs_per_txn\": {:.1}, \"shed\": {}}}{}\n",
            p.workload,
            p.transport,
            p.mode,
            p.clients,
            p.ops_per_sec,
            p.p50_us,
            p.p99_us,
            p.commit_rate,
            p.completions,
            p.allocs_per_txn,
            p.shed,
            if i + 1 < points.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    if let Err(e) = std::fs::write(path, &out) {
        eprintln!("plan: could not write {path}: {e}");
    } else {
        eprintln!("wrote {path}");
    }
}

/// The `plan` experiment: compiled-vs-interpreted ablation over both
/// workloads and both transports.
pub fn plan(scale: Scale) -> Table {
    let clients = match scale {
        Scale::Quick => 8,
        Scale::Full => 256,
    };
    let (warmup, window, trials) = match scale {
        Scale::Quick => (Duration::from_millis(200), Duration::from_millis(500), 1),
        Scale::Full => (Duration::from_millis(500), Duration::from_secs(3), 3),
    };

    let mut table = Table::new(
        "plan",
        "Compiled plans vs interpreted specs: closed-loop ablation (both transports)",
        &[
            "workload",
            "transport",
            "mode",
            "ops/sec",
            "p50",
            "p99",
            "commit rate",
            "allocs/txn",
        ],
    );
    let mut points = Vec::new();
    for workload in [Workload::YcsbPoint, Workload::Ticket] {
        for transport in [TransportKind::Channel, TransportKind::Tcp] {
            for mode in [Mode::Interpreted, Mode::Compiled] {
                let p = run_trials(workload, transport, mode, clients, warmup, window, trials);
                table.row(vec![
                    p.workload.to_string(),
                    p.transport.to_string(),
                    p.mode.to_string(),
                    format!("{:.0}", p.ops_per_sec),
                    crate::report::ms(p.p50_us),
                    crate::report::ms(p.p99_us),
                    crate::report::pct(p.commit_rate),
                    format!("{:.0}", p.allocs_per_txn),
                ]);
                points.push(p);
            }
        }
    }
    table.note(format!(
        "{SITES} sites, {clients} closed-loop clients, {KEYS}-key uniform ycsb / {EVENTS}-event zipfian ticket, preloaded stock, {}s warmup, {}s window, median of {trials}; allocs/txn is the process-wide allocation delta over the window",
        warmup.as_secs_f64(),
        window.as_secs_f64(),
    ));
    if scale == Scale::Full {
        write_plan_json("BENCH_plan.json", "full", &points, warmup, window, trials);
    }
    table
}
