//! A counting global allocator: [`std::alloc::System`] plus one relaxed
//! atomic increment per allocation, so experiments can report
//! allocations-per-transaction alongside throughput. The `plan` ablation
//! uses the delta across its measurement window to compare the compiled
//! and interpreted commit paths; the per-allocation overhead (one
//! uncontended atomic add) is identical for both sides of every ablation,
//! so ratios are undistorted.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

/// The counting allocator registered as `#[global_allocator]` in
/// `planet-bench`'s crate root.
pub struct CountingAllocator;

// The one unsafe impl in the workspace: it forwards verbatim to `System`
// and only adds a counter, preserving `System`'s safety contract.
#[allow(unsafe_code)]
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // A grow that moves is a fresh allocation as far as hot-path
        // hygiene is concerned; counting every realloc keeps `Vec` growth
        // visible instead of laundering it.
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

/// Total allocations (allocs + reallocs) since process start, across all
/// threads. Subtract two readings to attribute a window.
pub fn alloc_count() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}
