//! Sharded-replica throughput: the same closed-loop concurrency sweep as
//! [`crate::exp_throughput`], but varying the number of replica shards per
//! site (`ClusterConfig::with_shards`) on both live transports:
//!
//! * **channel** — the in-process [`LiveCluster`], thread per shard, the
//!   delay fabric shaping deliveries;
//! * **tcp** — three in-process [`TcpTransport`]s (one per "planetd"), each
//!   hosting its site's shard replicas and coordinator, clients driving
//!   load through a fourth client-side transport over real sockets.
//!
//! Each point reports the host's core count alongside the numbers: shards
//! only buy parallel commit work when the host actually has cores to run
//! them on, so `cores` is part of the result, not a footnote. At
//! `Scale::Full` the sweep lands in `BENCH_throughput_sharded.json`.

use std::sync::mpsc::channel;
use std::sync::Arc;
use std::time::{Duration, Instant};

use planet_cluster::{
    mailbox, spawn_node, spawn_pool, Clock, LiveCluster, LoadClient, LoadRecord, PlaneConfig,
    PoolMembers, TcpTransport, Transport,
};
use planet_mdcc::{ClusterConfig, CoordinatorActor, Msg, Outcome, Protocol, ReplicaActor};
use planet_sim::metrics::Histogram;
use planet_sim::{Actor, ActorId, NetworkModel, SiteId};
use planet_storage::Key;

use crate::common::Scale;
use crate::report::Table;

const SITES: usize = 3;
const KEYS: usize = 64;

/// One measured point of the sharded sweep.
struct Point {
    shards: usize,
    transport: &'static str,
    clients: usize,
    ops_per_sec: f64,
    p50_us: u64,
    p99_us: u64,
    commit_rate: f64,
    completions: u64,
    shed: u64,
}

/// Same LAN-ish model as the base throughput sweep: 2 ms cross-site RTT.
fn lan() -> NetworkModel {
    let rtt: Vec<Vec<f64>> = (0..SITES)
        .map(|i| (0..SITES).map(|j| if i == j { 0.1 } else { 2.0 }).collect())
        .collect();
    NetworkModel::from_rtt_ms(&rtt)
}

fn keys() -> Vec<Key> {
    (0..KEYS).map(|i| Key::new(format!("sh-{i}"))).collect()
}

/// Drain the completion channel through a warmup, then a measured window.
/// Returns `(ops_per_sec, p50, p99, commit_rate, completions)`.
fn measure(
    rx: &std::sync::mpsc::Receiver<LoadRecord>,
    warmup: Duration,
    window: Duration,
) -> (f64, u64, u64, f64, u64) {
    let warm_end = Instant::now() + warmup;
    while Instant::now() < warm_end {
        let _ = rx.recv_timeout(warm_end - Instant::now());
    }
    let started = Instant::now();
    let mut latencies = Histogram::new();
    let mut committed = 0u64;
    let mut completions = 0u64;
    while started.elapsed() < window {
        let remaining = window - started.elapsed();
        if let Ok(record) = rx.recv_timeout(remaining.min(Duration::from_millis(50))) {
            completions += 1;
            latencies.record(record.latency_us());
            if record.outcome == Outcome::Committed {
                committed += 1;
            }
        }
    }
    let elapsed = started.elapsed().as_secs_f64();
    (
        completions as f64 / elapsed,
        latencies.quantile(0.50).unwrap_or(0),
        latencies.quantile(0.99).unwrap_or(0),
        if completions > 0 {
            committed as f64 / completions as f64
        } else {
            0.0
        },
        completions,
    )
}

/// One point on the in-process channel transport: [`LiveCluster`] already
/// spawns a thread per shard replica, so this only varies the config.
fn run_channel_point(
    shards: usize,
    clients: usize,
    warmup: Duration,
    window: Duration,
    seed: u64,
) -> Point {
    let config = ClusterConfig::new(SITES, Protocol::Fast).with_shards(shards);
    let mut cluster = LiveCluster::builder(config)
        .network(lan())
        .seed(seed)
        .plane(PlaneConfig::default())
        .build();
    let keys = keys();
    let (tx, rx) = channel::<LoadRecord>();
    for site in 0..SITES {
        let coordinator = cluster.coordinator(site);
        let actors: Vec<Box<dyn Actor<Msg>>> = (0..clients)
            .filter(|k| k % SITES == site)
            .map(|_| Box::new(LoadClient::new(coordinator, keys.clone(), tx.clone())) as _)
            .collect();
        if !actors.is_empty() {
            cluster.spawn_client_pool(site, actors);
        }
    }
    drop(tx);
    let (ops_per_sec, p50_us, p99_us, commit_rate, completions) = measure(&rx, warmup, window);
    let harvest = cluster.shutdown();
    Point {
        shards,
        transport: "channel",
        clients,
        ops_per_sec,
        p50_us,
        p99_us,
        commit_rate,
        completions,
        shed: harvest.shed,
    }
}

/// One point over real sockets: three server transports (one per
/// "planetd", hosting that site's shard replicas and coordinator with the
/// shard-major id layout) plus one client-side transport whose pooled
/// [`LoadClient`]s reach coordinators through static routes and receive
/// replies down the learned connections — exactly the planetd/planet-load
/// split, inside one process.
fn run_tcp_point(
    shards: usize,
    clients: usize,
    warmup: Duration,
    window: Duration,
    seed: u64,
) -> Point {
    let n = SITES;
    let config = ClusterConfig::new(n, Protocol::Fast).with_shards(shards);
    let clock = Clock::new();
    let plane = PlaneConfig::default();
    let replica_ids: Vec<ActorId> = (0..shards * n).map(|i| ActorId(i as u32)).collect();
    let server_ids: Vec<u32> = (0..(shards + 1) * n).map(|i| i as u32).collect();

    let transports: Vec<Arc<TcpTransport>> = (0..n).map(|_| TcpTransport::new()).collect();
    let addrs: Vec<_> = transports
        .iter()
        .map(|t| {
            let any = "127.0.0.1:0".parse().expect("loopback addr");
            t.listen(any).expect("bind")
        })
        .collect();
    let client_transport = TcpTransport::new();
    for t in transports.iter().chain(std::iter::once(&client_transport)) {
        for &id in &server_ids {
            // Replica (site, shard) = shard*n + site and coordinator
            // shards*n + site are both served by site's transport.
            t.add_route(id, addrs[id as usize % n]);
        }
    }

    let mut nodes = Vec::new();
    for (site, transport) in transports.iter().enumerate() {
        let mut hosted: Vec<(u32, Box<dyn Actor<Msg>>)> = Vec::new();
        for shard in 0..shards {
            let peers = replica_ids[shard * n..(shard + 1) * n].to_vec();
            hosted.push((
                (shard * n + site) as u32,
                Box::new(ReplicaActor::new(config.clone(), peers, shard)),
            ));
        }
        hosted.push((
            (shards * n + site) as u32,
            Box::new(CoordinatorActor::new(
                config.clone(),
                replica_ids.clone(),
                SiteId(site as u8),
            )),
        ));
        for (id, actor) in hosted {
            let (tx, rx) = mailbox(plane.mailbox_capacity);
            transport.host(id, tx.clone());
            nodes.push(spawn_node(
                ActorId(id),
                SiteId(site as u8),
                actor,
                tx,
                rx,
                transport.clone() as Arc<dyn Transport>,
                clock,
                seed,
                plane,
            ));
        }
    }

    let keys = keys();
    let (tx, rx) = channel::<LoadRecord>();
    let mut next_client = ((shards + 1) * n) as u32;
    let mut pools = Vec::new();
    for site in 0..n {
        let coordinator = ActorId((shards * n + site) as u32);
        let (mtx, mrx) = mailbox(plane.mailbox_capacity);
        let members: PoolMembers = (0..clients)
            .filter(|k| k % n == site)
            .map(|_| {
                let id = ActorId(next_client);
                next_client += 1;
                client_transport.host(id.0, mtx.clone());
                let actor: Box<dyn Actor<Msg>> =
                    Box::new(LoadClient::new(coordinator, keys.clone(), tx.clone()));
                (id, actor)
            })
            .collect();
        if !members.is_empty() {
            pools.push(spawn_pool(
                members,
                SiteId(site as u8),
                mtx,
                mrx,
                client_transport.clone() as Arc<dyn Transport>,
                clock,
                seed,
                plane,
            ));
        }
    }
    drop(tx);

    let (ops_per_sec, p50_us, p99_us, commit_rate, completions) = measure(&rx, warmup, window);

    for pool in pools {
        pool.stop_and_join();
    }
    // Coordinators before replicas, as LiveCluster::shutdown does.
    for node in nodes.into_iter().rev() {
        node.stop_and_join();
    }
    let mut shed = client_transport.shed();
    client_transport.stop();
    for t in &transports {
        shed += t.shed();
        t.stop();
    }

    Point {
        shards,
        transport: "tcp",
        clients,
        ops_per_sec,
        p50_us,
        p99_us,
        commit_rate,
        completions,
        shed,
    }
}

/// Median-of-`trials` by ops/sec, as the base throughput sweep does.
fn run_trials(
    transport: &'static str,
    shards: usize,
    clients: usize,
    warmup: Duration,
    window: Duration,
    trials: usize,
) -> Point {
    let mut points: Vec<Point> = (0..trials)
        .map(|t| {
            let seed = 9000 + shards as u64 * 100 + clients as u64 + 1000 * t as u64;
            match transport {
                "tcp" => run_tcp_point(shards, clients, warmup, window, seed),
                _ => run_channel_point(shards, clients, warmup, window, seed),
            }
        })
        .collect();
    points.sort_by(|a, b| a.ops_per_sec.total_cmp(&b.ops_per_sec));
    points.remove(points.len() / 2)
}

fn cores() -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
}

fn write_json(points: &[Point], warmup: Duration, window: Duration, trials: usize) {
    let mut out = String::from("{\n  \"experiment\": \"throughput_sharded\",\n");
    out.push_str(&format!(
        "  \"sites\": {SITES},\n  \"keys\": {KEYS},\n  \"cores\": {},\n  \"warmup_secs\": {},\n  \"window_secs\": {},\n  \"trials\": {trials},\n  \"points\": [\n",
        cores(),
        warmup.as_secs_f64(),
        window.as_secs_f64()
    ));
    for (i, p) in points.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"shards\": {}, \"transport\": \"{}\", \"clients\": {}, \"ops_per_sec\": {:.1}, \"p50_us\": {}, \"p99_us\": {}, \"commit_rate\": {:.4}, \"completions\": {}, \"shed\": {}}}{}\n",
            p.shards,
            p.transport,
            p.clients,
            p.ops_per_sec,
            p.p50_us,
            p.p99_us,
            p.commit_rate,
            p.completions,
            p.shed,
            if i + 1 < points.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    if let Err(e) = std::fs::write("BENCH_throughput_sharded.json", &out) {
        eprintln!("throughput-sharded: could not write BENCH_throughput_sharded.json: {e}");
    } else {
        eprintln!("wrote BENCH_throughput_sharded.json");
    }
}

/// The `throughput-sharded` experiment: ops/sec vs shard count and client
/// concurrency, on both live transports.
pub fn throughput_sharded(scale: Scale) -> Table {
    let shard_counts: &[usize] = &[1, 2, 4];
    let client_points: &[usize] = match scale {
        Scale::Quick => &[8],
        Scale::Full => &[64, 256],
    };
    let (warmup, window, trials) = match scale {
        Scale::Quick => (Duration::from_millis(200), Duration::from_millis(500), 1),
        Scale::Full => (Duration::from_millis(500), Duration::from_secs(2), 3),
    };

    let mut table = Table::new(
        "throughput-sharded",
        "Live cluster: throughput vs replica shards per site (channel + tcp transports)",
        &[
            "shards",
            "transport",
            "clients",
            "ops/sec",
            "p50",
            "p99",
            "commit rate",
        ],
    );
    let mut points = Vec::new();
    for &transport in &["channel", "tcp"] {
        for &shards in shard_counts {
            for &clients in client_points {
                let point = run_trials(transport, shards, clients, warmup, window, trials);
                table.row(vec![
                    point.shards.to_string(),
                    point.transport.to_string(),
                    point.clients.to_string(),
                    format!("{:.0}", point.ops_per_sec),
                    crate::report::ms(point.p50_us),
                    crate::report::ms(point.p99_us),
                    crate::report::pct(point.commit_rate),
                ]);
                points.push(point);
            }
        }
    }
    table.note(format!(
        "{SITES} sites, shard-per-thread, {KEYS} keys, commutative increments, {} host core(s), median of {trials}; channel points ride the 2ms-RTT fabric, tcp points raw loopback sockets",
        cores()
    ));
    if scale == Scale::Full {
        write_json(&points, warmup, window, trials);
    }
    table
}
