//! Sharded-replica throughput: the same closed-loop concurrency sweep as
//! [`crate::exp_throughput`], but varying the number of replica shards per
//! site (`ClusterConfig::with_shards`) on both live transports:
//!
//! * **channel** — the in-process [`LiveCluster`], the delay fabric shaping
//!   deliveries;
//! * **tcp** — three in-process [`TcpTransport`]s (one per "planetd"), each
//!   hosting its site's shard replicas and coordinator, clients driving
//!   load through a fourth client-side transport over real sockets.
//!
//! Each transport runs in two scheduling modes: **reactor** (the sharded
//! event-loop runtime, every actor a task multiplexed over `workers`
//! worker threads) swept across all shard counts, and **threads**
//! (thread-per-actor, `workers = 0`) at one shard as the baseline the
//! reactor must not regress against.
//!
//! Each point reports the host's core count alongside the numbers: shards
//! only buy parallel commit work when the host actually has cores to run
//! them on, so `cores` is part of the result, not a footnote. Every point
//! also carries the four per-txn latency-attribution spans (queueing,
//! quorum wait, WAL drive, network) harvested from the actors' metrics. At
//! `Scale::Full` the sweep lands in `BENCH_throughput_sharded.json`.

use std::sync::mpsc::channel;
use std::sync::Arc;
use std::time::{Duration, Instant};

use planet_cluster::{
    mailbox, spawn_node, spawn_pool, Clock, LiveCluster, LoadClient, LoadRecord, PlaneConfig,
    PoolMembers, Reactor, TcpTransport, Transport,
};
use planet_mdcc::{ClusterConfig, CoordinatorActor, Msg, Outcome, Protocol, ReplicaActor};
use planet_sim::metrics::{Histogram, Metrics};
use planet_sim::{Actor, ActorId, NetworkModel, SiteId};
use planet_storage::Key;

use crate::common::Scale;
use crate::report::Table;

const SITES: usize = 3;
const KEYS: usize = 64;

/// Summary of one span histogram at one point.
#[derive(Clone, Copy, Default)]
struct SpanStat {
    p50_us: u64,
    p99_us: u64,
    count: u64,
}

/// The four per-txn latency-attribution spans, harvested per point.
#[derive(Clone, Copy, Default)]
struct SpanSet {
    /// Mailbox enqueue → drain, all actors.
    queue: SpanStat,
    /// Coordinator proposal dispatch → decision.
    quorum_wait: SpanStat,
    /// WAL-class message drive time at replicas.
    wal: SpanStat,
    /// Client-observed latency minus coordinator hold time.
    network: SpanStat,
}

fn span_stat(metrics: &mut Metrics, name: &str) -> SpanStat {
    let h = metrics.histogram(name);
    SpanStat {
        p50_us: h.quantile(0.50).unwrap_or(0),
        p99_us: h.quantile(0.99).unwrap_or(0),
        count: h.count(),
    }
}

fn span_set(metrics: &mut Metrics) -> SpanSet {
    SpanSet {
        queue: span_stat(metrics, "span.queue_us"),
        quorum_wait: span_stat(metrics, "span.quorum_wait_us"),
        wal: span_stat(metrics, "span.wal_us"),
        network: span_stat(metrics, "span.network_us"),
    }
}

/// Merge many harvested [`Metrics`] and summarize their spans.
fn span_set_of(all: impl IntoIterator<Item = Metrics>) -> SpanSet {
    let mut merged = Metrics::new();
    for metrics in all {
        for (name, hist) in metrics.histograms() {
            merged.histogram(name).merge(hist);
        }
    }
    span_set(&mut merged)
}

/// One measured point of the sharded sweep.
struct Point {
    shards: usize,
    transport: &'static str,
    /// Reactor worker threads; 0 = thread-per-actor baseline.
    workers: usize,
    clients: usize,
    ops_per_sec: f64,
    p50_us: u64,
    p99_us: u64,
    commit_rate: f64,
    completions: u64,
    shed: u64,
    spans: SpanSet,
}

/// Same LAN-ish model as the base throughput sweep: 2 ms cross-site RTT.
fn lan() -> NetworkModel {
    let rtt: Vec<Vec<f64>> = (0..SITES)
        .map(|i| (0..SITES).map(|j| if i == j { 0.1 } else { 2.0 }).collect())
        .collect();
    NetworkModel::from_rtt_ms(&rtt)
}

fn keys() -> Vec<Key> {
    (0..KEYS).map(|i| Key::new(format!("sh-{i}"))).collect()
}

/// The plane for a sweep mode: reactor with `workers` threads, or the
/// thread-per-actor baseline when `workers == 0`.
fn plane_for(workers: usize) -> PlaneConfig {
    if workers > 0 {
        PlaneConfig::default().with_workers(workers)
    } else {
        PlaneConfig::thread_per_actor()
    }
}

/// Drain the completion channel through a warmup, then a measured window.
/// Returns `(ops_per_sec, p50, p99, commit_rate, completions)`.
fn measure(
    rx: &std::sync::mpsc::Receiver<LoadRecord>,
    warmup: Duration,
    window: Duration,
) -> (f64, u64, u64, f64, u64) {
    // Coarse poll-and-drain, not per-record blocking recv: at tens of
    // thousands of completions per second a per-record wake of this thread
    // preempts the system under test once per transaction and the sweep
    // measures the kernel's wakeup behavior instead of the cluster.
    let warm_end = Instant::now() + warmup;
    while Instant::now() < warm_end {
        std::thread::sleep(Duration::from_millis(10).min(warm_end - Instant::now()));
        while rx.try_recv().is_ok() {}
    }
    let started = Instant::now();
    let mut latencies = Histogram::new();
    let mut committed = 0u64;
    let mut completions = 0u64;
    while started.elapsed() < window {
        std::thread::sleep(Duration::from_millis(10).min(window - started.elapsed()));
        while let Ok(record) = rx.try_recv() {
            completions += 1;
            latencies.record(record.latency_us());
            if record.outcome == Outcome::Committed {
                committed += 1;
            }
        }
    }
    let elapsed = started.elapsed().as_secs_f64();
    (
        completions as f64 / elapsed,
        latencies.quantile(0.50).unwrap_or(0),
        latencies.quantile(0.99).unwrap_or(0),
        if completions > 0 {
            committed as f64 / completions as f64
        } else {
            0.0
        },
        completions,
    )
}

/// One point on the in-process channel transport: [`LiveCluster`] picks the
/// runtime (reactor tasks vs threads) from the plane's `workers`.
fn run_channel_point(
    shards: usize,
    workers: usize,
    clients: usize,
    warmup: Duration,
    window: Duration,
    seed: u64,
) -> Point {
    let config = ClusterConfig::new(SITES, Protocol::Fast).with_shards(shards);
    let mut cluster = LiveCluster::builder(config)
        .network(lan())
        .seed(seed)
        .plane(plane_for(workers))
        .build();
    let keys = keys();
    let (tx, rx) = channel::<LoadRecord>();
    for site in 0..SITES {
        let coordinator = cluster.coordinator(site);
        let actors: Vec<Box<dyn Actor<Msg>>> = (0..clients)
            .filter(|k| k % SITES == site)
            .map(|_| Box::new(LoadClient::new(coordinator, keys.clone(), tx.clone())) as _)
            .collect();
        if !actors.is_empty() {
            cluster.spawn_client_pool(site, actors);
        }
    }
    drop(tx);
    let (ops_per_sec, p50_us, p99_us, commit_rate, completions) = measure(&rx, warmup, window);
    let harvest = cluster.shutdown();
    let mut merged = harvest.merged_metrics();
    Point {
        shards,
        transport: "channel",
        workers,
        clients,
        ops_per_sec,
        p50_us,
        p99_us,
        commit_rate,
        completions,
        shed: harvest.shed,
        spans: span_set(&mut merged),
    }
}

/// One point over real sockets: three server transports (one per
/// "planetd", hosting that site's shard replicas and coordinator with the
/// shard-major id layout) plus one client-side transport whose
/// [`LoadClient`]s reach coordinators through static routes and receive
/// replies down the learned connections — exactly the planetd/planet-load
/// split, inside one process. In reactor mode every hosted actor and every
/// client becomes a task on one shared [`Reactor`]; in thread mode the
/// servers get a thread each and clients share pool threads.
fn run_tcp_point(
    shards: usize,
    workers: usize,
    clients: usize,
    warmup: Duration,
    window: Duration,
    seed: u64,
) -> Point {
    let n = SITES;
    let config = ClusterConfig::new(n, Protocol::Fast).with_shards(shards);
    let clock = Clock::new();
    let plane = plane_for(workers);
    let reactor = (plane.workers > 0).then(|| Reactor::new(clock, plane, seed));
    let replica_ids: Vec<ActorId> = (0..shards * n).map(|i| ActorId(i as u32)).collect();
    let server_ids: Vec<u32> = (0..(shards + 1) * n).map(|i| i as u32).collect();

    let transports: Vec<Arc<TcpTransport>> = (0..n).map(|_| TcpTransport::new()).collect();
    let addrs: Vec<_> = transports
        .iter()
        .map(|t| {
            let any = "127.0.0.1:0".parse().expect("loopback addr");
            t.listen(any).expect("bind")
        })
        .collect();
    let client_transport = TcpTransport::new();
    for t in transports.iter().chain(std::iter::once(&client_transport)) {
        for &id in &server_ids {
            // Replica (site, shard) = shard*n + site and coordinator
            // shards*n + site are both served by site's transport.
            t.add_route(id, addrs[id as usize % n]);
        }
    }

    let mut nodes = Vec::new();
    for (site, transport) in transports.iter().enumerate() {
        let mut hosted: Vec<(u32, Box<dyn Actor<Msg>>)> = Vec::new();
        for shard in 0..shards {
            let peers = replica_ids[shard * n..(shard + 1) * n].to_vec();
            hosted.push((
                (shard * n + site) as u32,
                Box::new(ReplicaActor::new(config.clone(), peers, shard)),
            ));
        }
        hosted.push((
            (shards * n + site) as u32,
            Box::new(CoordinatorActor::new(
                config.clone(),
                replica_ids.clone(),
                SiteId(site as u8),
            )),
        ));
        for (id, actor) in hosted {
            let (tx, rx) = mailbox(plane.mailbox_capacity);
            transport.host(id, tx.clone());
            nodes.push(match &reactor {
                Some(reactor) => reactor.spawn(
                    ActorId(id),
                    SiteId(site as u8),
                    actor,
                    tx,
                    rx,
                    transport.clone() as Arc<dyn Transport>,
                ),
                None => spawn_node(
                    ActorId(id),
                    SiteId(site as u8),
                    actor,
                    tx,
                    rx,
                    transport.clone() as Arc<dyn Transport>,
                    clock,
                    seed,
                    plane,
                ),
            });
        }
    }

    let keys = keys();
    let (tx, rx) = channel::<LoadRecord>();
    let mut next_client = ((shards + 1) * n) as u32;
    let mut pools = Vec::new();
    for site in 0..n {
        let coordinator = ActorId((shards * n + site) as u32);
        let members: Vec<ActorId> = (0..clients)
            .filter(|k| k % n == site)
            .map(|_| {
                let id = ActorId(next_client);
                next_client += 1;
                id
            })
            .collect();
        if members.is_empty() {
            continue;
        }
        match &reactor {
            // Reactor: clients are chunked into one pool task per worker
            // (mirroring `LiveCluster::spawn_client_pool`) — a task per
            // client would pay the full scheduling cost for every ~2
            // messages of work, while chunks keep batch amortization and
            // stay stealable.
            Some(reactor) => {
                let chunk = members.len().div_ceil(reactor.workers()).max(1);
                for group in members.chunks(chunk) {
                    let (mtx, mrx) = mailbox(plane.mailbox_capacity);
                    let pool_members: PoolMembers = group
                        .iter()
                        .map(|&id| {
                            client_transport.host(id.0, mtx.clone());
                            let actor: Box<dyn Actor<Msg>> =
                                Box::new(LoadClient::new(coordinator, keys.clone(), tx.clone()));
                            (id, actor)
                        })
                        .collect();
                    pools.push(reactor.spawn_pool(
                        pool_members,
                        SiteId(site as u8),
                        mtx,
                        mrx,
                        client_transport.clone() as Arc<dyn Transport>,
                    ));
                }
            }
            // Threads: one pool thread per site multiplexing its members.
            None => {
                let (mtx, mrx) = mailbox(plane.mailbox_capacity);
                let pool_members: PoolMembers = members
                    .into_iter()
                    .map(|id| {
                        client_transport.host(id.0, mtx.clone());
                        let actor: Box<dyn Actor<Msg>> =
                            Box::new(LoadClient::new(coordinator, keys.clone(), tx.clone()));
                        (id, actor)
                    })
                    .collect();
                pools.push(spawn_pool(
                    pool_members,
                    SiteId(site as u8),
                    mtx,
                    mrx,
                    client_transport.clone() as Arc<dyn Transport>,
                    clock,
                    seed,
                    plane,
                ));
            }
        }
    }
    drop(tx);

    let (ops_per_sec, p50_us, p99_us, commit_rate, completions) = measure(&rx, warmup, window);

    let mut all_metrics = Vec::new();
    for pool in pools {
        let (_, metrics) = pool.stop_and_join();
        all_metrics.push(metrics);
    }
    // Coordinators before replicas, as LiveCluster::shutdown does. (In
    // reactor mode client tasks joined here too — they were pushed last, so
    // the reverse order stops them first.)
    for node in nodes.into_iter().rev() {
        let (_, metrics) = node.stop_and_join();
        all_metrics.push(metrics);
    }
    if let Some(reactor) = reactor {
        reactor.shutdown();
    }
    let mut shed = client_transport.shed();
    client_transport.stop();
    for t in &transports {
        shed += t.shed();
        t.stop();
    }

    Point {
        shards,
        transport: "tcp",
        workers,
        clients,
        ops_per_sec,
        p50_us,
        p99_us,
        commit_rate,
        completions,
        shed,
        spans: span_set_of(all_metrics),
    }
}

/// Median-of-`trials` by ops/sec, as the base throughput sweep does.
#[allow(clippy::too_many_arguments)]
fn cores() -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
}

fn span_json(name: &str, s: &SpanStat) -> String {
    format!(
        "\"{name}\": {{\"p50_us\": {}, \"p99_us\": {}, \"count\": {}}}",
        s.p50_us, s.p99_us, s.count
    )
}

fn write_json(points: &[Point], warmup: Duration, window: Duration, trials: usize) {
    let mut out = String::from("{\n  \"experiment\": \"throughput_sharded\",\n");
    out.push_str(&format!(
        "  \"sites\": {SITES},\n  \"keys\": {KEYS},\n  \"cores\": {},\n  \"warmup_secs\": {},\n  \"window_secs\": {},\n  \"trials\": {trials},\n  \"points\": [\n",
        cores(),
        warmup.as_secs_f64(),
        window.as_secs_f64()
    ));
    for (i, p) in points.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"shards\": {}, \"transport\": \"{}\", \"workers\": {}, \"clients\": {}, \"ops_per_sec\": {:.1}, \"p50_us\": {}, \"p99_us\": {}, \"commit_rate\": {:.4}, \"completions\": {}, \"shed\": {}, \"spans\": {{{}, {}, {}, {}}}}}{}\n",
            p.shards,
            p.transport,
            p.workers,
            p.clients,
            p.ops_per_sec,
            p.p50_us,
            p.p99_us,
            p.commit_rate,
            p.completions,
            p.shed,
            span_json("queue_us", &p.spans.queue),
            span_json("quorum_wait_us", &p.spans.quorum_wait),
            span_json("wal_us", &p.spans.wal),
            span_json("network_us", &p.spans.network),
            if i + 1 < points.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    if let Err(e) = std::fs::write("BENCH_throughput_sharded.json", &out) {
        eprintln!("throughput-sharded: could not write BENCH_throughput_sharded.json: {e}");
    } else {
        eprintln!("wrote BENCH_throughput_sharded.json");
    }
}

/// The `throughput-sharded` experiment: ops/sec vs shard count, client
/// concurrency and scheduling mode, on both live transports.
pub fn throughput_sharded(scale: Scale) -> Table {
    let shard_counts: &[usize] = &[1, 2, 4];
    let client_points: &[usize] = match scale {
        Scale::Quick => &[8],
        Scale::Full => &[64, 256, 1024],
    };
    let (warmup, window, trials) = match scale {
        Scale::Quick => (Duration::from_millis(200), Duration::from_millis(500), 1),
        Scale::Full => (Duration::from_millis(500), Duration::from_secs(2), 3),
    };
    let reactor_workers = planet_cluster::default_workers();

    // Mode sweep: the reactor across every shard count, and the
    // thread-per-actor baseline at shards = 1 — the floor the reactor's
    // single-shard point is judged against.
    let mut runs: Vec<(usize, usize)> = Vec::new();
    runs.push((1, 0));
    for &shards in shard_counts {
        runs.push((shards, reactor_workers));
    }

    let mut table = Table::new(
        "throughput-sharded",
        "Live cluster: throughput vs replica shards per site (channel + tcp transports, reactor + thread-per-actor modes)",
        &[
            "shards",
            "transport",
            "workers",
            "clients",
            "ops/sec",
            "p50",
            "p99",
            "commit rate",
            "q-wait p50",
            "net p50",
        ],
    );
    // Every (transport, mode, clients) combination, in display order.
    let mut configs: Vec<(&'static str, usize, usize, usize)> = Vec::new();
    for &transport in &["channel", "tcp"] {
        for &(shards, workers) in &runs {
            for &clients in client_points {
                configs.push((transport, shards, workers, clients));
            }
        }
    }
    // Trial-major order: one trial of every config, then the next round.
    // Ambient load on the host drifts over the minutes a full sweep takes;
    // interleaving spreads that drift across all configs instead of letting
    // it bias whichever mode happened to run during a noisy stretch — the
    // reactor-vs-baseline comparison is only meaningful if both modes
    // sample the same conditions.
    let mut by_config: Vec<Vec<Point>> = configs.iter().map(|_| Vec::new()).collect();
    for trial in 0..trials {
        for (i, &(transport, shards, workers, clients)) in configs.iter().enumerate() {
            let seed = 9000 + shards as u64 * 100 + clients as u64 + 1000 * trial as u64;
            by_config[i].push(match transport {
                "tcp" => run_tcp_point(shards, workers, clients, warmup, window, seed),
                _ => run_channel_point(shards, workers, clients, warmup, window, seed),
            });
        }
    }
    let mut points = Vec::new();
    for mut trials_of in by_config {
        trials_of.sort_by(|a, b| a.ops_per_sec.total_cmp(&b.ops_per_sec));
        let point = trials_of.remove(trials_of.len() / 2);
        table.row(vec![
            point.shards.to_string(),
            point.transport.to_string(),
            point.workers.to_string(),
            point.clients.to_string(),
            format!("{:.0}", point.ops_per_sec),
            crate::report::ms(point.p50_us),
            crate::report::ms(point.p99_us),
            crate::report::pct(point.commit_rate),
            crate::report::ms(point.spans.quorum_wait.p50_us),
            crate::report::ms(point.spans.network.p50_us),
        ]);
        points.push(point);
    }
    table.note(format!(
        "{SITES} sites, {KEYS} keys, commutative increments, {} host core(s), median of {trials}; workers=0 rows are the thread-per-actor baseline, workers>0 rows the reactor runtime; channel points ride the 2ms-RTT fabric, tcp points raw loopback sockets",
        cores()
    ));
    if scale == Scale::Full {
        write_json(&points, warmup, window, trials);
    }
    table
}
