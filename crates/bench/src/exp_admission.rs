//! Contention experiments: fig6 (admission control vs offered load) and
//! tab2 (protocol/operation ablation at fixed high contention).

use planet_core::{AdmissionPolicy, Planet, Protocol, SimDuration};
use planet_workload::{Arrival, KeyChooser, KeyDistribution, WriteKind, YcsbConfig, YcsbWorkload};

use crate::common::{commit_rate, goodput, Scale};
use crate::report::{pct, Table};

/// Drive all five sites with a hot-spot YCSB workload at `rate` txn/s per
/// site for `span`, with or without admission control. Returns
/// `(goodput committed/s, commit rate among admitted, refused fraction)`.
fn contended_run(
    rate: f64,
    span: SimDuration,
    admission: Option<AdmissionPolicy>,
    write_kind: WriteKind,
    seed: u64,
) -> (f64, f64, f64) {
    // Finite replica capacity: one validation server per replica, 10 ms per
    // option validation (~100 validations/s). Doomed transactions consume
    // exactly the same capacity as useful ones — the resource admission
    // control protects.
    let mut builder = Planet::builder()
        .protocol(Protocol::Fast)
        .seed(seed)
        .validation_service(SimDuration::from_millis(10));
    if let Some(policy) = admission {
        builder = builder.admission(policy);
    }
    let mut db = builder.build();
    // Preload the hot keys so commutative floors have headroom.
    let seed_txn = {
        let mut b = planet_core::PlanetTxn::builder();
        for k in 0..10 {
            b = b.set(format!("hot:{k}"), 1_000_000i64);
        }
        b.build()
    };
    db.submit(0, seed_txn);
    db.run_for(SimDuration::from_secs(3));

    let start = db.now();
    for site in 0..5 {
        let w = YcsbWorkload::new(
            YcsbConfig {
                arrival: Arrival::poisson(rate),
                write_kind,
                ..Default::default()
            },
            KeyChooser::new("hot", KeyDistribution::Zipfian { n: 10, theta: 0.9 }),
        );
        db.attach_source(site, Box::new(w));
    }
    db.run_for(span);
    let end = db.now();
    // Drain in-flight txns without new arrivals biasing the window.
    db.run_for(SimDuration::from_secs(15));

    let records: Vec<_> = db
        .all_records()
        .into_iter()
        .filter(|r| r.submitted_at >= start && r.submitted_at < end)
        .collect();
    let admitted: Vec<_> = records
        .iter()
        .copied()
        .filter(|r| r.outcome != planet_core::FinalOutcome::Rejected)
        .collect();
    let refused = records.len() - admitted.len();
    let g = goodput(&records, start, end);
    let cr = commit_rate(&admitted);
    let refused_frac = if records.is_empty() {
        0.0
    } else {
        refused as f64 / records.len() as f64
    };
    (g, cr, refused_frac)
}

/// fig6-admission: goodput and commit rate vs offered load, with and
/// without likelihood-based admission control, on a hot-spot physical-write
/// workload.
pub fn fig6_admission(scale: Scale) -> Table {
    let span = scale.duration(SimDuration::from_secs(20), SimDuration::from_secs(60));
    let rates: &[f64] = match scale {
        // Quick scale brackets the crossover: one point below the knee, one
        // in the congestion-collapse regime.
        Scale::Quick => &[2.0, 32.0],
        Scale::Full => &[1.0, 2.0, 4.0, 8.0, 16.0, 32.0],
    };
    let policy = AdmissionPolicy {
        min_likelihood: 0.2,
        max_inflight: 4096,
    };
    let mut table = Table::new(
        "fig6-admission",
        "Goodput vs offered load at high contention, with/without admission control",
        &[
            "rate/site",
            "goodput (no AC)",
            "goodput (AC)",
            "commit% (no AC)",
            "commit% (AC)",
            "refused% (AC)",
        ],
    );
    for (i, &rate) in rates.iter().enumerate() {
        let (g0, c0, _) = contended_run(rate, span, None, WriteKind::Physical, 400 + i as u64);
        let (g1, c1, refused) = contended_run(
            rate,
            span,
            Some(policy),
            WriteKind::Physical,
            450 + i as u64,
        );
        table.row(vec![
            format!("{rate:.0}/s"),
            format!("{g0:.1}/s"),
            format!("{g1:.1}/s"),
            pct(c0),
            pct(c1),
            pct(refused),
        ]);
    }
    table.note("expected shape: past the contention knee, admitted-commit% stays high under AC while the no-AC commit% collapses");
    table
}

/// tab2-contention: protocol/operation ablation at fixed high contention —
/// the design-choice table (fast vs classic paths, physical vs commutative
/// options, 2PC baseline).
pub fn tab2_contention(scale: Scale) -> Table {
    let span = scale.duration(SimDuration::from_secs(20), SimDuration::from_secs(60));
    let rate = 8.0;
    // (name, protocol, write kind, fast-path collision fallback)
    let variants: &[(&str, Protocol, WriteKind, bool)] = &[
        ("fast+physical", Protocol::Fast, WriteKind::Physical, false),
        (
            "fast+fallback+physical",
            Protocol::Fast,
            WriteKind::Physical,
            true,
        ),
        (
            "fast+commutative",
            Protocol::Fast,
            WriteKind::Commutative,
            false,
        ),
        (
            "classic+physical",
            Protocol::Classic,
            WriteKind::Physical,
            false,
        ),
        (
            "classic+commutative",
            Protocol::Classic,
            WriteKind::Commutative,
            false,
        ),
        (
            "twopc+physical",
            Protocol::TwoPc,
            WriteKind::Physical,
            false,
        ),
    ];
    let mut table = Table::new(
        "tab2-contention",
        "Commit rate and goodput per protocol/operation variant (hot-spot workload)",
        &["variant", "goodput", "commit rate", "p50 commit latency"],
    );
    for (i, (name, protocol, kind, fallback)) in variants.iter().enumerate() {
        let mut db = Planet::builder()
            .protocol(*protocol)
            .seed(500 + i as u64)
            .fast_fallback(*fallback)
            .build();
        let seed_txn = {
            let mut b = planet_core::PlanetTxn::builder();
            for k in 0..10 {
                b = b.set(format!("hot:{k}"), 1_000_000i64);
            }
            b.build()
        };
        db.submit(0, seed_txn);
        db.run_for(SimDuration::from_secs(3));
        let start = db.now();
        for site in 0..5 {
            let w = YcsbWorkload::new(
                YcsbConfig {
                    arrival: Arrival::poisson(rate),
                    write_kind: *kind,
                    ..Default::default()
                },
                KeyChooser::new("hot", KeyDistribution::Zipfian { n: 10, theta: 0.9 }),
            );
            db.attach_source(site, Box::new(w));
        }
        db.run_for(span);
        let end = db.now();
        db.run_for(SimDuration::from_secs(15));
        let records: Vec<_> = db
            .all_records()
            .into_iter()
            .filter(|r| r.submitted_at >= start && r.submitted_at < end && r.write_keys > 0)
            .collect();
        let committed: Vec<_> = records
            .iter()
            .copied()
            .filter(|r| r.outcome.is_commit())
            .collect();
        let mut lats: Vec<u64> = committed.iter().map(|r| r.latency.as_micros()).collect();
        lats.sort_unstable();
        let p50 = lats.get(lats.len() / 2).copied().unwrap_or(0);
        table.row(vec![
            name.to_string(),
            format!("{:.1}/s", goodput(&records, start, end)),
            pct(commit_rate(&records)),
            crate::report::ms(p50),
        ]);
    }
    table.note("expected shape: commutative ≫ physical on commit rate; collision fallback lifts the fast path's physical commit rate toward classic's; 2PC pays the worst latency");
    table
}
