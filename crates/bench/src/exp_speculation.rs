//! fig4-speculation: the speculative-commit trade-off. Sweeping the
//! speculation threshold τ trades response time (lower τ ⇒ answer sooner)
//! against apology rate (lower τ ⇒ more speculations that end in abort).

use planet_core::{PlanetTxn, Protocol, SimDuration};

use crate::common::{deployment, warm_all_sites, Scale};
use crate::report::{ms, pct, Table};

/// fig4-speculation: sweep τ over a moderately contended workload.
pub fn fig4_speculation(scale: Scale) -> Table {
    let rounds = scale.count(40, 250);
    let thresholds = [0.50, 0.70, 0.80, 0.90, 0.95, 0.99];
    let mut table = Table::new(
        "fig4-speculation",
        "Speculative commits: response time vs apology rate across thresholds",
        &[
            "threshold",
            "txns",
            "speculated",
            "apologies",
            "apology rate",
            "p50 speculative resp",
            "p50 final commit",
        ],
    );

    for (i, &tau) in thresholds.iter().enumerate() {
        let mut db = deployment(Protocol::Fast, 300 + i as u64);
        warm_all_sites(&mut db, scale.count(10, 30));
        let base = db.now();
        let mut handles = Vec::new();
        for round in 0..rounds {
            for site in 0..5usize {
                // A quarter of the traffic fights over 2 hot keys.
                let key = if round % 4 == 0 {
                    format!("hot:{}", round % 2)
                } else {
                    format!("cold:{site}:{round}")
                };
                let txn = PlanetTxn::builder()
                    .set(key, round as i64)
                    .speculate_at(tau)
                    .build();
                handles.push(db.submit_at(
                    site,
                    base + SimDuration::from_millis(10 + round * 300),
                    txn,
                ));
            }
        }
        db.run_for(SimDuration::from_secs(rounds / 3 + 30));

        let records: Vec<_> = handles.iter().filter_map(|h| db.record(*h)).collect();
        let speculated: Vec<_> = records
            .iter()
            .filter(|r| r.speculated_at.is_some())
            .collect();
        let apologies = records.iter().filter(|r| r.apologised()).count();
        let mut spec_resp: Vec<u64> = speculated
            .iter()
            .map(|r| {
                r.speculated_at
                    .expect("filtered to speculated records")
                    .as_micros()
            })
            .collect();
        spec_resp.sort_unstable();
        let mut finals: Vec<u64> = records
            .iter()
            .filter(|r| r.outcome.is_commit())
            .map(|r| r.latency.as_micros())
            .collect();
        finals.sort_unstable();
        let p50 = |v: &Vec<u64>| v.get(v.len() / 2).copied().unwrap_or(0);
        let apology_rate = if speculated.is_empty() {
            0.0
        } else {
            apologies as f64 / speculated.len() as f64
        };
        table.row(vec![
            format!("{tau:.2}"),
            records.len().to_string(),
            speculated.len().to_string(),
            apologies.to_string(),
            pct(apology_rate),
            ms(p50(&spec_resp)),
            ms(p50(&finals)),
        ]);
    }
    table.note("expected shape: apology rate falls as τ rises; speculative response stays well under final-commit latency");
    table
}
