//! Live-cluster throughput: sweep closed-loop client concurrency over a
//! thread-per-actor deployment on the in-process channel transport.
//!
//! Unlike every other experiment (which runs the deterministic simulation),
//! this one measures the *live* runtime: replicas, coordinators and clients
//! each on their own OS thread, wall-clock time, the LAN-ish network model
//! shaping deliveries. Every point warms up before the measured window and
//! reports the plane's own telemetry (mean drain batch, mailbox high-water)
//! alongside throughput and latency. At `Scale::Full` the batched sweep
//! covers 1→256 clients and is written to `BENCH_throughput.json`, then the
//! whole sweep is repeated with [`PlaneConfig::unbatched`] as an ablation
//! and both curves land in `BENCH_throughput_batched.json`.

use std::sync::mpsc::channel;
use std::time::{Duration, Instant};

use planet_cluster::{LiveCluster, LoadClient, LoadRecord, PlaneConfig};
use planet_mdcc::{ClusterConfig, Outcome, Protocol};
use planet_sim::metrics::Histogram;
use planet_sim::NetworkModel;
use planet_storage::Key;

use crate::common::Scale;
use crate::report::Table;

const SITES: usize = 3;
const KEYS: usize = 64;

/// One measured sweep point.
struct Point {
    clients: usize,
    ops_per_sec: f64,
    p50_us: u64,
    p99_us: u64,
    commit_rate: f64,
    completions: u64,
    mean_batch: f64,
    mailbox_hwm: u64,
    shed: u64,
}

/// A LAN-ish topology: the point of the sweep is scheduling and protocol
/// cost under concurrency, not WAN geography, so cross-site RTT is 2 ms.
fn lan() -> NetworkModel {
    let rtt: Vec<Vec<f64>> = (0..SITES)
        .map(|i| (0..SITES).map(|j| if i == j { 0.1 } else { 2.0 }).collect())
        .collect();
    NetworkModel::from_rtt_ms(&rtt)
}

fn run_point(
    clients: usize,
    warmup: Duration,
    window: Duration,
    seed: u64,
    plane: PlaneConfig,
) -> Point {
    let config = ClusterConfig::new(SITES, Protocol::Fast);
    let mut cluster = LiveCluster::builder(config)
        .network(lan())
        .seed(seed)
        .plane(plane)
        .build();
    let keys: Vec<Key> = (0..KEYS).map(|i| Key::new(format!("tp-{i}"))).collect();
    let (tx, rx) = channel::<LoadRecord>();
    // One client *pool* per site: hundreds of closed-loop clients ride on
    // three driver threads, so the sweep measures the cluster, not the OS
    // scheduler juggling hundreds of client threads on a small host.
    for site in 0..SITES {
        let coordinator = cluster.coordinator(site);
        let actors: Vec<Box<dyn planet_sim::Actor<planet_mdcc::Msg>>> = (0..clients)
            .filter(|k| k % SITES == site)
            .map(|_| {
                Box::new(LoadClient::new(coordinator, keys.clone(), tx.clone()))
                    as Box<dyn planet_sim::Actor<planet_mdcc::Msg>>
            })
            .collect();
        if !actors.is_empty() {
            cluster.spawn_client_pool(site, actors);
        }
    }
    drop(tx);

    // Warm up: let every client reach steady state, discarding completions.
    let warm_end = Instant::now() + warmup;
    while Instant::now() < warm_end {
        let _ = rx.recv_timeout(warm_end - Instant::now());
    }

    // Measure: count completions and latencies inside the window only.
    let started = Instant::now();
    let mut latencies = Histogram::new();
    let mut committed = 0u64;
    let mut completions = 0u64;
    while started.elapsed() < window {
        let remaining = window - started.elapsed();
        if let Ok(record) = rx.recv_timeout(remaining.min(Duration::from_millis(50))) {
            completions += 1;
            latencies.record(record.latency_us());
            if record.outcome == Outcome::Committed {
                committed += 1;
            }
        }
    }
    let elapsed = started.elapsed().as_secs_f64();
    let harvest = cluster.shutdown();
    let metrics = harvest.merged_metrics();
    let mut mean_batch = 0.0;
    let mut mailbox_hwm = 0;
    for (name, hist) in metrics.histograms() {
        match name {
            "plane.batch" => mean_batch = hist.mean().unwrap_or(0.0),
            "plane.mailbox.depth" => mailbox_hwm = hist.max().unwrap_or(0),
            _ => {}
        }
    }

    Point {
        clients,
        ops_per_sec: completions as f64 / elapsed,
        p50_us: latencies.quantile(0.50).unwrap_or(0),
        p99_us: latencies.quantile(0.99).unwrap_or(0),
        commit_rate: if completions > 0 {
            committed as f64 / completions as f64
        } else {
            0.0
        },
        completions,
        mean_batch,
        mailbox_hwm,
        shed: harvest.shed,
    }
}

fn points_json(points: &[Point], indent: &str) -> String {
    let mut out = String::new();
    for (i, p) in points.iter().enumerate() {
        out.push_str(&format!(
            "{indent}{{\"clients\": {}, \"ops_per_sec\": {:.1}, \"p50_us\": {}, \"p99_us\": {}, \"commit_rate\": {:.4}, \"completions\": {}, \"mean_batch\": {:.2}, \"mailbox_hwm\": {}, \"shed\": {}}}{}\n",
            p.clients,
            p.ops_per_sec,
            p.p50_us,
            p.p99_us,
            p.commit_rate,
            p.completions,
            p.mean_batch,
            p.mailbox_hwm,
            p.shed,
            if i + 1 < points.len() { "," } else { "" }
        ));
    }
    out
}

fn header_json(warmup: Duration, window: Duration, trials: usize) -> String {
    format!(
        "  \"sites\": {SITES},\n  \"keys\": {KEYS},\n  \"warmup_secs\": {},\n  \"window_secs\": {},\n  \"trials\": {trials},\n  \"transport\": \"channel\",\n",
        warmup.as_secs_f64(),
        window.as_secs_f64()
    )
}

fn write_json(points: &[Point], warmup: Duration, window: Duration, trials: usize) {
    let mut out = String::from("{\n  \"experiment\": \"throughput\",\n");
    out.push_str(&header_json(warmup, window, trials));
    out.push_str("  \"points\": [\n");
    out.push_str(&points_json(points, "    "));
    out.push_str("  ]\n}\n");
    if let Err(e) = std::fs::write("BENCH_throughput.json", &out) {
        eprintln!("throughput: could not write BENCH_throughput.json: {e}");
    } else {
        eprintln!("wrote BENCH_throughput.json");
    }
}

fn write_ablation_json(
    batched: &[Point],
    unbatched: &[Point],
    warmup: Duration,
    window: Duration,
    trials: usize,
) {
    let mut out = String::from("{\n  \"experiment\": \"throughput_batched_vs_unbatched\",\n");
    out.push_str(&header_json(warmup, window, trials));
    out.push_str("  \"batched\": [\n");
    out.push_str(&points_json(batched, "    "));
    out.push_str("  ],\n  \"unbatched\": [\n");
    out.push_str(&points_json(unbatched, "    "));
    out.push_str("  ]\n}\n");
    if let Err(e) = std::fs::write("BENCH_throughput_batched.json", &out) {
        eprintln!("throughput: could not write BENCH_throughput_batched.json: {e}");
    } else {
        eprintln!("wrote BENCH_throughput_batched.json");
    }
}

/// Run `trials` independent deployments of one point and keep the median
/// by ops/sec. Throughput on a loaded host is noisy (±15% run-to-run at
/// high concurrency on one core); the median keeps one descheduled trial
/// from deciding the shape of the whole curve.
fn run_trials(
    clients: usize,
    warmup: Duration,
    window: Duration,
    plane: PlaneConfig,
    trials: usize,
) -> Point {
    let mut points: Vec<Point> = (0..trials)
        .map(|t| {
            run_point(
                clients,
                warmup,
                window,
                42 + clients as u64 + 1000 * t as u64,
                plane,
            )
        })
        .collect();
    points.sort_by(|a, b| a.ops_per_sec.total_cmp(&b.ops_per_sec));
    points.remove(points.len() / 2)
}

fn run_sweep(
    sweep: &[usize],
    warmup: Duration,
    window: Duration,
    plane: PlaneConfig,
    trials: usize,
    mut table: Option<&mut Table>,
) -> Vec<Point> {
    let mut points = Vec::new();
    for &clients in sweep {
        let point = run_trials(clients, warmup, window, plane, trials);
        if let Some(table) = table.as_mut() {
            table.row(vec![
                point.clients.to_string(),
                format!("{:.0}", point.ops_per_sec),
                crate::report::ms(point.p50_us),
                crate::report::ms(point.p99_us),
                crate::report::pct(point.commit_rate),
                format!("{:.1}", point.mean_batch),
                point.mailbox_hwm.to_string(),
            ]);
        }
        points.push(point);
    }
    points
}

/// The `throughput` experiment: ops/sec and latency percentiles vs client
/// concurrency on the live cluster.
pub fn throughput(scale: Scale) -> Table {
    let sweep: &[usize] = match scale {
        Scale::Quick => &[1, 4, 16],
        Scale::Full => &[1, 2, 4, 8, 16, 32, 64, 128, 256],
    };
    let (warmup, window, trials) = match scale {
        Scale::Quick => (Duration::from_millis(200), Duration::from_millis(500), 1),
        Scale::Full => (Duration::from_millis(500), Duration::from_secs(3), 3),
    };

    let mut table = Table::new(
        "throughput",
        "Live cluster: closed-loop throughput vs concurrency (channel transport)",
        &[
            "clients",
            "ops/sec",
            "p50",
            "p99",
            "commit rate",
            "batch",
            "mbox hwm",
        ],
    );
    let batched = run_sweep(
        sweep,
        warmup,
        window,
        PlaneConfig::default(),
        trials,
        Some(&mut table),
    );
    table.note(format!(
        "{SITES} sites, thread-per-actor, 2ms cross-site RTT, {KEYS} keys, commutative increments, {}s warmup, {}s window, median of {trials}",
        warmup.as_secs_f64(),
        window.as_secs_f64()
    ));
    if scale == Scale::Full {
        write_json(&batched, warmup, window, trials);
        // Ablation: same sweep with batching, sharding and coalescing off.
        let unbatched = run_sweep(
            sweep,
            warmup,
            window,
            PlaneConfig::unbatched(),
            trials,
            None,
        );
        write_ablation_json(&batched, &unbatched, warmup, window, trials);
    }
    table
}
