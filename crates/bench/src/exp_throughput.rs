//! Live-cluster throughput: sweep closed-loop client concurrency over a
//! thread-per-actor deployment on the in-process channel transport.
//!
//! Unlike every other experiment (which runs the deterministic simulation),
//! this one measures the *live* runtime: replicas, coordinators and clients
//! each on their own OS thread, wall-clock time, the LAN-ish network model
//! shaping deliveries. At `Scale::Full` the sweep covers 1→256 clients and
//! the points are also written to `BENCH_throughput.json`.

use std::sync::mpsc::channel;
use std::time::{Duration, Instant};

use planet_cluster::{LiveCluster, LoadClient, LoadRecord};
use planet_mdcc::{ClusterConfig, Outcome, Protocol};
use planet_sim::metrics::Histogram;
use planet_sim::NetworkModel;
use planet_storage::Key;

use crate::common::Scale;
use crate::report::Table;

const SITES: usize = 3;
const KEYS: usize = 64;

/// One measured sweep point.
struct Point {
    clients: usize,
    ops_per_sec: f64,
    p50_us: u64,
    p99_us: u64,
    commit_rate: f64,
    completions: u64,
}

/// A LAN-ish topology: the point of the sweep is scheduling and protocol
/// cost under concurrency, not WAN geography, so cross-site RTT is 2 ms.
fn lan() -> NetworkModel {
    let rtt: Vec<Vec<f64>> = (0..SITES)
        .map(|i| (0..SITES).map(|j| if i == j { 0.1 } else { 2.0 }).collect())
        .collect();
    NetworkModel::from_rtt_ms(&rtt)
}

fn run_point(clients: usize, warmup: Duration, window: Duration, seed: u64) -> Point {
    let config = ClusterConfig::new(SITES, Protocol::Fast);
    let mut cluster = LiveCluster::builder(config)
        .network(lan())
        .seed(seed)
        .build();
    let keys: Vec<Key> = (0..KEYS).map(|i| Key::new(format!("tp-{i}"))).collect();
    let (tx, rx) = channel::<LoadRecord>();
    for k in 0..clients {
        let site = k % SITES;
        let coordinator = cluster.coordinator(site);
        cluster.spawn_client(
            site,
            Box::new(LoadClient::new(coordinator, keys.clone(), tx.clone())),
        );
    }
    drop(tx);

    // Warm up: let every client reach steady state, discarding completions.
    let warm_end = Instant::now() + warmup;
    while Instant::now() < warm_end {
        let _ = rx.recv_timeout(warm_end - Instant::now());
    }

    // Measure: count completions and latencies inside the window only.
    let started = Instant::now();
    let mut latencies = Histogram::new();
    let mut committed = 0u64;
    let mut completions = 0u64;
    while started.elapsed() < window {
        let remaining = window - started.elapsed();
        if let Ok(record) = rx.recv_timeout(remaining.min(Duration::from_millis(50))) {
            completions += 1;
            latencies.record(record.latency_us());
            if record.outcome == Outcome::Committed {
                committed += 1;
            }
        }
    }
    let elapsed = started.elapsed().as_secs_f64();
    cluster.shutdown();

    Point {
        clients,
        ops_per_sec: completions as f64 / elapsed,
        p50_us: latencies.quantile(0.50).unwrap_or(0),
        p99_us: latencies.quantile(0.99).unwrap_or(0),
        commit_rate: if completions > 0 {
            committed as f64 / completions as f64
        } else {
            0.0
        },
        completions,
    }
}

fn write_json(points: &[Point], window: Duration) {
    let mut out = String::from("{\n");
    out.push_str("  \"experiment\": \"throughput\",\n");
    out.push_str(&format!("  \"sites\": {SITES},\n"));
    out.push_str(&format!("  \"keys\": {KEYS},\n"));
    out.push_str(&format!("  \"window_secs\": {},\n", window.as_secs_f64()));
    out.push_str("  \"transport\": \"channel\",\n");
    out.push_str("  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"clients\": {}, \"ops_per_sec\": {:.1}, \"p50_us\": {}, \"p99_us\": {}, \"commit_rate\": {:.4}, \"completions\": {}}}{}\n",
            p.clients,
            p.ops_per_sec,
            p.p50_us,
            p.p99_us,
            p.commit_rate,
            p.completions,
            if i + 1 < points.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    if let Err(e) = std::fs::write("BENCH_throughput.json", &out) {
        eprintln!("throughput: could not write BENCH_throughput.json: {e}");
    } else {
        eprintln!("wrote BENCH_throughput.json");
    }
}

/// The `throughput` experiment: ops/sec and latency percentiles vs client
/// concurrency on the live cluster.
pub fn throughput(scale: Scale) -> Table {
    let sweep: &[usize] = match scale {
        Scale::Quick => &[1, 4, 16],
        Scale::Full => &[1, 2, 4, 8, 16, 32, 64, 128, 256],
    };
    let (warmup, window) = match scale {
        Scale::Quick => (Duration::from_millis(200), Duration::from_millis(500)),
        Scale::Full => (Duration::from_millis(500), Duration::from_secs(2)),
    };

    let mut table = Table::new(
        "throughput",
        "Live cluster: closed-loop throughput vs concurrency (channel transport)",
        &["clients", "ops/sec", "p50", "p99", "commit rate"],
    );
    let mut points = Vec::new();
    for &clients in sweep {
        let point = run_point(clients, warmup, window, 42 + clients as u64);
        table.row(vec![
            point.clients.to_string(),
            format!("{:.0}", point.ops_per_sec),
            crate::report::ms(point.p50_us),
            crate::report::ms(point.p99_us),
            crate::report::pct(point.commit_rate),
        ]);
        points.push(point);
    }
    table.note(format!(
        "{SITES} sites, thread-per-actor, 2ms cross-site RTT, {KEYS} keys, commutative increments, {}s window",
        window.as_secs_f64()
    ));
    if scale == Scale::Full {
        write_json(&points, window);
    }
    table
}
