//! Tabular experiment output: every experiment produces a [`Table`] that is
//! printed in the same aligned format the EXPERIMENTS.md records.

/// One experiment's output table.
#[derive(Debug, Clone)]
pub struct Table {
    /// Experiment id, e.g. `fig2-calibration`.
    pub id: String,
    /// Human title.
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Data rows (already formatted).
    pub rows: Vec<Vec<String>>,
    /// Free-form notes printed under the table.
    pub notes: Vec<String>,
}

impl Table {
    /// Start a table.
    pub fn new(id: &str, title: &str, columns: &[&str]) -> Self {
        Table {
            id: id.to_string(),
            title: title.to_string(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Append a row (must match the column count).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.columns.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Append a note.
    pub fn note(&mut self, text: impl Into<String>) {
        self.notes.push(text.into());
    }

    /// Render to a string with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} — {} ==\n", self.id, self.title));
        let header: Vec<String> = self
            .columns
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
            .collect();
        out.push_str(&header.join("  "));
        out.push('\n');
        out.push_str(&"-".repeat(header.join("  ").len()));
        out.push('\n');
        for row in &self.rows {
            let line: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
                .collect();
            out.push_str(&line.join("  "));
            out.push('\n');
        }
        for note in &self.notes {
            out.push_str(&format!("note: {note}\n"));
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }

    /// Render as CSV (header row + data rows; notes become `#` comments).
    /// Cells are quoted only when they contain commas or quotes.
    pub fn to_csv(&self) -> String {
        fn escape(cell: &str) -> String {
            if cell.contains([',', '"', '\n']) {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        }
        let mut out = String::new();
        for note in &self.notes {
            out.push_str(&format!("# {note}\n"));
        }
        out.push_str(
            &self
                .columns
                .iter()
                .map(|c| escape(c))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    /// Find a cell by row index and column name (for assertions in tests).
    pub fn cell(&self, row: usize, column: &str) -> Option<&str> {
        let col = self.columns.iter().position(|c| c == column)?;
        self.rows.get(row)?.get(col).map(|s| s.as_str())
    }

    /// Parse a cell as f64, stripping any trailing unit suffix
    /// (`ms`, `%`, `/s`, `x`, ...).
    pub fn cell_f64(&self, row: usize, column: &str) -> Option<f64> {
        let raw = self.cell(row, column)?;
        let cleaned = raw.trim_end_matches(|c: char| !(c.is_ascii_digit()));
        cleaned.parse().ok()
    }
}

/// Format microseconds as milliseconds with two decimals.
pub fn ms(us: u64) -> String {
    format!("{:.2}ms", us as f64 / 1_000.0)
}

/// Format a fraction as a percentage with one decimal.
pub fn pct(fraction: f64) -> String {
    format!("{:.1}%", fraction * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("fig0", "demo", &["a", "long-column"]);
        t.row(vec!["1".into(), "2".into()]);
        t.note("hello");
        let s = t.render();
        assert!(s.contains("fig0"));
        assert!(s.contains("long-column"));
        assert!(s.contains("note: hello"));
    }

    #[test]
    fn cell_lookup_and_parse() {
        let mut t = Table::new("t", "t", &["p50", "rate"]);
        t.row(vec!["123.45ms".into(), "99.1%".into()]);
        assert_eq!(t.cell(0, "p50"), Some("123.45ms"));
        assert_eq!(t.cell_f64(0, "p50"), Some(123.45));
        assert_eq!(t.cell_f64(0, "rate"), Some(99.1));
        assert_eq!(t.cell(0, "missing"), None);
        assert_eq!(t.cell(5, "p50"), None);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_enforced() {
        let mut t = Table::new("t", "t", &["a"]);
        t.row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn csv_escapes_and_comments() {
        let mut t = Table::new("t", "t", &["a", "b"]);
        t.row(vec!["1,5".into(), "say \"hi\"".into()]);
        t.note("a note");
        let csv = t.to_csv();
        assert!(csv.starts_with("# a note\n"));
        assert!(csv.contains("a,b\n"));
        assert!(csv.contains("\"1,5\",\"say \"\"hi\"\"\""));
    }

    #[test]
    fn formatters() {
        assert_eq!(ms(1_234), "1.23ms");
        assert_eq!(pct(0.5), "50.0%");
    }
}
