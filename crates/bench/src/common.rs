//! Shared experiment plumbing: scales, deployment builders, statistics.

use planet_core::{Planet, PlanetTxn, Protocol, SimDuration, SimTime, TxnRecord};

/// Experiment scale: `Quick` keeps CI and `cargo test` fast; `Full` is what
/// EXPERIMENTS.md records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Short runs for tests.
    Quick,
    /// Full runs for the recorded results.
    Full,
}

impl Scale {
    /// Multiply a baseline count by the scale factor.
    pub fn count(&self, quick: u64, full: u64) -> u64 {
        match self {
            Scale::Quick => quick,
            Scale::Full => full,
        }
    }

    /// Pick a duration by scale.
    pub fn duration(&self, quick: SimDuration, full: SimDuration) -> SimDuration {
        match self {
            Scale::Quick => quick,
            Scale::Full => full,
        }
    }
}

/// Build the standard five-DC deployment.
pub fn deployment(protocol: Protocol, seed: u64) -> Planet {
    Planet::builder().protocol(protocol).seed(seed).build()
}

/// Submit `n` sequential unique-key writes from `site`, spaced `gap_ms`
/// apart, starting shortly after the deployment's current time. Returns the
/// handles.
pub fn sequential_writes(
    db: &mut Planet,
    site: usize,
    n: u64,
    gap_ms: u64,
    label: &str,
) -> Vec<planet_core::TxnHandle> {
    let base = db.now();
    (0..n)
        .map(|i| {
            let txn = PlanetTxn::builder()
                .set(format!("{label}:{site}:{i}"), i as i64)
                .build();
            db.submit_at(site, base + SimDuration::from_millis(1 + i * gap_ms), txn)
        })
        .collect()
}

/// Warm every site's likelihood model with easy traffic.
pub fn warm_all_sites(db: &mut Planet, per_site: u64) {
    for site in 0..db.num_sites() {
        sequential_writes(db, site, per_site, 400, "warm");
    }
    db.run_for(SimDuration::from_secs(per_site.max(1) / 2 + 5));
}

/// Latency percentiles (microseconds) over a set of records' latencies.
pub fn latency_percentiles(records: &[&TxnRecord], quantiles: &[f64]) -> Vec<u64> {
    let mut lats: Vec<u64> = records.iter().map(|r| r.latency.as_micros()).collect();
    lats.sort_unstable();
    quantiles
        .iter()
        .map(|&q| {
            if lats.is_empty() {
                0
            } else {
                let idx = ((q * (lats.len() - 1) as f64).round()) as usize;
                lats[idx]
            }
        })
        .collect()
}

/// Commit fraction of a record set.
pub fn commit_rate(records: &[&TxnRecord]) -> f64 {
    if records.is_empty() {
        return 0.0;
    }
    records.iter().filter(|r| r.outcome.is_commit()).count() as f64 / records.len() as f64
}

/// Goodput in committed transactions per simulated second over a window.
pub fn goodput(records: &[&TxnRecord], from: SimTime, to: SimTime) -> f64 {
    let commits = records
        .iter()
        .filter(|r| r.outcome.is_commit() && r.submitted_at >= from && r.submitted_at < to)
        .count();
    commits as f64 / (to.since(from)).as_secs_f64().max(1e-9)
}

#[cfg(test)]
mod tests {
    use super::*;
    use planet_core::FinalOutcome;

    fn rec(latency_us: u64, commit: bool, at_ms: u64) -> TxnRecord {
        TxnRecord {
            handle: planet_core::TxnHandle { site: 0, tag: 0 },
            outcome: if commit {
                FinalOutcome::Committed
            } else {
                FinalOutcome::Aborted
            },
            submitted_at: SimTime::from_millis(at_ms),
            latency: SimDuration::from_micros(latency_us),
            write_keys: 1,
            speculated_at: None,
            deadline_likelihood: None,
            predictions: Vec::new(),
            reads: Vec::new(),
        }
    }

    #[test]
    fn percentiles_of_known_set() {
        let recs: Vec<TxnRecord> = (1..=100).map(|i| rec(i * 1000, true, i)).collect();
        let refs: Vec<&TxnRecord> = recs.iter().collect();
        let ps = latency_percentiles(&refs, &[0.5, 0.99]);
        assert_eq!(ps[0], 51_000);
        assert_eq!(ps[1], 99_000);
        assert!(latency_percentiles(&[], &[0.5]) == vec![0]);
    }

    #[test]
    fn commit_rate_and_goodput() {
        let recs: Vec<TxnRecord> = (0..10).map(|i| rec(1000, i % 2 == 0, i * 100)).collect();
        let refs: Vec<&TxnRecord> = recs.iter().collect();
        assert_eq!(commit_rate(&refs), 0.5);
        // 5 commits over the 1-second window [0, 1s).
        let g = goodput(&refs, SimTime::ZERO, SimTime::from_secs(1));
        assert!((g - 5.0).abs() < 1e-9);
        assert_eq!(commit_rate(&[]), 0.0);
    }

    #[test]
    fn scale_picks() {
        assert_eq!(Scale::Quick.count(2, 10), 2);
        assert_eq!(Scale::Full.count(2, 10), 10);
    }
}
