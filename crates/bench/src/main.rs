//! The `experiments` binary: regenerate any figure or table of the
//! reconstructed PLANET evaluation.
//!
//! ```text
//! cargo run -p planet-bench --release -- all            # every experiment, full scale
//! cargo run -p planet-bench --release -- fig2-calibration
//! cargo run -p planet-bench --release -- fig6-admission --quick
//! cargo run -p planet-bench --release -- all --csv results/   # also write CSVs
//! ```

use planet_bench::{run_experiment, Scale, EXPERIMENTS};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let scale = if quick { Scale::Quick } else { Scale::Full };
    // `--csv <dir>` writes each experiment's table as <dir>/<id>.csv.
    let csv_dir: Option<String> = args
        .iter()
        .position(|a| a == "--csv")
        .and_then(|i| args.get(i + 1).cloned());
    let mut skip_next = false;
    let targets: Vec<&str> = args
        .iter()
        .filter(|a| {
            if skip_next {
                skip_next = false;
                return false;
            }
            if *a == "--csv" {
                skip_next = true;
                return false;
            }
            !a.starts_with("--")
        })
        .map(|a| a.as_str())
        .collect();

    let ids: Vec<&str> = if targets.is_empty() || targets.contains(&"all") {
        EXPERIMENTS.to_vec()
    } else {
        targets
    };

    if let Some(dir) = &csv_dir {
        std::fs::create_dir_all(dir).expect("create csv dir");
    }
    for id in ids {
        match run_experiment(id, scale) {
            Some(table) => {
                table.print();
                if let Some(dir) = &csv_dir {
                    let path = format!("{dir}/{id}.csv");
                    std::fs::write(&path, table.to_csv()).expect("write csv");
                    eprintln!("wrote {path}");
                }
            }
            None => {
                eprintln!(
                    "unknown experiment '{id}'. Available: {}",
                    EXPERIMENTS.join(", ")
                );
                std::process::exit(2);
            }
        }
    }
}
