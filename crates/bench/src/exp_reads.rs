//! tab3-reads: the read-level trade-off. Local reads are sub-millisecond
//! but may trail the masters by one apply-propagation hop; quorum reads pay
//! a WAN round trip for freshest-of-majority.
//!
//! Freshness is measured adversarially: a writer at us-east updates a
//! us-east-mastered key, and a reader at ap-southeast reads it ~50 ms after
//! the commit decision — while the committed version's `Apply` state
//! transfer is still crossing the Pacific. The column reports how often the
//! reader saw the newest version.

use planet_core::{PlanetTxn, Protocol, SimDuration, Value};

use crate::common::{deployment, Scale};
use crate::report::{ms, pct, Table};

/// One measurement pass: returns `(fresh_fraction, latency_p50_us, latency_p99_us)`.
fn measure(quorum: bool, rounds: u64, seed: u64) -> (f64, u64, u64) {
    let mut db = deployment(Protocol::Fast, seed);
    // Use a key *mastered at us-east*: its Apply state transfers then have
    // to cross the planet to the reader, maximising the staleness window.
    let key = (0..64u32)
        .map(|i| format!("watched:{i}"))
        .find(|k| db.config().master_of(&planet_core::Key::new(k.clone())).0 == 0)
        .expect("some key hashes to master 0");
    let mut fresh = 0u64;
    let mut reads = Vec::new();
    let mut write_handles = Vec::new();
    let mut read_handles = Vec::new();
    let base = db.now();
    for round in 0..rounds {
        let at = base + SimDuration::from_millis(1 + round * 700);
        let w = db.submit_at(
            0,
            at,
            PlanetTxn::builder()
                .set(key.clone(), round as i64 + 1)
                .build(),
        );
        write_handles.push(w);
        // The commit decides ~170ms after submission and the us-east master
        // applies right away; the Apply reaches ap-southeast ~100ms later.
        // Reading at +220ms lands squarely inside that staleness window.
        let read_at = at + SimDuration::from_millis(220);
        let mut b = PlanetTxn::builder().read(key.clone());
        if quorum {
            b = b.quorum_reads();
        }
        read_handles.push(db.submit_at(4, read_at, b.build()));
    }
    db.run_for(SimDuration::from_secs(rounds * 700 / 1000 + 10));

    for (round, (w, r)) in write_handles.iter().zip(read_handles.iter()).enumerate() {
        if !db
            .record(*w)
            .expect("transaction was recorded")
            .outcome
            .is_commit()
        {
            continue;
        }
        let record = db.record(*r).expect("transaction was recorded");
        reads.push(record.latency.as_micros());
        if record.reads.first().map(|(_, v, _)| v) == Some(&Value::Int(round as i64 + 1)) {
            fresh += 1;
        }
    }
    reads.sort_unstable();
    let pick = |q: f64| {
        if reads.is_empty() {
            0
        } else {
            reads[((q * (reads.len() - 1) as f64).round()) as usize]
        }
    };
    (
        fresh as f64 / reads.len().max(1) as f64,
        pick(0.5),
        pick(0.99),
    )
}

/// tab3-reads: freshness and latency per read level.
pub fn tab3_reads(scale: Scale) -> Table {
    let rounds = scale.count(30, 200);
    let mut table = Table::new(
        "tab3-reads",
        "Read levels: freshness ~50ms after a remote commit decision vs read latency (reader at ap-southeast)",
        &["read level", "n", "fresh reads", "p50 latency", "p99 latency"],
    );
    for (name, quorum, seed) in [("local", false, 900u64), ("quorum", true, 901)] {
        let (fresh, p50, p99) = measure(quorum, rounds, seed);
        table.row(vec![
            name.to_string(),
            rounds.to_string(),
            pct(fresh),
            ms(p50),
            ms(p99),
        ]);
    }
    table.note("expected shape: local reads are ~1000x faster but mostly stale inside the apply-propagation window; quorum reads are fresh at ~1 WAN RTT");
    table
}
