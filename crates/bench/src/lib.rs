//! # planet-bench
//!
//! The experiment harness of the PLANET reproduction: one runner per figure
//! and table of the (reconstructed) evaluation — see DESIGN.md for the
//! experiment index and EXPERIMENTS.md for recorded results. Each runner is
//! an ordinary function returning a [`Table`], so the integration tests can
//! assert the *shape* of every figure, and the `experiments` binary prints
//! them.

#![warn(missing_docs)]

pub mod alloc_counter;
pub mod common;
mod exp_admission;
mod exp_latency;
pub mod exp_plan;
mod exp_prediction;
mod exp_reads;
mod exp_speculation;
mod exp_spike;
mod exp_throughput;
mod exp_throughput_sharded;
pub mod report;
pub mod timing;

/// Every allocation in this crate's binaries and tests goes through the
/// counting allocator so experiments can report allocs-per-transaction.
#[global_allocator]
static COUNTING_ALLOCATOR: alloc_counter::CountingAllocator = alloc_counter::CountingAllocator;

pub use common::Scale;
pub use report::Table;

/// All experiment ids in presentation order.
pub const EXPERIMENTS: &[&str] = &[
    "fig1-rtt",
    "fig2-calibration",
    "fig3-progress",
    "fig4-speculation",
    "fig5-latency-cdf",
    "fig6-admission",
    "fig7-spike",
    "fig8-callbacks",
    "tab1-percentiles",
    "tab2-contention",
    "tab3-reads",
    "throughput",
    "throughput-sharded",
    "plan",
];

/// Run one experiment by id.
pub fn run_experiment(id: &str, scale: Scale) -> Option<Table> {
    Some(match id {
        "fig1-rtt" => exp_latency::fig1_rtt(scale),
        "fig2-calibration" => exp_prediction::fig2_calibration(scale),
        "fig3-progress" => exp_prediction::fig3_progress(scale),
        "fig4-speculation" => exp_speculation::fig4_speculation(scale),
        "fig5-latency-cdf" => exp_latency::fig5_latency_cdf(scale),
        "fig6-admission" => exp_admission::fig6_admission(scale),
        "fig7-spike" => exp_spike::fig7_spike(scale),
        "fig8-callbacks" => exp_latency::fig8_callbacks(scale),
        "tab1-percentiles" => exp_latency::tab1_percentiles(scale),
        "tab2-contention" => exp_admission::tab2_contention(scale),
        "tab3-reads" => exp_reads::tab3_reads(scale),
        "throughput" => exp_throughput::throughput(scale),
        "throughput-sharded" => exp_throughput_sharded::throughput_sharded(scale),
        "plan" => exp_plan::plan(scale),
        _ => return None,
    })
}
