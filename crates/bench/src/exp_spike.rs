//! fig7-spike: behaviour through a WAN latency storm. A delay spike
//! multiplies all network latencies for a window mid-run; the timeline shows
//! final-commit latency blowing up while PLANET's speculative responses and
//! deadline returns keep the application's effective response time bounded.

use planet_core::{PlanetTxn, Protocol, SimDuration};
use planet_sim::Spike;

use crate::common::{deployment, warm_all_sites, Scale};
use crate::report::{ms, pct, Table};

/// fig7-spike: 5-second buckets of p95 final latency, p95 effective
/// (speculation/deadline-aware) response time and commit rate across a
/// latency spike.
pub fn fig7_spike(scale: Scale) -> Table {
    let bucket = SimDuration::from_secs(5);
    let total = scale.duration(SimDuration::from_secs(40), SimDuration::from_secs(60));
    let spike_from_s = 15u64;
    let spike_to_s = 25u64;
    let factor = 4.0;

    let mut db = deployment(Protocol::Fast, 700);
    warm_all_sites(&mut db, scale.count(10, 30));
    let start = db.now();
    db.network_mut().add_spike(Spike {
        from: start + SimDuration::from_secs(spike_from_s),
        to: start + SimDuration::from_secs(spike_to_s),
        site: None,
        factor,
    });

    // Steady unique-key traffic from every site with deadline + speculation.
    let mut handles = Vec::new();
    let total_ms = total.as_micros() / 1_000;
    for site in 0..5usize {
        let mut t = 1u64;
        let mut i = 0u64;
        while t < total_ms {
            let txn = PlanetTxn::builder()
                .set(format!("fig7:{site}:{i}"), i as i64)
                .deadline(SimDuration::from_millis(400))
                .speculate_at(0.9)
                .build();
            handles.push(db.submit_at(site, start + SimDuration::from_millis(t), txn));
            t += 100;
            i += 1;
        }
    }
    db.run_for(total + SimDuration::from_secs(20));

    let mut table = Table::new(
        "fig7-spike",
        &format!("Timeline across a {factor}x WAN latency spike ([{spike_from_s}s,{spike_to_s}s))"),
        &[
            "window",
            "txns",
            "commit rate",
            "p95 final",
            "p95 effective resp",
            "in spike",
        ],
    );
    let buckets = total.as_micros() / bucket.as_micros();
    for b in 0..buckets {
        let from = start + SimDuration::from_micros(b * bucket.as_micros());
        let to = start + SimDuration::from_micros((b + 1) * bucket.as_micros());
        let in_window: Vec<_> = handles
            .iter()
            .filter_map(|h| db.record(*h))
            .filter(|r| r.submitted_at >= from && r.submitted_at < to)
            .collect();
        if in_window.is_empty() {
            continue;
        }
        let commits = in_window.iter().filter(|r| r.outcome.is_commit()).count();
        let mut finals: Vec<u64> = in_window.iter().map(|r| r.latency.as_micros()).collect();
        finals.sort_unstable();
        // Effective response: the earliest of speculation, deadline return,
        // or the final outcome — when the app could answer its user.
        let mut effective: Vec<u64> = in_window
            .iter()
            .map(|r| {
                let spec = r.speculated_at.map(|d| d.as_micros());
                let dl = r.deadline_likelihood.map(|_| 400_000u64);
                let fin = r.latency.as_micros();
                spec.unwrap_or(fin).min(dl.unwrap_or(fin)).min(fin)
            })
            .collect();
        effective.sort_unstable();
        let p95 = |v: &Vec<u64>| v[((0.95 * (v.len() - 1) as f64).round()) as usize];
        let spiky = b * 5 >= spike_from_s && b * 5 < spike_to_s;
        table.row(vec![
            format!("[{}s,{}s)", b * 5, (b + 1) * 5),
            in_window.len().to_string(),
            pct(commits as f64 / in_window.len() as f64),
            ms(p95(&finals)),
            ms(p95(&effective)),
            if spiky { "*".into() } else { "".into() },
        ]);
    }
    table.note("expected shape: p95 final latency multiplies inside the spike; effective response stays bounded (≤ deadline) because speculation/deadline callbacks answer the user");
    table
}
