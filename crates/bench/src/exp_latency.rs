//! Latency-shape experiments: fig1 (per-origin commit-latency CDFs, i.e.
//! substrate validation), fig5 (latency CDF per commit strategy), tab1
//! (percentile table per site and strategy), fig8 (time until the
//! application learns likelihood ≥ X).

use planet_core::{PlanetTxn, Protocol, SimDuration};
use planet_sim::topology::FIVE_DC_NAMES;

use crate::common::{deployment, latency_percentiles, sequential_writes, warm_all_sites, Scale};
use crate::report::{ms, Table};

/// fig1-rtt: commit-latency CDF per origin data center on the fast path.
/// Validates that the simulated WAN reproduces the five-region shape: a
/// commit from any origin costs roughly the round trip to its
/// quorum-completing (4th-closest incl. self) replica.
pub fn fig1_rtt(scale: Scale) -> Table {
    let n = scale.count(20, 200);
    let mut db = deployment(Protocol::Fast, 101);
    let mut handles_per_site = Vec::new();
    for site in 0..5 {
        handles_per_site.push(sequential_writes(&mut db, site, n, 600, "fig1"));
    }
    db.run_for(SimDuration::from_secs(n * 600 / 1000 + 10));

    let quantiles = [0.10, 0.50, 0.90, 0.99];
    let mut table = Table::new(
        "fig1-rtt",
        "Fast-path commit latency CDF per origin DC (single-key writes)",
        &["origin", "n", "p10", "p50", "p90", "p99"],
    );
    for (site, handles) in handles_per_site.iter().enumerate() {
        let records: Vec<_> = handles.iter().filter_map(|h| db.record(*h)).collect();
        let ps = latency_percentiles(&records, &quantiles);
        table.row(vec![
            FIVE_DC_NAMES[site].to_string(),
            records.len().to_string(),
            ms(ps[0]),
            ms(ps[1]),
            ms(ps[2]),
            ms(ps[3]),
        ]);
    }
    table.note(
        "expected shape: each origin pays ~RTT to its 4th-closest replica (fast quorum of 4/5)",
    );
    table
}

/// fig5-latency-cdf: end-to-end response-time percentiles for four
/// strategies on the same single-key-write workload: PLANET speculative
/// response, MDCC fast final, MDCC classic final, 2PC final.
pub fn fig5_latency_cdf(scale: Scale) -> Table {
    let n = scale.count(30, 300);
    let quantiles = [0.10, 0.50, 0.90, 0.99];
    let mut table = Table::new(
        "fig5-latency-cdf",
        "Response-time percentiles per commit strategy (writes from us-east)",
        &["strategy", "n", "p10", "p50", "p90", "p99"],
    );

    // PLANET speculative: fast path + speculation threshold; response time
    // is the speculation instant for txns that speculated.
    {
        let mut db = deployment(Protocol::Fast, 102);
        warm_all_sites(&mut db, scale.count(10, 40));
        let base = db.now();
        let handles: Vec<_> = (0..n)
            .map(|i| {
                let txn = PlanetTxn::builder()
                    .set(format!("fig5:{i}"), i as i64)
                    .speculate_at(0.95)
                    .build();
                db.submit_at(0, base + SimDuration::from_millis(1 + i * 600), txn)
            })
            .collect();
        db.run_for(SimDuration::from_secs(n * 600 / 1000 + 10));
        let mut lats: Vec<u64> = handles
            .iter()
            .filter_map(|h| db.record(*h))
            .filter(|r| r.outcome.is_commit())
            .map(|r| r.speculated_at.unwrap_or(r.latency).as_micros())
            .collect();
        lats.sort_unstable();
        let pick = |q: f64| {
            if lats.is_empty() {
                0
            } else {
                lats[((q * (lats.len() - 1) as f64).round()) as usize]
            }
        };
        table.row(vec![
            "planet-speculative".into(),
            lats.len().to_string(),
            ms(pick(quantiles[0])),
            ms(pick(quantiles[1])),
            ms(pick(quantiles[2])),
            ms(pick(quantiles[3])),
        ]);
    }

    for protocol in [Protocol::Fast, Protocol::Classic, Protocol::TwoPc] {
        let mut db = deployment(protocol, 103);
        let handles = sequential_writes(&mut db, 0, n, 600, "fig5");
        db.run_for(SimDuration::from_secs(n * 600 / 1000 + 10));
        let records: Vec<_> = handles
            .iter()
            .filter_map(|h| db.record(*h))
            .filter(|r| r.outcome.is_commit())
            .collect();
        let ps = latency_percentiles(&records, &quantiles);
        table.row(vec![
            format!("{protocol}-final"),
            records.len().to_string(),
            ms(ps[0]),
            ms(ps[1]),
            ms(ps[2]),
            ms(ps[3]),
        ]);
    }
    table.note("expected shape: speculative < fast-final < classic-final < twopc-final");
    table
}

/// tab1-percentiles: commit-latency percentiles per origin site per
/// protocol.
pub fn tab1_percentiles(scale: Scale) -> Table {
    let n = scale.count(15, 150);
    let mut table = Table::new(
        "tab1-percentiles",
        "Commit latency per origin DC and protocol (single-key writes)",
        &["origin", "protocol", "p50", "p90", "p99"],
    );
    for protocol in [Protocol::Fast, Protocol::Classic, Protocol::TwoPc] {
        let mut db = deployment(protocol, 104);
        let mut per_site = Vec::new();
        for site in 0..5 {
            per_site.push(sequential_writes(&mut db, site, n, 700, "tab1"));
        }
        db.run_for(SimDuration::from_secs(n * 700 / 1000 + 10));
        for (site, handles) in per_site.iter().enumerate() {
            let records: Vec<_> = handles
                .iter()
                .filter_map(|h| db.record(*h))
                .filter(|r| r.outcome.is_commit())
                .collect();
            let ps = latency_percentiles(&records, &[0.5, 0.9, 0.99]);
            table.row(vec![
                FIVE_DC_NAMES[site].to_string(),
                protocol.name().to_string(),
                ms(ps[0]),
                ms(ps[1]),
                ms(ps[2]),
            ]);
        }
    }
    table
}

/// fig8-callbacks: how quickly the application learns that the commit
/// likelihood has reached X, versus waiting for the final outcome.
pub fn fig8_callbacks(scale: Scale) -> Table {
    let n = scale.count(30, 300);
    let mut db = deployment(Protocol::Fast, 105);
    warm_all_sites(&mut db, scale.count(10, 40));
    let base = db.now();
    // A 185 ms deadline makes time itself part of the prediction: the p50
    // fast commit from us-east is ~170 ms, so "will this commit in time?" is
    // genuinely uncertain until votes arrive, and higher confidence levels
    // are reached later.
    let deadline = SimDuration::from_millis(185);
    let handles: Vec<_> = (0..n)
        .map(|i| {
            let txn = PlanetTxn::builder()
                .set(format!("fig8:{i}"), i as i64)
                .deadline(deadline)
                .build();
            db.submit_at(0, base + SimDuration::from_millis(1 + i * 600), txn)
        })
        .collect();
    db.run_for(SimDuration::from_secs(n * 600 / 1000 + 10));

    let thresholds = [0.50, 0.80, 0.90, 0.95, 0.99];
    let mut table = Table::new(
        "fig8-callbacks",
        "Median time until likelihood ≥ X (committed txns, 185ms deadline, us-east)",
        &[
            "threshold",
            "n",
            "median time-to-X",
            "median final commit",
            "saving",
        ],
    );
    let committed: Vec<_> = handles
        .iter()
        .filter_map(|h| db.record(*h))
        .filter(|r| r.outcome.is_commit())
        .collect();
    let mut finals: Vec<u64> = committed.iter().map(|r| r.latency.as_micros()).collect();
    finals.sort_unstable();
    let median_final = finals.get(finals.len() / 2).copied().unwrap_or(0);
    for &x in &thresholds {
        let mut times: Vec<u64> = committed
            .iter()
            .filter_map(|r| {
                r.predictions
                    .iter()
                    .find(|p| p.likelihood >= x)
                    .map(|p| p.elapsed_us)
            })
            .collect();
        times.sort_unstable();
        let median = times.get(times.len() / 2).copied().unwrap_or(0);
        let saving = if median_final > 0 {
            1.0 - median as f64 / median_final as f64
        } else {
            0.0
        };
        table.row(vec![
            format!("{x:.2}"),
            times.len().to_string(),
            ms(median),
            ms(median_final),
            crate::report::pct(saving),
        ]);
    }
    table.note("graded confidence: 0.5 is known a priori, 0.8 needs the 3rd-fastest vote, ≥0.95 effectively needs the quorum-completing vote — with a deadline this tight, near-certainty only arrives with the outcome");
    table
}
