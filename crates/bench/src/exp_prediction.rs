//! Prediction-quality experiments: fig2 (calibration / reliability diagram)
//! and fig3 (prediction sharpening with protocol progress).

use planet_core::{Planet, PlanetTxn, Protocol, SimDuration, TxnRecord};
use planet_predict::Calibration;

use crate::common::{deployment, warm_all_sites, Scale};
use crate::report::Table;

/// Run the mixed hot/cold workload both calibration figures share: all five
/// sites alternate writes between one shared hot key (conflict-prone) and
/// unique cold keys, so the outcome mix is genuinely uncertain.
fn mixed_workload(scale: Scale, seed: u64) -> (Planet, Vec<planet_core::TxnHandle>) {
    let rounds = scale.count(120, 400);
    let mut db = deployment(Protocol::Fast, seed);
    warm_all_sites(&mut db, scale.count(10, 30));
    let base = db.now();
    let mut handles = Vec::new();
    for round in 0..rounds {
        for site in 0..5usize {
            let hot = round % 2 == 0;
            let key = if hot {
                format!("hot:{}", round % 3)
            } else {
                format!("cold:{site}:{round}")
            };
            let txn = PlanetTxn::builder().set(key, round as i64).build();
            handles.push(db.submit_at(
                site,
                base + SimDuration::from_millis(10 + round * 250),
                txn,
            ));
        }
    }
    db.run_for(SimDuration::from_secs(rounds / 4 + 30));
    (db, handles)
}

fn records<'a>(db: &'a Planet, handles: &[planet_core::TxnHandle]) -> Vec<&'a TxnRecord> {
    handles.iter().filter_map(|h| db.record(*h)).collect()
}

/// fig2-calibration: the reliability diagram of the prediction made the
/// moment proposals go out (votes_seen = 0), plus Brier/skill/ECE.
pub fn fig2_calibration(scale: Scale) -> Table {
    let (db, handles) = mixed_workload(scale, 201);
    let mut cal = Calibration::new(10);
    for r in records(&db, &handles) {
        if let Some(p) = r
            .predictions
            .iter()
            .find(|p| p.votes_seen == 0 && p.elapsed_us > 0)
        {
            cal.record(p.likelihood, r.outcome.is_commit());
        }
    }
    let mut table = Table::new(
        "fig2-calibration",
        "Reliability of the pre-vote commit-likelihood prediction",
        &[
            "predicted bin",
            "n",
            "mean predicted",
            "observed commit rate",
        ],
    );
    for bin in cal.reliability() {
        table.row(vec![
            format!("[{:.1},{:.1})", bin.lo, bin.hi),
            bin.count.to_string(),
            format!("{:.3}", bin.mean_predicted),
            format!("{:.3}", bin.observed_rate),
        ]);
    }
    table.note(format!(
        "brier={:.4} (baseline {:.4}), skill={:.3}, ece={:.3}, base commit rate={:.3}, n={}",
        cal.brier().unwrap_or(0.0),
        cal.brier_baseline().unwrap_or(0.0),
        cal.skill().unwrap_or(0.0),
        cal.ece().unwrap_or(1.0),
        cal.base_rate().unwrap_or(0.0),
        cal.count(),
    ));
    table
        .note("calibrated ⇔ mean predicted ≈ observed per bin; skill > 0 beats base-rate guessing");
    table
}

/// fig3-progress: Brier score of the prediction as a function of how many
/// votes had arrived when it was made — predictions must sharpen with
/// progress, ending at (near) certainty.
pub fn fig3_progress(scale: Scale) -> Table {
    let (db, handles) = mixed_workload(scale, 202);
    // Buckets by votes seen: 0 (pre-vote), 1..=9, 10+ lumped.
    let mut cals: Vec<Calibration> = (0..=10).map(|_| Calibration::new(10)).collect();
    for r in records(&db, &handles) {
        for p in &r.predictions {
            let bucket = p.votes_seen.min(10);
            cals[bucket].record(p.likelihood, r.outcome.is_commit());
        }
    }
    let mut table = Table::new(
        "fig3-progress",
        "Prediction quality vs commit progress (votes observed)",
        &["votes seen", "n", "brier", "skill"],
    );
    for (votes, cal) in cals.iter().enumerate() {
        if cal.count() == 0 {
            continue;
        }
        table.row(vec![
            if votes == 10 {
                "10+".to_string()
            } else {
                votes.to_string()
            },
            cal.count().to_string(),
            format!("{:.4}", cal.brier().expect("calibration has samples")),
            format!("{:.3}", cal.skill().unwrap_or(0.0)),
        ]);
    }
    table.note("expected shape: Brier trends toward 0 as votes accumulate, reaching near-certainty by the 3rd vote (the 1-vote state mixes calibrated txn-level and per-vote estimates and can sit slightly above the pre-vote score)");
    table
}
