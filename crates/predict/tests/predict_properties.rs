//! Property-based tests for the prediction machinery, driven by seeded
//! [`DetRng`] case generation (the repo builds fully offline, so no external
//! property-testing framework). Every failing case prints the case number,
//! which reproduces the inputs deterministically.

use planet_sim::DetRng;

use planet_predict::likelihood::{KeyState, LikelihoodModel, TxnSnapshot};
use planet_predict::quorum::{pmf, prob_at_least};
use planet_predict::{Calibration, LatencyEcdf};

const CASES: u64 = 256;

fn random_probs(rng: &mut DetRng) -> Vec<f64> {
    let n = rng.index(10);
    (0..n).map(|_| rng.unit_f64()).collect()
}

/// The Poisson-binomial tail is a probability and is monotone in k.
#[test]
fn tail_is_probability_and_monotone() {
    for case in 0..CASES {
        let mut rng = DetRng::new(0x9D1C_0000 + case);
        let probs = random_probs(&mut rng);
        let mut prev = 1.0f64;
        for k in 0..=probs.len() + 2 {
            let p = prob_at_least(&probs, k);
            assert!(
                (-1e-12..=1.0 + 1e-12).contains(&p),
                "case {case} k={k} p={p}"
            );
            assert!(p <= prev + 1e-9, "case {case}: tail must not rise with k");
            prev = p;
        }
    }
}

/// Raising any single success probability never lowers the tail.
#[test]
fn tail_monotone_in_each_prob() {
    for case in 0..CASES {
        let mut rng = DetRng::new(0x9D1C_1000 + case);
        let n = rng.index(7) + 1; // 1..8
        let mut probs: Vec<f64> = (0..n).map(|_| rng.unit_f64()).collect();
        let idx = rng.index(probs.len());
        let bump = rng.unit_f64();
        let k = rng.index(8);
        let before = prob_at_least(&probs, k);
        probs[idx] = (probs[idx] + bump).min(1.0);
        let after = prob_at_least(&probs, k);
        assert!(after + 1e-9 >= before, "case {case}: {after} < {before}");
    }
}

/// The PMF sums to one and agrees with the tail.
#[test]
fn pmf_consistent() {
    for case in 0..CASES {
        let mut rng = DetRng::new(0x9D1C_2000 + case);
        let probs = random_probs(&mut rng);
        let masses = pmf(&probs);
        let total: f64 = masses.iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "case {case}");
        for k in 0..=probs.len() {
            let tail: f64 = masses[k..].iter().sum();
            assert!(
                (tail - prob_at_least(&probs, k)).abs() < 1e-9,
                "case {case} k={k}"
            );
        }
    }
}

/// ECDF CDF is monotone in x and bounded in [0,1].
#[test]
fn ecdf_cdf_monotone() {
    for case in 0..CASES {
        let mut rng = DetRng::new(0x9D1C_3000 + case);
        let n = rng.index(199) + 1; // 1..200
        let mut e = LatencyEcdf::new(256);
        for _ in 0..n {
            e.record(rng.range_u64(0, 1_000_000));
        }
        let mut prev = 0.0;
        for x in [0u64, 10, 1_000, 50_000, 500_000, 2_000_000] {
            let c = e.cdf(x).unwrap();
            assert!((0.0..=1.0).contains(&c), "case {case} x={x} c={c}");
            assert!(c + 1e-12 >= prev, "case {case}: CDF must be monotone");
            prev = c;
        }
    }
}

/// Likelihood is always a probability and never decreases with budget.
#[test]
fn likelihood_bounded_and_monotone_in_budget() {
    for case in 0..CASES {
        let mut rng = DetRng::new(0x9D1C_4000 + case);
        let accepts = rng.index(4);
        let rejects = rng.index(2);
        let pending = rng.index(6);
        let elapsed = rng.range_u64(0, 300_000);
        let n_votes = rng.index(100);

        let mut m = LikelihoodModel::new(5, 128);
        for _ in 0..n_votes {
            let site = rng.range_u64(0, 5) as u8;
            let rtt = rng.range_u64(50_000, 250_000);
            let ok = rng.bernoulli(0.5);
            m.observe_vote(site, rtt, ok, pending, 7);
        }
        let voted = accepts + rejects;
        let outstanding: Vec<u8> = (voted as u8..5).collect();
        let snap = TxnSnapshot {
            keys: vec![KeyState {
                accepts,
                rejects,
                outstanding,
                pending_at_read: pending,
                key_hash: 7,
                quorum: 4,
                voters: 5,
            }],
            elapsed_us: elapsed,
        };
        let mut prev = 0.0f64;
        for budget in [0u64, 10_000, 100_000, 400_000, 2_000_000] {
            let p = m.likelihood(&snap, budget);
            assert!((-1e-12..=1.0 + 1e-12).contains(&p), "case {case} p={p}");
            assert!(
                p + 1e-9 >= prev,
                "case {case}: budget monotonicity: {p} < {prev}"
            );
            prev = p;
        }
    }
}

/// Calibration bookkeeping: Brier in [0,1], ECE in [0,1], bin counts add
/// up, and the skill of a perfect predictor is 1.
#[test]
fn calibration_invariants() {
    for case in 0..CASES {
        let mut rng = DetRng::new(0x9D1C_5000 + case);
        let n = rng.index(499) + 1; // 1..500
        let pairs: Vec<(f64, bool)> = (0..n)
            .map(|_| (rng.unit_f64(), rng.bernoulli(0.5)))
            .collect();
        let mut c = Calibration::new(10);
        for &(p, y) in &pairs {
            c.record(p, y);
        }
        assert_eq!(c.count(), pairs.len() as u64, "case {case}");
        let brier = c.brier().unwrap();
        assert!((0.0..=1.0).contains(&brier), "case {case} brier={brier}");
        let ece = c.ece().unwrap();
        assert!(
            (-1e-12..=1.0 + 1e-12).contains(&ece),
            "case {case} ece={ece}"
        );
        let total: u64 = c.reliability().iter().map(|b| b.count).sum();
        assert_eq!(total, pairs.len() as u64, "case {case}");
    }
}
