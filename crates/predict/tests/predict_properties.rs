//! Property-based tests for the prediction machinery.

use proptest::prelude::*;

use planet_predict::likelihood::{KeyState, LikelihoodModel, TxnSnapshot};
use planet_predict::quorum::{pmf, prob_at_least};
use planet_predict::{Calibration, LatencyEcdf};

fn probs_strategy() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.0f64..=1.0, 0..10)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The Poisson-binomial tail is a probability and is monotone in k.
    #[test]
    fn tail_is_probability_and_monotone(probs in probs_strategy()) {
        let mut prev = 1.0f64;
        for k in 0..=probs.len() + 2 {
            let p = prob_at_least(&probs, k);
            prop_assert!((-1e-12..=1.0 + 1e-12).contains(&p), "k={k} p={p}");
            prop_assert!(p <= prev + 1e-9, "tail must not rise with k");
            prev = p;
        }
    }

    /// Raising any single success probability never lowers the tail.
    #[test]
    fn tail_monotone_in_each_prob(
        mut probs in prop::collection::vec(0.0f64..=1.0, 1..8),
        idx in 0usize..8,
        bump in 0.0f64..=1.0,
        k in 0usize..8,
    ) {
        let idx = idx % probs.len();
        let before = prob_at_least(&probs, k);
        probs[idx] = (probs[idx] + bump).min(1.0);
        let after = prob_at_least(&probs, k);
        prop_assert!(after + 1e-9 >= before);
    }

    /// The PMF sums to one and agrees with the tail.
    #[test]
    fn pmf_consistent(probs in probs_strategy()) {
        let masses = pmf(&probs);
        let total: f64 = masses.iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        for k in 0..=probs.len() {
            let tail: f64 = masses[k..].iter().sum();
            prop_assert!((tail - prob_at_least(&probs, k)).abs() < 1e-9);
        }
    }

    /// ECDF CDF is monotone in x and bounded in [0,1].
    #[test]
    fn ecdf_cdf_monotone(samples in prop::collection::vec(0u64..1_000_000, 1..200)) {
        let mut e = LatencyEcdf::new(256);
        for &s in &samples {
            e.record(s);
        }
        let mut prev = 0.0;
        for x in [0u64, 10, 1_000, 50_000, 500_000, 2_000_000] {
            let c = e.cdf(x).unwrap();
            prop_assert!((0.0..=1.0).contains(&c));
            prop_assert!(c + 1e-12 >= prev);
            prev = c;
        }
    }

    /// Likelihood is always a probability and never decreases with budget.
    #[test]
    fn likelihood_bounded_and_monotone_in_budget(
        accepts in 0usize..4,
        rejects in 0usize..2,
        pending in 0usize..6,
        elapsed in 0u64..300_000,
        votes in prop::collection::vec((0u8..5, 50_000u64..250_000, any::<bool>()), 0..100),
    ) {
        let mut m = LikelihoodModel::new(5, 128);
        for (site, rtt, ok) in votes {
            m.observe_vote(site, rtt, ok, pending, 7);
        }
        let voted = accepts + rejects;
        let outstanding: Vec<u8> = (voted as u8..5).collect();
        let snap = TxnSnapshot {
            keys: vec![KeyState {
                accepts,
                rejects,
                outstanding,
                pending_at_read: pending,
                key_hash: 7,
                quorum: 4,
                voters: 5,
            }],
            elapsed_us: elapsed,
        };
        let mut prev = 0.0f64;
        for budget in [0u64, 10_000, 100_000, 400_000, 2_000_000] {
            let p = m.likelihood(&snap, budget);
            prop_assert!((-1e-12..=1.0 + 1e-12).contains(&p), "p={p}");
            prop_assert!(p + 1e-9 >= prev, "budget monotonicity: {p} < {prev}");
            prev = p;
        }
    }

    /// Calibration bookkeeping: Brier in [0,1], ECE in [0,1], bin counts add
    /// up, and the skill of a perfect predictor is 1.
    #[test]
    fn calibration_invariants(pairs in prop::collection::vec((0.0f64..=1.0, any::<bool>()), 1..500)) {
        let mut c = Calibration::new(10);
        for &(p, y) in &pairs {
            c.record(p, y);
        }
        prop_assert_eq!(c.count(), pairs.len() as u64);
        let brier = c.brier().unwrap();
        prop_assert!((0.0..=1.0).contains(&brier));
        let ece = c.ece().unwrap();
        prop_assert!((-1e-12..=1.0 + 1e-12).contains(&ece));
        let total: u64 = c.reliability().iter().map(|b| b.count).sum();
        prop_assert_eq!(total, pairs.len() as u64);
    }
}
