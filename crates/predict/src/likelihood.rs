//! The combined commit-likelihood model — the PLANET paper's core mechanism.
//!
//! At any moment during a transaction's commit phase, the probability that
//! the transaction commits (within some remaining time budget) decomposes
//! per written key:
//!
//! * a key with a quorum of accepts is settled (`p = 1`);
//! * a key with too many rejects can never reach quorum (`p = 0`);
//! * otherwise the missing accepts must come from the outstanding replicas,
//!   each of which succeeds iff its vote **arrives in time** (path latency
//!   ECDF, conditioned on the time already elapsed) **and accepts**
//!   (contention-bucketed acceptance model). The probability that enough of
//!   them succeed is a Poisson-binomial tail.
//!
//! Keys are independent in the model (they live on distinct records), so the
//! transaction's likelihood is the product over keys. The model is learned
//! online — every observed vote updates both the path ECDF and the conflict
//! model — so predictions track latency spikes and contention shifts.

use crate::conflict::KeyedConflictModel;
use crate::ecdf::LatencyEcdf;
use crate::quorum::prob_at_least;

/// Arrival probability assumed for a path with no observations yet.
const UNKNOWN_PATH_ARRIVAL: f64 = 0.9;

/// The voting state of one written key, as seen by the coordinator.
#[derive(Debug, Clone)]
pub struct KeyState {
    /// Sites (as indices) that accepted.
    pub accepts: usize,
    /// Sites that rejected.
    pub rejects: usize,
    /// Replica sites that have not voted yet.
    pub outstanding: Vec<u8>,
    /// Options pending on the record when the transaction read it — the
    /// contention signal.
    pub pending_at_read: usize,
    /// Stable hash of the key (see [`KeyedConflictModel::key_hash`]),
    /// selecting the per-record conflict history.
    pub key_hash: u64,
    /// Accepts required (protocol quorum).
    pub quorum: usize,
    /// Total replicas that will ever vote on this key.
    pub voters: usize,
}

impl KeyState {
    /// True once this key can no longer change outcome.
    pub fn settled(&self) -> Option<bool> {
        if self.accepts >= self.quorum {
            Some(true)
        } else if self.voters - self.rejects < self.quorum {
            Some(false)
        } else {
            None
        }
    }
}

/// A point-in-time view of a transaction's commit progress.
#[derive(Debug, Clone, Default)]
pub struct TxnSnapshot {
    /// One entry per written key.
    pub keys: Vec<KeyState>,
    /// Microseconds since the proposals went out.
    pub elapsed_us: u64,
}

/// The online commit-likelihood model. One instance per coordinator site
/// (path latencies are measured from that coordinator's viewpoint).
#[derive(Debug)]
pub struct LikelihoodModel {
    /// Vote round-trip ECDF per replica site.
    paths: Vec<LatencyEcdf>,
    conflict: KeyedConflictModel,
}

impl LikelihoodModel {
    /// A model for a cluster of `num_sites` replicas, each path keeping a
    /// sliding window of `window` vote samples.
    pub fn new(num_sites: usize, window: usize) -> Self {
        LikelihoodModel {
            paths: (0..num_sites).map(|_| LatencyEcdf::new(window)).collect(),
            conflict: KeyedConflictModel::new(),
        }
    }

    /// Learn from one observed vote: replica `site` answered after
    /// `elapsed_us`, accepting or rejecting an option that had
    /// `pending_at_read` options already pending.
    pub fn observe_vote(
        &mut self,
        site: u8,
        elapsed_us: u64,
        accepted: bool,
        pending_at_read: usize,
        key_hash: u64,
    ) {
        if let Some(path) = self.paths.get_mut(site as usize) {
            path.record(elapsed_us);
        }
        self.conflict.observe(key_hash, pending_at_read, accepted);
    }

    /// Learn only the path latency from a vote (used for *late* votes whose
    /// transaction already finished — the conflict context is gone but the
    /// response time is exactly the signal the slow paths never otherwise
    /// produce, since quorums decide before the slowest replicas answer).
    pub fn observe_latency(&mut self, site: u8, elapsed_us: u64) {
        if let Some(path) = self.paths.get_mut(site as usize) {
            path.record(elapsed_us);
        }
    }

    /// Votes observed so far (model warm-up indicator).
    pub fn observations(&self) -> u64 {
        self.conflict.observations()
    }

    /// The learned global acceptance probability at a given contention
    /// level (ignoring per-key history).
    pub fn accept_prob(&self, pending: usize) -> f64 {
        self.conflict.global_accept_prob(pending)
    }

    /// The learned acceptance probability for a specific key.
    pub fn accept_prob_keyed(&self, key_hash: u64, pending: usize) -> f64 {
        self.conflict.accept_prob(key_hash, pending)
    }

    /// Votes observed for a specific key (0 = the model has never seen it).
    pub fn key_observations(&self, key_hash: u64) -> u64 {
        self.conflict.key_observations(key_hash)
    }

    /// Learn a transaction-level key resolution: the key's option reached
    /// its quorum (or definitively failed).
    pub fn observe_key_resolution(&mut self, key_hash: u64, accepted: bool) {
        self.conflict.observe_resolution(key_hash, accepted);
    }

    /// Transaction-level probability that an option on this key reaches its
    /// quorum (the conflict term the pre-vote prediction and admission
    /// control use).
    pub fn txn_accept_prob(&self, key_hash: u64) -> f64 {
        self.conflict.txn_accept_prob(key_hash)
    }

    /// Transaction-level resolutions observed for a key (0 = never seen).
    pub fn key_resolutions(&self, key_hash: u64) -> u64 {
        self.conflict.key_resolutions(key_hash)
    }

    /// Median vote round trip for a replica site, if known.
    pub fn path_median_us(&mut self, site: u8) -> Option<f64> {
        self.paths.get_mut(site as usize)?.quantile(0.5)
    }

    /// Probability one outstanding replica answers within `budget_us` more
    /// microseconds (regardless of verdict).
    fn arrival_prob(&mut self, site: u8, elapsed_us: u64, budget_us: u64) -> f64 {
        self.paths
            .get_mut(site as usize)
            .and_then(|p| p.conditional_within(elapsed_us, budget_us))
            .unwrap_or(UNKNOWN_PATH_ARRIVAL)
    }

    /// Probability one outstanding replica both answers within `budget_us`
    /// more microseconds and accepts.
    fn success_prob(
        &mut self,
        site: u8,
        elapsed_us: u64,
        budget_us: u64,
        pending: usize,
        key_hash: u64,
    ) -> f64 {
        let arrival = self
            .paths
            .get_mut(site as usize)
            .and_then(|p| p.conditional_within(elapsed_us, budget_us))
            .unwrap_or(UNKNOWN_PATH_ARRIVAL);
        arrival * self.conflict.accept_prob(key_hash, pending)
    }

    /// `P(key reaches quorum within budget_us)` for one key.
    ///
    /// Two regimes:
    ///
    /// * **Pre-vote** (no accepts or rejects yet): replica verdicts on one
    ///   option are strongly *correlated* — the proposal that arrives first
    ///   usually wins at every replica — so acceptance is modelled at the
    ///   transaction level (the key's learned quorum-resolution rate) and
    ///   only the *arrival* timing uses per-replica order statistics.
    /// * **Mid-vote**: the individual votes already seen carry the
    ///   correlation information, so the remaining replicas are modelled
    ///   per-vote (arrival × vote-level acceptance), combined by the
    ///   Poisson-binomial tail.
    fn key_likelihood(&mut self, key: &KeyState, elapsed_us: u64, budget_us: u64) -> f64 {
        if let Some(settled) = key.settled() {
            return if settled { 1.0 } else { 0.0 };
        }
        let needed = key.quorum - key.accepts;
        if key.rejects == 0 {
            // No contrary evidence: the transaction-level estimate applies.
            // Accepts already in hand only *raise* the probability (verdicts
            // on one option are positively correlated), so the estimate is
            // the txn-level acceptance times the arrival-order-statistics
            // term, floored by the per-vote model (which dominates once most
            // of the quorum is in hand).
            let arrivals: Vec<f64> = key
                .outstanding
                .iter()
                .map(|&s| self.arrival_prob(s, elapsed_us, budget_us))
                .collect();
            let txn_level =
                prob_at_least(&arrivals, needed) * self.conflict.txn_accept_prob(key.key_hash);
            if key.accepts == 0 {
                return txn_level;
            }
            let per_vote = self.per_vote_tail(key, elapsed_us, budget_us, needed);
            return txn_level.max(per_vote);
        }
        // Rejects seen: the per-vote model carries the contention evidence.
        self.per_vote_tail(key, elapsed_us, budget_us, needed)
    }

    fn per_vote_tail(
        &mut self,
        key: &KeyState,
        elapsed_us: u64,
        budget_us: u64,
        needed: usize,
    ) -> f64 {
        let probs: Vec<f64> = key
            .outstanding
            .iter()
            .map(|&s| {
                self.success_prob(s, elapsed_us, budget_us, key.pending_at_read, key.key_hash)
            })
            .collect();
        prob_at_least(&probs, needed)
    }

    /// The headline number: probability the transaction commits within
    /// `budget_us` more microseconds, given the snapshot.
    pub fn likelihood(&mut self, snap: &TxnSnapshot, budget_us: u64) -> f64 {
        snap.keys
            .iter()
            .map(|k| self.key_likelihood(k, snap.elapsed_us, budget_us))
            .product()
    }

    /// Probability the transaction *eventually* commits (no deadline):
    /// time drops out; only acceptance matters.
    pub fn likelihood_eventual(&mut self, snap: &TxnSnapshot) -> f64 {
        // A very large budget makes every arrival term ≈ its maximum.
        self.likelihood(snap, u64::MAX / 4)
    }

    /// The inverse question an application planning its UI asks (paper §3):
    /// *what is the smallest deadline for which this transaction's commit
    /// likelihood is at least `target`?* Binary search over the budget;
    /// returns `None` when even an unbounded deadline cannot reach the
    /// target (e.g. a key with a hopeless conflict history).
    ///
    /// `cap_us` bounds the search (and the answer); 30 s is a reasonable
    /// cap for interactive systems.
    pub fn suggest_budget_us(
        &mut self,
        snap: &TxnSnapshot,
        target: f64,
        cap_us: u64,
    ) -> Option<u64> {
        let target = target.clamp(0.0, 1.0);
        if self.likelihood(snap, cap_us) < target {
            return None;
        }
        let (mut lo, mut hi) = (0u64, cap_us);
        // Likelihood is monotone in the budget (property-tested), so binary
        // search converges; 40 iterations pins a microsecond within 30 s.
        for _ in 0..40 {
            if hi - lo <= 1 {
                break;
            }
            let mid = lo + (hi - lo) / 2;
            if self.likelihood(snap, mid) >= target {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        Some(hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(
        accepts: usize,
        rejects: usize,
        outstanding: Vec<u8>,
        quorum: usize,
        voters: usize,
    ) -> KeyState {
        KeyState {
            accepts,
            rejects,
            outstanding,
            pending_at_read: 0,
            key_hash: 0,
            quorum,
            voters,
        }
    }

    fn warmed_model() -> LikelihoodModel {
        let mut m = LikelihoodModel::new(5, 256);
        // All paths answer around 100ms; everything accepted.
        for round in 0..100u64 {
            for site in 0..5u8 {
                m.observe_vote(site, 100_000 + round * 100 + site as u64 * 500, true, 0, 1);
            }
        }
        m
    }

    #[test]
    fn settled_keys_are_certain() {
        let mut m = warmed_model();
        let won = TxnSnapshot {
            keys: vec![key(4, 0, vec![4], 4, 5)],
            elapsed_us: 0,
        };
        assert_eq!(m.likelihood(&won, 1), 1.0);
        let lost = TxnSnapshot {
            keys: vec![key(1, 2, vec![3], 4, 5)],
            elapsed_us: 0,
        };
        assert_eq!(m.likelihood(&lost, u64::MAX / 4), 0.0);
    }

    #[test]
    fn likelihood_rises_with_budget() {
        let mut m = warmed_model();
        let snap = TxnSnapshot {
            keys: vec![key(0, 0, vec![0, 1, 2, 3, 4], 4, 5)],
            elapsed_us: 0,
        };
        // Paths answer ~100ms: a 1ms budget is hopeless, a 1s budget is not.
        let tight = m.likelihood(&snap, 1_000);
        let loose = m.likelihood(&snap, 1_000_000);
        assert!(tight < 0.05, "tight budget gave {tight}");
        assert!(loose > 0.9, "loose budget gave {loose}");
        assert!(tight <= loose);
    }

    #[test]
    fn likelihood_sharpens_as_votes_arrive() {
        let mut m = warmed_model();
        let before = TxnSnapshot {
            keys: vec![key(0, 0, vec![0, 1, 2, 3, 4], 4, 5)],
            elapsed_us: 0,
        };
        let after3 = TxnSnapshot {
            keys: vec![key(3, 0, vec![3, 4], 4, 5)],
            elapsed_us: 90_000,
        };
        // Same absolute deadline (106 ms after proposal) for both views, so
        // the only difference is the progress in hand. Votes land between
        // ~101 and ~112 ms, making the deadline genuinely uncertain.
        let p0 = m.likelihood(&before, 106_000);
        let p3 = m.likelihood(&after3, 16_000);
        assert!(
            p3 > p0,
            "3 accepts in hand should read higher: {p3} vs {p0}"
        );
        assert!(
            p0 < 0.6,
            "needing 4 arrivals by 106ms should be unlikely: {p0}"
        );
        assert!(p3 > 0.4, "needing 1 of 2 arrivals should be likelier: {p3}");
    }

    #[test]
    fn contention_lowers_likelihood() {
        let mut m = LikelihoodModel::new(5, 256);
        for _ in 0..200 {
            for site in 0..5u8 {
                m.observe_vote(site, 100_000, true, 0, 1);
                m.observe_vote(site, 100_000, false, 4, 2);
            }
            // Transaction-level resolutions drive the pre-vote conflict term.
            m.observe_key_resolution(1, true);
            m.observe_key_resolution(2, false);
        }
        let idle = TxnSnapshot {
            keys: vec![KeyState {
                pending_at_read: 0,
                key_hash: 1,
                ..key(0, 0, vec![0, 1, 2, 3, 4], 4, 5)
            }],
            elapsed_us: 0,
        };
        let hot = TxnSnapshot {
            keys: vec![KeyState {
                pending_at_read: 4,
                key_hash: 2,
                ..key(0, 0, vec![0, 1, 2, 3, 4], 4, 5)
            }],
            elapsed_us: 0,
        };
        let p_idle = m.likelihood(&idle, 1_000_000);
        let p_hot = m.likelihood(&hot, 1_000_000);
        assert!(p_idle > 0.8, "idle {p_idle}");
        assert!(p_hot < 0.05, "hot {p_hot}");
    }

    #[test]
    fn multi_key_likelihood_is_product_like() {
        let mut m = warmed_model();
        let one = TxnSnapshot {
            keys: vec![key(0, 0, vec![0, 1, 2, 3, 4], 4, 5)],
            elapsed_us: 0,
        };
        let two = TxnSnapshot {
            keys: vec![
                key(0, 0, vec![0, 1, 2, 3, 4], 4, 5),
                key(0, 0, vec![0, 1, 2, 3, 4], 4, 5),
            ],
            elapsed_us: 0,
        };
        let p1 = m.likelihood(&one, 500_000);
        let p2 = m.likelihood(&two, 500_000);
        assert!((p2 - p1 * p1).abs() < 1e-9);
    }

    #[test]
    fn unknown_paths_use_default_arrival() {
        let mut m = LikelihoodModel::new(5, 16);
        let snap = TxnSnapshot {
            keys: vec![key(0, 0, vec![0, 1, 2, 3, 4], 4, 5)],
            elapsed_us: 0,
        };
        let p = m.likelihood(&snap, 1_000);
        // 0.9 arrival × 0.95 prior acceptance per replica, need 4 of 5.
        assert!(
            p > 0.5,
            "cold-start prediction should be optimistic, got {p}"
        );
    }

    #[test]
    fn suggest_budget_brackets_the_latency_distribution() {
        let mut m = warmed_model();
        // Make the snapshot's key warmed at the txn level so acceptance ≈ 1.
        for _ in 0..50 {
            m.observe_key_resolution(1, true);
        }
        let snap = TxnSnapshot {
            keys: vec![KeyState {
                key_hash: 1,
                ..key(0, 0, vec![0, 1, 2, 3, 4], 4, 5)
            }],
            elapsed_us: 0,
        };
        // Votes land between ~100 and ~112 ms (warmed_model); the suggested
        // deadline for high confidence must sit in/above that band, and be
        // monotone in the confidence target.
        let d80 = m.suggest_budget_us(&snap, 0.80, 30_000_000).unwrap();
        let d99 = m.suggest_budget_us(&snap, 0.99, 30_000_000).unwrap();
        assert!(d80 <= d99, "{d80} > {d99}");
        assert!((90_000..=130_000).contains(&d99), "d99 = {d99}us");
        // The suggestion delivers what it promises.
        assert!(m.likelihood(&snap, d99) >= 0.99);
        assert!(m.likelihood(&snap, d99.saturating_sub(5_000)) < 0.999);
    }

    #[test]
    fn suggest_budget_refuses_hopeless_targets() {
        let mut m = warmed_model();
        // A key with a terrible resolution history cannot reach 0.9 at any
        // deadline.
        for _ in 0..100 {
            m.observe_key_resolution(66, false);
        }
        let snap = TxnSnapshot {
            keys: vec![KeyState {
                key_hash: 66,
                ..key(0, 0, vec![0, 1, 2, 3, 4], 4, 5)
            }],
            elapsed_us: 0,
        };
        assert_eq!(m.suggest_budget_us(&snap, 0.9, 30_000_000), None);
        // But a modest target is achievable... or not, depending on the
        // learned rate; either way the answer must be self-consistent.
        if let Some(budget) = m.suggest_budget_us(&snap, 0.01, 30_000_000) {
            assert!(m.likelihood(&snap, budget) >= 0.01);
        }
    }

    #[test]
    fn empty_txn_commits_certainly() {
        let mut m = warmed_model();
        assert_eq!(m.likelihood(&TxnSnapshot::default(), 0), 1.0);
    }
}
