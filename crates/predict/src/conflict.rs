//! The conflict term of the likelihood model.
//!
//! Whether an outstanding replica will *accept* an option (as opposed to
//! merely *answer*) depends on contention: how many options were already
//! pending on the record, and how often recent proposals in the same
//! situation were accepted. This estimator maintains, per pending-count
//! bucket, an exponentially weighted acceptance rate learned from observed
//! votes — a small empirical model in the spirit of the paper's
//! "incorporates commit likelihood prediction" using runtime statistics.

/// Exponentially weighted per-contention-bucket acceptance estimator.
#[derive(Debug, Clone)]
pub struct ConflictModel {
    /// EWMA acceptance rate indexed by min(pending, buckets-1).
    rates: Vec<f64>,
    /// Observation counts per bucket (to know when a bucket is warmed up).
    counts: Vec<u64>,
    /// EWMA smoothing factor per observation.
    alpha: f64,
    /// Prior acceptance probability used before a bucket has data.
    prior: f64,
}

impl Default for ConflictModel {
    fn default() -> Self {
        Self::new(8, 0.05, 0.95)
    }
}

impl ConflictModel {
    /// `buckets` contention levels, EWMA factor `alpha`, and an optimistic
    /// `prior` for unwarmed buckets (most transactions commit when idle).
    pub fn new(buckets: usize, alpha: f64, prior: f64) -> Self {
        assert!(buckets > 0);
        assert!((0.0..=1.0).contains(&alpha));
        ConflictModel {
            rates: vec![prior; buckets],
            counts: vec![0; buckets],
            alpha,
            prior,
        }
    }

    fn bucket(&self, pending: usize) -> usize {
        pending.min(self.rates.len() - 1)
    }

    /// Record an observed vote: `pending` options were on the record when
    /// the option was proposed, and the replica either accepted or rejected.
    pub fn observe(&mut self, pending: usize, accepted: bool) {
        let b = self.bucket(pending);
        let x = if accepted { 1.0 } else { 0.0 };
        self.counts[b] += 1;
        // Warm-up: average the first few observations rather than EWMA-ing
        // from the prior, so early data moves the estimate quickly.
        let n = self.counts[b] as f64;
        if n <= 1.0 / self.alpha {
            self.rates[b] += (x - self.rates[b]) / n;
        } else {
            self.rates[b] += self.alpha * (x - self.rates[b]);
        }
    }

    /// Estimated probability that a replica accepts an option proposed while
    /// `pending` options sat on the record.
    pub fn accept_prob(&self, pending: usize) -> f64 {
        let b = self.bucket(pending);
        if self.counts[b] == 0 {
            // Borrow from the nearest warmed bucket below, else the prior.
            for lower in (0..b).rev() {
                if self.counts[lower] > 0 {
                    return self.rates[lower];
                }
            }
            return self.prior;
        }
        self.rates[b]
    }

    /// Total observations across buckets.
    pub fn observations(&self) -> u64 {
        self.counts.iter().sum()
    }
}

/// Per-key acceptance statistics layered over the global model.
///
/// Contention is heavily skewed in real workloads: a handful of hot records
/// produce most aborts. A purely global model both *under*-estimates cold
/// keys (polluted by hot-key rejections) and *over*-estimates hot keys whose
/// competing options are still in flight (pending count reads 0 during the
/// race). Tracking an EWMA acceptance rate per key fixes both: once a key
/// has enough observations its own history dominates; unknown keys fall back
/// to the global contention-bucketed estimate.
#[derive(Debug, Clone, Default)]
pub struct KeyedConflictModel {
    global: ConflictModel,
    per_key: std::collections::HashMap<u64, KeyStats>,
    /// Transaction-level: EWMA of "did the key reach its quorum?" across all
    /// keys (diagnostics).
    global_txn: KeyStats,
    /// Transaction-level resolution rate of *fresh* keys — keys that had no
    /// prior history when resolved. This, not the all-keys mixture, is the
    /// right prior for a never-seen key: hot keys warm within a few
    /// resolutions and then speak for themselves, so the fresh-key rate
    /// isolates the uncontended population.
    fresh_txn: KeyStats,
}

#[derive(Debug, Clone, Copy)]
struct KeyStats {
    /// Vote-level acceptance EWMA.
    rate: f64,
    /// Vote-level observation count.
    count: u64,
    /// Transaction-level (quorum-resolution) acceptance EWMA. Votes within
    /// one transaction are strongly correlated — the first proposal to
    /// arrive usually wins at *every* replica — so the per-vote rate badly
    /// underestimates quorum success; this statistic measures it directly.
    txn_rate: f64,
    /// Transaction-level observation count.
    txn_count: u64,
}

impl Default for KeyStats {
    fn default() -> Self {
        KeyStats {
            rate: 0.0,
            count: 0,
            txn_rate: 0.95,
            txn_count: 0,
        }
    }
}

fn ewma_update(rate: &mut f64, count: &mut u64, x: f64, alpha: f64) {
    *count += 1;
    let n = *count as f64;
    if n <= 1.0 / alpha {
        *rate += (x - *rate) / n;
    } else {
        *rate += alpha * (x - *rate);
    }
}

/// Observations before a key's own estimate fully replaces the global one.
const KEY_WARM: u64 = 10;
/// EWMA factor for per-key acceptance.
const KEY_ALPHA: f64 = 0.08;

impl KeyedConflictModel {
    /// A fresh model with default global parameters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Stable hash for a key string (FNV-1a), exposed so callers can
    /// pre-hash once.
    pub fn key_hash(key: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in key.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// Record an observed vote for a key.
    pub fn observe(&mut self, key_hash: u64, pending: usize, accepted: bool) {
        self.global.observe(pending, accepted);
        let x = if accepted { 1.0 } else { 0.0 };
        let stats = self.per_key.entry(key_hash).or_default();
        ewma_update(&mut stats.rate, &mut stats.count, x, KEY_ALPHA);
    }

    /// Record a transaction-level resolution for a key: did its option reach
    /// the quorum?
    pub fn observe_resolution(&mut self, key_hash: u64, accepted: bool) {
        let x = if accepted { 1.0 } else { 0.0 };
        let stats = self.per_key.entry(key_hash).or_default();
        if stats.txn_count == 0 {
            ewma_update(
                &mut self.fresh_txn.txn_rate,
                &mut self.fresh_txn.txn_count,
                x,
                0.02,
            );
        }
        ewma_update(&mut stats.txn_rate, &mut stats.txn_count, x, KEY_ALPHA);
        ewma_update(
            &mut self.global_txn.txn_rate,
            &mut self.global_txn.txn_count,
            x,
            0.02,
        );
    }

    /// Transaction-level probability that an option on this key reaches its
    /// quorum: the key's own resolution history, blended while warming with
    /// the *fresh-key* resolution rate (see `fresh_txn`).
    pub fn txn_accept_prob(&self, key_hash: u64) -> f64 {
        // The fresh-key rate itself warms against an optimistic prior
        // (idle systems commit): a handful of early contested keys must not
        // poison predictions for every new key in the system.
        let fresh = {
            let w = (self.fresh_txn.txn_count as f64 / 20.0).min(1.0);
            w * self.fresh_txn.txn_rate + (1.0 - w) * 0.95
        };
        match self.per_key.get(&key_hash) {
            None => fresh,
            Some(stats) if stats.txn_count == 0 => fresh,
            Some(stats) => {
                let w = (stats.txn_count as f64 / KEY_WARM as f64).min(1.0);
                w * stats.txn_rate + (1.0 - w) * fresh
            }
        }
    }

    /// Estimated acceptance probability for a key at a contention level:
    /// the key's own history once warmed, blended with the global estimate
    /// while warming.
    pub fn accept_prob(&self, key_hash: u64, pending: usize) -> f64 {
        let global = self.global.accept_prob(pending);
        match self.per_key.get(&key_hash) {
            None => global,
            Some(stats) => {
                let w = (stats.count as f64 / KEY_WARM as f64).min(1.0);
                w * stats.rate + (1.0 - w) * global
            }
        }
    }

    /// Acceptance probability ignoring per-key history (global only).
    pub fn global_accept_prob(&self, pending: usize) -> f64 {
        self.global.accept_prob(pending)
    }

    /// How many votes have been observed for this specific key.
    pub fn key_observations(&self, key_hash: u64) -> u64 {
        self.per_key.get(&key_hash).map_or(0, |s| s.count)
    }

    /// How many transaction-level resolutions have been observed for this
    /// specific key.
    pub fn key_resolutions(&self, key_hash: u64) -> u64 {
        self.per_key.get(&key_hash).map_or(0, |s| s.txn_count)
    }

    /// Total observations.
    pub fn observations(&self) -> u64 {
        self.global.observations()
    }

    /// Number of keys with individual statistics.
    pub fn tracked_keys(&self) -> usize {
        self.per_key.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prior_before_data() {
        let m = ConflictModel::new(4, 0.1, 0.9);
        assert_eq!(m.accept_prob(0), 0.9);
        assert_eq!(m.accept_prob(10), 0.9);
        assert_eq!(m.observations(), 0);
    }

    #[test]
    fn learns_low_acceptance_under_contention() {
        let mut m = ConflictModel::default();
        for _ in 0..200 {
            m.observe(0, true); // idle records accept
            m.observe(5, false); // contended records reject
        }
        assert!(m.accept_prob(0) > 0.9, "idle: {}", m.accept_prob(0));
        assert!(m.accept_prob(5) < 0.1, "contended: {}", m.accept_prob(5));
    }

    #[test]
    fn pending_clamps_to_last_bucket() {
        let mut m = ConflictModel::new(3, 0.5, 0.5);
        for _ in 0..50 {
            m.observe(17, false);
        }
        assert!(m.accept_prob(2) < 0.1);
        assert!(m.accept_prob(99) < 0.1);
    }

    #[test]
    fn unwarmed_bucket_borrows_from_below() {
        let mut m = ConflictModel::new(8, 0.1, 0.95);
        for _ in 0..100 {
            m.observe(1, false);
        }
        // Bucket 3 has no data; nearest warmed bucket below is 1.
        assert!(m.accept_prob(3) < 0.1);
        // Bucket 0 has no data either and nothing below → prior.
        assert_eq!(m.accept_prob(0), 0.95);
    }

    #[test]
    fn keyed_model_separates_hot_from_cold() {
        let mut m = KeyedConflictModel::new();
        let hot = KeyedConflictModel::key_hash("hot");
        let cold = KeyedConflictModel::key_hash("cold");
        for _ in 0..100 {
            m.observe(hot, 0, false); // hot key rejects even at pending=0
            m.observe(cold, 0, true);
        }
        assert!(m.accept_prob(hot, 0) < 0.1, "hot {}", m.accept_prob(hot, 0));
        assert!(
            m.accept_prob(cold, 0) > 0.9,
            "cold {}",
            m.accept_prob(cold, 0)
        );
        // An unseen key gets the (mixed) global estimate, strictly between.
        let unseen = m.accept_prob(KeyedConflictModel::key_hash("new"), 0);
        assert!(unseen > 0.2 && unseen < 0.8, "unseen {unseen}");
        assert_eq!(m.tracked_keys(), 2);
        assert_eq!(m.observations(), 200);
    }

    #[test]
    fn keyed_model_blends_while_warming() {
        let mut m = KeyedConflictModel::new();
        // Warm the global estimate with a healthy key.
        let other = KeyedConflictModel::key_hash("other");
        for _ in 0..50 {
            m.observe(other, 0, true);
        }
        // Two rejects on a fresh key: far from warm, so the healthy global
        // estimate still carries most of the weight.
        let k = KeyedConflictModel::key_hash("k");
        m.observe(k, 0, false);
        m.observe(k, 0, false);
        let p = m.accept_prob(k, 0);
        assert!(p > 0.5 && p < 0.95, "blend expected, got {p}");
        // Twenty more rejects and the key's own history dominates.
        for _ in 0..20 {
            m.observe(k, 0, false);
        }
        assert!(
            m.accept_prob(k, 0) < 0.2,
            "warmed key: {}",
            m.accept_prob(k, 0)
        );
    }

    #[test]
    fn key_hash_is_stable() {
        assert_eq!(
            KeyedConflictModel::key_hash("stock:1"),
            KeyedConflictModel::key_hash("stock:1")
        );
        assert_ne!(
            KeyedConflictModel::key_hash("stock:1"),
            KeyedConflictModel::key_hash("stock:2")
        );
    }

    #[test]
    fn warmup_moves_fast() {
        let mut m = ConflictModel::new(2, 0.05, 0.95);
        for _ in 0..5 {
            m.observe(0, false);
        }
        assert!(
            m.accept_prob(0) < 0.2,
            "5 straight rejects must dent the prior"
        );
    }
}
