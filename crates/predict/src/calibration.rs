//! Calibration measurement: is a predicted likelihood of *p* actually
//! followed by a commit a fraction *p* of the time?
//!
//! Two standard instruments:
//!
//! * the **Brier score** — mean squared error of probabilistic predictions
//!   (0 is perfect, 0.25 is an uninformed coin, 1 is perfectly wrong), and
//! * a **reliability diagram** — predictions bucketed into bins, with the
//!   observed commit rate per bin; a calibrated predictor lies on the
//!   diagonal.
//!
//! These generate the reproduction's Figure 2 / Figure 3 outputs.

/// One bin of a reliability diagram.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReliabilityBin {
    /// Inclusive lower edge of the predicted-probability bin.
    pub lo: f64,
    /// Exclusive upper edge (inclusive for the last bin).
    pub hi: f64,
    /// Predictions that fell in the bin.
    pub count: u64,
    /// Mean predicted probability within the bin.
    pub mean_predicted: f64,
    /// Observed positive (commit) rate within the bin.
    pub observed_rate: f64,
}

/// Accumulates (prediction, outcome) pairs and reports calibration metrics.
///
/// ```
/// use planet_predict::Calibration;
///
/// let mut cal = Calibration::new(10);
/// for i in 0..100 {
///     cal.record(0.8, i % 10 < 8); // predicts 0.8; commits 80% of the time
/// }
/// assert!(cal.ece().unwrap() < 0.01, "perfectly calibrated");
/// assert!(cal.brier().unwrap() < cal.brier_baseline().unwrap());
/// ```
#[derive(Debug, Clone)]
pub struct Calibration {
    bins: usize,
    // per bin: (count, sum of predictions, positives)
    data: Vec<(u64, f64, u64)>,
    sq_error_sum: f64,
    n: u64,
    positives: u64,
}

impl Calibration {
    /// An accumulator with `bins` equal-width probability bins.
    pub fn new(bins: usize) -> Self {
        assert!(bins > 0);
        Calibration {
            bins,
            data: vec![(0, 0.0, 0); bins],
            sq_error_sum: 0.0,
            n: 0,
            positives: 0,
        }
    }

    /// Record one prediction and its eventual outcome.
    pub fn record(&mut self, predicted: f64, outcome: bool) {
        let p = predicted.clamp(0.0, 1.0);
        let y = if outcome { 1.0 } else { 0.0 };
        self.sq_error_sum += (p - y) * (p - y);
        self.n += 1;
        if outcome {
            self.positives += 1;
        }
        let idx = ((p * self.bins as f64) as usize).min(self.bins - 1);
        let bin = &mut self.data[idx];
        bin.0 += 1;
        bin.1 += p;
        bin.2 += u64::from(outcome);
    }

    /// Number of recorded predictions.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Overall positive (commit) rate.
    pub fn base_rate(&self) -> Option<f64> {
        (self.n > 0).then(|| self.positives as f64 / self.n as f64)
    }

    /// The Brier score: mean (p − y)².
    pub fn brier(&self) -> Option<f64> {
        (self.n > 0).then(|| self.sq_error_sum / self.n as f64)
    }

    /// The Brier score of the *uninformed* predictor that always answers the
    /// base rate — the reference a useful model must beat.
    pub fn brier_baseline(&self) -> Option<f64> {
        self.base_rate().map(|r| r * (1.0 - r))
    }

    /// Brier skill score: 1 − brier/baseline (1 = perfect, 0 = no better
    /// than the base rate, negative = worse). `None` if the baseline is 0.
    pub fn skill(&self) -> Option<f64> {
        let brier = self.brier()?;
        let base = self.brier_baseline()?;
        (base > 0.0).then(|| 1.0 - brier / base)
    }

    /// The reliability diagram: one entry per non-empty bin.
    pub fn reliability(&self) -> Vec<ReliabilityBin> {
        let w = 1.0 / self.bins as f64;
        self.data
            .iter()
            .enumerate()
            .filter(|(_, (count, _, _))| *count > 0)
            .map(|(i, &(count, pred_sum, pos))| ReliabilityBin {
                lo: i as f64 * w,
                hi: (i + 1) as f64 * w,
                count,
                mean_predicted: pred_sum / count as f64,
                observed_rate: pos as f64 / count as f64,
            })
            .collect()
    }

    /// Expected calibration error: bin-count-weighted mean |predicted −
    /// observed| over the reliability diagram.
    pub fn ece(&self) -> Option<f64> {
        if self.n == 0 {
            return None;
        }
        let total: f64 = self
            .reliability()
            .iter()
            .map(|b| b.count as f64 * (b.mean_predicted - b.observed_rate).abs())
            .sum();
        Some(total / self.n as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_yields_none() {
        let c = Calibration::new(10);
        assert_eq!(c.brier(), None);
        assert_eq!(c.base_rate(), None);
        assert_eq!(c.ece(), None);
        assert!(c.reliability().is_empty());
    }

    #[test]
    fn perfect_predictions_score_zero() {
        let mut c = Calibration::new(10);
        for _ in 0..50 {
            c.record(1.0, true);
            c.record(0.0, false);
        }
        assert_eq!(c.brier(), Some(0.0));
        assert_eq!(c.ece(), Some(0.0));
        assert_eq!(c.skill(), Some(1.0));
    }

    #[test]
    fn coin_flip_brier_quarter() {
        let mut c = Calibration::new(10);
        for i in 0..1000 {
            c.record(0.5, i % 2 == 0);
        }
        assert!((c.brier().unwrap() - 0.25).abs() < 1e-12);
        assert!((c.base_rate().unwrap() - 0.5).abs() < 1e-12);
        // Always-0.5 on a 50% base rate is *calibrated* but unskilled.
        assert!(c.ece().unwrap() < 1e-9);
        assert!(c.skill().unwrap().abs() < 1e-9);
    }

    #[test]
    fn miscalibration_shows_in_ece() {
        let mut c = Calibration::new(10);
        // Predicts 0.9 but only 30% commit.
        for i in 0..100 {
            c.record(0.9, i % 10 < 3);
        }
        assert!((c.ece().unwrap() - 0.6).abs() < 1e-9);
        assert!(
            c.skill().unwrap() < 0.0,
            "overconfidence must show negative skill"
        );
    }

    #[test]
    fn reliability_bins_land_correctly() {
        let mut c = Calibration::new(10);
        for i in 0..100 {
            c.record(0.25, i % 4 == 0); // 25% commit at p=0.25
        }
        c.record(0.95, true);
        let bins = c.reliability();
        assert_eq!(bins.len(), 2);
        let low = &bins[0];
        assert_eq!(low.count, 100);
        assert!((low.mean_predicted - 0.25).abs() < 1e-12);
        assert!((low.observed_rate - 0.25).abs() < 1e-12);
        assert_eq!(bins[1].count, 1);
        assert_eq!(bins[1].observed_rate, 1.0);
    }

    #[test]
    fn edge_predictions_clamp() {
        let mut c = Calibration::new(4);
        c.record(1.7, true);
        c.record(-0.3, false);
        assert_eq!(c.brier(), Some(0.0));
        assert_eq!(c.count(), 2);
    }
}
