//! Online empirical latency distributions.
//!
//! The likelihood model needs, for every (coordinator site → replica site)
//! path, an answer to "what is the probability a vote from that replica
//! arrives within *t* more microseconds?". A sliding-window empirical CDF
//! over recently observed vote round trips answers it; the window (rather
//! than an all-history distribution) is what lets predictions track load
//! spikes and regime changes, which is exactly the unpredictability PLANET
//! targets.

use std::collections::VecDeque;

/// A sliding-window empirical CDF of `u64` samples (microseconds).
///
/// ```
/// use planet_predict::LatencyEcdf;
///
/// let mut ecdf = LatencyEcdf::new(128);
/// for rtt in [80_000u64, 90_000, 100_000, 110_000] {
///     ecdf.record(rtt);
/// }
/// assert_eq!(ecdf.cdf(95_000), Some(0.5));
/// // 95ms already elapsed: only the 100ms and 110ms samples remain, and
/// // one of those two lands within the next 10ms.
/// assert_eq!(ecdf.conditional_within(95_000, 10_000), Some(0.5));
/// ```
#[derive(Debug, Clone)]
pub struct LatencyEcdf {
    window: VecDeque<u64>,
    capacity: usize,
    /// Sorted copy of `window`, rebuilt lazily.
    sorted: Vec<u64>,
    dirty: bool,
}

impl LatencyEcdf {
    /// An empty ECDF retaining at most `capacity` recent samples.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0);
        LatencyEcdf {
            window: VecDeque::with_capacity(capacity),
            capacity,
            sorted: Vec::new(),
            dirty: false,
        }
    }

    /// Record a sample, evicting the oldest when full.
    pub fn record(&mut self, sample: u64) {
        if self.window.len() == self.capacity {
            self.window.pop_front();
        }
        self.window.push_back(sample);
        self.dirty = true;
    }

    /// Number of samples currently in the window.
    pub fn len(&self) -> usize {
        self.window.len()
    }

    /// True if no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.window.is_empty()
    }

    fn ensure_sorted(&mut self) {
        if self.dirty {
            self.sorted.clear();
            self.sorted.extend(self.window.iter().copied());
            self.sorted.sort_unstable();
            self.dirty = false;
        }
    }

    /// Empirical `P(X <= x)`. Returns `None` when no samples exist.
    pub fn cdf(&mut self, x: u64) -> Option<f64> {
        if self.window.is_empty() {
            return None;
        }
        self.ensure_sorted();
        let below = self.sorted.partition_point(|&s| s <= x);
        Some(below as f64 / self.sorted.len() as f64)
    }

    /// Empirical quantile (`q` in `[0,1]`). Returns `None` when empty.
    pub fn quantile(&mut self, q: f64) -> Option<f64> {
        if self.window.is_empty() {
            return None;
        }
        self.ensure_sorted();
        let q = q.clamp(0.0, 1.0);
        let idx = ((q * (self.sorted.len() - 1) as f64).round()) as usize;
        Some(self.sorted[idx] as f64)
    }

    /// Mean of the window.
    pub fn mean(&self) -> Option<f64> {
        if self.window.is_empty() {
            return None;
        }
        Some(self.window.iter().sum::<u64>() as f64 / self.window.len() as f64)
    }

    /// Conditional completion probability: given that `elapsed` µs have
    /// already passed without the event, the probability it happens within
    /// `budget` more µs — `P(X ≤ elapsed + budget | X > elapsed)`.
    ///
    /// Falls back to the unconditional CDF when the condition has no support
    /// (everything in the window is ≤ `elapsed`): the sample is then assumed
    /// stale and the answer is a deliberately pessimistic small probability,
    /// because a response later than everything we have ever seen suggests
    /// loss or a partition.
    pub fn conditional_within(&mut self, elapsed: u64, budget: u64) -> Option<f64> {
        if self.window.is_empty() {
            return None;
        }
        self.ensure_sorted();
        let n = self.sorted.len() as f64;
        let past = self.sorted.partition_point(|&s| s <= elapsed) as f64;
        let by_deadline = self.sorted.partition_point(|&s| s <= elapsed + budget) as f64;
        let survivors = n - past;
        if survivors <= 0.0 {
            // Beyond all observed samples: assume near-certain loss.
            return Some(0.05);
        }
        Some((by_deadline - past) / survivors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filled(samples: &[u64]) -> LatencyEcdf {
        let mut e = LatencyEcdf::new(1024);
        for &s in samples {
            e.record(s);
        }
        e
    }

    #[test]
    fn empty_returns_none() {
        let mut e = LatencyEcdf::new(8);
        assert!(e.is_empty());
        assert_eq!(e.cdf(100), None);
        assert_eq!(e.quantile(0.5), None);
        assert_eq!(e.mean(), None);
        assert_eq!(e.conditional_within(0, 10), None);
    }

    #[test]
    fn cdf_basic() {
        let mut e = filled(&[10, 20, 30, 40]);
        assert_eq!(e.cdf(5), Some(0.0));
        assert_eq!(e.cdf(10), Some(0.25));
        assert_eq!(e.cdf(25), Some(0.5));
        assert_eq!(e.cdf(100), Some(1.0));
    }

    #[test]
    fn quantile_basic() {
        let mut e = filled(&[10, 20, 30, 40, 50]);
        assert_eq!(e.quantile(0.0), Some(10.0));
        assert_eq!(e.quantile(0.5), Some(30.0));
        assert_eq!(e.quantile(1.0), Some(50.0));
    }

    #[test]
    fn window_evicts_oldest() {
        let mut e = LatencyEcdf::new(3);
        for s in [1, 2, 3, 100, 200, 300] {
            e.record(s);
        }
        assert_eq!(e.len(), 3);
        assert_eq!(e.cdf(50), Some(0.0), "old small samples must be gone");
        assert_eq!(e.mean(), Some(200.0));
    }

    #[test]
    fn conditional_probability_tightens_over_time() {
        // Bimodal: half fast (~10), half slow (~100). Once 50µs have passed
        // the response must be in the slow mode.
        let mut e = filled(&[10, 10, 10, 100, 100, 100]);
        let unconditional = e.conditional_within(0, 20).unwrap();
        assert!((unconditional - 0.5).abs() < 1e-9);
        let conditioned = e.conditional_within(50, 60).unwrap();
        assert!((conditioned - 1.0).abs() < 1e-9, "all survivors are ~100");
    }

    #[test]
    fn conditional_beyond_support_is_pessimistic() {
        let mut e = filled(&[10, 20, 30]);
        let p = e.conditional_within(1_000, 1_000).unwrap();
        assert!(p < 0.1, "expected pessimistic tail, got {p}");
    }

    #[test]
    fn mean_tracks_window() {
        let e = filled(&[10, 20, 30]);
        assert_eq!(e.mean(), Some(20.0));
    }
}
