//! # planet-predict
//!
//! Commit-likelihood prediction — the core novelty of PLANET (SIGMOD 2014):
//! given a transaction's observable commit progress (which replicas have
//! voted, how long ago the proposals went out, how contended the records
//! were), estimate the probability that the transaction commits within a
//! time budget.
//!
//! The model has three parts, each its own module:
//!
//! * [`ecdf`] — sliding-window empirical latency distributions per
//!   coordinator→replica path, conditioned on elapsed time;
//! * [`quorum`] — exact Poisson-binomial tails ("P(enough of the outstanding
//!   replicas succeed)");
//! * [`conflict`] — a contention-bucketed acceptance-rate estimator learned
//!   from observed votes.
//!
//! [`LikelihoodModel`] combines them; [`calibration`] measures whether the
//! resulting probabilities are honest (Brier score, reliability diagrams) —
//! the instruments behind the reproduction's prediction-quality figures.

#![warn(missing_docs)]

pub mod calibration;
pub mod conflict;
pub mod ecdf;
pub mod likelihood;
pub mod quorum;

pub use calibration::{Calibration, ReliabilityBin};
pub use conflict::ConflictModel;
pub use ecdf::LatencyEcdf;
pub use likelihood::{KeyState, LikelihoodModel, TxnSnapshot};
