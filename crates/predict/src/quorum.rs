//! Quorum mathematics: the probability that enough replicas respond.
//!
//! Replica responses are independent events with heterogeneous success
//! probabilities (each path has its own latency distribution and each
//! replica its own acceptance probability), so "at least *k* of the
//! outstanding *n* succeed" is a Poisson-binomial tail, computed exactly by
//! dynamic programming in `O(n·k)`.

/// `P(at least k successes)` among independent trials with the given
/// probabilities. Exact Poisson-binomial tail via DP.
///
/// Edge cases: `k == 0` → 1; `k > probs.len()` → 0.
pub fn prob_at_least(probs: &[f64], k: usize) -> f64 {
    if k == 0 {
        return 1.0;
    }
    let n = probs.len();
    if k > n {
        return 0.0;
    }
    // dp[j] = P(exactly j successes among trials seen so far), capped at k
    // (everything ≥ k is lumped into dp[k]).
    let mut dp = vec![0.0f64; k + 1];
    dp[0] = 1.0;
    for &p in probs {
        let p = p.clamp(0.0, 1.0);
        for j in (0..=k).rev() {
            let stay = dp[j] * (1.0 - p);
            let advance = if j > 0 { dp[j - 1] * p } else { 0.0 };
            dp[j] = if j == k {
                // Absorbing bucket: once at ≥k successes, stay there.
                dp[k] + advance
            } else {
                stay + advance
            };
        }
    }
    dp[k]
}

/// `P(exactly j successes)` for each `j` in `0..=n` (full Poisson-binomial
/// probability mass function).
pub fn pmf(probs: &[f64]) -> Vec<f64> {
    let n = probs.len();
    let mut dp = vec![0.0f64; n + 1];
    dp[0] = 1.0;
    for (i, &p) in probs.iter().enumerate() {
        let p = p.clamp(0.0, 1.0);
        for j in (0..=i + 1).rev() {
            let advance = if j > 0 { dp[j - 1] * p } else { 0.0 };
            dp[j] = dp[j] * (1.0 - p) + advance;
        }
    }
    dp
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-12
    }

    #[test]
    fn degenerate_cases() {
        assert!(close(prob_at_least(&[], 0), 1.0));
        assert!(close(prob_at_least(&[], 1), 0.0));
        assert!(close(prob_at_least(&[0.3], 0), 1.0));
        assert!(close(prob_at_least(&[0.3], 2), 0.0));
    }

    #[test]
    fn certain_trials() {
        assert!(close(prob_at_least(&[1.0, 1.0, 1.0], 3), 1.0));
        assert!(close(prob_at_least(&[0.0, 0.0], 1), 0.0));
        assert!(close(prob_at_least(&[1.0, 0.0, 1.0], 2), 1.0));
        assert!(close(prob_at_least(&[1.0, 0.0, 1.0], 3), 0.0));
    }

    #[test]
    fn matches_binomial_for_equal_probs() {
        // n=5, p=0.5: P(≥3) = (10 + 5 + 1)/32 = 0.5
        let p = prob_at_least(&[0.5; 5], 3);
        assert!(close(p, 0.5), "got {p}");
        // n=4, p=0.5: P(≥2) = (6+4+1)/16 = 11/16
        assert!(close(prob_at_least(&[0.5; 4], 2), 11.0 / 16.0));
    }

    #[test]
    fn heterogeneous_hand_computed() {
        // p = [0.9, 0.5]: P(≥1) = 1 - 0.1·0.5 = 0.95; P(≥2) = 0.45.
        assert!(close(prob_at_least(&[0.9, 0.5], 1), 0.95));
        assert!(close(prob_at_least(&[0.9, 0.5], 2), 0.45));
    }

    #[test]
    fn pmf_sums_to_one_and_matches_tail() {
        let probs = [0.2, 0.7, 0.4, 0.9, 0.05];
        let pmf = pmf(&probs);
        assert!(close(pmf.iter().sum::<f64>(), 1.0));
        for k in 0..=probs.len() {
            let tail: f64 = pmf[k..].iter().sum();
            assert!(
                (tail - prob_at_least(&probs, k)).abs() < 1e-9,
                "k={k}: {tail} vs {}",
                prob_at_least(&probs, k)
            );
        }
    }

    #[test]
    fn monotone_in_k() {
        let probs = [0.3, 0.6, 0.8, 0.2];
        let mut prev = 1.0;
        for k in 0..=4 {
            let p = prob_at_least(&probs, k);
            assert!(p <= prev + 1e-12);
            prev = p;
        }
    }

    #[test]
    fn out_of_range_probs_are_clamped() {
        assert!(close(prob_at_least(&[1.5, -0.2], 1), 1.0));
    }
}
