//! Integration tests for the PLANET programming model over the full stack:
//! callbacks, likelihood traces, speculation, apologies, deadlines and
//! admission control.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use planet_core::{
    AdmissionPolicy, FinalOutcome, Planet, PlanetTxn, Protocol, SimDuration, SimTime, TxnEvent,
};
use planet_storage::{Key, Value};

/// Warm the likelihood model with a stream of easy transactions.
fn warm(db: &mut Planet, site: usize, n: u64) {
    let base = db.now();
    for i in 0..n {
        let txn = PlanetTxn::builder()
            .set(format!("warm:{site}:{i}"), i as i64)
            .build();
        db.submit_at(site, base + SimDuration::from_millis(1 + i * 400), txn);
    }
    db.run_for(SimDuration::from_secs(n / 2 + 5));
}

#[test]
fn commit_with_progress_callbacks_and_rising_likelihood() {
    let mut db = Planet::builder().protocol(Protocol::Fast).seed(1).build();
    warm(&mut db, 0, 30);

    let txn = PlanetTxn::builder().set("answer", 42i64).build();
    let start = db.now();
    let handle = db.submit_at(0, start + SimDuration::from_millis(10), txn);
    db.run_for(SimDuration::from_secs(5));

    let record = db.record(handle).expect("finished");
    assert_eq!(record.outcome, FinalOutcome::Committed);
    assert!(record.predictions.len() >= 5, "one prediction per event");
    // With a warmed model, the likelihood right before the decision must be
    // near 1 and the trace must end above where it started.
    let last = record.predictions.last().unwrap();
    assert!(
        last.likelihood > 0.9,
        "final likelihood {}",
        last.likelihood
    );
    assert_eq!(db.read_local(0, &Key::new("answer")), Value::Int(42));
}

#[test]
fn speculation_fires_before_final_and_is_usually_right() {
    let mut db = Planet::builder().protocol(Protocol::Fast).seed(2).build();
    warm(&mut db, 0, 40);

    let mut handles = Vec::new();
    for i in 0..20u64 {
        let txn = PlanetTxn::builder()
            .set(format!("spec:{i}"), i as i64)
            .speculate_at(0.95)
            .build();
        let at = db.now() + SimDuration::from_millis(10 + i * 500);
        handles.push(db.submit_at(0, at, txn));
    }
    db.run_for(SimDuration::from_secs(30));

    let mut speculated = 0;
    for h in &handles {
        let r = db.record(*h).expect("finished");
        assert_eq!(r.outcome, FinalOutcome::Committed);
        if let Some(at) = r.speculated_at {
            speculated += 1;
            assert!(
                at < r.latency,
                "speculation ({at}) must precede the final outcome ({})",
                r.latency
            );
            assert!(!r.apologised());
        }
    }
    assert!(
        speculated >= 15,
        "uncontended txns should mostly speculate, got {speculated}/20"
    );
}

#[test]
fn apology_fires_when_speculation_goes_wrong() {
    // Force mispredictions: a warmed, optimistic model plus a burst of
    // conflicting physical writes to one key from all five sites. With a
    // low speculation threshold some losers will have speculated.
    let mut db = Planet::builder().protocol(Protocol::Fast).seed(3).build();
    for site in 0..5 {
        warm(&mut db, site, 10);
    }
    let apologies = Arc::new(AtomicU32::new(0));
    let mut handles = Vec::new();
    for round in 0..10u64 {
        for site in 0..5usize {
            let a = apologies.clone();
            let txn = PlanetTxn::builder()
                .set("contested", (round * 10 + site as u64) as i64)
                .speculate_at(0.5)
                .on_apology(move || {
                    a.fetch_add(1, Ordering::SeqCst);
                })
                .build();
            let at = db.now() + SimDuration::from_millis(10 + round * 300);
            handles.push(db.submit_at(site, at, txn));
        }
    }
    db.run_for(SimDuration::from_secs(60));

    let records: Vec<_> = handles
        .iter()
        .map(|h| db.record(*h).expect("finished"))
        .collect();
    let aborted = records.iter().filter(|r| !r.outcome.is_commit()).count();
    assert!(aborted > 10, "contention must abort many, got {aborted}/50");
    let apologised = records.iter().filter(|r| r.apologised()).count();
    assert_eq!(apologies.load(Ordering::SeqCst) as usize, apologised);
    assert!(apologised >= 1, "some speculations must have gone wrong");
    // Apologies must be rare relative to aborts only when the threshold is
    // high; at 0.5 we just require they happened and were counted in the
    // metrics too.
    assert_eq!(
        db.metrics().counter_value("planet.apologies") as usize,
        apologised
    );
}

#[test]
fn deadline_returns_control_with_likelihood() {
    let mut db = Planet::builder().protocol(Protocol::Fast).seed(4).build();
    warm(&mut db, 0, 20);
    // A 60ms deadline is far below the ~200ms WAN commit: the deadline
    // event must fire, carrying a meaningful likelihood, and the txn must
    // still commit afterwards.
    let deadline_seen = Arc::new(AtomicU32::new(0));
    let d2 = deadline_seen.clone();
    let txn = PlanetTxn::builder()
        .set("deadline-key", 1i64)
        .deadline(SimDuration::from_millis(60))
        .on_event(move |e| {
            if let TxnEvent::DeadlineExceeded { likelihood, .. } = e {
                assert!((0.0..=1.0).contains(likelihood));
                d2.fetch_add(1, Ordering::SeqCst);
            }
        })
        .build();
    let handle = db.submit_at(0, db.now() + SimDuration::from_millis(5), txn);
    db.run_for(SimDuration::from_secs(5));

    assert_eq!(deadline_seen.load(Ordering::SeqCst), 1);
    let r = db.record(handle).unwrap();
    assert_eq!(
        r.outcome,
        FinalOutcome::Committed,
        "txn finishes in the background"
    );
    assert!(r.deadline_likelihood.is_some());
    assert!(r.latency > SimDuration::from_millis(60));
}

#[test]
fn admission_control_rejects_under_synthetic_overload() {
    let mut db = Planet::builder()
        .protocol(Protocol::Fast)
        .seed(5)
        .admission(AdmissionPolicy {
            min_likelihood: 0.0,
            max_inflight: 1,
        })
        .build();
    // Submit 5 at once: the first occupies the single in-flight slot for
    // ~200ms; the rest are refused on arrival.
    let handles: Vec<_> = (0..5)
        .map(|i| {
            let txn = PlanetTxn::builder().set(format!("k{i}"), i as i64).build();
            db.submit_at(0, SimTime::from_millis(1), txn)
        })
        .collect();
    db.run_for(SimDuration::from_secs(5));
    let outcomes: Vec<_> = handles
        .iter()
        .map(|h| db.record(*h).unwrap().outcome)
        .collect();
    let rejected = outcomes
        .iter()
        .filter(|o| **o == FinalOutcome::Rejected)
        .count();
    let committed = outcomes.iter().filter(|o| o.is_commit()).count();
    assert_eq!(committed, 1);
    assert_eq!(rejected, 4);
    let (admitted, refused) = db.admission_stats(0);
    assert_eq!((admitted, refused), (1, 4));
}

#[test]
fn admission_control_sheds_doomed_transactions_under_contention() {
    // Hammer one hot key; once the model learns the abort pattern the
    // controller starts refusing, and refusals show up in the stats.
    let mut db = Planet::builder()
        .protocol(Protocol::Fast)
        .seed(6)
        .admission(AdmissionPolicy {
            min_likelihood: 0.5,
            max_inflight: 10_000,
        })
        .build();
    for round in 0..60u64 {
        for site in 0..5usize {
            let txn = PlanetTxn::builder().set("ultra-hot", round as i64).build();
            let at = SimTime::from_millis(1 + round * 150);
            db.submit_at(site, at, txn);
        }
    }
    db.run_for(SimDuration::from_secs(60));
    let refused: u64 = (0..5).map(|s| db.admission_stats(s).1).sum();
    assert!(
        refused > 20,
        "admission control must kick in, refused only {refused}"
    );
    assert_eq!(db.metrics().counter_value("planet.rejected"), refused);
}

#[test]
fn rejected_transactions_fail_fast() {
    let mut db = Planet::builder()
        .protocol(Protocol::Fast)
        .seed(7)
        .admission(AdmissionPolicy {
            min_likelihood: 0.0,
            max_inflight: 0,
        })
        .build();
    let txn = PlanetTxn::builder().set("x", 1i64).build();
    let h = db.submit_at(0, SimTime::from_millis(1), txn);
    db.run_for(SimDuration::from_secs(1));
    let r = db.record(h).unwrap();
    assert_eq!(r.outcome, FinalOutcome::Rejected);
    assert_eq!(r.latency, SimDuration::ZERO, "rejection costs no WAN time");
}

#[test]
fn read_only_transactions_bypass_admission_likelihood() {
    let mut db = Planet::builder()
        .protocol(Protocol::Fast)
        .seed(8)
        .admission(AdmissionPolicy {
            min_likelihood: 0.99,
            max_inflight: 100,
        })
        .build();
    let txn = PlanetTxn::builder().read("anything").build();
    let h = db.submit_at(0, SimTime::from_millis(1), txn);
    db.run_for(SimDuration::from_secs(1));
    assert_eq!(db.record(h).unwrap().outcome, FinalOutcome::Committed);
}

#[test]
fn predictions_are_calibrated_on_mixed_workload() {
    // The headline property (paper Fig. "prediction quality"): among
    // transactions whose mid-flight prediction was p, about p of them
    // commit. Build a mixed workload (uncontended + hot keys), collect the
    // first prediction of each transaction, and check the Brier skill.
    let mut db = Planet::builder().protocol(Protocol::Fast).seed(9).build();
    for site in 0..5 {
        warm(&mut db, site, 20);
    }
    let mut handles = Vec::new();
    for round in 0..80u64 {
        for site in 0..5usize {
            let hot = round % 2 == 0;
            let key = if hot {
                "hot".to_string()
            } else {
                format!("cold:{site}:{round}")
            };
            let txn = PlanetTxn::builder().set(key, round as i64).build();
            let at = db.now() + SimDuration::from_millis(10 + round * 250);
            handles.push(db.submit_at(site, at, txn));
        }
    }
    db.run_for(SimDuration::from_secs(200));

    let mut cal = planet_predict::Calibration::new(10);
    for h in &handles {
        let r = db.record(*h).expect("finished");
        // Prediction at the moment proposals went out (pre-vote).
        if let Some(p) = r
            .predictions
            .iter()
            .find(|p| p.votes_seen == 0 && p.elapsed_us > 0)
        {
            cal.record(p.likelihood, r.outcome.is_commit());
        }
    }
    assert!(
        cal.count() > 300,
        "need most txns measured, got {}",
        cal.count()
    );
    let base = cal.base_rate().unwrap();
    assert!(
        base > 0.2 && base < 0.98,
        "workload must mix outcomes, base {base}"
    );
    let skill = cal.skill().unwrap();
    assert!(
        skill > 0.15,
        "prediction must beat the base-rate guesser, skill {skill}"
    );
    let ece = cal.ece().unwrap();
    assert!(ece < 0.25, "expected calibration error too high: {ece}");
}

#[test]
fn runs_replay_identically() {
    let run = |seed: u64| {
        let mut db = Planet::builder()
            .protocol(Protocol::Fast)
            .seed(seed)
            .build();
        for i in 0..20u64 {
            let txn = PlanetTxn::builder()
                .set(format!("k{}", i % 3), i as i64)
                .build();
            db.submit_at((i % 5) as usize, SimTime::from_millis(1 + i * 97), txn);
        }
        db.run_for(SimDuration::from_secs(30));
        let commits = db.metrics().counter_value("planet.committed");
        let aborts = db.metrics().counter_value("planet.aborted");
        (commits, aborts)
    };
    assert_eq!(run(77), run(77));
}

#[test]
fn works_on_every_protocol() {
    for protocol in [Protocol::Fast, Protocol::Classic, Protocol::TwoPc] {
        let mut db = Planet::builder().protocol(protocol).seed(10).build();
        let txn = PlanetTxn::builder()
            .read("r")
            .set("w1", 1i64)
            .add("w2", 5)
            .build();
        let h = db.submit_at(2, SimTime::from_millis(1), txn);
        db.run_for(SimDuration::from_secs(5));
        let r = db.record(h).unwrap();
        assert_eq!(r.outcome, FinalOutcome::Committed, "{protocol}");
        assert_eq!(
            db.read_local(2, &Key::new("w2")),
            Value::Int(5),
            "{protocol}"
        );
    }
}
