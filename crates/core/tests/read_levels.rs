//! Tests for read levels: local (fast, possibly stale) versus quorum
//! (one WAN round trip, freshest-of-majority), and the read results exposed
//! in transaction records.

use planet_core::{FinalOutcome, Key, Planet, PlanetTxn, Protocol, SimDuration, Value};

#[test]
fn records_expose_read_results() {
    let mut db = Planet::builder().protocol(Protocol::Fast).seed(1).build();
    let w = db.submit(0, PlanetTxn::builder().set("answer", 42i64).build());
    db.run_for(SimDuration::from_secs(3));
    assert!(db.record(w).unwrap().outcome.is_commit());

    let r = db.submit(
        0,
        PlanetTxn::builder().read("answer").read("absent").build(),
    );
    db.run_for(SimDuration::from_secs(1));
    let record = db.record(r).unwrap();
    assert_eq!(record.outcome, FinalOutcome::Committed);
    assert_eq!(record.reads.len(), 2);
    let answer = record
        .reads
        .iter()
        .find(|(k, _, _)| k.as_str() == "answer")
        .unwrap();
    assert_eq!(answer.1, Value::Int(42));
    assert_eq!(answer.2, 1, "first committed version");
    let absent = record
        .reads
        .iter()
        .find(|(k, _, _)| k.as_str() == "absent")
        .unwrap();
    assert_eq!(absent.1, Value::None);
    assert_eq!(absent.2, 0);
}

#[test]
fn quorum_reads_cost_a_wan_round_trip() {
    let mut db = Planet::builder().protocol(Protocol::Fast).seed(2).build();
    let local = db.submit(0, PlanetTxn::builder().read("k").build());
    db.run_for(SimDuration::from_secs(2));
    let quorum = db.submit(0, PlanetTxn::builder().read("k").quorum_reads().build());
    db.run_for(SimDuration::from_secs(2));

    let local_lat = db.record(local).unwrap().latency;
    let quorum_lat = db.record(quorum).unwrap().latency;
    assert!(
        local_lat < SimDuration::from_millis(5),
        "local read must stay intra-site: {local_lat}"
    );
    // The majority (3rd of 5) response from us-east arrives at ~us-west or
    // eu-west RTT (70–80ms).
    assert!(
        quorum_lat > SimDuration::from_millis(50) && quorum_lat < SimDuration::from_millis(150),
        "quorum read should cost ~1 regional WAN RTT: {quorum_lat}"
    );
}

#[test]
fn quorum_reads_see_past_a_stale_replica() {
    let mut db = Planet::builder().protocol(Protocol::Fast).seed(3).build();
    // Establish version 1 everywhere.
    let w1 = db.submit(0, PlanetTxn::builder().set("fresh", 1i64).build());
    db.run_for(SimDuration::from_secs(3));
    assert!(db.record(w1).unwrap().outcome.is_commit());

    // Crash ap-southeast, commit version 2 without it, recover it. Its WAL
    // replay restores version 1 only — it is now stale until the next write.
    db.crash_site_at(4, db.now());
    let w2 = db.submit(0, PlanetTxn::builder().set("fresh", 2i64).build());
    db.run_for(SimDuration::from_secs(3));
    assert!(db.record(w2).unwrap().outcome.is_commit());
    db.recover_site_at(4, db.now());
    db.run_for(SimDuration::from_secs(1));

    // Local read at the recovered site: stale.
    assert_eq!(db.read_local(4, &Key::new("fresh")), Value::Int(1));
    let local = db.submit(4, PlanetTxn::builder().read("fresh").build());
    db.run_for(SimDuration::from_secs(1));
    assert_eq!(
        db.record(local).unwrap().reads[0].1,
        Value::Int(1),
        "local read is stale"
    );

    // Quorum read from the same site: the majority includes fresh replicas.
    let quorum = db.submit(4, PlanetTxn::builder().read("fresh").quorum_reads().build());
    db.run_for(SimDuration::from_secs(2));
    let record = db.record(quorum).unwrap();
    assert_eq!(
        record.reads[0].1,
        Value::Int(2),
        "quorum read must see version 2"
    );
    assert_eq!(record.reads[0].2, 2);
}

#[test]
fn quorum_read_versions_feed_writes() {
    // A physical write based on a quorum read must carry the fresh version,
    // so it does not abort with a stale-version rejection at up-to-date
    // replicas.
    let mut db = Planet::builder()
        .protocol(Protocol::Classic)
        .seed(4)
        .build();
    let w1 = db.submit(0, PlanetTxn::builder().set("base", 1i64).build());
    db.run_for(SimDuration::from_secs(3));
    assert!(db.record(w1).unwrap().outcome.is_commit());

    let w2 = db.submit(
        2,
        PlanetTxn::builder()
            .read("base")
            .set("base", 2i64)
            .quorum_reads()
            .build(),
    );
    db.run_for(SimDuration::from_secs(3));
    assert_eq!(db.record(w2).unwrap().outcome, FinalOutcome::Committed);
    assert_eq!(db.read_local(0, &Key::new("base")), Value::Int(2));
}
