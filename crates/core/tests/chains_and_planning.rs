//! Tests for the programming-model extensions: chained speculative
//! transactions (the paper's workflow use case) and deadline planning.

use planet_core::{ChainTrigger, FinalOutcome, Planet, PlanetTxn, Protocol, SimDuration, SimTime};

fn warm(db: &mut Planet, site: usize, n: u64) {
    let base = db.now();
    for i in 0..n {
        let txn = PlanetTxn::builder()
            .set(format!("warm:{site}:{i}"), i as i64)
            .build();
        db.submit_at(site, base + SimDuration::from_millis(1 + i * 400), txn);
    }
    db.run_for(SimDuration::from_secs(n / 2 + 5));
}

#[test]
fn speculative_chain_launches_before_predecessor_commits() {
    let mut db = Planet::builder().protocol(Protocol::Fast).seed(1).build();
    warm(&mut db, 0, 25);

    let first = db.submit(
        0,
        PlanetTxn::builder()
            .set("step1", 1i64)
            .speculate_at(0.9)
            .build(),
    );
    let second = db.submit_after(
        first,
        ChainTrigger::Speculative,
        PlanetTxn::builder().set("step2", 2i64).build(),
    );
    db.run_for(SimDuration::from_secs(5));

    let r1 = db.record(first).expect("first finished");
    let r2 = db.record(second).expect("second finished");
    assert_eq!(r1.outcome, FinalOutcome::Committed);
    assert_eq!(r2.outcome, FinalOutcome::Committed);
    // The chain launched at speculation time, so the two WAN rounds overlap:
    // the pair finishes well before two sequential commits (~2 × 170ms).
    let spec_at = r1.speculated_at.expect("first speculated");
    let pair_span = r2.submitted_at + r2.latency - r1.submitted_at;
    assert!(
        r2.submitted_at.since(r1.submitted_at) <= spec_at + SimDuration::from_millis(2),
        "second must launch at ~speculation time"
    );
    assert!(
        pair_span < SimDuration::from_millis(300),
        "overlapped chain took {pair_span}, sequential would be ~350ms+"
    );
}

#[test]
fn commit_chain_waits_for_durability() {
    let mut db = Planet::builder().protocol(Protocol::Fast).seed(2).build();
    warm(&mut db, 0, 25);
    let first = db.submit(
        0,
        PlanetTxn::builder()
            .set("c1", 1i64)
            .speculate_at(0.9)
            .build(),
    );
    let second = db.submit_after(
        first,
        ChainTrigger::Commit,
        PlanetTxn::builder().set("c2", 2i64).build(),
    );
    db.run_for(SimDuration::from_secs(5));
    let r1 = db.record(first).unwrap();
    let r2 = db.record(second).unwrap();
    assert!(r2.outcome.is_commit());
    // Launched only at the durable commit, not at speculation.
    let launch_gap = r2.submitted_at.since(r1.submitted_at);
    assert!(
        launch_gap >= r1.latency,
        "commit-triggered chain launched at {launch_gap}, before the {} commit",
        r1.latency
    );
}

#[test]
fn failed_predecessor_cancels_the_chain() {
    let mut db = Planet::builder().protocol(Protocol::Fast).seed(3).build();
    // A decrement below the floor on an unseeded key must abort.
    let doomed = db.submit(
        0,
        PlanetTxn::builder()
            .add_with_floor("empty-stock", -5, 0)
            .build(),
    );
    let chained = db.submit_after(
        doomed,
        ChainTrigger::Commit,
        PlanetTxn::builder().set("never", 1i64).build(),
    );
    // And a third chained on the second: cancellation must cascade.
    let third = db.submit_after(
        chained,
        ChainTrigger::Speculative,
        PlanetTxn::builder().set("never2", 1i64).build(),
    );
    db.run_for(SimDuration::from_secs(5));
    assert_eq!(db.record(doomed).unwrap().outcome, FinalOutcome::Aborted);
    assert_eq!(db.record(chained).unwrap().outcome, FinalOutcome::Cancelled);
    assert_eq!(db.record(third).unwrap().outcome, FinalOutcome::Cancelled);
    assert_eq!(db.metrics().counter_value("planet.cancelled"), 2);
    // The cancelled writes never reached storage.
    assert_eq!(
        db.read_local(0, &planet_core::Key::new("never")),
        planet_core::Value::None
    );
}

#[test]
fn chaining_after_terminal_predecessor_resolves_immediately() {
    let mut db = Planet::builder().protocol(Protocol::Fast).seed(4).build();
    let committed = db.submit_at(
        0,
        SimTime::from_millis(1),
        PlanetTxn::builder().set("done", 1i64).build(),
    );
    db.run_for(SimDuration::from_secs(3));
    assert!(db.record(committed).unwrap().outcome.is_commit());

    // Chain after an already-committed txn → submits now.
    let late = db.submit_after(
        committed,
        ChainTrigger::Commit,
        PlanetTxn::builder().set("late", 2i64).build(),
    );
    // Chain after an already-failed txn → cancelled now.
    let failed = db.submit(
        0,
        PlanetTxn::builder().add_with_floor("none", -1, 0).build(),
    );
    db.run_for(SimDuration::from_secs(3));
    assert!(!db.record(failed).unwrap().outcome.is_commit());
    let dead = db.submit_after(
        failed,
        ChainTrigger::Commit,
        PlanetTxn::builder().set("dead", 3i64).build(),
    );
    db.run_for(SimDuration::from_secs(3));
    assert_eq!(db.record(late).unwrap().outcome, FinalOutcome::Committed);
    assert_eq!(db.record(dead).unwrap().outcome, FinalOutcome::Cancelled);
}

#[test]
fn suggest_deadline_matches_measured_latency_distribution() {
    let mut db = Planet::builder().protocol(Protocol::Fast).seed(5).build();
    warm(&mut db, 0, 40);

    let txn = PlanetTxn::builder().set("plan:target", 1i64).build();
    let d50 = db.suggest_deadline(0, &txn, 0.50).expect("p50 deadline");
    let d95 = db.suggest_deadline(0, &txn, 0.95).expect("p95 deadline");
    assert!(d50 <= d95, "{d50} > {d95}");
    // The suggested deadlines must bracket the real commit-latency band
    // from us-east (~150–210 ms).
    assert!(
        (SimDuration::from_millis(120)..=SimDuration::from_millis(260)).contains(&d95),
        "d95 = {d95}"
    );

    // Empirical check: run transactions with the d95 deadline; ≥ ~90%
    // should finish inside it.
    let base = db.now();
    let handles: Vec<_> = (0..40u64)
        .map(|i| {
            let txn = PlanetTxn::builder()
                .set(format!("plan:{i}"), i as i64)
                .build();
            db.submit_at(0, base + SimDuration::from_millis(1 + i * 400), txn)
        })
        .collect();
    db.run_for(SimDuration::from_secs(30));
    let within = handles
        .iter()
        .filter(|h| {
            let r = db.record(**h).unwrap();
            r.outcome.is_commit() && r.latency <= d95
        })
        .count();
    assert!(
        within >= 34,
        "expected ≥85% within the d95 deadline, got {within}/40"
    );
}

#[test]
fn suggest_deadline_refuses_hopeless_keys() {
    let mut db = Planet::builder().protocol(Protocol::Fast).seed(6).build();
    // Teach the model that "cursed" always fails: hammer it with conflicting
    // writes from all sites.
    let base = db.now();
    for round in 0..30u64 {
        for site in 0..5usize {
            let txn = PlanetTxn::builder().set("cursed", round as i64).build();
            db.submit_at(site, base + SimDuration::from_millis(1 + round * 120), txn);
        }
    }
    db.run_for(SimDuration::from_secs(30));

    let txn = PlanetTxn::builder().set("cursed", 99i64).build();
    // From some site the learned commit rate is far below 0.99.
    let suggestion = db.suggest_deadline(0, &txn, 0.99);
    assert!(
        suggestion.is_none(),
        "no deadline can make a hopeless key 99% likely, got {suggestion:?}"
    );
    // A fresh key is still plannable.
    let fresh = PlanetTxn::builder().set("fresh-key", 1i64).build();
    assert!(db.suggest_deadline(0, &fresh, 0.9).is_some());
}

#[test]
fn compensation_fires_on_apology() {
    // Force a mispredicted speculation: an optimistic model plus racing
    // physical writes. The loser that speculated must auto-submit its
    // compensation.
    let mut db = Planet::builder().protocol(Protocol::Fast).seed(1).build();
    warm(&mut db, 0, 15);
    warm(&mut db, 2, 15);

    let mut winners = 0;
    let mut compensations_seen = 0;
    for round in 0..12u64 {
        let comp = PlanetTxn::builder()
            .add("refund-ledger".to_string(), 1)
            .build();
        let a = PlanetTxn::builder()
            .set("race-key", round as i64)
            .speculate_at(0.5)
            .compensate_with(comp)
            .build();
        let b = PlanetTxn::builder()
            .set("race-key", 1000 + round as i64)
            .build();
        let at = db.now() + SimDuration::from_millis(5);
        let ha = db.submit_at(0, at, a);
        let _hb = db.submit_at(2, at, b);
        db.run_for(SimDuration::from_secs(4));
        let ra = db.record(ha).unwrap();
        if ra.outcome.is_commit() {
            winners += 1;
        } else if ra.speculated_at.is_some() {
            compensations_seen += 1;
        }
    }
    db.run_for(SimDuration::from_secs(5));
    assert!(winners < 12, "some races must be lost for the test to bite");
    let ledger = db.read_local(0, &planet_core::Key::new("refund-ledger"));
    let metric = db.metrics().counter_value("planet.compensations");
    assert_eq!(
        metric as usize, compensations_seen,
        "one compensation per apology"
    );
    assert!(
        compensations_seen > 0,
        "expected at least one apology across 12 races"
    );
    assert_eq!(
        ledger,
        planet_core::Value::Int(compensations_seen as i64),
        "every compensation must have committed to the ledger"
    );
}
