//! The PLANET client actor: the application-side runtime.
//!
//! One client actor runs at each site, colocated with its coordinator. It
//! owns the site's [`LikelihoodModel`] and [`AdmissionController`] and, for
//! every transaction it manages:
//!
//! * decides admission at submission time,
//! * observes the coordinator's raw progress stream (votes, key
//!   resolutions), feeding every vote into the likelihood model,
//! * recomputes the commit likelihood after each event and drives the
//!   application's callbacks — progress, speculative commit, deadline
//!   return, final outcome, apology,
//! * records a full prediction trace per transaction for the calibration
//!   experiments.

use std::collections::HashMap;

use planet_mdcc::{ClusterConfig, Msg, Outcome, ProgressStage, Protocol, ReadLevel, TxnSpec};
use planet_plan::{PlanId, TxnProgram};
use planet_predict::{KeyState, LikelihoodModel, TxnSnapshot};
use planet_sim::{Actor, ActorId, Context, DetRng, SimDuration, SimTime};
use planet_storage::{Key, TxnId, Value, VersionNo};

use crate::admission::{AdmissionController, AdmissionPolicy};
use crate::txn::{ChainTrigger, FinalOutcome, PlanetTxn, Stage, TxnEvent, TxnHandle};

/// Timer kind: fire a staged submission.
pub(crate) const TIMER_SUBMIT: u32 = 101;
/// Timer kind: a transaction's application deadline.
pub(crate) const TIMER_DEADLINE: u32 = 102;
/// Timer kind: next workload arrival.
pub(crate) const TIMER_ARRIVAL: u32 = 103;
/// Timer kind: cancel a staged (chained) transaction.
pub(crate) const TIMER_CANCEL: u32 = 104;

/// What happened to a chain predecessor, for successor dispatch.
#[derive(Debug, Clone, Copy)]
enum ChainOutcome {
    Speculated,
    Committed,
    Failed,
}

/// How a [`TxnSource`] is paced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SourceMode {
    /// Open loop: arrivals follow the gaps the source returns, independent
    /// of completions (models external demand, e.g. web traffic).
    Open,
    /// Closed loop: `concurrency` virtual users, each submitting its next
    /// transaction only after the previous one finishes plus the returned
    /// gap (think time). Models interactive sessions / benchmark drivers.
    Closed {
        /// Number of virtual users.
        concurrency: usize,
    },
}

/// A source of transactions attached to a client (implemented by
/// `planet-workload` generators).
pub trait TxnSource: Send + 'static {
    /// Produce the next transaction and a gap. Open loop: the delay until
    /// the next arrival. Closed loop: the think time after this
    /// transaction finishes. Returning `None` ends the stream (for that
    /// virtual user, in closed loop).
    fn next_txn(&mut self, now: SimTime, rng: &mut DetRng) -> Option<(PlanetTxn, SimDuration)>;

    /// The pacing mode; defaults to open loop.
    fn mode(&self) -> SourceMode {
        SourceMode::Open
    }
}

/// One point of the per-transaction prediction trace.
#[derive(Debug, Clone, Copy)]
pub struct PredictionPoint {
    /// Microseconds since submission.
    pub elapsed_us: u64,
    /// Predicted commit likelihood at that moment.
    pub likelihood: f64,
    /// Votes that had arrived when the prediction was made.
    pub votes_seen: usize,
}

/// The harvested record of one finished transaction.
#[derive(Debug, Clone)]
pub struct TxnRecord {
    /// The transaction.
    pub handle: TxnHandle,
    /// Terminal state.
    pub outcome: FinalOutcome,
    /// Submission time.
    pub submitted_at: SimTime,
    /// Submission-to-decision latency.
    pub latency: SimDuration,
    /// Number of keys written.
    pub write_keys: usize,
    /// Elapsed time at which the speculative commit fired, if it did.
    pub speculated_at: Option<SimDuration>,
    /// Likelihood reported at the application deadline, if one fired.
    pub deadline_likelihood: Option<f64>,
    /// The full prediction trace (one point per observed event).
    pub predictions: Vec<PredictionPoint>,
    /// The transaction's read results: `(key, value, version)` per touched
    /// key, as served by the configured read level.
    pub reads: Vec<(Key, Value, VersionNo)>,
}

impl TxnRecord {
    /// True if the transaction was speculatively reported committed but
    /// finally aborted (an apology).
    pub fn apologised(&self) -> bool {
        self.speculated_at.is_some() && !self.outcome.is_commit()
    }
}

struct LiveTxn {
    txn: PlanetTxn,
    handle: TxnHandle,
    submitted_at: SimTime,
    proposals_at: Option<SimTime>,
    keys: Vec<(Key, KeyState)>,
    speculated_at: Option<SimDuration>,
    deadline_likelihood: Option<f64>,
    predictions: Vec<PredictionPoint>,
    votes_seen: usize,
    reads: Vec<(Key, Value, VersionNo)>,
}

/// The per-site PLANET client actor.
pub struct ClientActor {
    coordinator: ActorId,
    config: ClusterConfig,
    site: u8,
    model: LikelihoodModel,
    admission: AdmissionController,
    staged: HashMap<u64, PlanetTxn>,
    live: HashMap<u64, LiveTxn>,
    records: Vec<TxnRecord>,
    next_tag: u64,
    source: Option<Box<dyn TxnSource>>,
    /// True once the arrival chain is running (guards duplicate kick-offs).
    arrivals_armed: bool,
    /// Chained submissions: (predecessor tag, trigger, staged successor tag).
    chains: Vec<(u64, ChainTrigger, u64)>,
    /// Closed-loop bookkeeping: think time per in-flight source transaction.
    source_think: HashMap<u64, SimDuration>,
    /// Programs installed for the compiled submission path, mirrored here so
    /// the client can instantiate each execution locally (the prediction and
    /// admission machinery needs the concrete keys the coordinator will
    /// touch).
    programs: HashMap<PlanId, TxnProgram>,
}

impl ClientActor {
    /// Build a client for `site` submitting to `coordinator`.
    pub fn new(
        config: ClusterConfig,
        coordinator: ActorId,
        site: u8,
        admission: Option<AdmissionPolicy>,
    ) -> Self {
        let n = config.num_sites;
        ClientActor {
            coordinator,
            config,
            site,
            model: LikelihoodModel::new(n, 512),
            admission: AdmissionController::new(admission),
            staged: HashMap::new(),
            live: HashMap::new(),
            records: Vec::new(),
            next_tag: 0,
            source: None,
            arrivals_armed: false,
            chains: Vec::new(),
            source_think: HashMap::new(),
            programs: HashMap::new(),
        }
    }

    /// Mirror an installed program so plan-handle submissions can be
    /// instantiated locally. The facade installs the same program on the
    /// site's coordinator.
    pub fn install_program(&mut self, plan: PlanId, program: TxnProgram) {
        self.programs.insert(plan, program);
    }

    /// Attach a workload source; arrivals start when the simulation starts.
    pub fn attach_source(&mut self, source: Box<dyn TxnSource>) {
        self.source = Some(source);
    }

    /// Stage a transaction for submission; returns its handle. The facade
    /// pairs this with an injected `TIMER_SUBMIT` message.
    pub fn stage(&mut self, txn: PlanetTxn) -> TxnHandle {
        let tag = self.next_tag;
        self.next_tag += 1;
        self.staged.insert(tag, txn);
        TxnHandle {
            site: self.site,
            tag,
        }
    }

    /// Stage a transaction to be submitted automatically when its
    /// predecessor reaches `trigger` (and cancelled if the predecessor
    /// fails). Returns the successor's handle.
    pub fn stage_chained(
        &mut self,
        txn: PlanetTxn,
        after_tag: u64,
        trigger: ChainTrigger,
    ) -> TxnHandle {
        let handle = self.stage(txn);
        self.chains.push((after_tag, trigger, handle.tag));
        handle
    }

    /// Fire or cancel chain successors of `tag`. `speculative_only` limits
    /// launching to `ChainTrigger::Speculative` links (used when the
    /// predecessor has speculated but not yet committed).
    fn process_chains(&mut self, tag: u64, outcome: ChainOutcome, ctx: &mut Context<'_, Msg>) {
        let links: Vec<(ChainTrigger, u64)> = self
            .chains
            .iter()
            .filter(|(after, _, _)| *after == tag)
            .map(|(_, t, n)| (*t, *n))
            .collect();
        for (trigger, next) in links {
            let launch = match (outcome, trigger) {
                (ChainOutcome::Speculated, ChainTrigger::Speculative) => Some(true),
                (ChainOutcome::Speculated, ChainTrigger::Commit) => None, // wait
                (ChainOutcome::Committed, _) => Some(true),
                (ChainOutcome::Failed, _) => Some(false),
            };
            match launch {
                None => {}
                Some(true) => {
                    self.chains.retain(|(_, _, n)| *n != next);
                    self.submit_staged(next, ctx);
                }
                Some(false) => {
                    self.chains.retain(|(_, _, n)| *n != next);
                    self.cancel_staged(next, ctx);
                }
            }
        }
    }

    /// Cancel a staged (never submitted) transaction and, recursively, its
    /// own successors.
    fn cancel_staged(&mut self, tag: u64, ctx: &mut Context<'_, Msg>) {
        let Some(mut txn) = self.staged.remove(&tag) else {
            return;
        };
        let handle = TxnHandle {
            site: self.site,
            tag,
        };
        txn.fire(&TxnEvent::Final {
            handle,
            outcome: FinalOutcome::Cancelled,
            latency: SimDuration::ZERO,
            decided_at: ctx.now(),
        });
        ctx.metrics().counter("planet.cancelled").inc();
        self.records.push(TxnRecord {
            handle,
            outcome: FinalOutcome::Cancelled,
            submitted_at: ctx.now(),
            latency: SimDuration::ZERO,
            write_keys: txn.spec.writes.len(),
            speculated_at: None,
            deadline_likelihood: None,
            predictions: Vec::new(),
            reads: Vec::new(),
        });
        self.process_chains(tag, ChainOutcome::Failed, ctx);
    }

    /// Finished-transaction records, in completion order.
    pub fn records(&self) -> &[TxnRecord] {
        &self.records
    }

    /// The record for a specific handle, if finished.
    pub fn record(&self, handle: TxnHandle) -> Option<&TxnRecord> {
        self.records.iter().find(|r| r.handle == handle)
    }

    /// The site's likelihood model (e.g. for experiment inspection).
    pub fn model(&self) -> &LikelihoodModel {
        &self.model
    }

    /// Mutable model access (diagnostics).
    pub fn model_mut(&mut self) -> &mut LikelihoodModel {
        &mut self.model
    }

    /// Admission statistics `(admitted, refused)`.
    pub fn admission_stats(&self) -> (u64, u64) {
        self.admission.stats()
    }

    /// Transactions currently in flight.
    pub fn inflight(&self) -> usize {
        self.live.len()
    }

    /// Per-key quorum/voter shape under the configured protocol.
    fn key_shape(&self, key: &Key) -> (usize, usize, Vec<u8>) {
        match self.config.protocol {
            Protocol::Fast | Protocol::Classic => {
                let n = self.config.num_sites;
                (self.config.required_quorum(), n, (0..n as u8).collect())
            }
            Protocol::TwoPc => (1, 1, vec![self.config.master_of(key).0]),
        }
    }

    fn submit_staged(&mut self, tag: u64, ctx: &mut Context<'_, Msg>) {
        let Some(txn) = self.staged.remove(&tag) else {
            return;
        };
        self.submit_txn(tag, txn, ctx);
    }

    fn submit_txn(&mut self, tag: u64, mut txn: PlanetTxn, ctx: &mut Context<'_, Msg>) {
        let handle = TxnHandle {
            site: self.site,
            tag,
        };
        // Plan-handle submission: instantiate the program locally so the
        // prediction and admission machinery see the concrete keys this
        // execution touches (the wire still carries only `(plan, params)`).
        if let Some((plan, params)) = &txn.plan {
            match self.programs.get(plan).map(|p| p.instantiate(params)) {
                Some(Ok(inst)) => {
                    txn.spec = TxnSpec {
                        reads: inst.reads,
                        writes: inst.writes,
                        read_level: if inst.quorum_reads {
                            ReadLevel::Quorum
                        } else {
                            ReadLevel::Local
                        },
                    };
                }
                _ => {
                    // Unknown plan or parameters the program cannot accept:
                    // the coordinator would reject this execution anyway, so
                    // refuse it client-side with the admission outcome.
                    txn.fire(&TxnEvent::Final {
                        handle,
                        outcome: FinalOutcome::Rejected,
                        latency: SimDuration::ZERO,
                        decided_at: ctx.now(),
                    });
                    ctx.metrics().counter("planet.bad_plan").inc();
                    self.records.push(TxnRecord {
                        handle,
                        outcome: FinalOutcome::Rejected,
                        submitted_at: ctx.now(),
                        latency: SimDuration::ZERO,
                        write_keys: 0,
                        speculated_at: None,
                        deadline_likelihood: None,
                        predictions: Vec::new(),
                        reads: Vec::new(),
                    });
                    self.process_chains(tag, ChainOutcome::Failed, ctx);
                    self.source_txn_finished(tag, ctx);
                    return;
                }
            }
        }
        let write_keys = txn.spec.writes.len();
        let (quorum, voters, _) = if let Some((key, _)) = txn.spec.writes.first() {
            self.key_shape(key)
        } else {
            (0, 0, Vec::new())
        };
        let write_key_hashes: Vec<u64> = txn
            .spec
            .writes
            .iter()
            .map(|(k, _)| planet_predict::conflict::KeyedConflictModel::key_hash(k.as_str()))
            .collect();

        // Admission decision.
        if self
            .admission
            .admit(
                &self.model,
                &write_key_hashes,
                self.live.len(),
                quorum.max(1),
                voters.max(1),
            )
            .is_err()
        {
            let event = TxnEvent::Final {
                handle,
                outcome: FinalOutcome::Rejected,
                latency: SimDuration::ZERO,
                decided_at: ctx.now(),
            };
            txn.fire(&event);
            ctx.metrics().counter("planet.rejected").inc();
            self.records.push(TxnRecord {
                handle,
                outcome: FinalOutcome::Rejected,
                submitted_at: ctx.now(),
                latency: SimDuration::ZERO,
                write_keys,
                speculated_at: None,
                deadline_likelihood: None,
                predictions: Vec::new(),
                reads: Vec::new(),
            });
            self.process_chains(tag, ChainOutcome::Failed, ctx);
            self.source_txn_finished(tag, ctx);
            return;
        }

        // Initialise per-key vote tracking.
        let keys: Vec<(Key, KeyState)> = txn
            .spec
            .writes
            .iter()
            .map(|(key, _)| {
                let (quorum, voters, outstanding) = self.key_shape(key);
                (
                    key.clone(),
                    KeyState {
                        accepts: 0,
                        rejects: 0,
                        outstanding,
                        pending_at_read: 0,
                        key_hash: planet_predict::conflict::KeyedConflictModel::key_hash(
                            key.as_str(),
                        ),
                        quorum,
                        voters,
                    },
                )
            })
            .collect();

        if let Some(deadline) = txn.deadline {
            ctx.schedule(
                deadline,
                Msg::ClientTimer {
                    kind: TIMER_DEADLINE,
                    tag,
                },
            );
        }
        let spec = txn.spec.clone();
        let plan = txn.plan.clone();
        self.live.insert(
            tag,
            LiveTxn {
                txn,
                handle,
                submitted_at: ctx.now(),
                proposals_at: None,
                keys,
                speculated_at: None,
                deadline_likelihood: None,
                predictions: Vec::new(),
                votes_seen: 0,
                reads: Vec::new(),
            },
        );
        let me = ctx.self_id();
        match plan {
            Some((plan, params)) => ctx.send(
                self.coordinator,
                Msg::SubmitPlan {
                    plan,
                    params,
                    reply_to: me,
                    tag,
                },
            ),
            None => ctx.send(
                self.coordinator,
                Msg::Submit {
                    spec,
                    reply_to: me,
                    tag,
                },
            ),
        }
    }

    /// Current likelihood for a live transaction (budget-aware).
    fn likelihood_of(model: &mut LikelihoodModel, live: &LiveTxn, now: SimTime) -> f64 {
        let elapsed_proposal = live.proposals_at.map_or(0, |at| now.since(at).as_micros());
        let snap = TxnSnapshot {
            keys: live.keys.iter().map(|(_, ks)| ks.clone()).collect(),
            elapsed_us: elapsed_proposal,
        };
        match live.txn.deadline {
            Some(d) => {
                let since_submit = now.since(live.submitted_at);
                let remaining = d.saturating_sub(since_submit).as_micros();
                if remaining == 0 {
                    // Deadline passed: the app cares about eventual commit.
                    model.likelihood_eventual(&snap)
                } else {
                    model.likelihood(&snap, remaining)
                }
            }
            None => model.likelihood_eventual(&snap),
        }
    }

    /// Recompute likelihood, record the prediction point, emit a progress
    /// event, and fire the speculative event if the threshold was crossed.
    fn on_progress_point(&mut self, tag: u64, stage: Stage, ctx: &mut Context<'_, Msg>) {
        let now = ctx.now();
        let Some(live) = self.live.get_mut(&tag) else {
            return;
        };
        let likelihood = Self::likelihood_of(&mut self.model, live, now);
        let elapsed = now.since(live.submitted_at);
        live.predictions.push(PredictionPoint {
            elapsed_us: elapsed.as_micros(),
            likelihood,
            votes_seen: live.votes_seen,
        });
        let handle = live.handle;
        live.txn.fire(&TxnEvent::Progress {
            handle,
            stage,
            likelihood,
            elapsed,
        });
        let mut speculated_now = false;
        if let Some(threshold) = live.txn.speculation_threshold {
            if live.speculated_at.is_none() && likelihood >= threshold {
                live.speculated_at = Some(elapsed);
                live.txn.fire(&TxnEvent::Speculative {
                    handle,
                    likelihood,
                    elapsed,
                });
                ctx.metrics().counter("planet.speculated").inc();
                ctx.metrics()
                    .histogram("planet.speculative_latency")
                    .record(elapsed.as_micros());
                speculated_now = true;
            }
        }
        if speculated_now {
            self.process_chains(tag, ChainOutcome::Speculated, ctx);
        }
    }

    fn handle_progress(
        &mut self,
        tag: u64,
        _txn: TxnId,
        stage: ProgressStage,
        ctx: &mut Context<'_, Msg>,
    ) {
        match stage {
            ProgressStage::Started => self.on_progress_point(tag, Stage::Reading, ctx),
            ProgressStage::ReadsDone { reads } => {
                if let Some(live) = self.live.get_mut(&tag) {
                    live.proposals_at = Some(ctx.now());
                    for read in &reads {
                        self.admission.observe_pending(read.pending);
                        for (key, ks) in &mut live.keys {
                            if key == &read.key {
                                ks.pending_at_read = read.pending;
                            }
                        }
                        live.reads
                            .push((read.key.clone(), read.value.clone(), read.version));
                    }
                }
                self.on_progress_point(tag, Stage::Voting, ctx);
            }
            ProgressStage::Vote {
                key,
                site,
                accept,
                elapsed_us,
                ..
            } => {
                if !self.live.contains_key(&tag) {
                    // A late vote for a finished transaction: its conflict
                    // context is gone, but the response time still teaches
                    // the path model (this is the only way the slowest
                    // replica's latency is ever observed).
                    if elapsed_us > 0 {
                        self.model.observe_latency(site.0, elapsed_us);
                    }
                    return;
                }
                if let Some(live) = self.live.get_mut(&tag) {
                    live.votes_seen += 1;
                    let mut pending_hint = 0;
                    let mut key_hash = 0;
                    for (k, ks) in &mut live.keys {
                        if k == &key {
                            ks.outstanding.retain(|&s| s != site.0);
                            if accept {
                                ks.accepts += 1;
                            } else {
                                ks.rejects += 1;
                            }
                            pending_hint = ks.pending_at_read;
                            key_hash = ks.key_hash;
                        }
                    }
                    self.model
                        .observe_vote(site.0, elapsed_us, accept, pending_hint, key_hash);
                }
                self.on_progress_point(tag, Stage::VoteArrived, ctx);
            }
            ProgressStage::KeyFallback { key } => {
                // The fast round collided; the key is being retried through
                // its master. Reset the vote tally for the new round (a
                // classic-majority quorum this time).
                if let Some(live) = self.live.get_mut(&tag) {
                    let quorum = self.config.classic_quorum();
                    let voters = self.config.num_sites;
                    for (k, ks) in &mut live.keys {
                        if k == &key {
                            ks.accepts = 0;
                            ks.rejects = 0;
                            ks.outstanding = (0..voters as u8).collect();
                            ks.quorum = quorum;
                            ks.voters = voters;
                        }
                    }
                }
                self.on_progress_point(tag, Stage::Voting, ctx);
            }
            ProgressStage::KeyResolved { key, accepted } => {
                // Transaction-level learning: did this key's option reach its
                // quorum? This is the statistic the pre-vote conflict term
                // and admission control are built on.
                let key_hash = planet_predict::conflict::KeyedConflictModel::key_hash(key.as_str());
                self.model.observe_key_resolution(key_hash, accepted);
                self.on_progress_point(tag, Stage::KeyResolved, ctx);
            }
        }
    }

    fn handle_done(&mut self, tag: u64, outcome: Outcome, ctx: &mut Context<'_, Msg>) {
        let Some(mut live) = self.live.remove(&tag) else {
            return;
        };
        let now = ctx.now();
        let latency = now.since(live.submitted_at);
        let final_outcome = match outcome {
            Outcome::Committed => FinalOutcome::Committed,
            Outcome::Aborted => FinalOutcome::Aborted,
            Outcome::TimedOut => FinalOutcome::TimedOut,
        };
        let handle = live.handle;
        live.txn.fire(&TxnEvent::Final {
            handle,
            outcome: final_outcome,
            latency,
            decided_at: now,
        });
        if live.speculated_at.is_some() && !final_outcome.is_commit() {
            live.txn.fire(&TxnEvent::Apology { handle });
            ctx.metrics().counter("planet.apologies").inc();
            // Guess-and-apologise: launch the attached compensation, if any.
            if let Some(compensation) = live.txn.compensation.take() {
                let comp_tag = self.next_tag;
                self.next_tag += 1;
                let comp_handle = TxnHandle {
                    site: self.site,
                    tag: comp_tag,
                };
                live.txn.fire(&TxnEvent::CompensationSubmitted {
                    handle,
                    compensation: comp_handle,
                });
                ctx.metrics().counter("planet.compensations").inc();
                self.staged.insert(comp_tag, *compensation);
                ctx.schedule(
                    SimDuration::from_micros(1),
                    Msg::ClientTimer {
                        kind: TIMER_SUBMIT,
                        tag: comp_tag,
                    },
                );
            }
        }
        match final_outcome {
            FinalOutcome::Committed => {
                ctx.metrics().counter("planet.committed").inc();
                if !live.keys.is_empty() {
                    ctx.metrics()
                        .histogram("planet.commit_latency")
                        .record(latency.as_micros());
                }
            }
            FinalOutcome::Aborted => ctx.metrics().counter("planet.aborted").inc(),
            FinalOutcome::TimedOut => ctx.metrics().counter("planet.timedout").inc(),
            FinalOutcome::Rejected | FinalOutcome::Cancelled => {}
        }
        self.records.push(TxnRecord {
            handle,
            outcome: final_outcome,
            submitted_at: live.submitted_at,
            latency,
            write_keys: live.keys.len(),
            speculated_at: live.speculated_at,
            deadline_likelihood: live.deadline_likelihood,
            predictions: live.predictions,
            reads: live.reads,
        });
        let chain_outcome = if final_outcome.is_commit() {
            ChainOutcome::Committed
        } else {
            ChainOutcome::Failed
        };
        self.process_chains(tag, chain_outcome, ctx);
        self.source_txn_finished(tag, ctx);
    }

    fn handle_deadline(&mut self, tag: u64, ctx: &mut Context<'_, Msg>) {
        let now = ctx.now();
        let Some(live) = self.live.get_mut(&tag) else {
            return;
        };
        if live.deadline_likelihood.is_some() {
            return;
        }
        let likelihood = Self::likelihood_of(&mut self.model, live, now);
        live.deadline_likelihood = Some(likelihood);
        let handle = live.handle;
        live.txn
            .fire(&TxnEvent::DeadlineExceeded { handle, likelihood });
        ctx.metrics().counter("planet.deadline_exceeded").inc();
    }

    /// Advance the arrival chain. `kickoff` messages (tag 0) only start a
    /// chain if none is running; chain continuations (tag 1) always proceed.
    /// Closed-loop sources start `concurrency` chains at kickoff and advance
    /// each only when its transaction finishes (see `source_txn_finished`).
    fn next_arrival(&mut self, kickoff: bool, ctx: &mut Context<'_, Msg>) {
        if kickoff {
            if self.arrivals_armed {
                return;
            }
            self.arrivals_armed = true;
            if let Some(source) = self.source.as_ref() {
                if let SourceMode::Closed { concurrency } = source.mode() {
                    // Launch every virtual user; each continues on completion.
                    for _ in 0..concurrency {
                        self.issue_from_source(ctx);
                    }
                    return;
                }
            }
        }
        self.issue_from_source(ctx);
    }

    /// Pull one transaction from the source and submit it; in open loop,
    /// also schedule the next arrival.
    fn issue_from_source(&mut self, ctx: &mut Context<'_, Msg>) {
        let Some(source) = self.source.as_mut() else {
            return;
        };
        let mode = source.mode();
        if let Some((txn, gap)) = source.next_txn(ctx.now(), ctx.rng()) {
            let tag = self.next_tag;
            self.next_tag += 1;
            match mode {
                SourceMode::Open => {
                    ctx.schedule(
                        gap,
                        Msg::ClientTimer {
                            kind: TIMER_ARRIVAL,
                            tag: 1,
                        },
                    );
                }
                SourceMode::Closed { .. } => {
                    self.source_think.insert(tag, gap);
                }
            }
            self.submit_txn(tag, txn, ctx);
        }
    }

    /// Closed-loop continuation: a source transaction finished; after its
    /// think time, this virtual user submits the next one.
    fn source_txn_finished(&mut self, tag: u64, ctx: &mut Context<'_, Msg>) {
        if let Some(think) = self.source_think.remove(&tag) {
            ctx.schedule(
                think,
                Msg::ClientTimer {
                    kind: TIMER_ARRIVAL,
                    tag: 1,
                },
            );
        }
    }
}

impl Actor<Msg> for ClientActor {
    fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
        if self.source.is_some() {
            // First arrival fires immediately; the source paces the rest.
            ctx.schedule(
                SimDuration::from_micros(1),
                Msg::ClientTimer {
                    kind: TIMER_ARRIVAL,
                    tag: 0,
                },
            );
        }
    }

    fn on_message(&mut self, _from: ActorId, msg: Msg, ctx: &mut Context<'_, Msg>) {
        match msg {
            Msg::ClientTimer {
                kind: TIMER_SUBMIT,
                tag,
            } => self.submit_staged(tag, ctx),
            Msg::ClientTimer {
                kind: TIMER_CANCEL,
                tag,
            } => self.cancel_staged(tag, ctx),
            Msg::ClientTimer {
                kind: TIMER_DEADLINE,
                tag,
            } => self.handle_deadline(tag, ctx),
            Msg::ClientTimer {
                kind: TIMER_ARRIVAL,
                tag,
            } => self.next_arrival(tag == 0, ctx),
            Msg::Progress { tag, txn, stage } => self.handle_progress(tag, txn, stage, ctx),
            Msg::TxnDone { tag, outcome, .. } => self.handle_done(tag, outcome, ctx),
            _ => {}
        }
    }
}
