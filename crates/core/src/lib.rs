//! # planet-core
//!
//! The PLANET transaction programming model (SIGMOD 2014): *Predictive
//! Latency-Aware NEtworked Transactions*. This crate is the paper's primary
//! contribution, rebuilt on the substrates in this workspace:
//!
//! * **Progress callbacks** — the internal progress of a geo-replicated
//!   commit (per-replica votes, per-key quorum resolution) is exposed to the
//!   application as [`TxnEvent`]s, each carrying a freshly predicted commit
//!   likelihood.
//! * **Commit-likelihood prediction** — each site's client maintains an
//!   online [`planet_predict::LikelihoodModel`] fed by every observed vote.
//! * **Speculative commits** — when the likelihood crosses an
//!   application-chosen threshold the app may respond to its user early,
//!   accepting a (measured) risk of a later [`TxnEvent::Apology`].
//! * **Deadlines** — control returns to the application at its deadline with
//!   the current likelihood while the transaction finishes in the
//!   background.
//! * **Admission control** — transactions predicted to abort are refused at
//!   submission, protecting goodput under contention.
//!
//! Entry points: [`Planet`] (deterministic simulated deployment, used by all
//! experiments), [`RealtimePlanet`] (the same simulation paced against the
//! wall clock, for interactive demos), and [`LivePlanet`] (the same stack
//! deployed thread-per-actor on `planet-cluster`'s live transport).

#![warn(missing_docs)]

mod admission;
mod client;
mod db;
mod live;
mod runtime;
mod txn;

pub use admission::{AdmissionController, AdmissionPolicy, RefusalReason};
pub use client::{ClientActor, PredictionPoint, SourceMode, TxnRecord, TxnSource};
pub use db::{Planet, PlanetBuilder};
pub use live::{LiveHarvest, LivePlanet, LivePlanetBuilder};
pub use planet_cluster::PlaneConfig;
pub use runtime::RealtimePlanet;
pub use txn::{
    ChainTrigger, EventCallback, FinalOutcome, PlanetTxn, Stage, TxnBuilder, TxnEvent, TxnHandle,
};

// Re-export the vocabulary types applications need.
pub use planet_mdcc::{Protocol, TxnSpec};
pub use planet_plan::{
    CompiledPlan, DeltaRef, KeyRef, KeyTemplate, OpTemplate, PlanError, PlanId, PlanParam,
    TxnProgram,
};
pub use planet_sim::{SimDuration, SimTime};
pub use planet_storage::{Key, Value, WriteOp};
