//! Likelihood-based admission control (paper §5: "the mechanisms underlying
//! PLANET can be used for admission control, improving overall performance
//! in high contention situations").
//!
//! The controller refuses a transaction at submission time when the system
//! predicts it would likely abort anyway: each refused transaction frees the
//! WAN round trips and — more importantly — the *option slots* on hot
//! records that a doomed transaction would otherwise hold, which is what
//! keeps goodput up past the contention knee.

use planet_predict::LikelihoodModel;

/// The admission policy knobs.
#[derive(Debug, Clone, Copy)]
pub struct AdmissionPolicy {
    /// Refuse transactions whose a-priori commit likelihood is below this.
    pub min_likelihood: f64,
    /// Refuse once this many transactions are in flight at the site.
    pub max_inflight: usize,
}

impl Default for AdmissionPolicy {
    fn default() -> Self {
        AdmissionPolicy {
            min_likelihood: 0.3,
            max_inflight: 256,
        }
    }
}

/// Why a transaction was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefusalReason {
    /// Predicted likelihood below the policy minimum.
    LowLikelihood,
    /// Site already at its in-flight cap.
    Overload,
}

/// The per-site admission controller. It maintains a running view of
/// contention (the pending counts transactions observe when they read) and
/// consults the site's likelihood model for an a-priori commit probability.
#[derive(Debug)]
pub struct AdmissionController {
    policy: Option<AdmissionPolicy>,
    /// EWMA of pending-option counts observed by recent reads — the ambient
    /// contention level new transactions will face.
    ambient_pending: f64,
    admitted: u64,
    refused: u64,
}

impl AdmissionController {
    /// A controller with the given policy, or a pass-through when `None`.
    pub fn new(policy: Option<AdmissionPolicy>) -> Self {
        AdmissionController {
            policy,
            ambient_pending: 0.0,
            admitted: 0,
            refused: 0,
        }
    }

    /// Feed an observed pending count (from a transaction's reads).
    pub fn observe_pending(&mut self, pending: usize) {
        self.ambient_pending += 0.05 * (pending as f64 - self.ambient_pending);
    }

    /// The smoothed ambient contention level.
    pub fn ambient_pending(&self) -> f64 {
        self.ambient_pending
    }

    /// `(admitted, refused)` lifetime counts.
    pub fn stats(&self) -> (u64, u64) {
        (self.admitted, self.refused)
    }

    /// Decide whether to admit a transaction writing the keys identified by
    /// `write_key_hashes`, with `inflight` transactions already running at
    /// this site. `model` is the site's likelihood model; `quorum`/`voters`
    /// describe the protocol.
    ///
    /// The likelihood test is *per key*: a transaction is refused only when
    /// the specific records it targets have a history of rejection, so
    /// cold-key traffic is never shed (refusing it would cost goodput for
    /// no contention relief).
    pub fn admit(
        &mut self,
        model: &LikelihoodModel,
        write_key_hashes: &[u64],
        inflight: usize,
        quorum: usize,
        voters: usize,
    ) -> Result<(), RefusalReason> {
        let Some(policy) = self.policy else {
            self.admitted += 1;
            return Ok(());
        };
        if inflight >= policy.max_inflight {
            self.refused += 1;
            return Err(RefusalReason::Overload);
        }
        if !write_key_hashes.is_empty() {
            let likelihood = self.a_priori_likelihood(model, write_key_hashes, quorum, voters);
            if likelihood < policy.min_likelihood {
                self.refused += 1;
                return Err(RefusalReason::LowLikelihood);
            }
        }
        self.admitted += 1;
        Ok(())
    }

    /// A-priori (pre-read, pre-vote) commit likelihood for a transaction
    /// writing the given keys at the ambient contention level: per key, the
    /// probability that a quorum of replicas accepts — using the key's own
    /// acceptance history — assuming replicas answer (admission is about
    /// conflicts, not tail latency).
    pub fn a_priori_likelihood(
        &self,
        model: &LikelihoodModel,
        write_key_hashes: &[u64],
        _quorum: usize,
        _voters: usize,
    ) -> f64 {
        write_key_hashes
            .iter()
            .map(|&h| {
                // A key the model has never seen carries no evidence of
                // conflict — admitting it is free, so it scores 1.0 rather
                // than the (contention-polluted) global estimate.
                if model.key_resolutions(h) == 0 {
                    return 1.0;
                }
                // The key's learned quorum-resolution rate *is* the per-key
                // commit probability.
                model.txn_accept_prob(h)
            })
            .product()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idle_model() -> LikelihoodModel {
        LikelihoodModel::new(5, 64)
    }

    fn contended_model() -> LikelihoodModel {
        let mut m = LikelihoodModel::new(5, 64);
        for _ in 0..300 {
            for site in 0..5u8 {
                m.observe_vote(site, 100_000, false, 3, 9);
            }
            m.observe_key_resolution(9, false);
        }
        m
    }

    #[test]
    fn pass_through_without_policy() {
        let mut a = AdmissionController::new(None);
        for _ in 0..10 {
            assert!(a.admit(&idle_model(), &[1, 2, 3], 10_000, 4, 5).is_ok());
        }
        assert_eq!(a.stats(), (10, 0));
    }

    #[test]
    fn overload_cap_refuses() {
        let mut a = AdmissionController::new(Some(AdmissionPolicy {
            min_likelihood: 0.0,
            max_inflight: 4,
        }));
        assert!(a.admit(&idle_model(), &[1], 3, 4, 5).is_ok());
        assert_eq!(
            a.admit(&idle_model(), &[1], 4, 4, 5),
            Err(RefusalReason::Overload)
        );
    }

    #[test]
    fn low_likelihood_refuses_under_contention() {
        let mut a = AdmissionController::new(Some(AdmissionPolicy {
            min_likelihood: 0.5,
            max_inflight: 1000,
        }));
        // Ambient contention high, model has learned rejection.
        for _ in 0..100 {
            a.observe_pending(3);
        }
        let model = contended_model();
        // The hot key (hash 9, observed rejecting) is refused...
        assert_eq!(
            a.admit(&model, &[9], 0, 4, 5),
            Err(RefusalReason::LowLikelihood)
        );
        // ...but an unrelated cold key sails through: per-key admission
        // never sheds traffic that isn't part of the contention.
        assert!(a.admit(&model, &[12345], 0, 4, 5).is_ok());
        // Read-only transactions are always admitted.
        assert!(a.admit(&model, &[], 0, 4, 5).is_ok());
        assert_eq!(a.stats().1, 1);
    }

    #[test]
    fn idle_system_admits() {
        let mut a = AdmissionController::new(Some(AdmissionPolicy::default()));
        assert!(a.admit(&idle_model(), &[1, 2], 0, 4, 5).is_ok());
    }

    #[test]
    fn a_priori_likelihood_shrinks_with_keys() {
        let a = AdmissionController::new(Some(AdmissionPolicy::default()));
        // Warm keys 1..=3 with a mixed history so they carry real estimates.
        let mut m = idle_model();
        for i in 0..100u64 {
            for h in [1u64, 2, 3] {
                m.observe_key_resolution(h, i % 2 == 0);
            }
        }
        let one = a.a_priori_likelihood(&m, &[1], 4, 5);
        let three = a.a_priori_likelihood(&m, &[1, 2, 3], 4, 5);
        assert!(three < one);
        assert!((three - one.powi(3)).abs() < 1e-9);
    }

    #[test]
    fn unseen_keys_score_one() {
        let a = AdmissionController::new(Some(AdmissionPolicy::default()));
        let m = contended_model(); // global estimate is poisoned
        assert_eq!(a.a_priori_likelihood(&m, &[424242], 4, 5), 1.0);
    }

    #[test]
    fn ambient_pending_tracks() {
        let mut a = AdmissionController::new(None);
        for _ in 0..200 {
            a.observe_pending(4);
        }
        assert!((a.ambient_pending() - 4.0).abs() < 0.1);
    }
}
