//! A wall-clock runtime: run the simulated deployment paced against real
//! time on a background thread, with transaction events streamed back over
//! a channel.
//!
//! This exists so the examples can demonstrate the PLANET programming model
//! *live* — progress callbacks with rising likelihood, a speculative commit
//! firing tens of milliseconds before the final outcome — while every
//! protocol byte still flows through the same deterministic simulation the
//! experiments use. (The repro hint suggested an async runtime for
//! callbacks; a paced thread plus std mpsc channels delivers the same
//! observable behaviour without any extra dependency — see DESIGN.md.)

use std::sync::mpsc::{channel, Receiver, Sender};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::db::{Planet, PlanetBuilder};
use crate::txn::{PlanetTxn, TxnEvent, TxnHandle};
use planet_sim::SimTime;

enum Command {
    Submit {
        site: usize,
        txn: PlanetTxn,
        reply: Sender<TxnHandle>,
    },
    Shutdown,
}

/// A [`Planet`] deployment running on a background thread, paced so that one
/// simulated second takes one wall second (scaled by `speed`).
pub struct RealtimePlanet {
    commands: Sender<Command>,
    events: Receiver<TxnEvent>,
    join: Option<JoinHandle<Planet>>,
}

impl RealtimePlanet {
    /// Launch a deployment built from `builder`, advancing `speed` simulated
    /// seconds per wall second.
    pub fn launch(builder: PlanetBuilder, speed: f64) -> Self {
        assert!(speed > 0.0);
        let (cmd_tx, cmd_rx) = channel::<Command>();
        let (event_tx, event_rx) = channel::<TxnEvent>();
        let join = std::thread::spawn(move || {
            let mut planet = builder.build();
            let start = Instant::now();
            loop {
                // Drain pending commands.
                let mut shutdown = false;
                while let Ok(cmd) = cmd_rx.try_recv() {
                    match cmd {
                        Command::Submit { site, txn, reply } => {
                            let forward = event_tx.clone();
                            let txn = attach_forwarder(txn, forward);
                            let handle = planet.submit(site, txn);
                            let _ = reply.send(handle);
                        }
                        Command::Shutdown => shutdown = true,
                    }
                }
                if shutdown {
                    return planet;
                }
                // Pace: simulated time tracks scaled wall time.
                let target_us = (start.elapsed().as_micros() as f64 * speed) as u64;
                planet.run_until(SimTime::from_micros(target_us));
                std::thread::sleep(Duration::from_millis(2));
            }
        });
        RealtimePlanet {
            commands: cmd_tx,
            events: event_rx,
            join: Some(join),
        }
    }

    /// Submit a transaction; its events (and those of every other live
    /// transaction) appear on [`RealtimePlanet::events`].
    pub fn submit(&self, site: usize, txn: PlanetTxn) -> TxnHandle {
        let (reply_tx, reply_rx) = channel();
        self.commands
            .send(Command::Submit {
                site,
                txn,
                reply: reply_tx,
            })
            .expect("runtime thread gone");
        reply_rx.recv().expect("runtime thread gone")
    }

    /// The stream of transaction events.
    pub fn events(&self) -> &Receiver<TxnEvent> {
        &self.events
    }

    /// Stop the runtime and recover the deployment for inspection.
    pub fn shutdown(mut self) -> Planet {
        let _ = self.commands.send(Command::Shutdown);
        self.join
            .take()
            .expect("already shut down")
            .join()
            .expect("runtime panicked")
    }
}

impl Drop for RealtimePlanet {
    fn drop(&mut self) {
        if let Some(join) = self.join.take() {
            let _ = self.commands.send(Command::Shutdown);
            let _ = join.join();
        }
    }
}

/// Add a callback that clones every event into the channel, preserving the
/// transaction's own callbacks.
fn attach_forwarder(mut txn: PlanetTxn, forward: Sender<TxnEvent>) -> PlanetTxn {
    txn.callbacks.push(Box::new(move |e: &TxnEvent| {
        let _ = forward.send(e.clone());
    }));
    txn
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::txn::{FinalOutcome, PlanetTxn};
    use planet_mdcc::Protocol;

    #[test]
    fn drop_without_shutdown_does_not_hang() {
        let rt = RealtimePlanet::launch(Planet::builder().protocol(Protocol::Fast).seed(6), 1000.0);
        let _ = rt.submit(0, PlanetTxn::builder().set("x", 1i64).build());
        drop(rt); // Drop impl must join the thread cleanly.
    }

    #[test]
    fn multiple_inflight_transactions_multiplex() {
        let rt = RealtimePlanet::launch(Planet::builder().protocol(Protocol::Fast).seed(7), 500.0);
        let handles: Vec<_> = (0..4)
            .map(|i| {
                rt.submit(
                    i % 5,
                    PlanetTxn::builder().set(format!("m{i}"), i as i64).build(),
                )
            })
            .collect();
        let mut finished = std::collections::HashSet::new();
        let deadline = Instant::now() + Duration::from_secs(30);
        while finished.len() < handles.len() && Instant::now() < deadline {
            if let Ok(TxnEvent::Final {
                handle, outcome, ..
            }) = rt.events().recv_timeout(Duration::from_secs(5))
            {
                assert!(outcome.is_commit());
                finished.insert(handle);
            }
        }
        assert_eq!(finished.len(), 4, "all four txns must finish");
        let planet = rt.shutdown();
        assert_eq!(planet.all_records().len(), 4);
    }

    #[test]
    fn realtime_commit_streams_events() {
        // 100x speed: a ~200ms simulated commit takes ~2ms of wall time.
        let rt = RealtimePlanet::launch(Planet::builder().protocol(Protocol::Fast).seed(5), 100.0);
        let txn = PlanetTxn::builder()
            .set("rt-key", 9i64)
            .speculate_at(0.9)
            .build();
        let handle = rt.submit(0, txn);

        let mut outcome = None;
        let deadline = Instant::now() + Duration::from_secs(20);
        while Instant::now() < deadline {
            match rt.events().recv_timeout(Duration::from_secs(5)) {
                Ok(TxnEvent::Final {
                    handle: h,
                    outcome: o,
                    ..
                }) if h == handle => {
                    outcome = Some(o);
                    break;
                }
                Ok(_) => {}
                Err(_) => break,
            }
        }
        assert_eq!(outcome, Some(FinalOutcome::Committed));
        let planet = rt.shutdown();
        assert_eq!(planet.records(0).len(), 1);
    }
}
