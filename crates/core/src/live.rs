//! The live counterpart of [`Planet`](crate::Planet): the same PLANET
//! programming model — progress callbacks, commit-likelihood prediction,
//! speculative commits, chained transactions — served by a
//! [`planet_cluster::LiveCluster`], where every replica, coordinator and
//! per-site client runs on its own OS thread and real (wall-clock) time
//! drives the network model.
//!
//! The protocol and client logic are byte-for-byte the ones the simulation
//! runs: nodes step the very same actors through [`planet_sim::drive`], and
//! the per-site [`ClientActor`] is shared unchanged. What changes is only
//! the scheduler (OS threads instead of the deterministic event heap) and
//! the transport (the in-process channel fabric). Live runs are therefore
//! *not* replayable; the simulated [`Planet`](crate::Planet) remains the
//! ground truth for experiments.
//!
//! ```no_run
//! use planet_core::{LivePlanet, PlanetTxn, TxnEvent};
//!
//! let mut db = LivePlanet::builder().build();
//! let handle = db.submit(0, PlanetTxn::builder().set("k", 1i64).build());
//! while let Ok(event) = db.events().recv() {
//!     if let TxnEvent::Final { handle: h, outcome, .. } = event {
//!         if h == handle { assert!(outcome.is_commit()); break; }
//!     }
//! }
//! let harvest = db.shutdown();
//! assert_eq!(harvest.records(0).len(), 1);
//! ```

use std::sync::mpsc::{channel, Receiver, Sender};

use planet_cluster::{Harvest, LiveCluster, PlaneConfig};
use planet_mdcc::{ClusterConfig, CoordinatorActor, Msg, Protocol};
use planet_plan::{PlanError, PlanId, PlanParam, TxnProgram};
use planet_sim::{ActorId, Metrics, NetworkModel, SimDuration};

use crate::admission::AdmissionPolicy;
use crate::client::{ClientActor, TxnRecord, TIMER_CANCEL, TIMER_SUBMIT};
use crate::txn::{ChainTrigger, PlanetTxn, TxnEvent, TxnHandle};

/// Builder for [`LivePlanet`]. Mirrors [`PlanetBuilder`](crate::PlanetBuilder)
/// option for option, so a configuration can be moved between the simulated
/// and live worlds by changing one type name.
pub struct LivePlanetBuilder {
    topology: NetworkModel,
    protocol: Protocol,
    seed: u64,
    admission: Option<AdmissionPolicy>,
    txn_timeout: SimDuration,
    validation_service: SimDuration,
    fast_fallback: bool,
    plane: PlaneConfig,
}

impl Default for LivePlanetBuilder {
    fn default() -> Self {
        LivePlanetBuilder {
            topology: planet_sim::topology::five_dc(),
            protocol: Protocol::Fast,
            seed: 42,
            admission: None,
            txn_timeout: SimDuration::from_secs(10),
            validation_service: SimDuration::ZERO,
            fast_fallback: false,
            plane: PlaneConfig::default(),
        }
    }
}

impl LivePlanetBuilder {
    /// Use a custom network model (default: the five-data-center WAN). Its
    /// delays, loss, spikes and partitions are applied to live deliveries,
    /// with wall-clock time since cluster start standing in for simulated
    /// time.
    pub fn topology(mut self, net: NetworkModel) -> Self {
        self.topology = net;
        self
    }

    /// Choose the commit protocol (default: MDCC fast path).
    pub fn protocol(mut self, protocol: Protocol) -> Self {
        self.protocol = protocol;
        self
    }

    /// Seed the fabric and node RNGs (default: 42). Live runs are not
    /// replayable, but sampling stays well-defined.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enable likelihood-based admission control.
    pub fn admission(mut self, policy: AdmissionPolicy) -> Self {
        self.admission = Some(policy);
        self
    }

    /// Server-side transaction timeout (default 10 s).
    pub fn txn_timeout(mut self, timeout: SimDuration) -> Self {
        self.txn_timeout = timeout;
        self
    }

    /// Enable the fast path's classic-path collision fallback.
    pub fn fast_fallback(mut self, enabled: bool) -> Self {
        self.fast_fallback = enabled;
        self
    }

    /// Model finite replica validation capacity (FIFO, one server).
    pub fn validation_service(mut self, service: SimDuration) -> Self {
        self.validation_service = service;
        self
    }

    /// Tune the message plane (drain batch size, mailbox capacity, fabric
    /// shard count). Defaults to [`PlaneConfig::default`]. Shed submits
    /// surface to clients as timed-out outcomes, exactly like
    /// admission-refused transactions.
    pub fn plane(mut self, plane: PlaneConfig) -> Self {
        self.plane = plane;
        self
    }

    /// Spawn the cluster: replica, coordinator and client threads at every
    /// site of the topology.
    pub fn build(self) -> LivePlanet {
        let num_sites = self.topology.num_sites();
        let mut config = ClusterConfig::new(num_sites, self.protocol);
        config.txn_timeout = self.txn_timeout;
        config.validation_service = self.validation_service;
        config.fast_fallback = self.fast_fallback;
        let mut cluster = LiveCluster::builder(config.clone())
            .network(self.topology)
            .seed(self.seed)
            .plane(self.plane)
            .build();
        let (event_tx, event_rx) = channel();
        let clients: Vec<ActorId> = (0..num_sites)
            .map(|site| {
                let actor = ClientActor::new(
                    config.clone(),
                    cluster.coordinator(site),
                    site as u8,
                    self.admission,
                );
                cluster.spawn_client(site, Box::new(actor))
            })
            .collect();
        LivePlanet {
            cluster,
            clients,
            event_tx,
            event_rx,
        }
    }
}

/// A live PLANET deployment: the full stack of
/// [`Planet`](crate::Planet) — replicas, coordinators, per-site clients with
/// prediction and admission — running thread-per-actor on the in-process
/// transport, against the wall clock.
pub struct LivePlanet {
    cluster: LiveCluster,
    clients: Vec<ActorId>,
    event_tx: Sender<TxnEvent>,
    event_rx: Receiver<TxnEvent>,
}

impl LivePlanet {
    /// Start building a live deployment.
    pub fn builder() -> LivePlanetBuilder {
        LivePlanetBuilder::default()
    }

    /// Number of sites (data centers).
    pub fn num_sites(&self) -> usize {
        self.clients.len()
    }

    /// The cluster configuration.
    pub fn config(&self) -> &ClusterConfig {
        self.cluster.config()
    }

    /// The stream of [`TxnEvent`]s from every transaction submitted through
    /// this handle — progress with fresh likelihoods, speculative commits,
    /// deadline returns, final outcomes, apologies — in addition to any
    /// callbacks carried by the transactions themselves.
    pub fn events(&self) -> &Receiver<TxnEvent> {
        &self.event_rx
    }

    /// Submit a transaction at `site`. Returns once the site's client thread
    /// has staged and scheduled it; the outcome arrives on
    /// [`LivePlanet::events`].
    pub fn submit(&mut self, site: usize, txn: PlanetTxn) -> TxnHandle {
        let txn = self.with_forwarder(txn);
        let (reply_tx, reply_rx) = channel();
        self.client_node(site).call(move |actor| {
            let client = as_client(actor);
            let handle = client.stage(txn);
            let _ = reply_tx.send(handle);
            vec![Msg::ClientTimer {
                kind: TIMER_SUBMIT,
                tag: handle.tag,
            }]
        });
        reply_rx.recv().expect("client node gone")
    }

    /// Install a compiled transaction program under `plan` on every
    /// coordinator and client thread — the live twin of
    /// [`Planet::install_program`](crate::Planet::install_program). Returns
    /// once every coordinator has compiled and accepted the program.
    pub fn install_program(&mut self, plan: PlanId, program: TxnProgram) -> Result<(), PlanError> {
        program.validate()?;
        for site in 0..self.num_sites() {
            let coord = self.cluster.coordinator(site);
            let node = self.cluster.server(coord).expect("coordinator node");
            let prog = program.clone();
            let (reply_tx, reply_rx) = channel();
            node.call(move |actor| {
                let any: &mut dyn std::any::Any = actor;
                let coordinator = any
                    .downcast_mut::<CoordinatorActor>()
                    .expect("server node hosts a CoordinatorActor");
                let _ = reply_tx.send(coordinator.install_plan(plan, prog));
                Vec::new()
            });
            reply_rx.recv().expect("coordinator node gone")?;
            let prog = program.clone();
            self.client_node(site).call(move |actor| {
                as_client(actor).install_program(plan, prog);
                Vec::new()
            });
        }
        Ok(())
    }

    /// Submit one execution of an installed program at `site` — the
    /// plan-handle twin of [`LivePlanet::submit`].
    pub fn submit_plan(&mut self, site: usize, plan: PlanId, params: Vec<PlanParam>) -> TxnHandle {
        self.submit(site, PlanetTxn::builder().via_plan(plan, params).build())
    }

    /// Chain a transaction behind another at the same site, exactly as
    /// [`Planet::submit_after`](crate::Planet::submit_after): launched when
    /// `after` reaches `trigger`, cancelled if `after` fails. The
    /// predecessor's current state is resolved on the client thread, so
    /// there is no race with an in-flight outcome.
    pub fn submit_after(
        &mut self,
        after: TxnHandle,
        trigger: ChainTrigger,
        txn: PlanetTxn,
    ) -> TxnHandle {
        let txn = self.with_forwarder(txn);
        let (reply_tx, reply_rx) = channel();
        self.client_node(after.site as usize).call(move |actor| {
            let client = as_client(actor);
            let prior = client.record(after).map(|r| r.outcome);
            match prior {
                Some(outcome) if outcome.is_commit() => {
                    let handle = client.stage(txn);
                    let _ = reply_tx.send(handle);
                    vec![Msg::ClientTimer {
                        kind: TIMER_SUBMIT,
                        tag: handle.tag,
                    }]
                }
                Some(_) => {
                    let handle = client.stage(txn);
                    let _ = reply_tx.send(handle);
                    vec![Msg::ClientTimer {
                        kind: TIMER_CANCEL,
                        tag: handle.tag,
                    }]
                }
                None => {
                    let handle = client.stage_chained(txn, after.tag, trigger);
                    let _ = reply_tx.send(handle);
                    Vec::new()
                }
            }
        });
        reply_rx.recv().expect("client node gone")
    }

    /// Admission statistics `(admitted, refused)` for one site, read from
    /// the live client thread.
    pub fn admission_stats(&self, site: usize) -> (u64, u64) {
        let (reply_tx, reply_rx) = channel();
        self.client_node(site).call(move |actor| {
            let _ = reply_tx.send(as_client(actor).admission_stats());
            Vec::new()
        });
        reply_rx.recv().expect("client node gone")
    }

    /// Stop every thread (clients, then coordinators, then replicas) and
    /// harvest the deployment for inspection.
    pub fn shutdown(self) -> LiveHarvest {
        let LivePlanet {
            cluster,
            clients,
            event_tx,
            event_rx,
        } = self;
        drop(event_tx);
        let harvest = cluster.shutdown();
        // Drain any events still in the channel at shutdown.
        let pending_events: Vec<TxnEvent> = event_rx.try_iter().collect();
        LiveHarvest {
            harvest,
            clients,
            pending_events,
        }
    }

    fn client_node(&self, site: usize) -> &planet_cluster::NodeHandle {
        let id = self.clients[site];
        self.cluster.client(id).expect("client node registered")
    }

    /// Every submitted transaction also streams its events to the shared
    /// channel, preserving its own callbacks.
    fn with_forwarder(&self, mut txn: PlanetTxn) -> PlanetTxn {
        let forward = self.event_tx.clone();
        txn.callbacks.push(Box::new(move |e: &TxnEvent| {
            let _ = forward.send(e.clone());
        }));
        txn
    }
}

/// Everything recovered from a stopped [`LivePlanet`]: per-site transaction
/// records (with full prediction traces), merged metrics, and the raw
/// harvested actors.
pub struct LiveHarvest {
    harvest: Harvest,
    clients: Vec<ActorId>,
    /// Events that were still queued when the deployment stopped.
    pub pending_events: Vec<TxnEvent>,
}

impl LiveHarvest {
    /// Finished-transaction records at one site.
    pub fn records(&self, site: usize) -> &[TxnRecord] {
        self.client(site).records()
    }

    /// The record for a handle, if the transaction finished.
    pub fn record(&self, handle: TxnHandle) -> Option<&TxnRecord> {
        self.client(handle.site as usize).record(handle)
    }

    /// All finished-transaction records across sites.
    pub fn all_records(&self) -> Vec<&TxnRecord> {
        (0..self.clients.len())
            .flat_map(|s| self.records(s).iter())
            .collect()
    }

    /// All node metrics merged into one registry.
    pub fn metrics(&self) -> Metrics {
        self.harvest.merged_metrics()
    }

    /// Messages the transport dropped (loss model, partitions, shutdown).
    pub fn dropped(&self) -> u64 {
        self.harvest.dropped
    }

    /// The raw cluster harvest (downcast replicas, coordinators, clients).
    pub fn cluster(&self) -> &Harvest {
        &self.harvest
    }

    fn client(&self, site: usize) -> &ClientActor {
        self.harvest
            .actor_as::<ClientActor>(self.clients[site])
            .expect("client actor harvested")
    }
}

fn as_client(actor: &mut dyn planet_sim::Actor<Msg>) -> &mut ClientActor {
    let any: &mut dyn std::any::Any = actor;
    any.downcast_mut::<ClientActor>()
        .expect("client node hosts a ClientActor")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::txn::FinalOutcome;
    use std::time::{Duration, Instant};

    fn lan(n: usize) -> NetworkModel {
        let rtt: Vec<Vec<f64>> = (0..n)
            .map(|i| (0..n).map(|j| if i == j { 0.05 } else { 1.0 }).collect())
            .collect();
        NetworkModel::from_rtt_ms(&rtt)
    }

    fn wait_final(db: &LivePlanet, want: TxnHandle, secs: u64) -> Option<FinalOutcome> {
        let deadline = Instant::now() + Duration::from_secs(secs);
        while Instant::now() < deadline {
            match db.events().recv_timeout(Duration::from_millis(200)) {
                Ok(TxnEvent::Final {
                    handle, outcome, ..
                }) if handle == want => return Some(outcome),
                _ => {}
            }
        }
        None
    }

    #[test]
    fn live_commit_streams_events_and_harvests_records() {
        let mut db = LivePlanet::builder().topology(lan(3)).seed(9).build();
        let handle = db.submit(0, PlanetTxn::builder().set("live-k", 7i64).build());
        assert_eq!(wait_final(&db, handle, 20), Some(FinalOutcome::Committed));
        let harvest = db.shutdown();
        let record = harvest.record(handle).expect("record harvested");
        assert!(record.outcome.is_commit());
        assert!(!record.predictions.is_empty(), "prediction trace recorded");
        assert_eq!(harvest.all_records().len(), 1);
    }

    #[test]
    fn speculative_event_fires_before_final() {
        let mut db = LivePlanet::builder().topology(lan(3)).seed(10).build();
        let txn = PlanetTxn::builder()
            .set("spec-k", 1i64)
            .speculate_at(0.5)
            .build();
        let handle = db.submit(0, txn);
        let mut speculated = false;
        let deadline = Instant::now() + Duration::from_secs(20);
        let outcome = loop {
            if Instant::now() >= deadline {
                break None;
            }
            match db.events().recv_timeout(Duration::from_millis(200)) {
                Ok(TxnEvent::Speculative { handle: h, .. }) if h == handle => speculated = true,
                Ok(TxnEvent::Final {
                    handle: h, outcome, ..
                }) if h == handle => break Some(outcome),
                _ => {}
            }
        };
        assert_eq!(outcome, Some(FinalOutcome::Committed));
        assert!(
            speculated,
            "speculative commit fired before the final outcome"
        );
        db.shutdown();
    }

    #[test]
    fn chained_transaction_follows_committed_predecessor() {
        let mut db = LivePlanet::builder().topology(lan(3)).seed(11).build();
        let first = db.submit(0, PlanetTxn::builder().set("chain-a", 1i64).build());
        let second = db.submit_after(
            first,
            ChainTrigger::Commit,
            PlanetTxn::builder().set("chain-b", 2i64).build(),
        );
        assert_eq!(wait_final(&db, second, 20), Some(FinalOutcome::Committed));
        let harvest = db.shutdown();
        assert!(harvest
            .record(first)
            .expect("first finished")
            .outcome
            .is_commit());
        assert!(harvest
            .record(second)
            .expect("second finished")
            .outcome
            .is_commit());
    }
}
