//! The top-level handle: a geo-replicated PLANET database in a box.
//!
//! [`Planet`] wires the whole stack — network model, storage replicas,
//! commit protocol, per-site clients with prediction and admission — into
//! one deterministic simulation and exposes a compact API:
//!
//! ```
//! use planet_core::{Planet, PlanetTxn};
//! use planet_mdcc::Protocol;
//! use planet_sim::{SimDuration, SimTime};
//!
//! let mut db = Planet::builder().protocol(Protocol::Fast).seed(7).build();
//! let txn = PlanetTxn::builder().set("greeting", 1i64).build();
//! let handle = db.submit_at(0, SimTime::from_millis(1), txn);
//! db.run_for(SimDuration::from_secs(5));
//! assert!(db.record(handle).unwrap().outcome.is_commit());
//! ```

use planet_mdcc::{build_cluster, Cluster, ClusterConfig, CoordinatorActor, Msg, Protocol};
use planet_plan::{PlanError, PlanId, PlanParam, TxnProgram};
use planet_sim::{ActorId, Metrics, NetworkModel, SimDuration, SimTime, Simulation, SiteId};
use planet_storage::{Key, Value};

use crate::admission::AdmissionPolicy;
use crate::client::{ClientActor, TxnRecord, TxnSource, TIMER_SUBMIT};
use crate::txn::{ChainTrigger, PlanetTxn, TxnHandle};

/// Builder for [`Planet`].
pub struct PlanetBuilder {
    topology: NetworkModel,
    protocol: Protocol,
    seed: u64,
    admission: Option<AdmissionPolicy>,
    txn_timeout: SimDuration,
    validation_service: SimDuration,
    fast_fallback: bool,
    shards: usize,
}

impl Default for PlanetBuilder {
    fn default() -> Self {
        PlanetBuilder {
            topology: planet_sim::topology::five_dc(),
            protocol: Protocol::Fast,
            seed: 42,
            admission: None,
            txn_timeout: SimDuration::from_secs(10),
            validation_service: SimDuration::ZERO,
            fast_fallback: false,
            shards: 1,
        }
    }
}

impl PlanetBuilder {
    /// Use a custom network model (default: the five-data-center WAN).
    pub fn topology(mut self, net: NetworkModel) -> Self {
        self.topology = net;
        self
    }

    /// Choose the commit protocol (default: MDCC fast path).
    pub fn protocol(mut self, protocol: Protocol) -> Self {
        self.protocol = protocol;
        self
    }

    /// Seed the deterministic simulation (default: 42).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enable likelihood-based admission control.
    pub fn admission(mut self, policy: AdmissionPolicy) -> Self {
        self.admission = Some(policy);
        self
    }

    /// Server-side transaction timeout (default 10 s).
    pub fn txn_timeout(mut self, timeout: SimDuration) -> Self {
        self.txn_timeout = timeout;
        self
    }

    /// Enable the fast path's collision fallback: keys whose fast round
    /// splits without a winner are retried once through their master
    /// (MDCC's classic-path fallback). Only meaningful with
    /// [`Protocol::Fast`].
    pub fn fast_fallback(mut self, enabled: bool) -> Self {
        self.fast_fallback = enabled;
        self
    }

    /// Model finite replica capacity: each option validation occupies a
    /// replica's (single) validation server for this long, with FIFO
    /// queueing behind it. Default: zero (infinite capacity).
    pub fn validation_service(mut self, service: SimDuration) -> Self {
        self.validation_service = service;
        self
    }

    /// Partition each site's keyspace across this many replica shards
    /// (default 1). The simulation runs the sharded actors on its single
    /// deterministic thread; live deployments give each shard a thread.
    pub fn shards(mut self, shards: usize) -> Self {
        assert!(shards >= 1);
        self.shards = shards;
        self
    }

    /// Assemble the database.
    pub fn build(self) -> Planet {
        let num_sites = self.topology.num_sites();
        let mut config = ClusterConfig::new(num_sites, self.protocol).with_shards(self.shards);
        config.txn_timeout = self.txn_timeout;
        config.validation_service = self.validation_service;
        config.fast_fallback = self.fast_fallback;
        let mut sim = Simulation::new(self.topology, self.seed);
        let cluster = build_cluster(&mut sim, config.clone());
        let clients: Vec<ActorId> = (0..num_sites)
            .map(|site| {
                let actor = ClientActor::new(
                    config.clone(),
                    cluster.coordinators[site],
                    site as u8,
                    self.admission,
                );
                sim.add_actor(SiteId(site as u8), Box::new(actor))
            })
            .collect();
        Planet {
            sim,
            cluster,
            clients,
        }
    }
}

/// A complete PLANET deployment: replicas, coordinators and clients at every
/// site of the topology, running in a deterministic simulation.
pub struct Planet {
    sim: Simulation<Msg>,
    cluster: Cluster,
    clients: Vec<ActorId>,
}

impl Planet {
    /// Start building a deployment.
    pub fn builder() -> PlanetBuilder {
        PlanetBuilder::default()
    }

    /// Number of sites (data centers).
    pub fn num_sites(&self) -> usize {
        self.clients.len()
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    /// Submit a transaction at `site`, to be issued at absolute time `at`
    /// (which must not be in the past).
    pub fn submit_at(&mut self, site: usize, at: SimTime, txn: PlanetTxn) -> TxnHandle {
        let client_id = self.clients[site];
        let handle = self
            .sim
            .actor_as_mut::<ClientActor>(client_id)
            .expect("client actor")
            .stage(txn);
        self.sim.inject_at(
            at,
            client_id,
            Msg::ClientTimer {
                kind: TIMER_SUBMIT,
                tag: handle.tag,
            },
        );
        handle
    }

    /// Submit a transaction at `site` now.
    pub fn submit(&mut self, site: usize, txn: PlanetTxn) -> TxnHandle {
        self.submit_at(site, self.sim.now(), txn)
    }

    /// Install a compiled transaction program under `plan` on every
    /// coordinator and client. Subsequent submissions built with
    /// [`TxnBuilder::via_plan`](crate::TxnBuilder::via_plan) (or
    /// [`Planet::submit_plan`]) execute the pre-routed plan: no key strings
    /// cross the submission boundary and the coordinator skips routing and
    /// dispatch work per transaction.
    pub fn install_program(&mut self, plan: PlanId, program: TxnProgram) -> Result<(), PlanError> {
        program.validate()?;
        for site in 0..self.num_sites() {
            let coord = self.cluster.coordinators[site];
            self.sim
                .actor_as_mut::<CoordinatorActor>(coord)
                .expect("coordinator actor")
                .install_plan(plan, program.clone())?;
            let client = self.clients[site];
            self.sim
                .actor_as_mut::<ClientActor>(client)
                .expect("client actor")
                .install_program(plan, program.clone());
        }
        Ok(())
    }

    /// Submit one execution of an installed program at `site` now — the
    /// plan-handle twin of [`Planet::submit`].
    pub fn submit_plan(&mut self, site: usize, plan: PlanId, params: Vec<PlanParam>) -> TxnHandle {
        self.submit(site, PlanetTxn::builder().via_plan(plan, params).build())
    }

    /// Chain a transaction behind another at the same site: it is submitted
    /// automatically the moment `after` reaches `trigger`
    /// ([`ChainTrigger::Speculative`] launches it as soon as the predecessor
    /// is *likely* committed — the paper's speculative-workflow use case)
    /// and cancelled (outcome [`FinalOutcome::Cancelled`]) if the
    /// predecessor fails. If the predecessor already finished, the successor
    /// is submitted or cancelled immediately.
    ///
    /// [`FinalOutcome::Cancelled`]: crate::FinalOutcome::Cancelled
    pub fn submit_after(
        &mut self,
        after: TxnHandle,
        trigger: ChainTrigger,
        txn: PlanetTxn,
    ) -> TxnHandle {
        let site = after.site as usize;
        let client_id = self.clients[site];
        // If the predecessor already finished, resolve immediately.
        let prior = self.record(after).map(|r| r.outcome);
        let client = self
            .sim
            .actor_as_mut::<ClientActor>(client_id)
            .expect("client actor");
        match prior {
            Some(outcome) if outcome.is_commit() => {
                let handle = client.stage(txn);
                let at = self.sim.now() + SimDuration::from_micros(1);
                self.sim.inject_at(
                    at,
                    client_id,
                    Msg::ClientTimer {
                        kind: TIMER_SUBMIT,
                        tag: handle.tag,
                    },
                );
                handle
            }
            Some(_) => {
                // Predecessor already failed: cancel the successor eagerly
                // (no further events will arrive for the predecessor).
                let handle = client.stage(txn);
                let at = self.sim.now() + SimDuration::from_micros(1);
                self.sim.inject_at(
                    at,
                    client_id,
                    Msg::ClientTimer {
                        kind: crate::client::TIMER_CANCEL,
                        tag: handle.tag,
                    },
                );
                handle
            }
            None => client.stage_chained(txn, after.tag, trigger),
        }
    }

    /// Attach a workload source to a site's client. Arrivals begin
    /// immediately (whether or not the simulation has already run).
    pub fn attach_source(&mut self, site: usize, source: Box<dyn TxnSource>) {
        let client_id = self.clients[site];
        self.sim
            .actor_as_mut::<ClientActor>(client_id)
            .expect("client actor")
            .attach_source(source);
        // Kick the arrival chain; a duplicate kick (e.g. the client's own
        // on_start) is ignored by the arming guard.
        let at = self.sim.now() + SimDuration::from_micros(1);
        self.sim.inject_at(
            at,
            client_id,
            Msg::ClientTimer {
                kind: crate::client::TIMER_ARRIVAL,
                tag: 0,
            },
        );
    }

    /// Advance the simulation by `span`.
    pub fn run_for(&mut self, span: SimDuration) -> SimTime {
        self.sim.run_for(span)
    }

    /// Advance the simulation to absolute time `deadline`.
    pub fn run_until(&mut self, deadline: SimTime) -> SimTime {
        self.sim.run_until(deadline)
    }

    /// Finished-transaction records at one site.
    pub fn records(&self, site: usize) -> &[TxnRecord] {
        self.client(site).records()
    }

    /// The record for a handle, if the transaction finished.
    pub fn record(&self, handle: TxnHandle) -> Option<&TxnRecord> {
        self.client(handle.site as usize).record(handle)
    }

    /// All finished-transaction records across sites.
    pub fn all_records(&self) -> Vec<&TxnRecord> {
        (0..self.num_sites())
            .flat_map(|s| self.records(s).iter())
            .collect()
    }

    /// The likelihood model of one site's client (diagnostics, experiments).
    pub fn model(&self, site: usize) -> &planet_predict::LikelihoodModel {
        self.client(site).model()
    }

    /// Mutable access to a site's likelihood model (diagnostics: quantile
    /// queries need `&mut` because the ECDF sorts lazily).
    pub fn model_mut(&mut self, site: usize) -> &mut planet_predict::LikelihoodModel {
        let id = self.clients[site];
        self.sim
            .actor_as_mut::<ClientActor>(id)
            .expect("client actor")
            .model_mut()
    }

    /// Ask the site's model: *what deadline would give this transaction at
    /// least `confidence` probability of committing in time?* (the paper's
    /// deadline-planning question). Returns `None` if no deadline ≤ 30 s
    /// reaches the confidence — e.g. a write to a key with a hopeless
    /// conflict history. The estimate is a-priori (pre-read): it uses each
    /// key's learned acceptance and the site's path-latency distributions.
    pub fn suggest_deadline(
        &mut self,
        site: usize,
        txn: &PlanetTxn,
        confidence: f64,
    ) -> Option<SimDuration> {
        use planet_predict::conflict::KeyedConflictModel;
        use planet_predict::{KeyState, TxnSnapshot};
        let config = self.cluster.config.clone();
        let keys: Vec<KeyState> = txn
            .spec
            .writes
            .iter()
            .map(|(key, _)| {
                let (quorum, voters, outstanding) = match config.protocol {
                    Protocol::TwoPc => (1, 1, vec![config.master_of(key).0]),
                    _ => (
                        config.required_quorum(),
                        config.num_sites,
                        (0..config.num_sites as u8).collect(),
                    ),
                };
                KeyState {
                    accepts: 0,
                    rejects: 0,
                    outstanding,
                    pending_at_read: 0,
                    key_hash: KeyedConflictModel::key_hash(key.as_str()),
                    quorum,
                    voters,
                }
            })
            .collect();
        let snap = TxnSnapshot {
            keys,
            elapsed_us: 0,
        };
        self.model_mut(site)
            .suggest_budget_us(&snap, confidence, 30_000_000)
            .map(SimDuration::from_micros)
    }

    /// Admission statistics `(admitted, refused)` for one site.
    pub fn admission_stats(&self, site: usize) -> (u64, u64) {
        self.client(site).admission_stats()
    }

    /// Read the committed value of a key at a site's local replica —
    /// a diagnostic read outside any transaction. Routed to the key's
    /// shard, like every other key-carrying access.
    pub fn read_local(&self, site: usize, key: &Key) -> Value {
        let shard = self.cluster.config.shard_of(key);
        self.replica(site, shard).read(key).value
    }

    /// The shared metrics registry.
    pub fn metrics(&self) -> &Metrics {
        self.sim.metrics()
    }

    /// The cluster configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.cluster.config
    }

    /// Fault injection: crash a site's replica at absolute time `at` —
    /// every shard of the site goes down together, as a host failure
    /// would take them. They stop serving until
    /// [`Planet::recover_site_at`]; their WALs survive.
    pub fn crash_site_at(&mut self, site: usize, at: SimTime) {
        for replica in self.cluster.site_replicas(site) {
            self.sim.inject_at(at, replica, Msg::Crash);
        }
    }

    /// Fault injection: recover a crashed replica at absolute time `at`
    /// (restart + WAL replay on every shard; they catch up on later writes
    /// via state transfer).
    pub fn recover_site_at(&mut self, site: usize, at: SimTime) {
        for replica in self.cluster.site_replicas(site) {
            self.sim.inject_at(at, replica, Msg::Recover);
        }
    }

    /// Mutable access to the network model (inject spikes/partitions).
    pub fn network_mut(&mut self) -> &mut NetworkModel {
        self.sim.network_mut()
    }

    /// The underlying simulation (advanced harness use).
    pub fn sim_mut(&mut self) -> &mut Simulation<Msg> {
        &mut self.sim
    }

    fn client(&self, site: usize) -> &ClientActor {
        self.sim
            .actor_as::<ClientActor>(self.clients[site])
            .expect("client actor")
    }

    fn replica(&self, site: usize, shard: usize) -> &planet_storage::Replica {
        self.sim
            .actor_as::<planet_mdcc::ReplicaActor>(self.cluster.replica(site, shard))
            .expect("replica actor")
            .storage()
    }
}
