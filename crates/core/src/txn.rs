//! The PLANET transaction: what an application submits.
//!
//! The programming model (paper §3) extends a plain transaction with:
//!
//! * a **deadline** after which control returns to the application with the
//!   current commit likelihood (the transaction itself keeps running);
//! * a **speculation threshold**: when the predicted commit likelihood
//!   crosses it, the application is told "treat this as committed" and can
//!   respond to its user immediately — accepting a small risk of a later
//!   **apology** if the final outcome is an abort;
//! * **callbacks** observing every stage of commit progress, each carrying
//!   the freshly predicted likelihood.

use planet_mdcc::TxnSpec;
use planet_plan::{PlanError, PlanId, PlanParam, TxnProgram};
use planet_sim::{SimDuration, SimTime};
use planet_storage::{Key, Value, WriteOp};

/// Identifies a submitted transaction: the submitting site and the client's
/// per-site sequence tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TxnHandle {
    /// Site the transaction was submitted at.
    pub site: u8,
    /// Per-site submission sequence number.
    pub tag: u64,
}

impl std::fmt::Display for TxnHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "txn[{}:{}]", self.site, self.tag)
    }
}

/// Terminal state of a PLANET transaction, as the application sees it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FinalOutcome {
    /// Durably committed.
    Committed,
    /// Aborted (conflict or quorum failure).
    Aborted,
    /// The server-side timeout expired.
    TimedOut,
    /// Admission control refused the transaction before execution.
    Rejected,
    /// A chained transaction whose predecessor failed — it was never
    /// submitted (see [`ChainTrigger`]).
    Cancelled,
}

/// When a chained transaction (submitted with
/// [`Planet::submit_after`](crate::Planet::submit_after)) should launch —
/// the paper's "speculative chained transactions" use case: start the next
/// step of a workflow as soon as the previous one is *likely* to commit,
/// instead of waiting for its WAN round trip to finish.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChainTrigger {
    /// Launch when the predecessor's speculative-commit event fires (or when
    /// it commits, if it never speculates). Earliest, with apology risk.
    Speculative,
    /// Launch only on the predecessor's durable commit. Safe but serial.
    Commit,
}

impl FinalOutcome {
    /// True for `Committed`.
    pub fn is_commit(&self) -> bool {
        matches!(self, FinalOutcome::Committed)
    }
}

/// A coarse description of where a transaction currently stands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Admitted; reads in flight.
    Reading,
    /// Options proposed; votes arriving.
    Voting,
    /// A replica vote just arrived.
    VoteArrived,
    /// One written key resolved (reached or definitively missed quorum).
    KeyResolved,
}

/// An event delivered to the application's callbacks.
#[derive(Debug, Clone)]
pub enum TxnEvent {
    /// Commit progress advanced; `likelihood` is the freshly predicted
    /// probability of commit (within the deadline, if one was set).
    Progress {
        /// The transaction.
        handle: TxnHandle,
        /// Where it stands.
        stage: Stage,
        /// Predicted commit likelihood at this instant.
        likelihood: f64,
        /// Time since submission.
        elapsed: SimDuration,
    },
    /// The likelihood crossed the speculation threshold: the application may
    /// treat the transaction as committed now. Fired at most once.
    Speculative {
        /// The transaction.
        handle: TxnHandle,
        /// Likelihood at the moment of speculation.
        likelihood: f64,
        /// Time since submission.
        elapsed: SimDuration,
    },
    /// The application deadline passed before the final outcome; the
    /// transaction continues in the background. Carries the likelihood so
    /// the application can decide what to tell its user.
    DeadlineExceeded {
        /// The transaction.
        handle: TxnHandle,
        /// Likelihood at the deadline.
        likelihood: f64,
    },
    /// The final outcome.
    Final {
        /// The transaction.
        handle: TxnHandle,
        /// Commit, abort, timeout or rejection.
        outcome: FinalOutcome,
        /// Submission-to-decision latency.
        latency: SimDuration,
        /// Time of the decision.
        decided_at: SimTime,
    },
    /// The transaction was speculatively reported committed but finally
    /// aborted — the application must apologise to its user.
    Apology {
        /// The transaction.
        handle: TxnHandle,
    },
    /// An attached compensating transaction was submitted in response to an
    /// apology.
    CompensationSubmitted {
        /// The apologising transaction.
        handle: TxnHandle,
        /// The compensation's own handle (trackable like any other).
        compensation: TxnHandle,
    },
}

impl TxnEvent {
    /// The handle of the transaction this event belongs to.
    pub fn handle(&self) -> TxnHandle {
        match self {
            TxnEvent::Progress { handle, .. }
            | TxnEvent::Speculative { handle, .. }
            | TxnEvent::DeadlineExceeded { handle, .. }
            | TxnEvent::Final { handle, .. }
            | TxnEvent::Apology { handle }
            | TxnEvent::CompensationSubmitted { handle, .. } => *handle,
        }
    }
}

/// A callback observing transaction events.
pub type EventCallback = Box<dyn FnMut(&TxnEvent) + Send>;

/// A PLANET transaction: the specification plus the programming-model
/// extensions. Build with [`PlanetTxn::builder`]:
///
/// ```
/// use planet_core::{PlanetTxn, SimDuration, TxnEvent};
///
/// let txn = PlanetTxn::builder()
///     .read("account:info")
///     .add_with_floor("account:balance", -100, 0)
///     .deadline(SimDuration::from_millis(300))
///     .speculate_at(0.95)
///     .on_final(|outcome| println!("done: {outcome:?}"))
///     .build();
/// assert_eq!(txn.spec.writes.len(), 1);
/// ```
pub struct PlanetTxn {
    /// Reads and writes.
    pub spec: TxnSpec,
    /// Submit through an installed compiled plan instead of shipping the
    /// spec: `(plan handle, this execution's parameters)`. Set by
    /// [`TxnBuilder::via_plan`]; requires the program to be installed first
    /// (see [`Planet::install_program`](crate::Planet::install_program)).
    pub plan: Option<(PlanId, Vec<PlanParam>)>,
    /// Application deadline, if any.
    pub deadline: Option<SimDuration>,
    /// Speculative-commit threshold, if speculation is enabled.
    pub speculation_threshold: Option<f64>,
    /// A compensating transaction submitted automatically if this
    /// transaction speculated and then aborted (the "apologise" half of
    /// guess-and-apologise): e.g. credit back a balance, notify a user.
    pub(crate) compensation: Option<Box<PlanetTxn>>,
    pub(crate) callbacks: Vec<EventCallback>,
}

impl std::fmt::Debug for PlanetTxn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PlanetTxn")
            .field("reads", &self.spec.reads.len())
            .field("writes", &self.spec.writes.len())
            .field("deadline", &self.deadline)
            .field("speculation_threshold", &self.speculation_threshold)
            .field("compensation", &self.compensation.is_some())
            .field("callbacks", &self.callbacks.len())
            .finish()
    }
}

impl PlanetTxn {
    /// Start building a transaction.
    pub fn builder() -> TxnBuilder {
        TxnBuilder::default()
    }

    pub(crate) fn fire(&mut self, event: &TxnEvent) {
        for cb in &mut self.callbacks {
            cb(event);
        }
    }
}

/// Fluent builder for [`PlanetTxn`].
#[derive(Default)]
pub struct TxnBuilder {
    spec: TxnSpec,
    plan: Option<(PlanId, Vec<PlanParam>)>,
    deadline: Option<SimDuration>,
    speculation_threshold: Option<f64>,
    compensation: Option<Box<PlanetTxn>>,
    callbacks: Vec<EventCallback>,
}

impl TxnBuilder {
    /// Read a key.
    pub fn read(mut self, key: impl Into<Key>) -> Self {
        self.spec.reads.push(key.into());
        self
    }

    /// Write a key with an arbitrary operation.
    pub fn write(mut self, key: impl Into<Key>, op: WriteOp) -> Self {
        self.spec.writes.push((key.into(), op));
        self
    }

    /// Set a key to a value (physical write).
    pub fn set(self, key: impl Into<Key>, value: impl Into<Value>) -> Self {
        self.write(key, WriteOp::Set(value.into()))
    }

    /// Add a delta to an integer key (commutative write).
    pub fn add(self, key: impl Into<Key>, delta: i64) -> Self {
        self.write(key, WriteOp::add(delta))
    }

    /// Add a delta with a lower bound (e.g. stock that must stay ≥ 0).
    pub fn add_with_floor(self, key: impl Into<Key>, delta: i64, floor: i64) -> Self {
        self.write(key, WriteOp::add_with_floor(delta, floor))
    }

    /// Delete a key (physical write).
    pub fn delete(self, key: impl Into<Key>) -> Self {
        self.write(key, WriteOp::Delete)
    }

    /// Serve this transaction's reads from a majority of replicas (freshest
    /// version wins) instead of the local replica — bounded-staleness
    /// freshness for one extra WAN round trip. See
    /// [`planet_mdcc::ReadLevel`].
    pub fn quorum_reads(mut self) -> Self {
        self.spec.read_level = planet_mdcc::ReadLevel::Quorum;
        self
    }

    /// Submit this transaction through an installed compiled plan: the wire
    /// carries only `(plan, params)`, and the coordinator executes the
    /// pre-routed [`planet_plan::CompiledPlan`] instead of interpreting a
    /// spec. Reads/writes set on this builder are ignored in favour of the
    /// program's ops; the client instantiates the program locally so the
    /// likelihood/admission machinery sees the same keys either way.
    pub fn via_plan(mut self, plan: PlanId, params: Vec<PlanParam>) -> Self {
        self.plan = Some((plan, params));
        self
    }

    /// Compile the transaction shape built so far into a zero-parameter
    /// [`TxnProgram`] — the bridge from the interpreted builder API to the
    /// compiled path. Install the result once (e.g. via
    /// [`Planet::install_program`](crate::Planet::install_program)), then
    /// submit executions with [`TxnBuilder::via_plan`] and empty params.
    /// Fails if two writes name the same key (only the interpreted path
    /// defines semantics for that).
    pub fn compile(&self, name: impl Into<String>) -> Result<TxnProgram, PlanError> {
        TxnProgram::of_concrete(
            name,
            &self.spec.reads,
            &self.spec.writes,
            self.spec.read_level == planet_mdcc::ReadLevel::Quorum,
        )
    }

    /// Application deadline: when it passes before the outcome is known, a
    /// [`TxnEvent::DeadlineExceeded`] fires and the app regains control.
    pub fn deadline(mut self, d: SimDuration) -> Self {
        self.deadline = Some(d);
        self
    }

    /// Enable speculative commits at the given likelihood threshold
    /// (`0 < threshold <= 1`).
    pub fn speculate_at(mut self, threshold: f64) -> Self {
        assert!((0.0..=1.0).contains(&threshold) && threshold > 0.0);
        self.speculation_threshold = Some(threshold);
        self
    }

    /// Attach a compensating transaction, submitted automatically when this
    /// transaction speculated and then aborted. Requires speculation to be
    /// enabled (set [`TxnBuilder::speculate_at`]); a transaction that never
    /// told its user "success" has nothing to compensate for.
    pub fn compensate_with(mut self, txn: PlanetTxn) -> Self {
        self.compensation = Some(Box::new(txn));
        self
    }

    /// Observe every event of this transaction.
    pub fn on_event(mut self, cb: impl FnMut(&TxnEvent) + Send + 'static) -> Self {
        self.callbacks.push(Box::new(cb));
        self
    }

    /// Observe progress events only (stage + likelihood).
    pub fn on_progress(self, mut cb: impl FnMut(Stage, f64) + Send + 'static) -> Self {
        self.on_event(move |e| {
            if let TxnEvent::Progress {
                stage, likelihood, ..
            } = e
            {
                cb(*stage, *likelihood);
            }
        })
    }

    /// Observe the speculative-commit event only.
    pub fn on_speculative(self, mut cb: impl FnMut(f64) + Send + 'static) -> Self {
        self.on_event(move |e| {
            if let TxnEvent::Speculative { likelihood, .. } = e {
                cb(*likelihood);
            }
        })
    }

    /// Observe the final outcome only.
    pub fn on_final(self, mut cb: impl FnMut(FinalOutcome) + Send + 'static) -> Self {
        self.on_event(move |e| {
            if let TxnEvent::Final { outcome, .. } = e {
                cb(*outcome);
            }
        })
    }

    /// Observe the apology event only (speculated, then aborted).
    pub fn on_apology(self, mut cb: impl FnMut() + Send + 'static) -> Self {
        self.on_event(move |e| {
            if let TxnEvent::Apology { .. } = e {
                cb();
            }
        })
    }

    /// Finish building.
    pub fn build(self) -> PlanetTxn {
        PlanetTxn {
            spec: self.spec,
            plan: self.plan,
            deadline: self.deadline,
            speculation_threshold: self.speculation_threshold,
            compensation: self.compensation,
            callbacks: self.callbacks,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn builder_collects_spec() {
        let txn = PlanetTxn::builder()
            .read("a")
            .set("b", 5i64)
            .add("c", -2)
            .add_with_floor("d", -1, 0)
            .delete("e")
            .deadline(SimDuration::from_millis(300))
            .speculate_at(0.9)
            .build();
        assert_eq!(txn.spec.reads.len(), 1);
        assert_eq!(txn.spec.writes.len(), 4);
        assert_eq!(txn.deadline, Some(SimDuration::from_millis(300)));
        assert_eq!(txn.speculation_threshold, Some(0.9));
    }

    #[test]
    fn callbacks_fire_filtered() {
        let finals = Arc::new(AtomicUsize::new(0));
        let progresses = Arc::new(AtomicUsize::new(0));
        let f2 = finals.clone();
        let p2 = progresses.clone();
        let mut txn = PlanetTxn::builder()
            .on_final(move |_| {
                f2.fetch_add(1, Ordering::SeqCst);
            })
            .on_progress(move |_, _| {
                p2.fetch_add(1, Ordering::SeqCst);
            })
            .build();
        let handle = TxnHandle { site: 0, tag: 0 };
        txn.fire(&TxnEvent::Progress {
            handle,
            stage: Stage::Voting,
            likelihood: 0.5,
            elapsed: SimDuration::ZERO,
        });
        txn.fire(&TxnEvent::Final {
            handle,
            outcome: FinalOutcome::Committed,
            latency: SimDuration::ZERO,
            decided_at: SimTime::ZERO,
        });
        assert_eq!(finals.load(Ordering::SeqCst), 1);
        assert_eq!(progresses.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn event_handle_extraction() {
        let handle = TxnHandle { site: 2, tag: 7 };
        let e = TxnEvent::Apology { handle };
        assert_eq!(e.handle(), handle);
        assert_eq!(handle.to_string(), "txn[2:7]");
    }

    #[test]
    #[should_panic]
    fn zero_speculation_threshold_panics() {
        let _ = PlanetTxn::builder().speculate_at(0.0);
    }

    #[test]
    fn final_outcome_predicates() {
        assert!(FinalOutcome::Committed.is_commit());
        assert!(!FinalOutcome::Rejected.is_commit());
    }
}
