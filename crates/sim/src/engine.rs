//! The discrete-event simulation engine.
//!
//! The engine owns the actors, the event queue, the network model, the clock,
//! the RNG and the metrics registry. Execution is single-threaded and
//! deterministic: events are ordered by `(time, sequence number)` where the
//! sequence number breaks ties in scheduling order.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use crate::actor::{drive, drive_start, Actor, ActorId, Effect, TurnInputs};
use crate::metrics::Metrics;
use crate::net::{NetworkModel, SiteId};
use crate::rng::DetRng;
use crate::time::{SimDuration, SimTime};

/// A scheduled message delivery.
struct Scheduled<M> {
    at: SimTime,
    seq: u64,
    from: ActorId,
    dst: ActorId,
    msg: M,
}

// Order by (at, seq) only; messages are opaque.
impl<M> PartialEq for Scheduled<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M> Eq for Scheduled<M> {}
impl<M> PartialOrd for Scheduled<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Scheduled<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// The simulation engine. `M` is the message type shared by all actors.
pub struct Simulation<M> {
    time: SimTime,
    seq: u64,
    queue: BinaryHeap<Reverse<Scheduled<M>>>,
    actors: Vec<Option<Box<dyn Actor<M>>>>,
    sites: Vec<SiteId>,
    net: NetworkModel,
    rng: DetRng,
    metrics: Metrics,
    started: bool,
    halted: bool,
    events_processed: u64,
    dropped_messages: u64,
    /// Per-(src, dst) pair: the latest delivery time scheduled so far.
    /// Deliveries between one ordered pair never reorder (TCP-like FIFO
    /// channels); cross-pair timing remains fully stochastic.
    fifo_high_water: HashMap<(ActorId, ActorId), SimTime>,
}

impl<M: 'static> Simulation<M> {
    /// Create a simulation over the given network model, seeded
    /// deterministically.
    pub fn new(net: NetworkModel, seed: u64) -> Self {
        Simulation {
            time: SimTime::ZERO,
            seq: 0,
            queue: BinaryHeap::new(),
            actors: Vec::new(),
            sites: Vec::new(),
            net,
            rng: DetRng::new(seed),
            metrics: Metrics::new(),
            started: false,
            halted: false,
            events_processed: 0,
            dropped_messages: 0,
            fifo_high_water: HashMap::new(),
        }
    }

    /// Register an actor at a site, returning its id. All actors must be
    /// registered before the first call to a `run_*` method.
    pub fn add_actor(&mut self, site: SiteId, actor: Box<dyn Actor<M>>) -> ActorId {
        assert!(
            !self.started,
            "cannot add actors after the simulation started"
        );
        assert!(
            (site.0 as usize) < self.net.num_sites(),
            "site {site} not in topology"
        );
        let id = ActorId(self.actors.len() as u32);
        self.actors.push(Some(actor));
        self.sites.push(site);
        id
    }

    /// The site an actor was registered at.
    pub fn site_of(&self, id: ActorId) -> SiteId {
        self.sites[id.0 as usize]
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.time
    }

    /// Total events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Messages lost to the network model so far.
    pub fn dropped_messages(&self) -> u64 {
        self.dropped_messages
    }

    /// Shared metrics registry (read access).
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Shared metrics registry (write access, e.g. for harness bookkeeping).
    pub fn metrics_mut(&mut self) -> &mut Metrics {
        &mut self.metrics
    }

    /// The network model (e.g. to add spikes before running).
    pub fn network_mut(&mut self) -> &mut NetworkModel {
        &mut self.net
    }

    /// Inject a message from "outside" (the harness) to an actor at an
    /// absolute time. Must not be in the past.
    pub fn inject_at(&mut self, at: SimTime, dst: ActorId, msg: M) {
        assert!(at >= self.time, "cannot inject into the past");
        let seq = self.next_seq();
        self.queue.push(Reverse(Scheduled {
            at,
            seq,
            from: dst,
            dst,
            msg,
        }));
    }

    fn next_seq(&mut self) -> u64 {
        let s = self.seq;
        self.seq += 1;
        s
    }

    fn start_if_needed(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for i in 0..self.actors.len() {
            self.dispatch_start(ActorId(i as u32));
        }
    }

    fn dispatch_start(&mut self, id: ActorId) {
        let mut actor = self.actors[id.0 as usize].take().expect("actor missing");
        let inputs = TurnInputs {
            now: self.time,
            self_id: id,
            self_site: self.sites[id.0 as usize],
        };
        let turn = drive_start(actor.as_mut(), inputs, &mut self.rng, &mut self.metrics);
        self.actors[id.0 as usize] = Some(actor);
        self.apply_effects(id, turn.effects);
    }

    fn apply_effects(&mut self, src: ActorId, effects: Vec<Effect<M>>) {
        for effect in effects {
            match effect {
                Effect::Send { dst, msg } => {
                    let src_site = self.sites[src.0 as usize];
                    let dst_site = self.sites[dst.0 as usize];
                    match self
                        .net
                        .sample_delay(src_site, dst_site, self.time, &mut self.rng)
                    {
                        Some(delay) => {
                            let mut at = self.time + delay;
                            // FIFO per ordered pair: a message never
                            // overtakes an earlier one on the same channel.
                            let hw = self
                                .fifo_high_water
                                .entry((src, dst))
                                .or_insert(SimTime::ZERO);
                            if at <= *hw {
                                at = *hw + SimDuration::from_micros(1);
                            }
                            *hw = at;
                            let seq = self.next_seq();
                            self.queue.push(Reverse(Scheduled {
                                at,
                                seq,
                                from: src,
                                dst,
                                msg,
                            }));
                        }
                        None => self.dropped_messages += 1,
                    }
                }
                Effect::Timer { delay, msg } => {
                    let at = self.time + delay;
                    let seq = self.next_seq();
                    self.queue.push(Reverse(Scheduled {
                        at,
                        seq,
                        from: src,
                        dst: src,
                        msg,
                    }));
                }
                Effect::Halt => self.halted = true,
            }
        }
    }

    /// Process a single event. Returns `false` when the queue is empty or the
    /// simulation has been halted.
    pub fn step(&mut self) -> bool {
        self.start_if_needed();
        if self.halted {
            return false;
        }
        let Some(Reverse(ev)) = self.queue.pop() else {
            return false;
        };
        debug_assert!(ev.at >= self.time, "time went backwards");
        self.time = ev.at;
        self.events_processed += 1;

        let idx = ev.dst.0 as usize;
        let mut actor = self.actors[idx]
            .take()
            .expect("actor missing (re-entrant dispatch?)");
        let inputs = TurnInputs {
            now: self.time,
            self_id: ev.dst,
            self_site: self.sites[idx],
        };
        let turn = drive(
            actor.as_mut(),
            inputs,
            ev.from,
            ev.msg,
            &mut self.rng,
            &mut self.metrics,
        );
        self.actors[idx] = Some(actor);
        self.apply_effects(ev.dst, turn.effects);
        !self.halted
    }

    /// Run until the queue drains, the simulation halts, or `deadline`
    /// passes. Returns the time at which the run stopped.
    pub fn run_until(&mut self, deadline: SimTime) -> SimTime {
        self.start_if_needed();
        while !self.halted {
            match self.queue.peek() {
                Some(Reverse(ev)) if ev.at <= deadline => {
                    self.step();
                }
                _ => break,
            }
        }
        // Advance the clock to the deadline if we stopped early with events
        // still pending beyond it.
        if self.time < deadline && (self.queue.peek().is_some() || self.halted) {
            self.time = deadline;
        }
        self.time
    }

    /// Run for an additional `span` of simulated time.
    pub fn run_for(&mut self, span: SimDuration) -> SimTime {
        let deadline = self.time + span;
        self.run_until(deadline)
    }

    /// Run until the event queue is empty or the simulation halts. `max_events`
    /// bounds runaway simulations (panics if exceeded).
    pub fn run_to_completion(&mut self, max_events: u64) {
        self.start_if_needed();
        let start = self.events_processed;
        while self.step() {
            assert!(
                self.events_processed - start <= max_events,
                "simulation exceeded {max_events} events — livelock?"
            );
        }
    }

    /// Borrow a registered actor (e.g. to read results after a run). Panics
    /// if the id is unknown.
    pub fn actor(&self, id: ActorId) -> &dyn Actor<M> {
        self.actors[id.0 as usize]
            .as_deref()
            .expect("actor missing")
    }

    /// Mutably borrow a registered actor.
    pub fn actor_mut(&mut self, id: ActorId) -> &mut (dyn Actor<M> + 'static) {
        self.actors[id.0 as usize]
            .as_deref_mut()
            .expect("actor missing")
    }

    /// Borrow a registered actor downcast to its concrete type, or `None`
    /// if the type does not match.
    pub fn actor_as<T: Actor<M>>(&self, id: ActorId) -> Option<&T>
    where
        M: 'static,
    {
        let actor: &dyn std::any::Any = self.actors[id.0 as usize].as_deref()?;
        actor.downcast_ref::<T>()
    }

    /// Mutably borrow a registered actor downcast to its concrete type.
    pub fn actor_as_mut<T: Actor<M>>(&mut self, id: ActorId) -> Option<&mut T>
    where
        M: 'static,
    {
        let actor: &mut dyn std::any::Any = self.actors[id.0 as usize].as_deref_mut()?;
        actor.downcast_mut::<T>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::actor::Context;
    use crate::topology;

    #[derive(Debug, Clone, PartialEq)]
    enum TestMsg {
        Ping(u32),
        Pong(u32),
        Tick,
    }

    /// Replies to pings, counts what it saw.
    struct Ponger {
        seen: Vec<u32>,
    }

    impl Actor<TestMsg> for Ponger {
        fn on_message(&mut self, from: ActorId, msg: TestMsg, ctx: &mut Context<'_, TestMsg>) {
            if let TestMsg::Ping(n) = msg {
                self.seen.push(n);
                ctx.send(from, TestMsg::Pong(n));
            }
        }
    }

    /// Sends pings on start and on a periodic timer; records pong latencies.
    struct Pinger {
        peer: ActorId,
        remaining: u32,
        sent_at: std::collections::HashMap<u32, SimTime>,
        latencies: Vec<SimDuration>,
        next: u32,
    }

    impl Actor<TestMsg> for Pinger {
        fn on_start(&mut self, ctx: &mut Context<'_, TestMsg>) {
            ctx.schedule(SimDuration::from_millis(1), TestMsg::Tick);
        }

        fn on_message(&mut self, _from: ActorId, msg: TestMsg, ctx: &mut Context<'_, TestMsg>) {
            match msg {
                TestMsg::Tick => {
                    if self.remaining > 0 {
                        self.remaining -= 1;
                        let n = self.next;
                        self.next += 1;
                        self.sent_at.insert(n, ctx.now());
                        ctx.send(self.peer, TestMsg::Ping(n));
                        ctx.schedule(SimDuration::from_millis(10), TestMsg::Tick);
                    }
                }
                TestMsg::Pong(n) => {
                    let sent = self.sent_at[&n];
                    let rtt = ctx.now() - sent;
                    self.latencies.push(rtt);
                    ctx.metrics().histogram("rtt").record(rtt.as_micros());
                    if self.latencies.len() as u32 == 5 {
                        ctx.halt();
                    }
                }
                TestMsg::Ping(_) => unreachable!(),
            }
        }
    }

    fn build() -> (Simulation<TestMsg>, ActorId) {
        let mut sim = Simulation::new(topology::three_dc(), 42);
        let ponger = sim.add_actor(SiteId(2), Box::new(Ponger { seen: Vec::new() }));
        let pinger = sim.add_actor(
            SiteId(0),
            Box::new(Pinger {
                peer: ponger,
                remaining: 5,
                sent_at: Default::default(),
                latencies: Vec::new(),
                next: 0,
            }),
        );
        (sim, pinger)
    }

    #[test]
    fn ping_pong_round_trips_near_rtt() {
        let (mut sim, pinger) = build();
        sim.run_to_completion(10_000);
        let h = sim.metrics().get_histogram("rtt").unwrap();
        assert_eq!(h.count(), 5);
        // site0 <-> site2 RTT is 150ms; jitter is mild.
        let mean = h.mean().unwrap() / 1_000.0;
        assert!((mean - 150.0).abs() < 25.0, "mean rtt {mean}ms");
        let _ = sim.actor(pinger); // still retrievable after the run
    }

    #[test]
    fn identical_seeds_replay_identically() {
        let run = |seed| {
            let mut sim = Simulation::new(topology::three_dc(), seed);
            let ponger = sim.add_actor(SiteId(2), Box::new(Ponger { seen: Vec::new() }));
            let _ = sim.add_actor(
                SiteId(0),
                Box::new(Pinger {
                    peer: ponger,
                    remaining: 5,
                    sent_at: Default::default(),
                    latencies: Vec::new(),
                    next: 0,
                }),
            );
            sim.run_to_completion(10_000);
            (sim.now(), sim.events_processed())
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn run_until_respects_deadline() {
        let (mut sim, _) = build();
        let stop = sim.run_until(SimTime::from_millis(5));
        assert!(stop <= SimTime::from_millis(5));
        // First ping fires at 1ms; pong can't have arrived inside 5ms
        // (one-way delay is 75ms), so no RTT samples yet.
        assert!(sim.metrics().get_histogram("rtt").is_none());
    }

    #[test]
    fn halt_stops_processing() {
        let (mut sim, _) = build();
        sim.run_to_completion(10_000);
        let processed = sim.events_processed();
        assert!(!sim.step(), "step after halt must return false");
        assert_eq!(sim.events_processed(), processed);
    }

    #[test]
    fn same_pair_messages_never_reorder() {
        // A burst of pings from one actor to another must arrive in send
        // order despite independent jitter draws.
        struct Burst {
            peer: ActorId,
        }
        impl Actor<TestMsg> for Burst {
            fn on_start(&mut self, ctx: &mut Context<'_, TestMsg>) {
                for n in 0..50 {
                    ctx.send(self.peer, TestMsg::Ping(n));
                }
            }
            fn on_message(&mut self, _f: ActorId, _m: TestMsg, _c: &mut Context<'_, TestMsg>) {}
        }
        let mut sim = Simulation::new(topology::three_dc(), 11);
        let ponger = sim.add_actor(SiteId(2), Box::new(Ponger { seen: Vec::new() }));
        let _burst = sim.add_actor(SiteId(0), Box::new(Burst { peer: ponger }));
        sim.run_for(SimDuration::from_secs(2));
        let seen = &sim.actor_as::<Ponger>(ponger).unwrap().seen;
        assert_eq!(*seen, (0..50).collect::<Vec<_>>(), "FIFO per channel");
    }

    #[test]
    fn inject_delivers_external_messages() {
        let mut sim: Simulation<TestMsg> = Simulation::new(topology::single_dc(), 1);
        let ponger = sim.add_actor(SiteId(0), Box::new(Ponger { seen: Vec::new() }));
        sim.inject_at(SimTime::from_millis(3), ponger, TestMsg::Ping(99));
        sim.run_to_completion(100);
        assert!(sim.now() >= SimTime::from_millis(3));
    }

    #[test]
    #[should_panic(expected = "cannot inject into the past")]
    fn inject_into_past_panics() {
        let mut sim: Simulation<TestMsg> = Simulation::new(topology::single_dc(), 1);
        let a = sim.add_actor(SiteId(0), Box::new(Ponger { seen: Vec::new() }));
        sim.inject_at(SimTime::from_millis(10), a, TestMsg::Tick);
        sim.run_to_completion(100);
        sim.inject_at(SimTime::from_millis(1), a, TestMsg::Tick);
    }

    #[test]
    fn actor_downcast_mismatch_returns_none() {
        let mut sim: Simulation<TestMsg> = Simulation::new(topology::single_dc(), 1);
        let id = sim.add_actor(SiteId(0), Box::new(Ponger { seen: Vec::new() }));
        assert!(sim.actor_as::<Ponger>(id).is_some());
        assert!(sim.actor_as::<Pinger>(id).is_none());
        assert!(sim.actor_as_mut::<Pinger>(id).is_none());
        assert_eq!(sim.site_of(id), SiteId(0));
    }

    #[test]
    fn dropped_messages_are_counted() {
        let mut sim: Simulation<TestMsg> = Simulation::new(topology::three_dc(), 2);
        sim.network_mut().loss_prob = 1.0; // all inter-site traffic dies
        let ponger = sim.add_actor(SiteId(2), Box::new(Ponger { seen: Vec::new() }));
        let _pinger = sim.add_actor(
            SiteId(0),
            Box::new(Pinger {
                peer: ponger,
                remaining: 3,
                sent_at: Default::default(),
                latencies: Vec::new(),
                next: 0,
            }),
        );
        sim.run_for(SimDuration::from_secs(1));
        assert_eq!(sim.dropped_messages(), 3, "all three pings must be lost");
        let seen = &sim.actor_as::<Ponger>(ponger).unwrap().seen;
        assert!(seen.is_empty());
    }

    #[test]
    #[should_panic(expected = "site")]
    fn adding_actor_at_unknown_site_panics() {
        let mut sim: Simulation<TestMsg> = Simulation::new(topology::single_dc(), 1);
        sim.add_actor(SiteId(3), Box::new(Ponger { seen: Vec::new() }));
    }
}
