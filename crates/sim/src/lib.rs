//! # planet-sim
//!
//! A deterministic discrete-event simulation kernel and wide-area network
//! model. This is the substrate on which the PLANET reproduction runs its
//! geo-replicated protocols: every replica, coordinator and client is an
//! [`Actor`] exchanging messages through a [`Simulation`] that applies a
//! configurable WAN latency model (base delay matrix, log-normal jitter,
//! heavy tails, loss, scheduled spikes and partitions).
//!
//! Determinism is the design center: a run is a pure function of
//! `(seed, configuration)`, so every experiment in the repository is exactly
//! replayable.
//!
//! ```
//! use planet_sim::{Actor, ActorId, Context, Simulation, SiteId, topology};
//!
//! #[derive(Debug)]
//! enum Msg { Hello }
//!
//! struct Greeter { greeted: bool }
//! impl Actor<Msg> for Greeter {
//!     fn on_message(&mut self, _from: ActorId, _msg: Msg, _ctx: &mut Context<'_, Msg>) {
//!         self.greeted = true;
//!     }
//! }
//!
//! let mut sim = Simulation::new(topology::single_dc(), 42);
//! let id = sim.add_actor(SiteId(0), Box::new(Greeter { greeted: false }));
//! sim.inject_at(planet_sim::SimTime::from_millis(1), id, Msg::Hello);
//! sim.run_to_completion(100);
//! assert!(sim.now() >= planet_sim::SimTime::from_millis(1));
//! ```

#![warn(missing_docs)]

mod actor;
mod engine;
pub mod metrics;
pub mod net;
mod rng;
mod time;
pub mod topology;

pub use actor::{
    drive, drive_into, drive_start, Actor, ActorId, Context, Effect, Turn, TurnInputs,
};
pub use engine::Simulation;
pub use metrics::{Counter, Histogram, Metrics, TimeSeries};
pub use net::{JitterModel, NetworkModel, Partition, SiteId, Spike};
pub use rng::DetRng;
pub use time::{SimDuration, SimTime};
