//! The wide-area network model.
//!
//! PLANET's whole premise is that commit latency in a geo-replicated system
//! is *unpredictable*: messages cross oceans, jitter is heavy-tailed, load
//! spikes and partial failures happen. This module models those phenomena:
//!
//! * a base one-way-delay matrix between sites (data centers),
//! * multiplicative log-normal jitter plus an occasional heavy tail,
//! * independent message loss,
//! * scheduled *spikes* (a time window during which delays on some or all
//!   paths are multiplied), and
//! * scheduled *partitions* (a time window during which a pair of sites
//!   cannot exchange messages at all).

use crate::rng::DetRng;
use crate::time::{SimDuration, SimTime};

/// Identifies a site (data center).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SiteId(pub u8);

impl std::fmt::Display for SiteId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "site{}", self.0)
    }
}

/// Jitter applied multiplicatively to every base delay.
#[derive(Debug, Clone, Copy)]
pub struct JitterModel {
    /// Sigma of the log-normal multiplier (mu = 0, so the median factor is 1).
    pub sigma: f64,
    /// Probability that a message additionally lands in the heavy tail.
    pub tail_prob: f64,
    /// Multiplier applied to tail messages (on top of the log-normal factor).
    pub tail_factor: f64,
}

impl Default for JitterModel {
    fn default() -> Self {
        JitterModel {
            sigma: 0.12,
            tail_prob: 0.005,
            tail_factor: 3.0,
        }
    }
}

/// A window during which delays on matching paths are multiplied — models a
/// load spike, a congested link, or a slow replica.
#[derive(Debug, Clone, Copy)]
pub struct Spike {
    /// Start of the window (inclusive).
    pub from: SimTime,
    /// End of the window (exclusive).
    pub to: SimTime,
    /// Affected destination site, or `None` to affect every path.
    pub site: Option<SiteId>,
    /// Delay multiplier during the window (≥ 1 for a slowdown).
    pub factor: f64,
}

/// A window during which two sites cannot exchange messages in either
/// direction.
#[derive(Debug, Clone, Copy)]
pub struct Partition {
    /// Start of the window (inclusive).
    pub from: SimTime,
    /// End of the window (exclusive).
    pub to: SimTime,
    /// One side of the cut.
    pub a: SiteId,
    /// The other side of the cut.
    pub b: SiteId,
}

/// The full network model: topology plus stochastic behaviour.
#[derive(Debug, Clone)]
pub struct NetworkModel {
    /// `base_owd_us[src][dst]` = base one-way delay in microseconds.
    base_owd_us: Vec<Vec<u64>>,
    /// Jitter applied to every message.
    pub jitter: JitterModel,
    /// Independent probability that any message is lost.
    pub loss_prob: f64,
    /// Scheduled delay spikes.
    pub spikes: Vec<Spike>,
    /// Scheduled partitions.
    pub partitions: Vec<Partition>,
}

impl NetworkModel {
    /// Build a model from a symmetric round-trip-time matrix in milliseconds.
    /// The diagonal supplies intra-site RTTs.
    pub fn from_rtt_ms(rtt_ms: &[Vec<f64>]) -> Self {
        let n = rtt_ms.len();
        assert!(n > 0, "need at least one site");
        assert!(
            rtt_ms.iter().all(|row| row.len() == n),
            "matrix must be square"
        );
        let base_owd_us = rtt_ms
            .iter()
            .map(|row| {
                row.iter()
                    .map(|&rtt| (rtt * 500.0).round() as u64)
                    .collect()
            })
            .collect();
        NetworkModel {
            base_owd_us,
            jitter: JitterModel::default(),
            loss_prob: 0.0,
            spikes: Vec::new(),
            partitions: Vec::new(),
        }
    }

    /// Number of sites in the topology.
    pub fn num_sites(&self) -> usize {
        self.base_owd_us.len()
    }

    /// The base (jitter-free) one-way delay between two sites.
    pub fn base_delay(&self, src: SiteId, dst: SiteId) -> SimDuration {
        SimDuration::from_micros(self.base_owd_us[src.0 as usize][dst.0 as usize])
    }

    /// Add a scheduled spike.
    pub fn add_spike(&mut self, spike: Spike) {
        self.spikes.push(spike);
    }

    /// Add a scheduled partition.
    pub fn add_partition(&mut self, partition: Partition) {
        self.partitions.push(partition);
    }

    fn partitioned(&self, src: SiteId, dst: SiteId, now: SimTime) -> bool {
        self.partitions.iter().any(|p| {
            now >= p.from
                && now < p.to
                && ((p.a == src && p.b == dst) || (p.a == dst && p.b == src))
        })
    }

    fn spike_factor(&self, dst: SiteId, now: SimTime) -> f64 {
        self.spikes
            .iter()
            .filter(|s| now >= s.from && now < s.to && s.site.is_none_or(|x| x == dst))
            .map(|s| s.factor)
            .fold(1.0, f64::max)
    }

    /// Sample the delivery delay for a message sent now from `src` to `dst`.
    /// Returns `None` if the message is lost (dropped or partitioned).
    pub fn sample_delay(
        &self,
        src: SiteId,
        dst: SiteId,
        now: SimTime,
        rng: &mut DetRng,
    ) -> Option<SimDuration> {
        if self.partitioned(src, dst, now) {
            return None;
        }
        // Loss models WAN packet loss; intra-site hops (app server to its
        // colocated coordinator/replica — often the same process) are
        // reliable.
        if src != dst && self.loss_prob > 0.0 && rng.bernoulli(self.loss_prob) {
            return None;
        }
        let base = self.base_delay(src, dst);
        let mut factor = rng.log_normal(0.0, self.jitter.sigma);
        if self.jitter.tail_prob > 0.0 && rng.bernoulli(self.jitter.tail_prob) {
            factor *= self.jitter.tail_factor;
        }
        factor *= self.spike_factor(dst, now);
        // Never deliver instantaneously: a minimum of 50µs keeps event
        // ordering realistic even intra-site.
        Some(SimDuration::from_micros(
            base.mul_f64(factor).as_micros().max(50),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_site_model() -> NetworkModel {
        NetworkModel::from_rtt_ms(&[vec![0.5, 80.0], vec![80.0, 0.5]])
    }

    #[test]
    fn base_delay_is_half_rtt() {
        let net = two_site_model();
        assert_eq!(net.base_delay(SiteId(0), SiteId(1)).as_micros(), 40_000);
        assert_eq!(net.base_delay(SiteId(0), SiteId(0)).as_micros(), 250);
    }

    #[test]
    fn sampled_delays_center_on_base() {
        let net = two_site_model();
        let mut rng = DetRng::new(1);
        let n = 20_000;
        let mean: f64 = (0..n)
            .map(|_| {
                net.sample_delay(SiteId(0), SiteId(1), SimTime::ZERO, &mut rng)
                    .unwrap()
                    .as_millis_f64()
            })
            .sum::<f64>()
            / n as f64;
        // log-normal(0, 0.12) has mean exp(sigma^2/2) ≈ 1.0072; tail adds a bit.
        assert!((mean - 40.0).abs() < 2.0, "mean delay {mean}ms");
    }

    #[test]
    fn loss_spares_intra_site_messages() {
        let mut net = two_site_model();
        net.loss_prob = 1.0;
        let mut rng = DetRng::new(7);
        for _ in 0..100 {
            assert!(net
                .sample_delay(SiteId(0), SiteId(0), SimTime::ZERO, &mut rng)
                .is_some());
            assert!(net
                .sample_delay(SiteId(0), SiteId(1), SimTime::ZERO, &mut rng)
                .is_none());
        }
    }

    #[test]
    fn loss_drops_messages() {
        let mut net = two_site_model();
        net.loss_prob = 0.5;
        let mut rng = DetRng::new(2);
        let delivered = (0..10_000)
            .filter(|_| {
                net.sample_delay(SiteId(0), SiteId(1), SimTime::ZERO, &mut rng)
                    .is_some()
            })
            .count();
        assert!((4_500..5_500).contains(&delivered), "delivered {delivered}");
    }

    #[test]
    fn partitions_cut_both_directions_within_window() {
        let mut net = two_site_model();
        net.add_partition(Partition {
            from: SimTime::from_secs(1),
            to: SimTime::from_secs(2),
            a: SiteId(0),
            b: SiteId(1),
        });
        let mut rng = DetRng::new(3);
        let inside = SimTime::from_millis(1_500);
        let outside = SimTime::from_millis(2_500);
        assert!(net
            .sample_delay(SiteId(0), SiteId(1), inside, &mut rng)
            .is_none());
        assert!(net
            .sample_delay(SiteId(1), SiteId(0), inside, &mut rng)
            .is_none());
        assert!(net
            .sample_delay(SiteId(0), SiteId(1), outside, &mut rng)
            .is_some());
    }

    #[test]
    fn spikes_multiply_delay() {
        let mut net = two_site_model();
        net.jitter = JitterModel {
            sigma: 0.0,
            tail_prob: 0.0,
            tail_factor: 1.0,
        };
        net.add_spike(Spike {
            from: SimTime::ZERO,
            to: SimTime::from_secs(10),
            site: Some(SiteId(1)),
            factor: 4.0,
        });
        let mut rng = DetRng::new(4);
        let spiked = net
            .sample_delay(SiteId(0), SiteId(1), SimTime::from_secs(1), &mut rng)
            .unwrap();
        assert_eq!(spiked.as_micros(), 160_000);
        // Path toward the unaffected site is untouched.
        let normal = net
            .sample_delay(SiteId(1), SiteId(0), SimTime::from_secs(1), &mut rng)
            .unwrap();
        assert_eq!(normal.as_micros(), 40_000);
    }

    #[test]
    fn overlapping_spikes_take_max_not_product() {
        let mut net = two_site_model();
        net.jitter = JitterModel {
            sigma: 0.0,
            tail_prob: 0.0,
            tail_factor: 1.0,
        };
        for factor in [2.0, 3.0] {
            net.add_spike(Spike {
                from: SimTime::ZERO,
                to: SimTime::from_secs(10),
                site: None,
                factor,
            });
        }
        let mut rng = DetRng::new(5);
        let d = net
            .sample_delay(SiteId(0), SiteId(1), SimTime::from_secs(1), &mut rng)
            .unwrap();
        assert_eq!(d.as_micros(), 120_000);
    }

    #[test]
    fn partition_window_is_inclusive_exclusive() {
        let mut net = two_site_model();
        net.add_partition(Partition {
            from: SimTime::from_secs(1),
            to: SimTime::from_secs(2),
            a: SiteId(0),
            b: SiteId(1),
        });
        let mut rng = DetRng::new(8);
        // The instant before the window opens, traffic still flows.
        let before = SimTime::from_micros(999_999);
        assert!(net
            .sample_delay(SiteId(0), SiteId(1), before, &mut rng)
            .is_some());
        // `from` is inclusive: the first instant of the window cuts.
        assert!(net
            .sample_delay(SiteId(0), SiteId(1), SimTime::from_secs(1), &mut rng)
            .is_none());
        // `to` is exclusive: the window's end instant is already healed.
        assert!(net
            .sample_delay(SiteId(0), SiteId(1), SimTime::from_secs(2), &mut rng)
            .is_some());
    }

    #[test]
    fn partition_cuts_only_the_named_pair() {
        let mut net = NetworkModel::from_rtt_ms(&[
            vec![0.5, 80.0, 80.0],
            vec![80.0, 0.5, 80.0],
            vec![80.0, 80.0, 0.5],
        ]);
        net.add_partition(Partition {
            from: SimTime::ZERO,
            to: SimTime::from_secs(10),
            a: SiteId(0),
            b: SiteId(1),
        });
        let mut rng = DetRng::new(9);
        let now = SimTime::from_secs(5);
        assert!(net
            .sample_delay(SiteId(0), SiteId(1), now, &mut rng)
            .is_none());
        // Both endpoints still reach the third site, and each other's
        // intra-site traffic is untouched: the cluster can route around a
        // single cut link (what makes quorum protocols interesting).
        assert!(net
            .sample_delay(SiteId(0), SiteId(2), now, &mut rng)
            .is_some());
        assert!(net
            .sample_delay(SiteId(1), SiteId(2), now, &mut rng)
            .is_some());
        assert!(net
            .sample_delay(SiteId(2), SiteId(0), now, &mut rng)
            .is_some());
        assert!(net
            .sample_delay(SiteId(0), SiteId(0), now, &mut rng)
            .is_some());
    }

    #[test]
    fn disjoint_partitions_each_cut_their_own_window() {
        let mut net = two_site_model();
        for (from_s, to_s) in [(1, 2), (4, 5)] {
            net.add_partition(Partition {
                from: SimTime::from_secs(from_s),
                to: SimTime::from_secs(to_s),
                a: SiteId(0),
                b: SiteId(1),
            });
        }
        let mut rng = DetRng::new(10);
        for (t_s, expect_cut) in [(0, false), (1, true), (3, false), (4, true), (6, false)] {
            let now = SimTime::from_millis(t_s * 1000 + 500);
            let cut = net
                .sample_delay(SiteId(0), SiteId(1), now, &mut rng)
                .is_none();
            assert_eq!(cut, expect_cut, "at {t_s}.5s");
        }
    }

    #[test]
    fn spike_window_is_inclusive_exclusive() {
        let mut net = two_site_model();
        net.jitter = JitterModel {
            sigma: 0.0,
            tail_prob: 0.0,
            tail_factor: 1.0,
        };
        net.add_spike(Spike {
            from: SimTime::from_secs(1),
            to: SimTime::from_secs(2),
            site: None,
            factor: 4.0,
        });
        let mut rng = DetRng::new(11);
        let d = |net: &NetworkModel, now, rng: &mut DetRng| {
            net.sample_delay(SiteId(0), SiteId(1), now, rng)
                .unwrap()
                .as_micros()
        };
        assert_eq!(d(&net, SimTime::from_micros(999_999), &mut rng), 40_000);
        assert_eq!(d(&net, SimTime::from_secs(1), &mut rng), 160_000);
        assert_eq!(d(&net, SimTime::from_secs(2), &mut rng), 40_000);
    }

    #[test]
    fn site_spike_hits_inbound_paths_only() {
        // A spike models an overloaded *destination*: everything flowing into
        // the slow site — including its own intra-site hops — is delayed;
        // its outbound paths toward healthy sites are not.
        let mut net = two_site_model();
        net.jitter = JitterModel {
            sigma: 0.0,
            tail_prob: 0.0,
            tail_factor: 1.0,
        };
        net.add_spike(Spike {
            from: SimTime::ZERO,
            to: SimTime::from_secs(10),
            site: Some(SiteId(1)),
            factor: 10.0,
        });
        let mut rng = DetRng::new(12);
        let now = SimTime::from_secs(1);
        let into = net
            .sample_delay(SiteId(0), SiteId(1), now, &mut rng)
            .unwrap();
        assert_eq!(into.as_micros(), 400_000);
        let within = net
            .sample_delay(SiteId(1), SiteId(1), now, &mut rng)
            .unwrap();
        assert_eq!(
            within.as_micros(),
            2_500,
            "intra-site path of the spiked site"
        );
        let out_of = net
            .sample_delay(SiteId(1), SiteId(0), now, &mut rng)
            .unwrap();
        assert_eq!(
            out_of.as_micros(),
            40_000,
            "outbound path of the spiked site"
        );
    }

    #[test]
    fn spike_never_beats_partition() {
        // A path that is both spiked and partitioned is down, not slow.
        let mut net = two_site_model();
        net.add_spike(Spike {
            from: SimTime::ZERO,
            to: SimTime::from_secs(10),
            site: None,
            factor: 2.0,
        });
        net.add_partition(Partition {
            from: SimTime::ZERO,
            to: SimTime::from_secs(10),
            a: SiteId(0),
            b: SiteId(1),
        });
        let mut rng = DetRng::new(13);
        assert!(net
            .sample_delay(SiteId(0), SiteId(1), SimTime::from_secs(5), &mut rng)
            .is_none());
    }

    #[test]
    fn minimum_delay_floor() {
        let net = NetworkModel::from_rtt_ms(&[vec![0.0]]);
        let mut rng = DetRng::new(6);
        let d = net
            .sample_delay(SiteId(0), SiteId(0), SimTime::ZERO, &mut rng)
            .unwrap();
        assert!(d.as_micros() >= 50);
    }
}
