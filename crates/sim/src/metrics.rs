//! Measurement primitives: log-bucketed latency histograms, counters and
//! time series, plus a registry keyed by name.
//!
//! The histogram is HDR-style: values are bucketed by (power of two ×
//! linear sub-bucket), giving a bounded-size structure with a fixed relative
//! error (≈ 1/[`Histogram::SUB_BUCKETS`]) at every magnitude — suitable for
//! latencies ranging from microseconds to minutes.

use std::collections::BTreeMap;

use crate::time::SimTime;

/// Number of linear sub-buckets per power-of-two bucket.
const SUB_BUCKETS: usize = 32;
/// Number of power-of-two major buckets; covers values up to 2^40 µs (~12 days).
const MAJOR_BUCKETS: usize = 41;

/// A log-bucketed histogram of `u64` values with ~3% relative error.
///
/// ```
/// use planet_sim::Histogram;
///
/// let mut h = Histogram::new();
/// for v in 1..=1_000u64 {
///     h.record(v * 100);
/// }
/// let p99 = h.quantile(0.99).unwrap() as f64;
/// assert!((p99 - 99_000.0).abs() / 99_000.0 < 0.05);
/// ```
#[derive(Debug, Clone)]
pub struct Histogram {
    counts: Vec<u64>,
    total: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Number of linear sub-buckets per major (power-of-two) bucket.
    pub const SUB_BUCKETS: usize = SUB_BUCKETS;

    /// Create an empty histogram.
    pub fn new() -> Self {
        Histogram {
            counts: vec![0; MAJOR_BUCKETS * SUB_BUCKETS],
            total: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    fn bucket_index(value: u64) -> usize {
        if value < SUB_BUCKETS as u64 {
            return value as usize;
        }
        let major = 63 - value.leading_zeros() as usize; // floor(log2(value))
                                                         // Values in major bucket m span [2^m, 2^(m+1)); divide that span into
                                                         // SUB_BUCKETS linear slices.
        let shift = major.saturating_sub(SUB_BUCKETS.trailing_zeros() as usize);
        let sub = (value >> shift) as usize - SUB_BUCKETS;
        let base = (major - SUB_BUCKETS.trailing_zeros() as usize + 1) * SUB_BUCKETS;
        (base + sub).min(MAJOR_BUCKETS * SUB_BUCKETS - 1)
    }

    /// Representative (lower bound) value of a bucket.
    fn bucket_value(index: usize) -> u64 {
        let log2_sub = SUB_BUCKETS.trailing_zeros() as usize;
        if index < 2 * SUB_BUCKETS {
            return index as u64;
        }
        let major = index / SUB_BUCKETS - 1 + log2_sub;
        let sub = index % SUB_BUCKETS;
        ((SUB_BUCKETS + sub) as u64) << (major - log2_sub)
    }

    /// Record a value.
    pub fn record(&mut self, value: u64) {
        self.counts[Self::bucket_index(value)] += 1;
        self.total += 1;
        self.sum += value as u128;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Smallest recorded value, or `None` if empty.
    pub fn min(&self) -> Option<u64> {
        (self.total > 0).then_some(self.min)
    }

    /// Largest recorded value, or `None` if empty.
    pub fn max(&self) -> Option<u64> {
        (self.total > 0).then_some(self.max)
    }

    /// Arithmetic mean of recorded values, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        (self.total > 0).then(|| self.sum as f64 / self.total as f64)
    }

    /// Approximate value at quantile `q` in `[0, 1]`, or `None` if empty.
    /// The result is exact for values below `2 * SUB_BUCKETS` and within one
    /// sub-bucket (≈3% relative error) above.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.total as f64).ceil() as u64).max(1);
        if rank >= self.total {
            return Some(self.max);
        }
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(Self::bucket_value(i).clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.total += other.total;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Fraction of recorded values ≤ `value` (an empirical CDF point).
    pub fn cdf_at(&self, value: u64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let idx = Self::bucket_index(value);
        let below: u64 = self.counts[..=idx].iter().sum();
        below as f64 / self.total as f64
    }

    /// A compact one-line summary: count, mean and key percentiles (values
    /// interpreted as microseconds).
    pub fn summary(&self) -> String {
        match self.mean() {
            None => "n=0".to_string(),
            Some(mean) => format!(
                "n={} mean={:.2}ms p50={:.2}ms p90={:.2}ms p99={:.2}ms max={:.2}ms",
                self.total,
                mean / 1_000.0,
                self.quantile(0.50).expect("histogram is non-empty") as f64 / 1_000.0,
                self.quantile(0.90).expect("histogram is non-empty") as f64 / 1_000.0,
                self.quantile(0.99).expect("histogram is non-empty") as f64 / 1_000.0,
                self.max as f64 / 1_000.0,
            ),
        }
    }
}

/// A monotonically increasing counter.
#[derive(Debug, Clone, Copy, Default)]
pub struct Counter(u64);

impl Counter {
    /// Increment by one.
    pub fn inc(&mut self) {
        self.0 += 1;
    }

    /// Increment by `n`.
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0
    }
}

/// An append-only series of `(time, value)` samples.
#[derive(Debug, Clone, Default)]
pub struct TimeSeries {
    points: Vec<(SimTime, f64)>,
}

impl TimeSeries {
    /// Append a sample. Samples are expected in non-decreasing time order.
    pub fn push(&mut self, at: SimTime, value: f64) {
        debug_assert!(
            self.points.last().is_none_or(|&(t, _)| t <= at),
            "time series samples must be appended in order"
        );
        self.points.push((at, value));
    }

    /// The recorded samples.
    pub fn points(&self) -> &[(SimTime, f64)] {
        &self.points
    }

    /// Mean of values whose timestamps fall in `[from, to)`.
    pub fn window_mean(&self, from: SimTime, to: SimTime) -> Option<f64> {
        let vals: Vec<f64> = self
            .points
            .iter()
            .filter(|&&(t, _)| t >= from && t < to)
            .map(|&(_, v)| v)
            .collect();
        (!vals.is_empty()).then(|| vals.iter().sum::<f64>() / vals.len() as f64)
    }
}

/// A registry of named metrics. Names use `.`-separated paths by convention,
/// e.g. `"commit.latency.us_east"`. `BTreeMap` keeps iteration order (and
/// therefore printed reports) deterministic.
#[derive(Debug, Default)]
pub struct Metrics {
    histograms: BTreeMap<String, Histogram>,
    counters: BTreeMap<String, Counter>,
    series: BTreeMap<String, TimeSeries>,
}

impl Metrics {
    /// Create an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Get or create the histogram with the given name.
    pub fn histogram(&mut self, name: &str) -> &mut Histogram {
        self.histograms.entry(name.to_string()).or_default()
    }

    /// Get or create the counter with the given name.
    pub fn counter(&mut self, name: &str) -> &mut Counter {
        self.counters.entry(name.to_string()).or_default()
    }

    /// Get or create the time series with the given name.
    pub fn series(&mut self, name: &str) -> &mut TimeSeries {
        self.series.entry(name.to_string()).or_default()
    }

    /// Look up an existing histogram.
    pub fn get_histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Look up an existing counter's value (0 if absent).
    pub fn counter_value(&self, name: &str) -> u64 {
        self.counters.get(name).map_or(0, |c| c.get())
    }

    /// Look up an existing time series.
    pub fn get_series(&self, name: &str) -> Option<&TimeSeries> {
        self.series.get(name)
    }

    /// Iterate histograms in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Iterate counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), v.get()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::new();
        for v in 0..64 {
            h.record(v);
        }
        assert_eq!(h.count(), 64);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(63));
        // The 32nd smallest of {0..63} is 31.
        assert_eq!(h.quantile(0.5), Some(31));
    }

    #[test]
    fn quantiles_bounded_relative_error() {
        let mut h = Histogram::new();
        for v in 1..=100_000u64 {
            h.record(v);
        }
        for &(q, expect) in &[(0.5, 50_000.0), (0.9, 90_000.0), (0.99, 99_000.0)] {
            let got = h.quantile(q).unwrap() as f64;
            let rel = (got - expect).abs() / expect;
            assert!(rel < 0.05, "q={q} got={got} expect={expect} rel={rel}");
        }
    }

    #[test]
    fn empty_histogram_yields_none() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.mean(), None);
        assert_eq!(h.min(), None);
        assert_eq!(h.summary(), "n=0");
    }

    #[test]
    fn mean_is_exact() {
        let mut h = Histogram::new();
        h.record(10);
        h.record(20);
        h.record(60);
        assert_eq!(h.mean(), Some(30.0));
    }

    #[test]
    fn merge_combines() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(5);
        b.record(1_000_000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), Some(5));
        assert_eq!(a.max(), Some(1_000_000));
    }

    #[test]
    fn cdf_at_monotone() {
        let mut h = Histogram::new();
        for v in [10u64, 100, 1_000, 10_000] {
            h.record(v);
        }
        assert_eq!(h.cdf_at(5), 0.0);
        assert!(h.cdf_at(150) >= 0.5);
        assert_eq!(h.cdf_at(20_000), 1.0);
        let mut prev = 0.0;
        for v in [1u64, 10, 100, 1_000, 10_000, 100_000] {
            let c = h.cdf_at(v);
            assert!(c >= prev);
            prev = c;
        }
    }

    #[test]
    fn quantile_extremes_clamp_to_min_max() {
        let mut h = Histogram::new();
        h.record(123_456);
        h.record(789_012);
        assert_eq!(h.quantile(0.0), Some(123_456));
        assert_eq!(h.quantile(1.0), Some(789_012));
    }

    #[test]
    fn bucket_round_trip_is_close() {
        for v in [0u64, 1, 31, 32, 63, 64, 1_000, 123_456, 10_000_000, 1 << 35] {
            let idx = Histogram::bucket_index(v);
            let rep = Histogram::bucket_value(idx);
            assert!(rep <= v, "rep {rep} > v {v}");
            if v >= 64 {
                assert!((v - rep) as f64 / v as f64 <= 1.0 / 16.0, "v={v} rep={rep}");
            }
        }
    }

    #[test]
    fn counter_and_series() {
        let mut m = Metrics::new();
        m.counter("commits").inc();
        m.counter("commits").add(4);
        assert_eq!(m.counter_value("commits"), 5);
        assert_eq!(m.counter_value("absent"), 0);

        m.series("tps").push(SimTime::from_secs(1), 100.0);
        m.series("tps").push(SimTime::from_secs(2), 200.0);
        let mean = m
            .get_series("tps")
            .unwrap()
            .window_mean(SimTime::ZERO, SimTime::from_secs(3))
            .unwrap();
        assert_eq!(mean, 150.0);
        assert!(m
            .get_series("tps")
            .unwrap()
            .window_mean(SimTime::from_secs(5), SimTime::from_secs(6))
            .is_none());
    }
}
