//! Simulated time.
//!
//! The simulator measures time in whole microseconds. A microsecond grain is
//! fine enough to resolve local-area network hops (hundreds of microseconds)
//! while keeping arithmetic exact — no floating-point drift can desynchronise
//! two replays of the same seed.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, in microseconds since the start of the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);

    /// Build a time from raw microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Build a time from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Build a time from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// The raw microsecond count.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// The time expressed in (fractional) milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// The time expressed in (fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Duration elapsed since `earlier`, saturating to zero if `earlier`
    /// is actually later.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Build a duration from raw microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Build a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Build a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Build a duration from fractional milliseconds, rounding to the nearest
    /// microsecond. Negative inputs clamp to zero.
    pub fn from_millis_f64(ms: f64) -> Self {
        if ms <= 0.0 {
            SimDuration(0)
        } else {
            SimDuration((ms * 1_000.0).round() as u64)
        }
    }

    /// The raw microsecond count.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// The duration expressed in (fractional) milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// The duration expressed in (fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Scale the duration by a non-negative factor, rounding to the nearest
    /// microsecond.
    pub fn mul_f64(self, factor: f64) -> Self {
        debug_assert!(factor >= 0.0, "duration scale factor must be non-negative");
        SimDuration((self.0 as f64 * factor).round() as u64)
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Convert to a wall-clock [`std::time::Duration`]. Used by the live
    /// cluster runtime, where the same delay-model configuration that shapes
    /// simulated delivery shapes real sleeps.
    pub const fn to_std(self) -> std::time::Duration {
        std::time::Duration::from_micros(self.0)
    }

    /// Build from a wall-clock [`std::time::Duration`], truncating to whole
    /// microseconds.
    pub const fn from_std(d: std::time::Duration) -> Self {
        SimDuration(d.as_micros() as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl Add<SimDuration> for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(SimTime::from_millis(3).as_micros(), 3_000);
        assert_eq!(SimTime::from_secs(2).as_micros(), 2_000_000);
        assert_eq!(SimDuration::from_millis(5).as_millis_f64(), 5.0);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_millis(10) + SimDuration::from_millis(5);
        assert_eq!(t.as_micros(), 15_000);
        assert_eq!((t - SimTime::from_millis(10)).as_micros(), 5_000);
    }

    #[test]
    fn since_saturates() {
        let early = SimTime::from_millis(1);
        let late = SimTime::from_millis(9);
        assert_eq!(early.since(late), SimDuration::ZERO);
        assert_eq!(late.since(early).as_micros(), 8_000);
    }

    #[test]
    fn from_millis_f64_rounds_and_clamps() {
        assert_eq!(SimDuration::from_millis_f64(1.5).as_micros(), 1_500);
        assert_eq!(SimDuration::from_millis_f64(-3.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_millis_f64(0.0004).as_micros(), 0);
    }

    #[test]
    fn mul_f64_scales() {
        assert_eq!(
            SimDuration::from_millis(10).mul_f64(2.5).as_micros(),
            25_000
        );
        assert_eq!(SimDuration::from_millis(10).mul_f64(0.0), SimDuration::ZERO);
    }

    #[test]
    fn display_formats_millis() {
        assert_eq!(SimTime::from_micros(1_234).to_string(), "1.234ms");
    }
}
