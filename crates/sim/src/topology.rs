//! Canned topologies.
//!
//! The PLANET evaluation ran across five Amazon EC2 regions. The round-trip
//! times below approximate the published inter-region latencies of that era
//! (Virginia, California, Ireland, Tokyo, Sydney). Absolute numbers matter
//! less than the *shape*: one cheap regional pair (US-E/US-W), one mid-range
//! transatlantic path, and several 150–300 ms trans-Pacific paths, so that a
//! majority quorum is markedly cheaper than unanimity and the closest-quorum
//! choice depends on the coordinator's site.

use crate::net::NetworkModel;

/// The five-region names, in [`SiteId`](crate::net::SiteId) order.
pub const FIVE_DC_NAMES: [&str; 5] = [
    "us-east",
    "us-west",
    "eu-west",
    "ap-northeast",
    "ap-southeast",
];

/// Intra-data-center round trip time in milliseconds.
pub const LOCAL_RTT_MS: f64 = 0.5;

/// Round-trip-time matrix (milliseconds) for the five-region topology.
pub fn five_dc_rtt_ms() -> Vec<Vec<f64>> {
    let l = LOCAL_RTT_MS;
    vec![
        //            us-east us-west eu-west ap-ne  ap-se
        /* us-east */
        vec![l, 70.0, 80.0, 170.0, 200.0],
        /* us-west */ vec![70.0, l, 140.0, 110.0, 160.0],
        /* eu-west */ vec![80.0, 140.0, l, 220.0, 280.0],
        /* ap-ne   */ vec![170.0, 110.0, 220.0, l, 120.0],
        /* ap-se   */ vec![200.0, 160.0, 280.0, 120.0, l],
    ]
}

/// The standard five-data-center network model used by the experiments.
pub fn five_dc() -> NetworkModel {
    NetworkModel::from_rtt_ms(&five_dc_rtt_ms())
}

/// A small three-site topology (regional pair plus one distant site), handy
/// for unit tests that need asymmetry without five sites' worth of actors.
pub fn three_dc() -> NetworkModel {
    let l = LOCAL_RTT_MS;
    NetworkModel::from_rtt_ms(&[
        vec![l, 30.0, 150.0],
        vec![30.0, l, 170.0],
        vec![150.0, 170.0, l],
    ])
}

/// A single-site topology: every message is a local hop. Useful for tests
/// that exercise protocol logic without WAN effects.
pub fn single_dc() -> NetworkModel {
    NetworkModel::from_rtt_ms(&[vec![LOCAL_RTT_MS]])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::SiteId;

    #[test]
    fn five_dc_matrix_is_symmetric() {
        let m = five_dc_rtt_ms();
        assert_eq!(m.len(), 5);
        for (i, row) in m.iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                assert_eq!(v, m[j][i], "asymmetry at ({i},{j})");
            }
        }
    }

    #[test]
    fn five_dc_model_has_five_sites() {
        let net = five_dc();
        assert_eq!(net.num_sites(), 5);
        // us-east <-> us-west is the cheapest WAN path.
        let regional = net.base_delay(SiteId(0), SiteId(1));
        for dst in 2..5u8 {
            assert!(net.base_delay(SiteId(0), SiteId(dst)) > regional);
        }
    }

    #[test]
    fn names_align_with_matrix() {
        assert_eq!(FIVE_DC_NAMES.len(), five_dc_rtt_ms().len());
    }
}
