//! Deterministic randomness for the simulator.
//!
//! All stochastic behaviour in a run — network jitter, message loss, workload
//! arrivals, key choice — draws from a single [`DetRng`] seeded at
//! construction, so a run is a pure function of `(seed, config)`.
//!
//! The generator is a self-contained xoshiro256++ (public-domain algorithm by
//! Blackman & Vigna), seeded through SplitMix64 so that nearby seeds produce
//! decorrelated streams. No external crates are involved: the repository must
//! build in fully offline environments, and determinism across toolchain
//! updates matters more than having the fanciest generator. The handful of
//! distributions the simulator needs (normal, log-normal, exponential) are
//! implemented here directly.

/// A seeded deterministic random number generator with the sampling helpers
/// the simulator and workloads need.
#[derive(Debug, Clone)]
pub struct DetRng {
    state: [u64; 4],
    /// Cached second output of the Box–Muller transform.
    spare_normal: Option<f64>,
}

/// SplitMix64 step: expands a 64-bit seed into well-mixed words.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

impl DetRng {
    /// Create a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let mut state = [0u64; 4];
        for word in &mut state {
            *word = splitmix64(&mut sm);
        }
        // All-zero state is the one fixed point of xoshiro; SplitMix64 cannot
        // produce four zero outputs in a row, but guard anyway.
        if state == [0; 4] {
            state = [0x9E3779B97F4A7C15, 1, 2, 3];
        }
        DetRng {
            state,
            spare_normal: None,
        }
    }

    /// Derive an independent child generator. Used to give subsystems their
    /// own streams so adding draws in one subsystem does not perturb another.
    pub fn fork(&mut self) -> DetRng {
        DetRng::new(self.next_u64())
    }

    /// A uniform `u64` (xoshiro256++ step).
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// A uniform float in the half-open interval `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        // The top 53 bits give a uniform dyadic rational in [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform integer in `[lo, hi)`. Panics if the range is empty.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        let span = hi - lo;
        // Debiased multiply-shift (Lemire). For spans that divide 2^64 the
        // fast path never loops.
        let threshold = span.wrapping_neg() % span;
        loop {
            let x = self.next_u64();
            let hi128 = ((x as u128 * span as u128) >> 64) as u64;
            let lo128 = (x as u128 * span as u128) as u64;
            if lo128 >= threshold {
                return lo + hi128;
            }
        }
    }

    /// A uniform index in `[0, n)`. Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index range must be non-empty");
        self.range_u64(0, n as u64) as usize
    }

    /// A Bernoulli trial with success probability `p` (clamped to `[0, 1]`).
    pub fn bernoulli(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.unit_f64() < p
        }
    }

    /// A standard normal sample via the Box–Muller transform.
    pub fn standard_normal(&mut self) -> f64 {
        if let Some(z) = self.spare_normal.take() {
            return z;
        }
        // Draw u1 in (0, 1] to keep ln(u1) finite.
        let u1 = 1.0 - self.unit_f64();
        let u2 = self.unit_f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.spare_normal = Some(r * theta.sin());
        r * theta.cos()
    }

    /// A normal sample with the given mean and standard deviation.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.standard_normal()
    }

    /// A log-normal sample: `exp(N(mu, sigma))`. With `mu = 0` the median is
    /// exactly 1, which makes it a convenient multiplicative jitter factor.
    pub fn log_normal(&mut self, mu: f64, sigma: f64) -> f64 {
        self.normal(mu, sigma).exp()
    }

    /// An exponential sample with the given rate `lambda` (mean `1/lambda`).
    pub fn exponential(&mut self, lambda: f64) -> f64 {
        assert!(lambda > 0.0, "exponential rate must be positive");
        let u = 1.0 - self.unit_f64(); // in (0, 1]
        -u.ln() / lambda
    }

    /// Shuffle a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.index(i + 1);
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::new(7);
        let mut b = DetRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn unit_f64_in_range() {
        let mut rng = DetRng::new(3);
        for _ in 0..10_000 {
            let x = rng.unit_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_u64_covers_and_stays_inside() {
        let mut rng = DetRng::new(11);
        let mut seen = [false; 7];
        for _ in 0..10_000 {
            let x = rng.range_u64(3, 10);
            assert!((3..10).contains(&x));
            seen[(x - 3) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values in [3,10) must appear");
    }

    #[test]
    fn bernoulli_extremes() {
        let mut rng = DetRng::new(4);
        assert!(!rng.bernoulli(0.0));
        assert!(rng.bernoulli(1.0));
        assert!(!rng.bernoulli(-0.5));
        assert!(rng.bernoulli(1.5));
    }

    #[test]
    fn normal_moments_approximately_correct() {
        let mut rng = DetRng::new(5);
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal(10.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.05, "mean was {mean}");
        assert!((var - 4.0).abs() < 0.15, "var was {var}");
    }

    #[test]
    fn log_normal_median_is_one_for_zero_mu() {
        let mut rng = DetRng::new(6);
        let n = 100_001;
        let mut samples: Vec<f64> = (0..n).map(|_| rng.log_normal(0.0, 0.5)).collect();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples[n / 2];
        assert!((median - 1.0).abs() < 0.03, "median was {median}");
        assert!(samples.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn exponential_mean() {
        let mut rng = DetRng::new(8);
        let n = 100_000;
        let mean = (0..n).map(|_| rng.exponential(0.5)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.05, "mean was {mean}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = DetRng::new(9);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn fork_decorrelates() {
        let mut parent = DetRng::new(10);
        let mut child = parent.fork();
        let a = parent.next_u64();
        let b = child.next_u64();
        assert_ne!(a, b);
    }
}
