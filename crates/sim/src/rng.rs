//! Deterministic randomness for the simulator.
//!
//! All stochastic behaviour in a run — network jitter, message loss, workload
//! arrivals, key choice — draws from a single [`DetRng`] seeded at
//! construction, so a run is a pure function of `(seed, config)`.
//!
//! `rand_distr` is not part of the approved dependency set, so the handful of
//! distributions the simulator needs (normal, log-normal, exponential) are
//! implemented here directly.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A seeded deterministic random number generator with the sampling helpers
/// the simulator and workloads need.
#[derive(Debug, Clone)]
pub struct DetRng {
    inner: SmallRng,
    /// Cached second output of the Box–Muller transform.
    spare_normal: Option<f64>,
}

impl DetRng {
    /// Create a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        DetRng {
            inner: SmallRng::seed_from_u64(seed),
            spare_normal: None,
        }
    }

    /// Derive an independent child generator. Used to give subsystems their
    /// own streams so adding draws in one subsystem does not perturb another.
    pub fn fork(&mut self) -> DetRng {
        DetRng::new(self.inner.gen::<u64>())
    }

    /// A uniform `u64`.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.gen()
    }

    /// A uniform float in the half-open interval `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// A uniform integer in `[lo, hi)`. Panics if the range is empty.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        self.inner.gen_range(lo..hi)
    }

    /// A uniform index in `[0, n)`. Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index range must be non-empty");
        self.inner.gen_range(0..n)
    }

    /// A Bernoulli trial with success probability `p` (clamped to `[0, 1]`).
    pub fn bernoulli(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.unit_f64() < p
        }
    }

    /// A standard normal sample via the Box–Muller transform.
    pub fn standard_normal(&mut self) -> f64 {
        if let Some(z) = self.spare_normal.take() {
            return z;
        }
        // Draw u1 in (0, 1] to keep ln(u1) finite.
        let u1 = 1.0 - self.unit_f64();
        let u2 = self.unit_f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.spare_normal = Some(r * theta.sin());
        r * theta.cos()
    }

    /// A normal sample with the given mean and standard deviation.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.standard_normal()
    }

    /// A log-normal sample: `exp(N(mu, sigma))`. With `mu = 0` the median is
    /// exactly 1, which makes it a convenient multiplicative jitter factor.
    pub fn log_normal(&mut self, mu: f64, sigma: f64) -> f64 {
        self.normal(mu, sigma).exp()
    }

    /// An exponential sample with the given rate `lambda` (mean `1/lambda`).
    pub fn exponential(&mut self, lambda: f64) -> f64 {
        assert!(lambda > 0.0, "exponential rate must be positive");
        let u = 1.0 - self.unit_f64(); // in (0, 1]
        -u.ln() / lambda
    }

    /// Shuffle a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.index(i + 1);
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::new(7);
        let mut b = DetRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn unit_f64_in_range() {
        let mut rng = DetRng::new(3);
        for _ in 0..10_000 {
            let x = rng.unit_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn bernoulli_extremes() {
        let mut rng = DetRng::new(4);
        assert!(!rng.bernoulli(0.0));
        assert!(rng.bernoulli(1.0));
        assert!(!rng.bernoulli(-0.5));
        assert!(rng.bernoulli(1.5));
    }

    #[test]
    fn normal_moments_approximately_correct() {
        let mut rng = DetRng::new(5);
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal(10.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.05, "mean was {mean}");
        assert!((var - 4.0).abs() < 0.15, "var was {var}");
    }

    #[test]
    fn log_normal_median_is_one_for_zero_mu() {
        let mut rng = DetRng::new(6);
        let n = 100_001;
        let mut samples: Vec<f64> = (0..n).map(|_| rng.log_normal(0.0, 0.5)).collect();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples[n / 2];
        assert!((median - 1.0).abs() < 0.03, "median was {median}");
        assert!(samples.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn exponential_mean() {
        let mut rng = DetRng::new(8);
        let n = 100_000;
        let mean = (0..n).map(|_| rng.exponential(0.5)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.05, "mean was {mean}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = DetRng::new(9);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn fork_decorrelates() {
        let mut parent = DetRng::new(10);
        let mut child = parent.fork();
        let a = parent.next_u64();
        let b = child.next_u64();
        assert_ne!(a, b);
    }
}
