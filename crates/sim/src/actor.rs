//! The actor abstraction executed by the simulation engine.
//!
//! Every protocol participant — storage replica, transaction coordinator,
//! workload client — is an [`Actor`]. Actors communicate exclusively by
//! message passing through the engine, which applies the network model's
//! delays; there is no shared mutable state, which is what makes a run
//! deterministic and replayable.

use crate::net::SiteId;
use crate::rng::DetRng;
use crate::time::{SimDuration, SimTime};

/// Identifies an actor within a simulation. Ids are assigned densely in
/// registration order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ActorId(pub u32);

impl std::fmt::Display for ActorId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "actor#{}", self.0)
    }
}

/// A participant in the simulation, parameterised over the message type `M`
/// shared by all actors in a given simulation.
///
/// The `Any` supertrait lets harnesses downcast a registered actor back to
/// its concrete type after a run (see [`Simulation::actor_as`]) to harvest
/// results.
///
/// [`Simulation::actor_as`]: crate::Simulation::actor_as
/// `Send` lets a whole simulation move to a background thread (the
/// wall-clock runtime in `planet-core` does this).
pub trait Actor<M>: std::any::Any + Send {
    /// Called once when the simulation starts, before any messages flow.
    fn on_start(&mut self, _ctx: &mut Context<'_, M>) {}

    /// Called for each delivered message. `from` is the sending actor
    /// (equal to the receiver's own id for self-scheduled timer messages).
    fn on_message(&mut self, from: ActorId, msg: M, ctx: &mut Context<'_, M>);
}

/// Operations an actor may perform while handling a message. Each operation
/// is recorded by the engine and applied after the handler returns, keeping
/// event ordering under the engine's control.
pub struct Context<'a, M> {
    pub(crate) now: SimTime,
    pub(crate) self_id: ActorId,
    pub(crate) self_site: SiteId,
    pub(crate) rng: &'a mut DetRng,
    pub(crate) outbox: &'a mut Vec<Effect<M>>,
    pub(crate) metrics: &'a mut crate::metrics::Metrics,
}

/// A side effect emitted by an actor handler.
///
/// Public so that *drivers other than the simulation engine* — the live
/// cluster's thread-per-actor mailbox loops in `planet-cluster` — can apply
/// the effects of a [`drive`] call to their own fabric. Within the
/// deterministic engine, effects are still applied in emission order by the
/// scheduler.
#[derive(Debug)]
pub enum Effect<M> {
    /// Send `msg` to `dst` over the network (delay applied by the driver).
    Send {
        /// Destination actor.
        dst: ActorId,
        /// The message.
        msg: M,
    },
    /// Deliver `msg` back to the sender after exactly `delay` (a timer; the
    /// network model is not involved).
    Timer {
        /// How long from now the timer fires.
        delay: SimDuration,
        /// The message delivered back to the emitting actor.
        msg: M,
    },
    /// Stop the whole simulation after the current event drains.
    Halt,
}

/// The observable result of driving one actor event: every effect the
/// handler emitted, in emission order.
///
/// This is the factored "step function" of the actor model. The simulation
/// engine and a live thread's mailbox loop both funnel events through
/// [`drive`] / [`drive_start`], so one body of protocol logic serves both
/// worlds; only the interpretation of the effects differs (scheduler heap
/// vs. transport + local timer heap).
#[derive(Debug)]
pub struct Turn<M> {
    /// Effects in the order the handler emitted them.
    pub effects: Vec<Effect<M>>,
}

impl<M> Turn<M> {
    /// True if the handler requested a halt.
    pub fn halted(&self) -> bool {
        self.effects.iter().any(|e| matches!(e, Effect::Halt))
    }
}

/// Identity and clock inputs for one [`drive`] call — everything the
/// [`Context`] needs that is not borrowed state.
#[derive(Debug, Clone, Copy)]
pub struct TurnInputs {
    /// Current time (simulated, or wall-clock mapped to [`SimTime`]).
    pub now: SimTime,
    /// The actor being driven.
    pub self_id: ActorId,
    /// The site the actor lives at.
    pub self_site: SiteId,
}

/// Deliver one message to `actor` outside any engine, returning the effects
/// it emitted.
pub fn drive<M: 'static>(
    actor: &mut dyn Actor<M>,
    inputs: TurnInputs,
    from: ActorId,
    msg: M,
    rng: &mut DetRng,
    metrics: &mut crate::metrics::Metrics,
) -> Turn<M> {
    let mut effects = Vec::new();
    drive_into(actor, inputs, from, msg, rng, metrics, &mut effects);
    Turn { effects }
}

/// Deliver one message to `actor`, appending its effects to `effects`
/// instead of allocating a fresh [`Turn`].
///
/// This is the turn-group entry point used by batching drivers (the live
/// cluster's mailbox loop): a whole batch of delivered messages is driven
/// back to back into one reused effect buffer, so steady-state message
/// handling performs no per-message allocation and the driver can flush the
/// accumulated sends as a single coalesced transport batch.
pub fn drive_into<M: 'static>(
    actor: &mut dyn Actor<M>,
    inputs: TurnInputs,
    from: ActorId,
    msg: M,
    rng: &mut DetRng,
    metrics: &mut crate::metrics::Metrics,
    effects: &mut Vec<Effect<M>>,
) {
    let mut ctx = Context {
        now: inputs.now,
        self_id: inputs.self_id,
        self_site: inputs.self_site,
        rng,
        outbox: effects,
        metrics,
    };
    actor.on_message(from, msg, &mut ctx);
}

/// Run an actor's `on_start` hook outside any engine, returning the effects
/// it emitted.
pub fn drive_start<M: 'static>(
    actor: &mut dyn Actor<M>,
    inputs: TurnInputs,
    rng: &mut DetRng,
    metrics: &mut crate::metrics::Metrics,
) -> Turn<M> {
    let mut effects = Vec::new();
    let mut ctx = Context {
        now: inputs.now,
        self_id: inputs.self_id,
        self_site: inputs.self_site,
        rng,
        outbox: &mut effects,
        metrics,
    };
    actor.on_start(&mut ctx);
    Turn { effects }
}

impl<'a, M> Context<'a, M> {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The id of the actor handling this event.
    pub fn self_id(&self) -> ActorId {
        self.self_id
    }

    /// The site (data center) the handling actor lives in.
    pub fn self_site(&self) -> SiteId {
        self.self_site
    }

    /// The simulation's deterministic RNG.
    pub fn rng(&mut self) -> &mut DetRng {
        self.rng
    }

    /// The shared metrics registry.
    pub fn metrics(&mut self) -> &mut crate::metrics::Metrics {
        self.metrics
    }

    /// Send a message to another actor. The engine samples the network model
    /// for the delay between the two actors' sites; the message may be lost
    /// if the model says so.
    pub fn send(&mut self, dst: ActorId, msg: M) {
        self.outbox.push(Effect::Send { dst, msg });
    }

    /// Schedule `msg` for delivery back to this actor after `delay`,
    /// bypassing the network model. Use for timeouts and periodic work.
    pub fn schedule(&mut self, delay: SimDuration, msg: M) {
        self.outbox.push(Effect::Timer { delay, msg });
    }

    /// Request that the simulation stop once the current event finishes.
    pub fn halt(&mut self) {
        self.outbox.push(Effect::Halt);
    }
}
