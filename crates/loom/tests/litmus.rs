//! Litmus tests for the explorer itself: classic weak-memory shapes and
//! wakeup protocols, each in a sound variant (exploration completes
//! clean) and a broken variant (the harness must *find* the bug). The
//! broken variants are what make the sound ones meaningful — a checker
//! that cannot reproduce store buffering or a lost wakeup proves nothing
//! by passing.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use loom::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use loom::sync::{Condvar, Mutex};

fn fails(f: impl Fn() + Send + Sync + 'static) -> String {
    let Err(err) = catch_unwind(AssertUnwindSafe(|| loom::model(f))) else {
        panic!("model must fail");
    };
    err.downcast_ref::<String>()
        .cloned()
        .or_else(|| err.downcast_ref::<&str>().map(|s| (*s).to_string()))
        .unwrap_or_default()
}

/// RMW atomicity: concurrent `fetch_add`s never lose an increment, even
/// relaxed — and the explorer actually explores (more than one execution).
#[test]
fn concurrent_fetch_add_never_loses_increments() {
    let report = loom::model(|| {
        let n = Arc::new(AtomicU64::new(0));
        let n2 = Arc::clone(&n);
        let t = loom::thread::spawn(move || {
            n2.fetch_add(1, Ordering::Relaxed);
        });
        n.fetch_add(1, Ordering::Relaxed);
        t.join().expect("joins");
        assert_eq!(n.load(Ordering::Relaxed), 2);
    });
    assert!(report.iterations >= 2, "explorer must branch on schedules");
}

/// Store buffering under `SeqCst`: both threads reading the stale zero is
/// forbidden — the single-total-order guarantee Dekker protocols rely on.
#[test]
fn store_buffering_seqcst_forbids_double_stale_read() {
    loom::model(|| {
        let x = Arc::new(AtomicU64::new(0));
        let y = Arc::new(AtomicU64::new(0));
        let (x2, y2) = (Arc::clone(&x), Arc::clone(&y));
        let t = loom::thread::spawn(move || {
            x2.store(1, Ordering::SeqCst);
            y2.load(Ordering::SeqCst)
        });
        y.store(1, Ordering::SeqCst);
        let r2 = x.load(Ordering::SeqCst);
        let r1 = t.join().expect("joins");
        assert!(
            r1 == 1 || r2 == 1,
            "SeqCst store buffering: both sides read stale"
        );
    });
}

/// The same shape downgraded to `Relaxed` MUST exhibit both-stale — this
/// is the weak behavior a lost-wakeup bug hides behind, and the harness
/// has to be able to produce it.
#[test]
fn store_buffering_relaxed_is_found() {
    let msg = fails(|| {
        let x = Arc::new(AtomicU64::new(0));
        let y = Arc::new(AtomicU64::new(0));
        let (x2, y2) = (Arc::clone(&x), Arc::clone(&y));
        let t = loom::thread::spawn(move || {
            x2.store(1, Ordering::Relaxed);
            y2.load(Ordering::Relaxed)
        });
        y.store(1, Ordering::Relaxed);
        let r2 = x.load(Ordering::Relaxed);
        let r1 = t.join().expect("joins");
        assert!(r1 == 1 || r2 == 1, "relaxed store buffering observed");
    });
    assert!(msg.contains("relaxed store buffering observed"), "{msg}");
}

/// Message passing with a `Release` publish and an `Acquire` consume: a
/// reader that sees the flag must see the payload.
#[test]
fn message_passing_release_acquire_is_clean() {
    loom::model(|| {
        let data = Arc::new(AtomicU64::new(0));
        let flag = Arc::new(AtomicBool::new(false));
        let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
        let t = loom::thread::spawn(move || {
            d2.store(42, Ordering::Relaxed);
            f2.store(true, Ordering::Release);
        });
        if flag.load(Ordering::Acquire) {
            assert_eq!(data.load(Ordering::Relaxed), 42, "publish must be seen");
        }
        t.join().expect("joins");
    });
}

/// With the publish downgraded to `Relaxed` the stale payload is visible —
/// exactly the "misclassified relaxed handoff" ATOM001 exists to catch.
#[test]
fn message_passing_relaxed_publish_is_found() {
    let msg = fails(|| {
        let data = Arc::new(AtomicU64::new(0));
        let flag = Arc::new(AtomicBool::new(false));
        let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
        let t = loom::thread::spawn(move || {
            d2.store(42, Ordering::Relaxed);
            f2.store(true, Ordering::Relaxed);
        });
        if flag.load(Ordering::Acquire) {
            assert_eq!(data.load(Ordering::Relaxed), 42, "stale payload");
        }
        t.join().expect("joins");
    });
    assert!(msg.contains("stale payload"), "{msg}");
}

/// Modeled mutexes serialize their critical sections.
#[test]
fn mutex_critical_sections_are_exclusive() {
    loom::model(|| {
        let n = Arc::new(Mutex::new(0u64));
        let n2 = Arc::clone(&n);
        let t = loom::thread::spawn(move || {
            let mut g = n2.lock().expect("lock");
            let read = *g;
            *g = read + 1;
        });
        {
            let mut g = n.lock().expect("lock");
            let read = *g;
            *g = read + 1;
        }
        t.join().expect("joins");
        assert_eq!(*n.lock().expect("lock"), 2);
    });
}

/// The textbook lost wakeup: the consumer checks the predicate, the
/// producer sets it and notifies into empty air, the consumer then waits
/// forever. The harness must report the deadlock with a decision trace.
#[test]
fn lost_wakeup_check_outside_lock_is_found() {
    let msg = fails(|| {
        let work = Arc::new((Mutex::new(false), Condvar::new()));
        let w2 = Arc::clone(&work);
        let t = loom::thread::spawn(move || {
            *w2.0.lock().expect("lock") = true;
            w2.1.notify_one();
        });
        // Broken: the predicate check and the wait are not atomic, and the
        // wait never re-reads the predicate — the producer can run
        // entirely inside the window between them (WAKE002's shape).
        let ready = { *work.0.lock().expect("lock") };
        if !ready {
            let guard = work.0.lock().expect("lock");
            let _guard = work.1.wait(guard).expect("wait");
        }
        t.join().expect("joins");
    });
    assert!(msg.contains("deadlock"), "{msg}");
}

/// The fixed protocol — re-check the predicate under the lock the condvar
/// is tied to — explores clean.
#[test]
fn recheck_under_lock_never_loses_the_wakeup() {
    loom::model(|| {
        let work = Arc::new((Mutex::new(false), Condvar::new()));
        let w2 = Arc::clone(&work);
        let t = loom::thread::spawn(move || {
            *w2.0.lock().expect("lock") = true;
            w2.1.notify_one();
        });
        let mut guard = work.0.lock().expect("lock");
        while !*guard {
            guard = work.1.wait(guard).expect("wait");
        }
        drop(guard);
        t.join().expect("joins");
    });
}
