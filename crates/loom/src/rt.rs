//! The exploration engine: exhaustive, replayable interleaving search.
//!
//! An execution is identified with its *decision vector* — every source of
//! nondeterminism (which enabled thread runs the next synchronization op,
//! which visible store a load reads from, which waiter a `notify_one`
//! rouses) consumes one recorded [`Decision`]. The explorer runs the model
//! closure once per vector, depth-first: after each execution it bumps the
//! deepest decision that still has untried alternatives, truncates the
//! suffix, and replays. Model closures must therefore be deterministic
//! apart from the choices the runtime itself injects.
//!
//! Weak memory is modeled operationally with per-location store histories
//! and vector clocks, in the style of C11 release/acquire:
//!
//! * Every store keeps the value, the writer, the writer's op stamp, and —
//!   for `Release`-or-stronger stores — the writer's full clock as a sync
//!   payload. RMWs carry the payload of the store they displace (release
//!   sequences survive interposed RMWs of any ordering).
//! * A load may read any store no older than (a) the newest store at that
//!   location that happens-before the load, and (b) the newest store the
//!   thread has already observed there (per-location coherence). `SeqCst`
//!   loads additionally may not read past the newest `SeqCst` store —
//!   the operational single-total-order guarantee Dekker protocols buy.
//! * Acquire-or-stronger loads join the chosen store's sync payload into
//!   the reader's clock; mutexes and condvars carry clocks the same way.
//!
//! Lost wakeups are found structurally: when every live thread is blocked
//! (mutex, condvar, or join) and none is enabled, the execution is a
//! deadlock certificate and the run fails with its decision trace.
//! Condvar waits never time out and never wake spuriously, so a protocol
//! that leans on a timeout backstop to paper over a missed notify fails
//! here even though it limps along in production.
//!
//! Preemption bounding (default 2) keeps the search tractable: forced
//! switches (the running thread blocked or finished) are free, voluntary
//! ones are budgeted. This is the same exploration bound loom popularized;
//! most ordering bugs need at most two preemptions to surface.

use std::any::Any;
use std::cell::RefCell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::{mpsc, Arc, Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdMutexGuard};

/// Lane pool size and clock width: models may use at most this many
/// threads, counting the model closure itself.
pub const MAX_THREADS: usize = 4;

pub(crate) type VClock = [u32; MAX_THREADS];

fn join(into: &mut VClock, from: &VClock) {
    for (a, b) in into.iter_mut().zip(from.iter()) {
        *a = (*a).max(*b);
    }
}

fn is_acquire(ord: Ordering) -> bool {
    matches!(ord, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst)
}

fn is_release(ord: Ordering) -> bool {
    matches!(ord, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst)
}

/// One recorded nondeterministic choice: `chosen` of `options` equally
/// legal alternatives.
#[derive(Clone, Copy, Debug)]
struct Decision {
    chosen: usize,
    options: usize,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Status {
    Ready,
    BlockedMutex(usize),
    BlockedCv(usize),
    BlockedJoin(usize),
    Done,
}

struct ThreadSt {
    status: Status,
    view: VClock,
    /// Per-atomic coherence floor: index of the newest store this thread
    /// has observed at each location (indexed by atomic id).
    last_seen: Vec<usize>,
}

struct StoreEv {
    val: u64,
    writer: usize,
    /// The writer's own clock slot at store time: `reader.view[writer] >=
    /// stamp` means this store happens-before the reader's current op.
    stamp: u32,
    /// Sync payload joined into acquire readers (empty for relaxed stores).
    sync: VClock,
    sc: bool,
}

struct AtomicSt {
    /// Modification order; append-only within one execution.
    stores: Vec<StoreEv>,
}

struct MutexSt {
    owner: Option<usize>,
    clock: VClock,
}

struct CvSt {
    /// `(thread, mutex)` pairs parked on this condvar, in arrival order.
    waiters: Vec<(usize, usize)>,
}

struct Shared {
    threads: Vec<ThreadSt>,
    atomics: Vec<AtomicSt>,
    mutexes: Vec<MutexSt>,
    cvs: Vec<CvSt>,
    /// `SeqCst` fence clock: fences join it both ways, giving the C11
    /// total-fence-order synchronization.
    sc_fence: VClock,
    active: usize,
    trace: Vec<Decision>,
    cursor: usize,
    preemptions: usize,
    bound: Option<usize>,
    abort: bool,
    failure: Option<String>,
    live_jobs: usize,
}

type Job = Box<dyn FnOnce() + Send + 'static>;

pub(crate) struct Exec {
    shared: StdMutex<Shared>,
    cv: StdCondvar,
    lanes: Vec<mpsc::Sender<Job>>,
}

/// Panic payload used to unwind modeled threads when an execution is torn
/// down (failure elsewhere, or deadlock). Swallowed by the lane wrapper.
struct AbortToken;

thread_local! {
    static CTX: RefCell<Option<(Arc<Exec>, usize)>> = const { RefCell::new(None) };
}

fn ctx() -> (Arc<Exec>, usize) {
    CTX.with(|c| c.borrow().clone())
        .expect("loom sync primitives may only be used from inside loom::model")
}

fn lock(exec: &Exec) -> StdMutexGuard<'_, Shared> {
    match exec.shared.lock() {
        Ok(guard) => guard,
        // Poison happens only while an execution is being aborted (a lane
        // unwinds holding the guard); the state is still consistent.
        Err(poisoned) => poisoned.into_inner(),
    }
}

fn wait<'a>(exec: &'a Exec, guard: StdMutexGuard<'a, Shared>) -> StdMutexGuard<'a, Shared> {
    match exec.cv.wait(guard) {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

fn abort_unwind() -> ! {
    std::panic::panic_any(AbortToken);
}

fn fail(sh: &mut Shared, msg: String) {
    if sh.failure.is_none() {
        sh.failure = Some(msg);
    }
    sh.abort = true;
}

/// Consume (replaying) or record (exploring) one decision with `options`
/// alternatives. Single-option points are free: they can never branch.
fn decide(sh: &mut Shared, options: usize) -> usize {
    if options <= 1 {
        return 0;
    }
    let at = sh.cursor;
    sh.cursor += 1;
    if at < sh.trace.len() {
        sh.trace[at].chosen
    } else {
        sh.trace.push(Decision { chosen: 0, options });
        0
    }
}

fn enabled(sh: &Shared, t: usize) -> bool {
    match sh.threads[t].status {
        Status::Ready => true,
        Status::BlockedMutex(m) => sh.mutexes[m].owner.is_none(),
        Status::BlockedJoin(j) => sh.threads[j].status == Status::Done,
        Status::BlockedCv(_) | Status::Done => false,
    }
}

/// Pick the next thread to run. With `detach` the current thread cannot
/// continue (it blocked or finished) and the switch is forced; otherwise
/// staying put is alternative 0 and switching away spends one unit of
/// preemption budget. A forced switch with no enabled candidate and a
/// live thread remaining is a deadlock — the lost-wakeup certificate.
fn reschedule(sh: &mut Shared, me: usize, detach: bool) {
    let mut candidates: Vec<usize> = (0..sh.threads.len())
        .filter(|&t| t != me && enabled(sh, t))
        .collect();
    if !detach {
        candidates.insert(0, me);
        let capped = sh.bound.is_some_and(|b| sh.preemptions >= b);
        let pick = if capped {
            0
        } else {
            decide(sh, candidates.len())
        };
        if candidates[pick] != me {
            sh.preemptions += 1;
            sh.active = candidates[pick];
        }
        return;
    }
    if candidates.is_empty() {
        let stuck: Vec<String> = sh
            .threads
            .iter()
            .enumerate()
            .filter(|(_, t)| t.status != Status::Done)
            .map(|(i, t)| format!("thread {i} {:?}", t.status))
            .collect();
        if !stuck.is_empty() {
            fail(
                sh,
                format!(
                    "deadlock: every live thread is blocked (lost wakeup / missed notify): {}",
                    stuck.join(", ")
                ),
            );
        }
        return;
    }
    let pick = decide(sh, candidates.len());
    sh.active = candidates[pick];
}

/// Every modeled operation enters here: offer the scheduler a switch
/// point, wait for the turn, then stamp the op on the thread's clock.
fn op_entry<'a>(exec: &'a Exec, me: usize) -> StdMutexGuard<'a, Shared> {
    let mut sh = lock(exec);
    if sh.abort {
        drop(sh);
        abort_unwind();
    }
    reschedule(&mut sh, me, false);
    exec.cv.notify_all();
    while !sh.abort && sh.active != me {
        sh = wait(exec, sh);
    }
    if sh.abort {
        drop(sh);
        abort_unwind();
    }
    sh.threads[me].view[me] += 1;
    sh
}

/// Block the current thread (status already set by the caller) and wait
/// until a scheduling decision hands the turn back.
fn block_here<'a>(
    exec: &'a Exec,
    mut sh: StdMutexGuard<'a, Shared>,
    me: usize,
) -> StdMutexGuard<'a, Shared> {
    reschedule(&mut sh, me, true);
    exec.cv.notify_all();
    while !sh.abort && sh.active != me {
        sh = wait(exec, sh);
    }
    if sh.abort {
        drop(sh);
        abort_unwind();
    }
    sh
}

fn coherence_floor(sh: &mut Shared, me: usize, aid: usize) -> usize {
    let t = &mut sh.threads[me];
    if t.last_seen.len() <= aid {
        t.last_seen.resize(aid + 1, 0);
    }
    t.last_seen[aid]
}

// ---------------------------------------------------------------- atomics

pub(crate) fn register_atomic(init: u64) -> usize {
    let (exec, me) = ctx();
    let mut sh = lock(&exec);
    sh.threads[me].view[me] += 1;
    let stamp = sh.threads[me].view[me];
    let sync = sh.threads[me].view;
    sh.atomics.push(AtomicSt {
        stores: vec![StoreEv {
            val: init,
            writer: me,
            stamp,
            sync,
            sc: false,
        }],
    });
    sh.atomics.len() - 1
}

pub(crate) fn atomic_load(aid: usize, ord: Ordering) -> u64 {
    let (exec, me) = ctx();
    let mut sh = op_entry(&exec, me);
    let mut floor = coherence_floor(&mut sh, me, aid);
    let view = sh.threads[me].view;
    let sc_load = matches!(ord, Ordering::SeqCst);
    for (i, st) in sh.atomics[aid].stores.iter().enumerate() {
        if view[st.writer] >= st.stamp {
            floor = floor.max(i);
        }
        if sc_load && st.sc {
            floor = floor.max(i);
        }
    }
    let newest = sh.atomics[aid].stores.len() - 1;
    // Alternative 0 reads the newest store, so the first execution of any
    // model behaves like a naive sequentially-consistent interleaving.
    let back = decide(&mut sh, newest - floor + 1);
    let k = newest - back;
    let (val, sync) = {
        let st = &sh.atomics[aid].stores[k];
        (st.val, st.sync)
    };
    if is_acquire(ord) {
        join(&mut sh.threads[me].view, &sync);
    }
    let seen = &mut sh.threads[me].last_seen[aid];
    *seen = (*seen).max(k);
    val
}

pub(crate) fn atomic_store(aid: usize, val: u64, ord: Ordering) {
    let (exec, me) = ctx();
    let mut sh = op_entry(&exec, me);
    coherence_floor(&mut sh, me, aid);
    let stamp = sh.threads[me].view[me];
    let sync = if is_release(ord) {
        sh.threads[me].view
    } else {
        [0; MAX_THREADS]
    };
    sh.atomics[aid].stores.push(StoreEv {
        val,
        writer: me,
        stamp,
        sync,
        sc: matches!(ord, Ordering::SeqCst),
    });
    let newest = sh.atomics[aid].stores.len() - 1;
    sh.threads[me].last_seen[aid] = newest;
}

/// Read-modify-write: atomically reads the newest store (RMW atomicity)
/// and appends the transformed value. The displaced store's sync payload
/// is carried forward — release sequences survive interposed RMWs.
pub(crate) fn atomic_rmw(aid: usize, ord: Ordering, f: impl FnOnce(u64) -> u64) -> u64 {
    let (exec, me) = ctx();
    let mut sh = op_entry(&exec, me);
    coherence_floor(&mut sh, me, aid);
    let (old, mut sync) = {
        let st = sh.atomics[aid].stores.last().expect("non-empty history");
        (st.val, st.sync)
    };
    if is_acquire(ord) {
        join(&mut sh.threads[me].view, &sync);
    }
    if is_release(ord) {
        let view = sh.threads[me].view;
        join(&mut sync, &view);
    }
    let stamp = sh.threads[me].view[me];
    sh.atomics[aid].stores.push(StoreEv {
        val: f(old),
        writer: me,
        stamp,
        sync,
        sc: matches!(ord, Ordering::SeqCst),
    });
    let newest = sh.atomics[aid].stores.len() - 1;
    sh.threads[me].last_seen[aid] = newest;
    old
}

pub(crate) fn atomic_cas(
    aid: usize,
    expect: u64,
    new: u64,
    success: Ordering,
    failure: Ordering,
) -> Result<u64, u64> {
    let (exec, me) = ctx();
    let mut sh = op_entry(&exec, me);
    coherence_floor(&mut sh, me, aid);
    let newest = sh.atomics[aid].stores.len() - 1;
    let (old, mut sync) = {
        let st = &sh.atomics[aid].stores[newest];
        (st.val, st.sync)
    };
    if old != expect {
        if is_acquire(failure) {
            join(&mut sh.threads[me].view, &sync);
        }
        sh.threads[me].last_seen[aid] = newest;
        return Err(old);
    }
    if is_acquire(success) {
        join(&mut sh.threads[me].view, &sync);
    }
    if is_release(success) {
        let view = sh.threads[me].view;
        join(&mut sync, &view);
    }
    let stamp = sh.threads[me].view[me];
    sh.atomics[aid].stores.push(StoreEv {
        val: new,
        writer: me,
        stamp,
        sync,
        sc: matches!(success, Ordering::SeqCst),
    });
    sh.threads[me].last_seen[aid] = newest + 1;
    Ok(old)
}

/// Memory fence. `SeqCst` fences synchronize through the global fence
/// clock (the C11 total fence order); weaker fences are approximated as
/// no-ops, which under-synchronizes and therefore errs toward *reporting*
/// races rather than hiding them.
pub(crate) fn fence(ord: Ordering) {
    let (exec, me) = ctx();
    let mut sh = op_entry(&exec, me);
    if matches!(ord, Ordering::SeqCst) {
        let fence_clock = sh.sc_fence;
        join(&mut sh.threads[me].view, &fence_clock);
        let view = sh.threads[me].view;
        join(&mut sh.sc_fence, &view);
    }
}

// ----------------------------------------------------------- mutex/condvar

pub(crate) fn register_mutex() -> usize {
    let (exec, _) = ctx();
    let mut sh = lock(&exec);
    sh.mutexes.push(MutexSt {
        owner: None,
        clock: [0; MAX_THREADS],
    });
    sh.mutexes.len() - 1
}

pub(crate) fn register_cv() -> usize {
    let (exec, _) = ctx();
    let mut sh = lock(&exec);
    sh.cvs.push(CvSt {
        waiters: Vec::new(),
    });
    sh.cvs.len() - 1
}

pub(crate) fn mutex_lock(mid: usize) {
    let (exec, me) = ctx();
    let mut sh = op_entry(&exec, me);
    if sh.mutexes[mid].owner.is_some() {
        sh.threads[me].status = Status::BlockedMutex(mid);
        sh = block_here(&exec, sh, me);
        debug_assert!(sh.mutexes[mid].owner.is_none());
        sh.threads[me].status = Status::Ready;
    }
    sh.mutexes[mid].owner = Some(me);
    let clock = sh.mutexes[mid].clock;
    join(&mut sh.threads[me].view, &clock);
}

pub(crate) fn mutex_unlock(mid: usize) {
    let (exec, me) = ctx();
    // A guard dropped during a panic unwind must release without taking a
    // turn: scheduling may itself unwind (abort), and a second panic while
    // unwinding would abort the whole process.
    if std::thread::panicking() {
        let mut sh = lock(&exec);
        let view = sh.threads[me].view;
        join(&mut sh.mutexes[mid].clock, &view);
        sh.mutexes[mid].owner = None;
        exec.cv.notify_all();
        return;
    }
    let mut sh = op_entry(&exec, me);
    let view = sh.threads[me].view;
    join(&mut sh.mutexes[mid].clock, &view);
    sh.mutexes[mid].owner = None;
}

pub(crate) fn cv_wait(cvid: usize, mid: usize) {
    let (exec, me) = ctx();
    let mut sh = op_entry(&exec, me);
    // Atomically release the mutex and park. No timeout, no spurious
    // wakeups: the only way back is a notify.
    let view = sh.threads[me].view;
    join(&mut sh.mutexes[mid].clock, &view);
    sh.mutexes[mid].owner = None;
    sh.cvs[cvid].waiters.push((me, mid));
    sh.threads[me].status = Status::BlockedCv(cvid);
    sh = block_here(&exec, sh, me);
    // A notify moved us to BlockedMutex; being scheduled means the mutex
    // was free, so reacquire it.
    debug_assert!(sh.mutexes[mid].owner.is_none());
    sh.mutexes[mid].owner = Some(me);
    sh.threads[me].status = Status::Ready;
    let clock = sh.mutexes[mid].clock;
    join(&mut sh.threads[me].view, &clock);
}

pub(crate) fn cv_notify_one(cvid: usize) {
    let (exec, me) = ctx();
    let mut sh = op_entry(&exec, me);
    if sh.cvs[cvid].waiters.is_empty() {
        return;
    }
    // Which waiter wakes is unspecified — explore every choice.
    let waiting = sh.cvs[cvid].waiters.len();
    let pick = decide(&mut sh, waiting);
    let (t, m) = sh.cvs[cvid].waiters.remove(pick);
    sh.threads[t].status = Status::BlockedMutex(m);
}

pub(crate) fn cv_notify_all(cvid: usize) {
    let (exec, me) = ctx();
    let mut sh = op_entry(&exec, me);
    let waiters = std::mem::take(&mut sh.cvs[cvid].waiters);
    for (t, m) in waiters {
        sh.threads[t].status = Status::BlockedMutex(m);
    }
}

// ----------------------------------------------------------------- threads

pub(crate) fn spawn_thread(body: Box<dyn FnOnce() + Send + 'static>) -> usize {
    let (exec, me) = ctx();
    let mut sh = op_entry(&exec, me);
    let tid = sh.threads.len();
    assert!(
        tid < MAX_THREADS,
        "loom model spawned more than MAX_THREADS ({MAX_THREADS}) threads"
    );
    // Spawn is a release edge: the child starts with the parent's view.
    let view = sh.threads[me].view;
    sh.threads.push(ThreadSt {
        status: Status::Ready,
        view,
        last_seen: Vec::new(),
    });
    sh.live_jobs += 1;
    let exec2 = Arc::clone(&exec);
    let job: Job = Box::new(move || run_modeled_thread(&exec2, tid, body));
    exec.lanes[tid].send(job).expect("loom lane thread died");
    tid
}

pub(crate) fn thread_join(target: usize) {
    let (exec, me) = ctx();
    let mut sh = op_entry(&exec, me);
    if sh.threads[target].status != Status::Done {
        sh.threads[me].status = Status::BlockedJoin(target);
        sh = block_here(&exec, sh, me);
        sh.threads[me].status = Status::Ready;
    }
    // Join is an acquire edge from the finished thread's final view.
    let view = sh.threads[target].view;
    join(&mut sh.threads[me].view, &view);
}

/// A pure scheduling point with no memory effect.
pub(crate) fn yield_now() {
    let (exec, me) = ctx();
    let _sh = op_entry(&exec, me);
}

fn run_modeled_thread(exec: &Arc<Exec>, tid: usize, body: Box<dyn FnOnce() + Send>) {
    CTX.with(|c| *c.borrow_mut() = Some((Arc::clone(exec), tid)));
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        thread_begin(exec, tid);
        body();
    }));
    thread_end(exec, tid, outcome.err());
    CTX.with(|c| *c.borrow_mut() = None);
}

fn thread_begin(exec: &Exec, me: usize) {
    let mut sh = lock(exec);
    while !sh.abort && sh.active != me {
        sh = wait(exec, sh);
    }
    if sh.abort {
        drop(sh);
        abort_unwind();
    }
}

fn thread_end(exec: &Exec, me: usize, panic_payload: Option<Box<dyn Any + Send>>) {
    let mut sh = lock(exec);
    sh.threads[me].status = Status::Done;
    if let Some(payload) = panic_payload {
        if !payload.is::<AbortToken>() {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "model thread panicked".to_string());
            fail(&mut sh, msg);
        }
    }
    if !sh.abort && sh.active == me {
        reschedule(&mut sh, me, true);
    }
    sh.live_jobs -= 1;
    exec.cv.notify_all();
}

// ---------------------------------------------------------------- explorer

/// Exploration configuration; [`Builder::check`] runs a model to
/// completion and returns a [`Report`].
#[derive(Clone, Debug)]
pub struct Builder {
    /// Voluntary context switches allowed per execution (`None` =
    /// unbounded, full exploration). Forced switches are always free.
    pub preemption_bound: Option<usize>,
    /// Hard ceiling on explored executions; exceeding it panics rather
    /// than silently truncating the state space.
    pub max_iterations: u64,
    /// Print a one-line summary to stderr when exploration completes.
    pub log: bool,
}

impl Builder {
    pub fn new() -> Builder {
        Builder {
            preemption_bound: Some(2),
            max_iterations: 1_000_000,
            log: false,
        }
    }

    /// Explore every execution of `f` under the configured bounds.
    /// Panics — with the failing decision trace — on an assertion failure
    /// inside the model or on a deadlock (the lost-wakeup certificate).
    pub fn check<F>(&self, f: F) -> Report
    where
        F: Fn() + Send + Sync + 'static,
    {
        let f = Arc::new(f);
        let mut senders: Vec<mpsc::Sender<Job>> = Vec::new();
        let mut lanes = Vec::new();
        for _ in 0..MAX_THREADS {
            let (tx, rx) = mpsc::channel::<Job>();
            senders.push(tx);
            lanes.push(std::thread::spawn(move || {
                while let Ok(job) = rx.recv() {
                    job();
                }
            }));
        }
        let mut prefix: Vec<Decision> = Vec::new();
        let mut iterations = 0u64;
        let mut max_depth = 0usize;
        let report = loop {
            iterations += 1;
            assert!(
                iterations <= self.max_iterations,
                "loom: exceeded the {} execution budget without exhausting the model",
                self.max_iterations
            );
            let exec = Arc::new(Exec {
                shared: StdMutex::new(Shared {
                    threads: vec![ThreadSt {
                        status: Status::Ready,
                        view: [0; MAX_THREADS],
                        last_seen: Vec::new(),
                    }],
                    atomics: Vec::new(),
                    mutexes: Vec::new(),
                    cvs: Vec::new(),
                    sc_fence: [0; MAX_THREADS],
                    active: 0,
                    trace: prefix.clone(),
                    cursor: 0,
                    preemptions: 0,
                    bound: self.preemption_bound,
                    abort: false,
                    failure: None,
                    live_jobs: 1,
                }),
                cv: StdCondvar::new(),
                lanes: senders.clone(),
            });
            let model_fn = Arc::clone(&f);
            let exec2 = Arc::clone(&exec);
            let root: Job = Box::new(move || {
                run_modeled_thread(&exec2, 0, Box::new(move || model_fn()));
            });
            senders[0].send(root).expect("loom lane 0 died");
            let (failure, trace) = {
                let mut sh = lock(&exec);
                while sh.live_jobs > 0 {
                    sh = wait(&exec, sh);
                }
                (sh.failure.take(), std::mem::take(&mut sh.trace))
            };
            max_depth = max_depth.max(trace.len());
            if let Some(msg) = failure {
                let sched: Vec<String> = trace
                    .iter()
                    .map(|d| format!("{}/{}", d.chosen, d.options))
                    .collect();
                panic!(
                    "loom model failed on execution {iterations}: {msg}\n  \
                     decision trace (chosen/options): [{}]",
                    sched.join(", ")
                );
            }
            // Depth-first advance: bump the deepest non-exhausted decision.
            let mut next = trace;
            let exhausted = loop {
                match next.pop() {
                    None => break true,
                    Some(d) if d.chosen + 1 < d.options => {
                        next.push(Decision {
                            chosen: d.chosen + 1,
                            options: d.options,
                        });
                        break false;
                    }
                    Some(_) => {}
                }
            };
            if exhausted {
                break Report {
                    iterations,
                    max_depth,
                    preemption_bound: self.preemption_bound,
                };
            }
            prefix = next;
        };
        drop(senders);
        for lane in lanes {
            let _ = lane.join();
        }
        if self.log {
            eprintln!(
                "loom: explored {} execution(s), max decision depth {}, preemption bound {:?}",
                report.iterations, report.max_depth, report.preemption_bound
            );
        }
        report
    }
}

impl Default for Builder {
    fn default() -> Builder {
        Builder::new()
    }
}

/// What exploration covered: how many executions were run before the
/// decision tree was exhausted.
#[derive(Clone, Copy, Debug)]
pub struct Report {
    pub iterations: u64,
    pub max_depth: usize,
    pub preemption_bound: Option<usize>,
}

/// Exhaustively explore `f` with the default bounds (preemption bound 2).
pub fn model<F>(f: F) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    Builder::new().check(f)
}
