//! planet-loom: an exhaustive weak-memory model checker for the reactor's
//! lock-free core, presented through a loom-compatible API.
//!
//! The workspace builds against a vendored toolchain with no external
//! crates, so instead of depending on upstream `loom` the harness is
//! implemented in-tree: [`model`] runs a closure under *every* bounded-
//! preemption interleaving of its modeled threads, and every C11-visible
//! value choice of its modeled atomic loads (per-location store histories
//! and vector clocks, release/acquire sync, an operational `SeqCst` total
//! order). Assertion failures and deadlocks — the shape a lost wakeup
//! takes when condvars never time out — fail the run with a replayable
//! decision trace.
//!
//! Production code opts in via `--cfg loom` through a facade module (see
//! `planet_cluster::sync`): under the cfg, `Mutex`/`Condvar`/atomics
//! resolve to the modeled types here; in normal builds they are
//! `std::sync` re-exports with zero overhead.
//!
//! ```
//! use loom::sync::atomic::{AtomicUsize, Ordering};
//! use std::sync::Arc;
//!
//! let report = loom::model(|| {
//!     let n = Arc::new(AtomicUsize::new(0));
//!     let n2 = Arc::clone(&n);
//!     let t = loom::thread::spawn(move || {
//!         n2.fetch_add(1, Ordering::Relaxed);
//!     });
//!     n.fetch_add(1, Ordering::Relaxed);
//!     t.join().expect("joins");
//!     assert_eq!(n.load(Ordering::Relaxed), 2);
//! });
//! assert!(report.iterations >= 2);
//! ```

mod rt;
pub mod sync;
pub mod thread;

pub use rt::{model, Builder, Report, MAX_THREADS};
