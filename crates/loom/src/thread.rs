//! Modeled threads: `spawn`/`join` with the same shape as `std::thread`.
//! Spawn is a release edge (the child inherits the parent's clock); join
//! is an acquire edge from the child's final clock. Bodies run on a fixed
//! pool of lane OS threads, one modeled thread active at a time.

use std::sync::{Arc, Mutex as StdMutex};

use crate::rt;

/// Handle to a modeled thread; [`JoinHandle::join`] blocks the modeled
/// caller until the thread finishes.
#[derive(Debug)]
pub struct JoinHandle<T> {
    tid: usize,
    result: Arc<StdMutex<Option<T>>>,
}

impl<T> JoinHandle<T> {
    pub fn join(self) -> std::thread::Result<T> {
        rt::thread_join(self.tid);
        let out = match self.result.lock() {
            Ok(mut slot) => slot.take(),
            Err(poisoned) => poisoned.into_inner().take(),
        };
        // A panicked modeled thread aborts the whole execution before any
        // joiner returns, so a missing result cannot be observed here.
        Ok(out.expect("joined thread stored its result"))
    }
}

/// Spawn a modeled thread. Panics if the model exceeds
/// [`crate::MAX_THREADS`] threads.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let result = Arc::new(StdMutex::new(None));
    let slot = Arc::clone(&result);
    let tid = rt::spawn_thread(Box::new(move || {
        let out = f();
        match slot.lock() {
            Ok(mut cell) => *cell = Some(out),
            Err(poisoned) => *poisoned.into_inner() = Some(out),
        }
    }));
    JoinHandle { tid, result }
}

/// A pure scheduling point: lets the explorer switch threads without a
/// memory operation.
pub fn yield_now() {
    rt::yield_now();
}
