//! Modeled `std::sync` lookalikes: drop-in types for code compiled with
//! `--cfg loom`. Signatures mirror `std` (lock results, poison-free in
//! practice, `wait_timeout` shapes) so production code switches over with
//! a `use` swap and zero call-site edits.
//!
//! Construction registers each object with the execution that is
//! currently running on this thread, so every primitive must be created
//! *inside* a [`crate::model`] closure. Data protected by [`Mutex`] lives
//! in a real `std::sync::Mutex` underneath — the model serializes owners,
//! so the inner lock is uncontended and exists only to hand out guards
//! without `unsafe`.

use std::sync::{LockResult, Mutex as StdMutex, MutexGuard as StdMutexGuard};
use std::time::Duration;

use crate::rt;

pub mod atomic {
    //! Modeled atomics with per-location store histories: loads may read
    //! any C11-visible store, not just the newest one.

    pub use std::sync::atomic::Ordering;

    /// A `SeqCst` fence joins the global fence clock both ways; weaker
    /// fences are modeled as no-ops (under-synchronizing, so races are
    /// surfaced rather than hidden).
    pub fn fence(order: Ordering) {
        crate::rt::fence(order);
    }

    macro_rules! int_atomic {
        ($(#[$doc:meta])* $name:ident, $ty:ty) => {
            $(#[$doc])*
            #[derive(Debug)]
            pub struct $name {
                id: usize,
            }

            // The widening casts are identities for the 64-bit instance.
            #[allow(clippy::unnecessary_cast)]
            impl $name {
                #[allow(clippy::new_without_default)]
                pub fn new(value: $ty) -> $name {
                    $name {
                        id: crate::rt::register_atomic(value as u64),
                    }
                }

                pub fn load(&self, order: Ordering) -> $ty {
                    crate::rt::atomic_load(self.id, order) as $ty
                }

                pub fn store(&self, value: $ty, order: Ordering) {
                    crate::rt::atomic_store(self.id, value as u64, order);
                }

                pub fn swap(&self, value: $ty, order: Ordering) -> $ty {
                    crate::rt::atomic_rmw(self.id, order, |_| value as u64) as $ty
                }

                pub fn fetch_add(&self, value: $ty, order: Ordering) -> $ty {
                    crate::rt::atomic_rmw(self.id, order, |old| {
                        (old as $ty).wrapping_add(value) as u64
                    }) as $ty
                }

                pub fn fetch_sub(&self, value: $ty, order: Ordering) -> $ty {
                    crate::rt::atomic_rmw(self.id, order, |old| {
                        (old as $ty).wrapping_sub(value) as u64
                    }) as $ty
                }

                pub fn fetch_max(&self, value: $ty, order: Ordering) -> $ty {
                    crate::rt::atomic_rmw(self.id, order, |old| {
                        (old as $ty).max(value) as u64
                    }) as $ty
                }

                pub fn compare_exchange(
                    &self,
                    current: $ty,
                    new: $ty,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$ty, $ty> {
                    crate::rt::atomic_cas(self.id, current as u64, new as u64, success, failure)
                        .map(|v| v as $ty)
                        .map_err(|v| v as $ty)
                }

                /// Modeled without spurious failure (the strong variant's
                /// behavior is a legal implementation of the weak one).
                pub fn compare_exchange_weak(
                    &self,
                    current: $ty,
                    new: $ty,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$ty, $ty> {
                    self.compare_exchange(current, new, success, failure)
                }
            }
        };
    }

    int_atomic!(
        /// Modeled `AtomicU8`.
        AtomicU8,
        u8
    );
    int_atomic!(
        /// Modeled `AtomicU32`.
        AtomicU32,
        u32
    );
    int_atomic!(
        /// Modeled `AtomicU64`.
        AtomicU64,
        u64
    );
    int_atomic!(
        /// Modeled `AtomicUsize`.
        AtomicUsize,
        usize
    );

    /// Modeled `AtomicBool`.
    #[derive(Debug)]
    pub struct AtomicBool {
        id: usize,
    }

    impl AtomicBool {
        #[allow(clippy::new_without_default)]
        pub fn new(value: bool) -> AtomicBool {
            AtomicBool {
                id: crate::rt::register_atomic(u64::from(value)),
            }
        }

        pub fn load(&self, order: Ordering) -> bool {
            crate::rt::atomic_load(self.id, order) != 0
        }

        pub fn store(&self, value: bool, order: Ordering) {
            crate::rt::atomic_store(self.id, u64::from(value), order);
        }

        pub fn swap(&self, value: bool, order: Ordering) -> bool {
            crate::rt::atomic_rmw(self.id, order, |_| u64::from(value)) != 0
        }

        pub fn compare_exchange(
            &self,
            current: bool,
            new: bool,
            success: Ordering,
            failure: Ordering,
        ) -> Result<bool, bool> {
            crate::rt::atomic_cas(
                self.id,
                u64::from(current),
                u64::from(new),
                success,
                failure,
            )
            .map(|v| v != 0)
            .map_err(|v| v != 0)
        }
    }
}

/// Modeled mutex: ownership, blocking, and the release/acquire clock edge
/// are simulated; the payload rides in an uncontended real mutex.
#[derive(Debug)]
pub struct Mutex<T> {
    id: usize,
    cell: StdMutex<T>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Mutex<T> {
        Mutex {
            id: rt::register_mutex(),
            cell: StdMutex::new(value),
        }
    }

    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        rt::mutex_lock(self.id);
        let inner = match self.cell.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        Ok(MutexGuard {
            mtx: self,
            inner: Some(inner),
        })
    }

    pub fn into_inner(self) -> LockResult<T> {
        match self.cell.into_inner() {
            Ok(value) => Ok(value),
            Err(poisoned) => Ok(poisoned.into_inner()),
        }
    }
}

/// Guard over a modeled [`Mutex`]; dropping it releases the modeled lock
/// (a release edge on the mutex clock).
#[derive(Debug)]
pub struct MutexGuard<'a, T> {
    mtx: &'a Mutex<T>,
    inner: Option<StdMutexGuard<'a, T>>,
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard holds the inner lock")
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard holds the inner lock")
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Free the real lock before the modeled release hands the turn to
        // a thread that may immediately reacquire.
        self.inner = None;
        rt::mutex_unlock(self.mtx.id);
    }
}

/// Result shim for [`Condvar::wait_timeout`]: modeled waits never time
/// out — a protocol leaning on its timeout backstop deadlocks here.
#[derive(Debug)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// Modeled condvar: FIFO-registered waiters, explored wake order, no
/// spurious wakeups, no timeouts.
#[derive(Debug)]
pub struct Condvar {
    id: usize,
}

impl Condvar {
    #[allow(clippy::new_without_default)]
    pub fn new() -> Condvar {
        Condvar {
            id: rt::register_cv(),
        }
    }

    pub fn wait<'a, T>(&self, mut guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        let mtx = guard.mtx;
        // Hand back the real lock for the duration of the modeled wait;
        // the modeled mutex release/reacquire happens inside `cv_wait`.
        guard.inner = None;
        rt::cv_wait(self.id, mtx.id);
        guard.inner = Some(match mtx.cell.lock() {
            Ok(inner) => inner,
            Err(poisoned) => poisoned.into_inner(),
        });
        Ok(guard)
    }

    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        _timeout: Duration,
    ) -> LockResult<(MutexGuard<'a, T>, WaitTimeoutResult)> {
        match self.wait(guard) {
            Ok(guard) => Ok((guard, WaitTimeoutResult(false))),
            Err(poisoned) => {
                let guard = poisoned.into_inner();
                Ok((guard, WaitTimeoutResult(false)))
            }
        }
    }

    pub fn notify_one(&self) {
        rt::cv_notify_one(self.id);
    }

    pub fn notify_all(&self) {
        rt::cv_notify_all(self.id);
    }
}
