//! Regression tests: the checker's invariants must hold on the real
//! protocol and must *trip* under seeded corruption — proof the harness can
//! actually see a broken protocol, not just a quiet one.

use planet_mck::{explore, routing_check, MckConfig, Mutation};

#[test]
fn clean_exploration_holds_all_invariants() {
    let mut cfg = MckConfig::new(2, 1, 20);
    cfg.max_states = 100_000;
    let rep = explore(&cfg);
    assert!(
        rep.violations.is_empty(),
        "clean run violated: {:?}",
        rep.violations.first()
    );
    assert!(
        rep.complete_verdicts.contains("C"),
        "single uncontended txn must commit somewhere in the bound: {:?}",
        rep.verdicts
    );
    assert!(!rep.capped);
    assert!(rep.unique_states > 100, "exploration trivially small");
}

#[test]
fn tamper_apply_mutation_trips_agreement() {
    let mut cfg = MckConfig::new(2, 1, 18);
    cfg.mutation = Some(Mutation::TamperApply);
    let rep = explore(&cfg);
    assert!(
        rep.violations.iter().any(|v| v.invariant == "agreement"),
        "tampered Apply must violate agreement: {:?}",
        rep.violations
    );
    // The tampered version is also a rewrite of committed content.
    assert!(rep
        .violations
        .iter()
        .any(|v| v.invariant == "commit-stability"));
    // Every violation carries a replayable path.
    assert!(rep.violations.iter().all(|v| !v.path.is_empty()));
}

#[test]
fn drop_decide_mutation_trips_durability() {
    let mut cfg = MckConfig::new(2, 1, 24);
    cfg.mutation = Some(Mutation::DropDecide);
    let rep = explore(&cfg);
    assert!(
        rep.violations.iter().any(|v| v.invariant == "durability"),
        "swallowed Decide must leave a committed txn non-durable: {:?}",
        rep.violations
    );
    // The client still saw Committed — the corruption is server-side.
    assert!(rep.complete_verdicts.contains("C"));
}

#[test]
fn message_loss_and_duplication_hold_invariants() {
    // Under a bounded lossy/duplicating adversary the reachable outcomes
    // widen (timeouts appear) but no safety invariant may trip.
    let mut cfg = MckConfig::new(2, 1, 12);
    cfg.drops = 1;
    cfg.dups = 1;
    let rep = explore(&cfg);
    assert!(
        rep.violations.is_empty(),
        "lossy adversary violated: {:?}",
        rep.violations.first()
    );
    assert!(
        rep.verdicts.len() > 1,
        "loss should reach outcomes a reliable run cannot: {:?}",
        rep.verdicts
    );
}

#[test]
fn shard_routing_is_sound() {
    let rep = routing_check(&MckConfig::new(2, 1, 20));
    assert!(
        rep.consistent,
        "S=1 complete verdicts {:?} != S=2 {:?}",
        rep.s1.complete_verdicts, rep.s2.complete_verdicts
    );
    assert_eq!(rep.s1.complete_verdicts, rep.s2.complete_verdicts);
}

#[test]
fn conflicting_clients_explore_without_violation() {
    // Two clients race on the same key; within a small bound the checker
    // must stay quiet (conflicts abort/timeout, never corrupt).
    let mut cfg = MckConfig::new(3, 2, 8);
    cfg.max_states = 50_000;
    let rep = explore(&cfg);
    assert!(
        rep.violations.is_empty(),
        "contended run violated: {:?}",
        rep.violations.first()
    );
    assert!(rep.unique_states > 500);
}
