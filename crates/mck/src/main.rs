//! The `planet-mck` CLI: bounded exhaustive exploration of the MDCC commit
//! protocol with invariant checking.
//!
//! ```text
//! cargo run --release -p planet-mck -- --sites 3 --clients 2 --depth 8
//! cargo run --release -p planet-mck -- --sites 2 --clients 1 --depth 12 \
//!     --mutation tamper-apply        # must report an agreement violation
//! cargo run --release -p planet-mck -- --routing-check --depth 10 --json
//! ```
//!
//! Exit status: 0 when every invariant held over the explored bound, 1 when
//! a violation was found (or the routing check disagreed), 2 on bad usage.

use std::process::ExitCode;

use planet_mck::{explore, routing_check, MckConfig, Mutation, Report, Scenario};
use planet_mdcc::Protocol;

struct Opts {
    cfg: MckConfig,
    routing: bool,
    json: bool,
}

fn parse_args() -> Result<Opts, String> {
    let mut cfg = MckConfig::new(2, 1, 8);
    let mut routing = false;
    let mut json = false;
    let mut args = std::env::args().skip(1);
    let num = |args: &mut dyn Iterator<Item = String>, flag: &str| -> Result<usize, String> {
        args.next()
            .ok_or_else(|| format!("{flag} needs a value"))?
            .parse()
            .map_err(|e| format!("{flag}: {e}"))
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--sites" => cfg.sites = num(&mut args, "--sites")?,
            "--clients" => cfg.clients = num(&mut args, "--clients")?,
            "--shards" => cfg.shards = num(&mut args, "--shards")?,
            "--depth" => cfg.depth = num(&mut args, "--depth")?,
            "--drops" => cfg.drops = num(&mut args, "--drops")?,
            "--dups" => cfg.dups = num(&mut args, "--dups")?,
            "--max-states" => cfg.max_states = num(&mut args, "--max-states")?,
            "--no-symmetry" => cfg.symmetry = false,
            "--routing-check" => routing = true,
            "--json" => json = true,
            "--protocol" => {
                cfg.protocol = match args.next().as_deref() {
                    Some("fast") => Protocol::Fast,
                    Some("classic") => Protocol::Classic,
                    Some("2pc") => Protocol::TwoPc,
                    other => return Err(format!("--protocol: bad value {other:?}")),
                }
            }
            "--scenario" => {
                cfg.scenario = match args.next().as_deref() {
                    Some("conflict") => Scenario::Conflict,
                    Some("write-skew") => Scenario::WriteSkew,
                    other => return Err(format!("--scenario: bad value {other:?}")),
                }
            }
            "--audit" => cfg.audit = true,
            "--mutation" => {
                cfg.mutation = match args.next().as_deref() {
                    Some("tamper-apply") => Some(Mutation::TamperApply),
                    Some("drop-decide") => Some(Mutation::DropDecide),
                    other => return Err(format!("--mutation: bad value {other:?}")),
                }
            }
            "--help" | "-h" => {
                println!(
                    "planet-mck: bounded explicit-state model checker for the commit protocol\n\n\
                     USAGE: planet-mck [--sites N] [--clients N] [--shards N] [--depth K]\n\
                     \x20               [--drops N] [--dups N] [--protocol fast|classic|2pc]\n\
                     \x20               [--mutation tamper-apply|drop-decide] [--max-states N]\n\
                     \x20               [--scenario conflict|write-skew] [--audit]\n\
                     \x20               [--no-symmetry] [--routing-check] [--json]\n\n\
                     --sites N         sites / replication-group size (default 2)\n\
                     --clients N       concurrent clients, one txn each (default 1)\n\
                     --shards N        replica shards per site (default 1)\n\
                     --depth K         scheduler choices per path (default 8)\n\
                     --drops N         per-path message-loss budget (default 0)\n\
                     --dups N          per-path duplication budget (default 0)\n\
                     --protocol P      commit path under test (default fast)\n\
                     --mutation M      seeded corruption; the run SHOULD report a violation\n\
                     --scenario S      workload shape: conflict (default) or write-skew\n\
                     --audit           trace every path and certify reachable isolation anomalies\n\
                     --max-states N    unique-state cap (default 250000)\n\
                     --no-symmetry     disable the site-symmetry reduction\n\
                     --routing-check   compare S=1 vs S=2 verdicts (invariant 4)\n\
                     --json            machine-readable report"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    Ok(Opts { cfg, routing, json })
}

fn print_text(r: &Report, label: &str) {
    println!(
        "{label}: {} unique states, {} turns, {:.1}% dedup, {} truncated, max depth {}{}",
        r.unique_states,
        r.steps,
        100.0 * r.dedup_rate(),
        r.truncated,
        r.max_depth,
        if r.capped { " (CAPPED)" } else { "" }
    );
    println!(
        "{label}: verdicts {:?}, complete {:?}",
        r.verdicts, r.complete_verdicts
    );
    for v in r.violations.iter().take(8) {
        println!(
            "{label}: VIOLATION [{}] {} (path {:?})",
            v.invariant, v.detail, v.path
        );
    }
    if !r.anomalies.is_empty() {
        println!("{label}: reachable isolation anomalies {:?}", r.anomalies);
    }
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("planet-mck: {e}");
            return ExitCode::from(2);
        }
    };

    // Wall-clock measurement of the exploration itself; nothing downstream
    // depends on it. check:allow(determinism)
    let t0 = std::time::Instant::now(); // check:allow(determinism)

    if opts.routing {
        let rep = routing_check(&opts.cfg);
        let wall_ms = t0.elapsed().as_millis(); // check:allow(determinism)
        if opts.json {
            println!(
                "{{\"routing_consistent\":{},\"wall_ms\":{},\"s1\":{},\"s2\":{}}}",
                rep.consistent,
                wall_ms,
                rep.s1.to_json(),
                rep.s2.to_json()
            );
        } else {
            print_text(&rep.s1, "shards=1");
            print_text(&rep.s2, "shards=2");
            println!(
                "routing check: {} ({wall_ms} ms)",
                if rep.consistent {
                    "CONSISTENT"
                } else {
                    "INCONSISTENT"
                }
            );
        }
        return if rep.consistent {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }

    let rep = explore(&opts.cfg);
    let wall_ms = t0.elapsed().as_millis(); // check:allow(determinism)
    if opts.json {
        println!(
            "{{\"wall_ms\":{},\"depth\":{},\"sites\":{},\"clients\":{},\"shards\":{},\
             \"report\":{}}}",
            wall_ms,
            opts.cfg.depth,
            opts.cfg.sites,
            opts.cfg.clients,
            opts.cfg.shards,
            rep.to_json()
        );
    } else {
        print_text(&rep, "mck");
        println!("wall time: {wall_ms} ms");
    }
    if rep.violations.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
