//! # planet-mck
//!
//! A bounded explicit-state model checker for the MDCC commit protocol.
//!
//! The checker runs the *real* protocol actors ([`CoordinatorActor`],
//! [`ReplicaActor`]) through the factored step function
//! (`planet_sim::drive`), replacing the simulation engine's single
//! delay-ordered event queue with an exhaustive scheduler: at every state it
//! enumerates each non-empty point-to-point channel and branches on
//! delivering (and, within budgets, dropping or duplicating) its head
//! message. Timers fire only at network quiescence, earliest deadline first
//! — the "timeout-last" reduction: a timeout interleaved *before* pending
//! deliveries is subsumed by the run that first drains the network, because
//! timer deadlines dwarf delivery latencies in every deployed configuration.
//!
//! ## State, replay and dedup
//!
//! Actors are not cloneable (they own stores, WALs, hash maps), so a state
//! is identified with the *choice sequence* that produces it: depth-first
//! search re-executes the prefix from the initial state for every node.
//! Every reconstruction is deterministic, so this is exact, and it keeps
//! the checker entirely decoupled from actor internals. Visited states are
//! deduplicated by a 64-bit fingerprint of all protocol-visible state
//! (actor digests, channel contents, pending timers — see
//! `planet_mdcc::digest`); a revisited fingerprint prunes the subtree.
//!
//! A symmetry reduction canonicalises site identities: sites that host no
//! client and master no workload key are interchangeable, so the
//! fingerprint is the minimum over all permutations of those *free* sites
//! (applied consistently to site ids, actor ids, channel endpoints and
//! timer owners).
//!
//! ## Channel model
//!
//! Channels are per-(src, dst) FIFO — the deployed transports (simulation
//! engine, live TCP fabric) both preserve point-to-point order. Loss and
//! duplication apply only to protocol channels (replica/coordinator
//! endpoints); client↔coordinator channels are reliable, because progress
//! callbacks model an in-process callback interface at the app server, not
//! a WAN hop.
//!
//! ## Invariants
//!
//! 1. **Agreement** — within a shard's replication group, two replicas never
//!    hold different `(value, txn)` for the same committed version of a key.
//! 2. **Commit stability** — a client-visible outcome never changes, a
//!    committed version's content is never rewritten, and a replica's
//!    committed head never regresses.
//! 3. **Callback monotonicity** — per transaction, progress stages arrive in
//!    `Started ≤ ReadsDone ≤ {Vote,KeyFallback,KeyResolved} ≤ TxnDone`
//!    order; late votes after `TxnDone` are legal (the coordinator keeps a
//!    forwarding window open for the predictor's benefit).
//! 4. **Shard-routing soundness** — the set of reachable complete outcome
//!    vectors is identical with 1 and 2 shards ([`routing_check`]).
//!
//! A fifth check, **commit durability** (a committed transaction's writes
//! are present at each written key's master at every network-quiescent
//! state), runs only when the loss budget is zero: the protocol does not
//! retransmit decides, so durability under message loss is out of scope by
//! design (the deployed transports are reliable).
//!
//! Seeded mutations ([`Mutation`]) corrupt one protocol step to prove the
//! invariants can trip: `TamperApply` forges the value in the first `Apply`
//! state transfer (must violate agreement), `DropDecide` swallows the first
//! `Decide` (must violate durability).

use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeMap, BTreeSet, HashSet, VecDeque};
use std::hash::{Hash, Hasher};

use std::sync::Arc;

use planet_audit::audit;
use planet_mdcc::digest::{digest_msg, DigestMap};
use planet_mdcc::{
    ClusterConfig, CoordinatorActor, Msg, Outcome, ProgressStage, Protocol, ReadLevel,
    ReplicaActor, Trace, TxnSpec, VecSink,
};
use planet_plan::{PlanId, TxnProgram};
use planet_sim::{
    drive, drive_start, Actor, ActorId, Context, DetRng, Effect, Metrics, SimTime, SiteId,
    TurnInputs,
};
use planet_storage::{Key, TxnId, Value, VersionNo, WriteOp};

/// What the checker explores.
#[derive(Debug, Clone)]
pub struct MckConfig {
    /// Number of sites (one replica group member and one coordinator each).
    pub sites: usize,
    /// Number of clients; client `i` lives at site `i % sites` and submits
    /// one transaction to its site's coordinator at start.
    pub clients: usize,
    /// Replica shards per site (1 or 2; 2 exercises cross-shard routing).
    pub shards: usize,
    /// Maximum scheduler choices per path (the exploration bound).
    pub depth: usize,
    /// Message-loss budget per path (protocol channels only).
    pub drops: usize,
    /// Message-duplication budget per path (protocol channels only).
    pub dups: usize,
    /// Commit path under test.
    pub protocol: Protocol,
    /// Enable the site-symmetry reduction.
    pub symmetry: bool,
    /// Hard cap on unique states; exploration stops (and says so) beyond it.
    pub max_states: usize,
    /// Optional seeded protocol corruption.
    pub mutation: Option<Mutation>,
    /// The scripted workload shape.
    pub scenario: Scenario,
    /// Submit through compiled plans: each client's scripted `TxnSpec` is
    /// compiled to a [`TxnProgram`] installed on every coordinator before
    /// exploration, and the client submits `(PlanId, params)` instead of the
    /// spec. The compiled commit path is digest-parity with the interpreted
    /// one, so the explored state graph must be *count-for-count* identical
    /// with this on or off (`plans_are_digest_neutral` certifies it).
    pub use_plans: bool,
    /// Record a trace per explored path and run the isolation auditor at
    /// every all-decided state, certifying which anomalies are *reachable*
    /// (as opposed to merely observed in one simulation run). Tracing rides
    /// in [`ClusterConfig`] and is never part of `mck_digest`, so the
    /// explored state graph is identical with this on or off.
    pub audit: bool,
}

/// Which scripted workload the clients submit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scenario {
    /// The original conflict workload: client 0 writes key A, client 1
    /// writes A and B, further clients alternate single-key writes.
    #[default]
    Conflict,
    /// The write-skew pair: even clients read A and write B, odd clients
    /// read B and write A. No write-write conflict exists, so every
    /// interleaving commits both — the checker certifies whether an
    /// interleaving exists in which both read the *initial* versions
    /// (the unserializable all-`rw` cycle the auditor names `write-skew`).
    WriteSkew,
}

impl MckConfig {
    /// A configuration with the given topology and bound; no loss, no
    /// duplication, fast path, symmetry on.
    pub fn new(sites: usize, clients: usize, depth: usize) -> Self {
        assert!(sites >= 1 && clients >= 1);
        MckConfig {
            sites,
            clients,
            shards: 1,
            depth,
            drops: 0,
            dups: 0,
            protocol: Protocol::Fast,
            symmetry: true,
            max_states: 250_000,
            mutation: None,
            scenario: Scenario::default(),
            use_plans: false,
            audit: false,
        }
    }
}

/// A seeded one-shot protocol corruption, applied at delivery time to the
/// first matching message on any channel. Used by regression tests to prove
/// the invariants have teeth.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutation {
    /// Forge the value carried by the first `Apply` state transfer. The
    /// receiving replica installs a version whose content differs from the
    /// master's — agreement must trip.
    TamperApply,
    /// Swallow the first `Decide`. The key's master never learns the
    /// outcome, so a committed transaction is never applied — the
    /// durability check must trip at quiescence.
    DropDecide,
}

/// One invariant violation, with the choice path that reproduces it.
#[derive(Debug, Clone)]
pub struct PathViolation {
    /// Choice indices from the initial state (replayable).
    pub path: Vec<usize>,
    /// Which invariant tripped.
    pub invariant: String,
    /// Human-readable specifics.
    pub detail: String,
}

/// What an exploration found.
#[derive(Debug, Clone)]
pub struct Report {
    /// Unique states visited (post-dedup).
    pub unique_states: u64,
    /// Total actor turns driven, including prefix replays.
    pub steps: u64,
    /// States pruned because their fingerprint was already seen.
    pub revisits: u64,
    /// Paths cut by the depth bound.
    pub truncated: u64,
    /// Paths that ran out of choices entirely (never with periodic timers).
    pub terminals: u64,
    /// Deepest path expanded.
    pub max_depth: usize,
    /// True if `max_states` stopped the exploration early.
    pub capped: bool,
    /// Per-client outcome vectors observed at any visited state
    /// (`C`ommitted / `A`borted / `T`imed out / `?` undecided).
    pub verdicts: BTreeSet<String>,
    /// Outcome vectors with every client decided.
    pub complete_verdicts: BTreeSet<String>,
    /// Invariant violations (subtrees below a violation are pruned).
    pub violations: Vec<PathViolation>,
    /// Isolation-anomaly kinds the auditor certified *reachable* (seen at
    /// some all-decided state). Empty when `audit` is off.
    pub anomalies: BTreeSet<String>,
}

impl Report {
    /// Dedup hit rate: revisits / (revisits + unique states).
    pub fn dedup_rate(&self) -> f64 {
        let total = self.revisits + self.unique_states;
        if total == 0 {
            0.0
        } else {
            self.revisits as f64 / total as f64
        }
    }

    /// Render as a JSON object (hand-rolled; the workspace takes no deps).
    pub fn to_json(&self) -> String {
        let verdicts: Vec<String> = self.verdicts.iter().map(|v| format!("\"{v}\"")).collect();
        let complete: Vec<String> = self
            .complete_verdicts
            .iter()
            .map(|v| format!("\"{v}\""))
            .collect();
        let violations: Vec<String> = self
            .violations
            .iter()
            .take(8)
            .map(|v| {
                format!(
                    "{{\"invariant\":\"{}\",\"detail\":\"{}\",\"path\":{:?}}}",
                    v.invariant,
                    v.detail.replace('\\', "\\\\").replace('"', "\\\""),
                    v.path
                )
            })
            .collect();
        let anomalies: Vec<String> = self.anomalies.iter().map(|a| format!("\"{a}\"")).collect();
        format!(
            "{{\"unique_states\":{},\"steps\":{},\"revisits\":{},\"dedup_rate\":{:.4},\
             \"truncated\":{},\"terminals\":{},\"max_depth\":{},\"capped\":{},\
             \"verdicts\":[{}],\"complete_verdicts\":[{}],\
             \"violation_count\":{},\"violations\":[{}],\"anomalies\":[{}]}}",
            self.unique_states,
            self.steps,
            self.revisits,
            self.dedup_rate(),
            self.truncated,
            self.terminals,
            self.max_depth,
            self.capped,
            verdicts.join(","),
            complete.join(","),
            self.violations.len(),
            violations.join(","),
            anomalies.join(",")
        )
    }
}

/// The two workload keys. Chosen so they land on *different* shards under a
/// two-shard layout (and therefore exercise cross-shard routing), and chosen
/// identically for every shard count so S=1 and S=2 runs are comparable.
pub fn workload_keys() -> (Key, Key) {
    let mut probe = ClusterConfig::new(2, Protocol::Fast);
    probe.num_shards = 2;
    let a = Key::new("k0");
    let sa = probe.shard_of(&a);
    for i in 1..64 {
        let b = Key::new(format!("k{i}"));
        if probe.shard_of(&b) != sa {
            return (a, b);
        }
    }
    (a, Key::new("k1"))
}

/// The scripted workload: client 0 writes key A; client 1 writes A and B
/// (write-write conflict on A plus a cross-shard transaction); further
/// clients alternate single-key writes. The write-skew scenario instead
/// mirrors read/write sets across clients (no write-write conflict at all).
fn client_specs(scenario: Scenario, clients: usize, a: &Key, b: &Key) -> Vec<TxnSpec> {
    if scenario == Scenario::WriteSkew {
        return (0..clients)
            .map(|i| {
                let (read, write) = if i % 2 == 0 { (a, b) } else { (b, a) };
                TxnSpec {
                    reads: vec![read.clone()],
                    writes: vec![(write.clone(), WriteOp::Set(Value::Int(100 + i as i64)))],
                    ..TxnSpec::default()
                }
            })
            .collect();
    }
    (0..clients)
        .map(|i| match i {
            0 if clients == 1 => TxnSpec {
                reads: Vec::new(),
                writes: vec![
                    (a.clone(), WriteOp::Set(Value::Int(10))),
                    (b.clone(), WriteOp::Set(Value::Int(20))),
                ],
                ..TxnSpec::default()
            },
            0 => TxnSpec::write_one(a.clone(), WriteOp::Set(Value::Int(10))),
            1 => TxnSpec {
                reads: Vec::new(),
                writes: vec![
                    (a.clone(), WriteOp::Set(Value::Int(11))),
                    (b.clone(), WriteOp::Set(Value::Int(21))),
                ],
                ..TxnSpec::default()
            },
            i => {
                let key = if i % 2 == 0 { a.clone() } else { b.clone() };
                TxnSpec::write_one(key, WriteOp::Set(Value::Int(10 + i as i64)))
            }
        })
        .collect()
}

/// The monitor client: submits one transaction at start, records the
/// outcome, and checks callback monotonicity and outcome stability online.
pub struct MckClient {
    coordinator: ActorId,
    spec: TxnSpec,
    /// Submit via this pre-installed plan instead of shipping the spec.
    /// The scripted specs are fully concrete, so the parameter vector is
    /// empty — the wire carries just the plan id.
    plan: Option<PlanId>,
    tag: u64,
    /// Transaction id, learned from the first coordinator reply.
    pub txn: Option<TxnId>,
    /// Terminal outcome, if seen.
    pub outcome: Option<Outcome>,
    max_stage: u8,
    /// Monotonicity/stability violations observed by this client.
    pub violations: Vec<String>,
}

impl MckClient {
    fn new(coordinator: ActorId, spec: TxnSpec, plan: Option<PlanId>, tag: u64) -> Self {
        MckClient {
            coordinator,
            spec,
            plan,
            tag,
            txn: None,
            outcome: None,
            max_stage: 0,
            violations: Vec::new(),
        }
    }

    fn stage_rank(stage: &ProgressStage) -> u8 {
        match stage {
            ProgressStage::Started => 1,
            ProgressStage::ReadsDone { .. } => 2,
            ProgressStage::Vote { .. }
            | ProgressStage::KeyFallback { .. }
            | ProgressStage::KeyResolved { .. } => 3,
        }
    }

    fn digest<H: Hasher>(&self, h: &mut H) {
        self.tag.hash(h);
        self.txn.hash(h);
        planet_mdcc::digest::dbg_hash(&self.outcome, h);
        self.max_stage.hash(h);
        self.violations.len().hash(h);
    }
}

impl Actor<Msg> for MckClient {
    fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
        let me = ctx.self_id();
        let msg = match self.plan {
            Some(plan) => Msg::SubmitPlan {
                plan,
                params: Vec::new(),
                reply_to: me,
                tag: self.tag,
            },
            None => Msg::Submit {
                spec: self.spec.clone(),
                reply_to: me,
                tag: self.tag,
            },
        };
        ctx.send(self.coordinator, msg);
    }

    fn on_message(&mut self, _from: ActorId, msg: Msg, _ctx: &mut Context<'_, Msg>) {
        match msg {
            Msg::Progress { txn, stage, .. } => {
                self.txn.get_or_insert(txn);
                let rank = Self::stage_rank(&stage);
                if self.outcome.is_some() {
                    // The coordinator keeps forwarding late votes after the
                    // decision (the predictor wants slow replicas' times);
                    // any *other* stage after TxnDone is a violation.
                    if rank != 3 {
                        self.violations
                            .push(format!("stage rank {rank} after TxnDone"));
                    }
                } else if rank < self.max_stage {
                    self.violations.push(format!(
                        "stage rank {rank} after rank {} for txn {txn:?}",
                        self.max_stage
                    ));
                } else {
                    self.max_stage = rank;
                }
            }
            Msg::TxnDone { txn, outcome, .. } => {
                self.txn.get_or_insert(txn);
                match self.outcome {
                    None => {
                        self.outcome = Some(outcome);
                        self.max_stage = 4;
                    }
                    Some(prev) if prev != outcome => self
                        .violations
                        .push(format!("outcome flipped {prev:?} -> {outcome:?}")),
                    Some(_) => {}
                }
            }
            _ => {}
        }
    }
}

enum Kind {
    Replica(Box<ReplicaActor>),
    Coordinator(Box<CoordinatorActor>),
    Client(MckClient),
}

impl Kind {
    fn as_actor(&mut self) -> &mut dyn Actor<Msg> {
        match self {
            Kind::Replica(a) => &mut **a,
            Kind::Coordinator(a) => &mut **a,
            Kind::Client(a) => a,
        }
    }
}

struct Slot {
    site: SiteId,
    kind: Kind,
}

/// One invariant violation inside a world (path attached by the explorer).
#[derive(Debug, Clone)]
struct Violation {
    invariant: String,
    detail: String,
}

/// One scheduler choice at a state. Enumeration order is deterministic
/// (channels are held in a BTreeMap), so a choice is replayable by index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Choice {
    /// Deliver the head message of a channel.
    Deliver {
        /// (src, dst) actor ids.
        chan: (u32, u32),
    },
    /// Discard the head message (loss budget).
    Drop {
        /// (src, dst) actor ids.
        chan: (u32, u32),
    },
    /// Deliver the head message and re-enqueue a copy at the tail.
    Dup {
        /// (src, dst) actor ids.
        chan: (u32, u32),
    },
    /// Fire the earliest pending timer (only offered at quiescence).
    Fire,
}

struct World {
    cfg: MckConfig,
    cluster: ClusterConfig,
    actors: Vec<Slot>,
    channels: BTreeMap<(u32, u32), VecDeque<Msg>>,
    /// (due µs, arm sequence) → (owner, message). The arm sequence breaks
    /// same-deadline ties exactly like the simulation engine's event order.
    timers: BTreeMap<(u64, u64), (u32, Msg)>,
    timer_seq: u64,
    now: SimTime,
    drops_left: usize,
    dups_left: usize,
    mutation_done: bool,
    /// Sites eligible for permutation under the symmetry reduction.
    free_sites: Vec<u8>,
    /// Per-(replica, key) last observed committed head (monotonicity).
    heads: BTreeMap<(usize, Key), VersionNo>,
    /// Committed-version content first observed, per (key, version) —
    /// rewriting it is a stability violation.
    committed_seen: BTreeMap<(Key, VersionNo), (TxnId, String)>,
    violations: Vec<Violation>,
    client_violations_seen: usize,
    steps: u64,
    metrics: Metrics,
    /// Captures this path's trace when `cfg.audit` is on. Deliberately not
    /// part of the fingerprint: tracing must never perturb the state graph.
    trace_sink: Option<Arc<VecSink>>,
}

impl World {
    fn build(cfg: &MckConfig) -> World {
        let n = cfg.sites;
        let shards = cfg.shards.max(1);
        let mut cluster = ClusterConfig::new(n, cfg.protocol);
        cluster.num_shards = shards;
        let trace_sink = if cfg.audit {
            let sink = Arc::new(VecSink::new());
            cluster.trace = Trace::to(sink.clone());
            Some(sink)
        } else {
            None
        };

        let (a, b) = workload_keys();
        let mut actors: Vec<Slot> = Vec::new();
        // Replicas, shard-major — the id layout every actor predicts.
        let replica_ids: Vec<ActorId> = (0..shards * n).map(|i| ActorId(i as u32)).collect();
        for shard in 0..shards {
            let peers: Vec<ActorId> = replica_ids[shard * n..(shard + 1) * n].to_vec();
            for site in 0..n {
                actors.push(Slot {
                    site: SiteId(site as u8),
                    kind: Kind::Replica(Box::new(ReplicaActor::new(
                        cluster.clone(),
                        peers.clone(),
                        shard,
                    ))),
                });
            }
        }
        for site in 0..n {
            actors.push(Slot {
                site: SiteId(site as u8),
                kind: Kind::Coordinator(Box::new(CoordinatorActor::new(
                    cluster.clone(),
                    replica_ids.clone(),
                    SiteId(site as u8),
                ))),
            });
        }
        let specs = client_specs(cfg.scenario, cfg.clients, &a, &b);
        // Plan mode: compile every scripted spec to a concrete program and
        // install it on every coordinator before the first delivery choice
        // (registration is an out-of-band setup step, exactly as the live
        // deployment installs plans once per connection — it adds no
        // messages to the explored graph).
        if cfg.use_plans {
            for (i, spec) in specs.iter().enumerate() {
                let program = TxnProgram::of_concrete(
                    format!("mck-client-{i}"),
                    &spec.reads,
                    &spec.writes,
                    spec.read_level == ReadLevel::Quorum,
                )
                .expect("scripted specs compile");
                for slot in &mut actors {
                    if let Kind::Coordinator(c) = &mut slot.kind {
                        c.install_plan(i as PlanId, program.clone())
                            .expect("plan installs");
                    }
                }
            }
        }
        let mut client_sites = Vec::new();
        for (i, spec) in specs.into_iter().enumerate() {
            let site = (i % n) as u8;
            client_sites.push(site);
            let coordinator = ActorId((shards * n + site as usize) as u32);
            let plan = cfg.use_plans.then_some(i as PlanId);
            actors.push(Slot {
                site: SiteId(site),
                kind: Kind::Client(MckClient::new(coordinator, spec, plan, i as u64)),
            });
        }

        // A site is free (permutable) iff it hosts no client and masters no
        // workload key — it then only ever acts as an anonymous follower.
        let mut pinned: BTreeSet<u8> = client_sites.into_iter().collect();
        pinned.insert(cluster.master_of(&a).0);
        pinned.insert(cluster.master_of(&b).0);
        let free_sites: Vec<u8> = (0..n as u8).filter(|s| !pinned.contains(s)).collect();

        let mut w = World {
            cfg: cfg.clone(),
            cluster,
            actors,
            channels: BTreeMap::new(),
            timers: BTreeMap::new(),
            timer_seq: 0,
            now: SimTime::ZERO,
            drops_left: cfg.drops,
            dups_left: cfg.dups,
            mutation_done: false,
            free_sites,
            heads: BTreeMap::new(),
            committed_seen: BTreeMap::new(),
            violations: Vec::new(),
            client_violations_seen: 0,
            steps: 0,
            metrics: Metrics::new(),
            trace_sink,
        };
        for idx in 0..w.actors.len() {
            let inputs = TurnInputs {
                now: w.now,
                self_id: ActorId(idx as u32),
                self_site: w.actors[idx].site,
            };
            let mut rng = DetRng::new(0);
            let turn = drive_start(
                w.actors[idx].kind.as_actor(),
                inputs,
                &mut rng,
                &mut w.metrics,
            );
            w.steps += 1;
            w.absorb(idx as u32, turn.effects);
        }
        w.check_invariants();
        w
    }

    fn absorb(&mut self, src: u32, effects: Vec<Effect<Msg>>) {
        for eff in effects {
            match eff {
                Effect::Send { dst, msg } => {
                    self.channels
                        .entry((src, dst.0))
                        .or_default()
                        .push_back(msg);
                }
                Effect::Timer { delay, msg } => {
                    let due = (self.now + delay).as_micros();
                    let seq = self.timer_seq;
                    self.timer_seq += 1;
                    self.timers.insert((due, seq), (src, msg));
                }
                Effect::Halt => {}
            }
        }
    }

    fn drive_actor(&mut self, idx: usize, from: ActorId, msg: Msg) {
        let inputs = TurnInputs {
            now: self.now,
            self_id: ActorId(idx as u32),
            self_site: self.actors[idx].site,
        };
        let mut rng = DetRng::new(0);
        let turn = drive(
            self.actors[idx].kind.as_actor(),
            inputs,
            from,
            msg,
            &mut rng,
            &mut self.metrics,
        );
        self.steps += 1;
        self.absorb(idx as u32, turn.effects);
    }

    fn num_clients_base(&self) -> usize {
        self.cfg.shards.max(1) * self.cfg.sites + self.cfg.sites
    }

    fn is_client(&self, id: u32) -> bool {
        id as usize >= self.num_clients_base()
    }

    /// Loss/duplication applies only between protocol actors; the
    /// client↔coordinator path models an in-process callback interface.
    fn lossy(&self, chan: (u32, u32)) -> bool {
        !self.is_client(chan.0) && !self.is_client(chan.1)
    }

    fn choices(&self) -> Vec<Choice> {
        let mut out = Vec::new();
        for (&chan, q) in &self.channels {
            if q.is_empty() {
                continue;
            }
            out.push(Choice::Deliver { chan });
            if self.lossy(chan) {
                if self.drops_left > 0 {
                    out.push(Choice::Drop { chan });
                }
                if self.dups_left > 0 {
                    out.push(Choice::Dup { chan });
                }
            }
        }
        if out.is_empty() && !self.timers.is_empty() {
            out.push(Choice::Fire);
        }
        out
    }

    /// Apply the seeded mutation at delivery time. `None` swallows the
    /// message.
    fn mutate(&mut self, msg: Msg) -> Option<Msg> {
        if self.mutation_done {
            return Some(msg);
        }
        match (self.cfg.mutation, msg) {
            (
                Some(Mutation::TamperApply),
                Msg::Apply {
                    key, version, txn, ..
                },
            ) => {
                self.mutation_done = true;
                Some(Msg::Apply {
                    key,
                    version,
                    value: Value::Int(0x0BAD),
                    txn,
                })
            }
            (Some(Mutation::DropDecide), Msg::Decide { .. }) => {
                self.mutation_done = true;
                None
            }
            (_, msg) => Some(msg),
        }
    }

    fn step(&mut self, c: Choice) {
        match c {
            Choice::Deliver { chan } | Choice::Dup { chan } => {
                let Some(q) = self.channels.get_mut(&chan) else {
                    return;
                };
                let Some(msg) = q.pop_front() else { return };
                if let Choice::Dup { .. } = c {
                    q.push_back(msg.clone());
                    self.dups_left -= 1;
                }
                if let Some(msg) = self.mutate(msg) {
                    self.drive_actor(chan.1 as usize, ActorId(chan.0), msg);
                }
            }
            Choice::Drop { chan } => {
                if let Some(q) = self.channels.get_mut(&chan) {
                    q.pop_front();
                    self.drops_left -= 1;
                }
            }
            Choice::Fire => {
                let Some((&(due, seq), _)) = self.timers.iter().next() else {
                    return;
                };
                let Some((owner, msg)) = self.timers.remove(&(due, seq)) else {
                    return;
                };
                if due > self.now.as_micros() {
                    self.now = SimTime::from_micros(due);
                }
                self.drive_actor(owner as usize, ActorId(owner), msg);
            }
        }
        self.check_invariants();
    }

    fn replica(&self, idx: usize) -> Option<&ReplicaActor> {
        match &self.actors.get(idx)?.kind {
            Kind::Replica(r) => Some(r.as_ref()),
            _ => None,
        }
    }

    fn clients(&self) -> impl Iterator<Item = &MckClient> {
        self.actors.iter().filter_map(|s| match &s.kind {
            Kind::Client(c) => Some(c),
            _ => None,
        })
    }

    fn violate(&mut self, invariant: &str, detail: String) {
        self.violations.push(Violation {
            invariant: invariant.to_string(),
            detail,
        });
    }

    fn check_invariants(&mut self) {
        let n = self.cfg.sites;
        let shards = self.cfg.shards.max(1);
        let mut found: Vec<(String, String)> = Vec::new();

        // Agreement + stability over committed chains. Snapshot the chains
        // first: the store borrows would otherwise pin `self` immutably
        // while the monitor maps need updating.
        type ChainSnap = Vec<(usize, Key, VersionNo, Vec<(VersionNo, TxnId, String)>)>;
        for shard in 0..shards {
            let mut snap: ChainSnap = Vec::new();
            for site in 0..n {
                let idx = shard * n + site;
                let Some(rep) = self.replica(idx) else {
                    continue;
                };
                let store = rep.storage().store();
                let keys: Vec<Key> = store.keys().cloned().collect();
                for key in keys {
                    let Some(rec) = store.record(&key) else {
                        continue;
                    };
                    let chain = rec
                        .versions()
                        .iter()
                        .map(|v| (v.version, v.txn, format!("{:?}", v.value)))
                        .collect();
                    snap.push((idx, key, rec.current_version(), chain));
                }
            }
            let mut canonical: BTreeMap<(Key, VersionNo), (TxnId, String)> = BTreeMap::new();
            for (idx, key, head, chain) in snap {
                let prev = self.heads.get(&(idx, key.clone())).copied().unwrap_or(0);
                if head < prev {
                    found.push((
                        "commit-stability".into(),
                        format!("replica {idx} head for {key:?} regressed {prev} -> {head}"),
                    ));
                }
                self.heads.insert((idx, key.clone()), head.max(prev));
                for (version, txn, value) in chain {
                    let content = (txn, value);
                    match canonical.get(&(key.clone(), version)) {
                        None => {
                            canonical.insert((key.clone(), version), content.clone());
                        }
                        Some(seen) if *seen != content => found.push((
                            "agreement".into(),
                            format!(
                                "shard {shard} key {key:?} v{version}: {seen:?} vs {content:?} \
                                 at replica {idx}"
                            ),
                        )),
                        Some(_) => {}
                    }
                    match self.committed_seen.get(&(key.clone(), version)) {
                        None => {
                            self.committed_seen.insert((key.clone(), version), content);
                        }
                        Some(seen) if *seen != content => found.push((
                            "commit-stability".into(),
                            format!("key {key:?} v{version} rewritten: {seen:?} -> {content:?}"),
                        )),
                        Some(_) => {}
                    }
                }
            }
        }

        // Client-observed monotonicity and stability. Clients accumulate;
        // only report what appeared since the last check.
        let client_violations: Vec<String> = self
            .clients()
            .flat_map(|c| c.violations.iter().cloned())
            .skip(self.client_violations_seen)
            .collect();
        self.client_violations_seen += client_violations.len();
        for v in client_violations {
            found.push(("callback-monotonicity".into(), v));
        }

        // Durability at quiescence, only under a loss-free adversary (the
        // protocol does not retransmit decides; transports are reliable).
        if self.cfg.drops == 0 && self.channels.values().all(|q| q.is_empty()) {
            let committed: Vec<(TxnId, Vec<Key>)> = self
                .clients()
                .filter(|c| c.outcome == Some(Outcome::Committed))
                .filter_map(|c| {
                    c.txn
                        .map(|t| (t, c.spec.writes.iter().map(|(k, _)| k.clone()).collect()))
                })
                .collect();
            for (txn, keys) in committed {
                for key in keys {
                    let shard = self.cluster.shard_of(&key);
                    let master = self.cluster.master_of(&key).0 as usize;
                    let idx = shard * n + master;
                    let durable = self
                        .replica(idx)
                        .and_then(|r| r.storage().store().record(&key).cloned())
                        .map(|rec| rec.versions().iter().any(|v| v.txn == txn))
                        .unwrap_or(false);
                    if !durable {
                        found.push((
                            "durability".into(),
                            format!("committed {txn:?} missing from master of {key:?}"),
                        ));
                    }
                }
            }
        }

        for (invariant, detail) in found {
            self.violate(&invariant, detail);
        }
    }

    fn verdict(&self) -> String {
        self.clients()
            .map(|c| match c.outcome {
                Some(Outcome::Committed) => 'C',
                Some(Outcome::Aborted) => 'A',
                Some(Outcome::TimedOut) => 'T',
                None => '?',
            })
            .collect()
    }

    fn all_decided(&self) -> bool {
        self.clients().all(|c| c.outcome.is_some())
    }

    /// Build the digest map for one permutation of the free sites.
    /// `perm[i]` is the canonical site for `free_sites[i]`.
    fn digest_map(&self, perm: &[u8]) -> DigestMap {
        let n = self.cfg.sites;
        let shards = self.cfg.shards.max(1);
        let mut sites: Vec<u8> = (0..n as u8).collect();
        for (i, &from) in self.free_sites.iter().enumerate() {
            sites[from as usize] = perm[i];
        }
        let mut actors: Vec<u32> = (0..self.actors.len() as u32).collect();
        for shard in 0..shards {
            for site in 0..n {
                actors[shard * n + site] = (shard * n + sites[site] as usize) as u32;
            }
        }
        for site in 0..n {
            actors[shards * n + site] = (shards * n + sites[site] as usize) as u32;
        }
        DigestMap { sites, actors }
    }

    fn fp_with(&self, map: &DigestMap) -> u64 {
        let mut h = DefaultHasher::new();
        self.now.hash(&mut h);
        self.drops_left.hash(&mut h);
        self.dups_left.hash(&mut h);
        self.mutation_done.hash(&mut h);
        // Actors in canonical position order.
        let mut inv = vec![0usize; self.actors.len()];
        for (i, &ci) in map.actors.iter().enumerate() {
            inv[ci as usize] = i;
        }
        for &oi in &inv {
            match &self.actors[oi].kind {
                Kind::Replica(r) => {
                    0u8.hash(&mut h);
                    r.mck_digest(map, &mut h);
                }
                Kind::Coordinator(c) => {
                    1u8.hash(&mut h);
                    c.mck_digest(map, &mut h);
                }
                Kind::Client(c) => {
                    2u8.hash(&mut h);
                    c.digest(&mut h);
                }
            }
        }
        // Channels, sorted by canonical endpoints.
        let mut chans: Vec<((u32, u32), u64)> = self
            .channels
            .iter()
            .filter(|(_, q)| !q.is_empty())
            .map(|(&(s, d), q)| {
                let mut hh = DefaultHasher::new();
                for m in q {
                    digest_msg(m, map, &mut hh);
                }
                ((map.actor(ActorId(s)), map.actor(ActorId(d))), hh.finish())
            })
            .collect();
        chans.sort_unstable();
        chans.hash(&mut h);
        // Timers in fire order; the raw arm sequence is path-dependent and
        // excluded, but the *order* it induces is hashed implicitly.
        for ((due, _), (owner, msg)) in &self.timers {
            due.hash(&mut h);
            map.actor(ActorId(*owner)).hash(&mut h);
            digest_msg(msg, map, &mut h);
        }
        h.finish()
    }

    fn fingerprint(&self, symmetry: bool) -> u64 {
        if !symmetry || self.free_sites.len() < 2 {
            let ident = DigestMap::identity(self.cfg.sites, self.actors.len());
            return self.fp_with(&ident);
        }
        let mut best = u64::MAX;
        for perm in permutations(&self.free_sites) {
            best = best.min(self.fp_with(&self.digest_map(&perm)));
        }
        best
    }
}

/// All permutations of a small slice (site counts are tiny).
fn permutations(items: &[u8]) -> Vec<Vec<u8>> {
    if items.len() <= 1 {
        return vec![items.to_vec()];
    }
    let mut out = Vec::new();
    for (i, &head) in items.iter().enumerate() {
        let mut rest: Vec<u8> = items.to_vec();
        rest.remove(i);
        for mut tail in permutations(&rest) {
            tail.insert(0, head);
            out.push(tail);
        }
    }
    out
}

struct Explorer {
    cfg: MckConfig,
    seen: HashSet<u64>,
    steps: u64,
    revisits: u64,
    truncated: u64,
    terminals: u64,
    max_depth: usize,
    capped: bool,
    verdicts: BTreeSet<String>,
    complete_verdicts: BTreeSet<String>,
    violations: Vec<PathViolation>,
    anomalies: BTreeSet<String>,
}

/// How many violating paths to record before stopping the exploration —
/// one is proof enough; a few help diagnosis.
const VIOLATION_CAP: usize = 16;

impl Explorer {
    fn replay(&mut self, path: &[usize]) -> World {
        let mut w = World::build(&self.cfg);
        for &c in path {
            let cs = w.choices();
            if let Some(&choice) = cs.get(c) {
                w.step(choice);
            }
        }
        w
    }

    fn dfs(&mut self, path: &mut Vec<usize>) {
        if self.capped {
            return;
        }
        let w = self.replay(path);
        self.steps += w.steps;
        let verdict = w.verdict();
        self.verdicts.insert(verdict.clone());
        if w.all_decided() {
            self.complete_verdicts.insert(verdict);
        }
        // Certify reachable anomalies: audit this path's trace at EVERY
        // state, not just all-decided ones. The fingerprint is history-blind
        // — once per-txn protocol state is cleaned up, an anomalous
        // interleaving converges with a serial one and is pruned as a
        // revisit — but commit facts in a trace prefix are stable under
        // extension, so the auditor sees the cycle at the first state where
        // it is in evidence, before the fingerprints merge.
        if let Some(sink) = &w.trace_sink {
            let events = sink.snapshot();
            if !events.is_empty() {
                for a in &audit(&events).anomalies {
                    self.anomalies.insert(a.kind.to_string());
                }
            }
        }
        if !w.violations.is_empty() {
            for v in &w.violations {
                self.violations.push(PathViolation {
                    path: path.clone(),
                    invariant: v.invariant.clone(),
                    detail: v.detail.clone(),
                });
            }
            if self.violations.len() >= VIOLATION_CAP {
                self.capped = true;
            }
            return; // prune below a violated state
        }
        let fp = w.fingerprint(self.cfg.symmetry);
        if !self.seen.insert(fp) {
            self.revisits += 1;
            return;
        }
        if self.seen.len() >= self.cfg.max_states {
            self.capped = true;
            return;
        }
        self.max_depth = self.max_depth.max(path.len());
        if path.len() >= self.cfg.depth {
            self.truncated += 1;
            return;
        }
        let n = w.choices().len();
        if n == 0 {
            self.terminals += 1;
            return;
        }
        drop(w);
        for i in 0..n {
            path.push(i);
            self.dfs(path);
            path.pop();
        }
    }
}

/// Exhaustively explore the protocol under `cfg`.
pub fn explore(cfg: &MckConfig) -> Report {
    let mut ex = Explorer {
        cfg: cfg.clone(),
        seen: HashSet::new(),
        steps: 0,
        revisits: 0,
        truncated: 0,
        terminals: 0,
        max_depth: 0,
        capped: false,
        verdicts: BTreeSet::new(),
        complete_verdicts: BTreeSet::new(),
        violations: Vec::new(),
        anomalies: BTreeSet::new(),
    };
    let mut path = Vec::new();
    ex.dfs(&mut path);
    Report {
        unique_states: ex.seen.len() as u64,
        steps: ex.steps,
        revisits: ex.revisits,
        truncated: ex.truncated,
        terminals: ex.terminals,
        max_depth: ex.max_depth,
        capped: ex.capped,
        verdicts: ex.verdicts,
        complete_verdicts: ex.complete_verdicts,
        violations: ex.violations,
        anomalies: ex.anomalies,
    }
}

/// The shard-routing soundness check: the same workload explored with one
/// and with two shards must reach the same set of complete outcome vectors
/// (sharding is a performance layout, never a semantic change). The
/// two-shard run gets 50% more depth because each transaction crosses more
/// actors; the comparison is of *reachable* complete verdicts.
pub struct RoutingReport {
    /// The single-shard exploration.
    pub s1: Report,
    /// The two-shard exploration.
    pub s2: Report,
    /// True when complete-verdict sets match and neither run violated
    /// anything.
    pub consistent: bool,
}

/// Run the shard-routing soundness check (invariant 4).
pub fn routing_check(cfg: &MckConfig) -> RoutingReport {
    let mut c1 = cfg.clone();
    c1.shards = 1;
    let mut c2 = cfg.clone();
    c2.shards = 2;
    c2.depth = cfg.depth + cfg.depth / 2;
    let s1 = explore(&c1);
    let s2 = explore(&c2);
    let consistent = s1.complete_verdicts == s2.complete_verdicts
        && s1.violations.is_empty()
        && s2.violations.is_empty();
    RoutingReport { s1, s2, consistent }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_keys_span_shards() {
        let (a, b) = workload_keys();
        let mut cfg = ClusterConfig::new(2, Protocol::Fast);
        cfg.num_shards = 2;
        assert_ne!(cfg.shard_of(&a), cfg.shard_of(&b));
    }

    #[test]
    fn permutations_enumerate() {
        let perms = permutations(&[1, 2]);
        assert_eq!(perms.len(), 2);
        assert!(perms.contains(&vec![1, 2]) && perms.contains(&vec![2, 1]));
        assert_eq!(permutations(&[1, 2, 3]).len(), 6);
    }

    #[test]
    fn initial_state_has_submit_choices() {
        let w = World::build(&MckConfig::new(2, 1, 4));
        let cs = w.choices();
        // One client at site 0 → exactly one non-empty channel
        // (client → coordinator), delivery only (client channels reliable).
        assert_eq!(cs.len(), 1);
        assert!(matches!(cs[0], Choice::Deliver { .. }));
        assert!(w.violations.is_empty());
    }

    #[test]
    fn fingerprint_is_replay_stable() {
        let cfg = MckConfig::new(2, 1, 4);
        let mut w1 = World::build(&cfg);
        let mut w2 = World::build(&cfg);
        for w in [&mut w1, &mut w2] {
            let cs = w.choices();
            let c = cs[0];
            w.step(c);
        }
        assert_eq!(w1.fingerprint(true), w2.fingerprint(true));
    }

    /// Walk one world with a fixed strategy until every client decided (or
    /// the step cap runs out); returns the world for inspection.
    fn walk(cfg: &MckConfig, pick: impl Fn(usize, usize) -> usize) -> World {
        let mut w = World::build(cfg);
        for k in 0..500 {
            let cs = w.choices();
            if cs.is_empty() || w.all_decided() {
                break;
            }
            w.step(cs[pick(k, cs.len())]);
        }
        w
    }

    #[test]
    fn write_skew_is_reachable_and_audited() {
        // Round-robin delivery interleaves the two mirrored transactions, so
        // both read the initial versions before either commits — the
        // interleaving MDCC admits and serializability would forbid. The
        // auditor must certify it from the recorded trace.
        let mut cfg = MckConfig::new(2, 2, 64);
        cfg.scenario = Scenario::WriteSkew;
        cfg.audit = true;
        let w = walk(&cfg, |k, n| k % n);
        assert!(w.all_decided(), "walk did not finish: {}", w.verdict());
        assert_eq!(w.verdict(), "CC", "no write-write conflict: both commit");
        assert!(w.violations.is_empty(), "{:?}", w.violations);
        let sink = w.trace_sink.as_ref().expect("audit is on");
        let v = audit(&sink.snapshot());
        assert!(
            v.has("write-skew"),
            "expected write-skew certificate; verdict: {}",
            v.summary()
        );
        let skew = v
            .anomalies
            .iter()
            .find(|a| a.kind == "write-skew")
            .expect("has() implies present");
        assert_eq!(skew.txns.len(), 2, "witness names both transactions");
        assert_eq!(skew.edges.len(), 2, "witness carries the rw 2-cycle");
    }

    #[test]
    fn serial_write_skew_schedule_is_clean() {
        // Greedy deliver-first runs the two transactions back-to-back: the
        // second reads the first's committed write, which is serializable —
        // the auditor must NOT cry wolf.
        let mut cfg = MckConfig::new(2, 2, 64);
        cfg.scenario = Scenario::WriteSkew;
        cfg.audit = true;
        let w = walk(&cfg, |_, _| 0);
        assert!(w.all_decided(), "walk did not finish: {}", w.verdict());
        let sink = w.trace_sink.as_ref().expect("audit is on");
        let v = audit(&sink.snapshot());
        assert!(v.clean(), "serial schedule flagged: {}", v.summary());
    }

    #[test]
    fn explore_certifies_write_skew_reachable() {
        // The real certification path: bounded exhaustive exploration over
        // the write-skew scenario must find an interleaving exhibiting the
        // anomaly and surface it in the report.
        let mut cfg = MckConfig::new(2, 2, 26);
        cfg.scenario = Scenario::WriteSkew;
        cfg.audit = true;
        cfg.max_states = 40_000;
        let rep = explore(&cfg);
        assert!(rep.violations.is_empty(), "{:?}", rep.violations);
        assert!(
            rep.anomalies.contains("write-skew"),
            "write-skew not certified reachable: anomalies {:?}, complete {:?}",
            rep.anomalies,
            rep.complete_verdicts
        );
    }

    #[test]
    fn audit_is_digest_neutral() {
        // Tracing rides in ClusterConfig and is never hashed: the explored
        // state graph with auditing on must be node-for-node identical to
        // the one with auditing off.
        let mut base = MckConfig::new(2, 2, 10);
        base.scenario = Scenario::WriteSkew;
        let mut audited = base.clone();
        audited.audit = true;
        let off = explore(&base);
        let on = explore(&audited);
        assert_eq!(off.unique_states, on.unique_states);
        assert_eq!(off.revisits, on.revisits);
        assert_eq!(off.verdicts, on.verdicts);
        assert_eq!(off.complete_verdicts, on.complete_verdicts);
        assert!(off.anomalies.is_empty(), "no auditing, no anomalies");
    }

    #[test]
    fn plans_are_digest_neutral() {
        // The compiled commit path mirrors the interpreted one message for
        // message and digests per-transaction state as the spec it
        // specializes, so switching the workload to compiled plans must not
        // move a single state count: same unique states, same revisits, same
        // replay steps, same verdict sets. Both scenarios — Conflict has
        // write-write contention, WriteSkew exercises the plan read path.
        for scenario in [Scenario::Conflict, Scenario::WriteSkew] {
            let mut base = MckConfig::new(2, 2, 10);
            base.scenario = scenario;
            let mut compiled = base.clone();
            compiled.use_plans = true;
            let off = explore(&base);
            let on = explore(&compiled);
            assert!(off.violations.is_empty(), "{:?}", off.violations);
            assert!(on.violations.is_empty(), "{:?}", on.violations);
            assert_eq!(off.unique_states, on.unique_states, "{scenario:?}");
            assert_eq!(off.revisits, on.revisits, "{scenario:?}");
            assert_eq!(off.steps, on.steps, "{scenario:?}");
            assert_eq!(off.truncated, on.truncated, "{scenario:?}");
            assert_eq!(off.terminals, on.terminals, "{scenario:?}");
            assert_eq!(off.max_depth, on.max_depth, "{scenario:?}");
            assert_eq!(off.verdicts, on.verdicts, "{scenario:?}");
            assert_eq!(off.complete_verdicts, on.complete_verdicts, "{scenario:?}");
        }
    }

    #[test]
    fn compiled_plan_commits_along_some_path() {
        // Greedy deliver-first walk of a compiled-plan world: the plan path
        // must carry a transaction to commit with no monitor violation.
        let mut cfg = MckConfig::new(2, 1, 64);
        cfg.use_plans = true;
        let mut w = World::build(&cfg);
        for _ in 0..64 {
            let cs = w.choices();
            let Some(&c) = cs.first() else { break };
            w.step(c);
            if w.all_decided() {
                break;
            }
        }
        assert!(w.violations.is_empty(), "{:?}", w.violations);
        assert_eq!(w.verdict(), "C");
    }

    #[test]
    fn single_txn_commits_along_some_path() {
        // Greedy deliver-first walk of a 2-site single-client world: the
        // protocol must commit without any violation.
        let cfg = MckConfig::new(2, 1, 64);
        let mut w = World::build(&cfg);
        for _ in 0..64 {
            let cs = w.choices();
            let Some(&c) = cs.first() else { break };
            w.step(c);
            if w.all_decided() {
                break;
            }
        }
        assert!(w.violations.is_empty(), "{:?}", w.violations);
        assert_eq!(w.verdict(), "C");
    }
}
