//! Property-based tests for the storage engine's core invariants:
//!
//! 1. WAL replay reproduces the live store exactly, for any operation mix.
//! 2. Demarcation bounds are never violated by any interleaving of accepted
//!    commutative options.
//! 3. Version numbers increase by exactly one per commit and values follow
//!    the applied operations.
//!
//! The cases are generated from a seeded [`DetRng`] rather than an external
//! property-testing framework (the repo builds fully offline); each test
//! drives a fixed number of random scripts, and a failing case prints the
//! seed that reproduces it.

use planet_sim::DetRng;
use planet_storage::{Key, RecordOption, Replica, TxnId, Value, WriteOp};

/// A randomly generated action against a replica.
#[derive(Debug, Clone)]
enum Action {
    ProposeSet { key: u8, value: i64 },
    ProposeAdd { key: u8, delta: i64 },
    DecideOldest { key: u8, commit: bool },
}

fn random_action(rng: &mut DetRng) -> Action {
    match rng.index(3) {
        0 => Action::ProposeSet {
            key: rng.range_u64(0, 6) as u8,
            value: rng.range_u64(0, 100) as i64 - 50,
        },
        1 => Action::ProposeAdd {
            key: rng.range_u64(0, 6) as u8,
            delta: rng.range_u64(0, 40) as i64 - 20,
        },
        _ => Action::DecideOldest {
            key: rng.range_u64(0, 6) as u8,
            commit: rng.bernoulli(0.5),
        },
    }
}

fn random_script(rng: &mut DetRng) -> Vec<Action> {
    let len = rng.index(199) + 1; // 1..200
    (0..len).map(|_| random_action(rng)).collect()
}

const CASES: u64 = 128;

fn key(k: u8) -> Key {
    Key::new(format!("k{k}"))
}

const FLOOR: i64 = -100;
const CEIL: i64 = 100;

/// Drive a replica through a script. Physical proposals read the current
/// version first (as a real coordinator would); adds carry demarcation
/// bounds [FLOOR, CEIL].
fn run_script(actions: &[Action]) -> Replica {
    let mut replica = Replica::new();
    let mut next_txn = 0u64;
    // Pending txns per key in acceptance order, so DecideOldest is meaningful.
    let mut pending: std::collections::HashMap<u8, Vec<TxnId>> = Default::default();

    for action in actions {
        match action {
            Action::ProposeSet { key: k, value } => {
                let read = replica.read(&key(*k));
                let txn = TxnId::new(0, next_txn);
                next_txn += 1;
                let opt = RecordOption::new(txn, read.version, WriteOp::Set(Value::Int(*value)));
                if replica.accept(&key(*k), opt).is_ok() {
                    pending.entry(*k).or_default().push(txn);
                } else {
                    replica.note_rejection();
                }
            }
            Action::ProposeAdd { key: k, delta } => {
                let txn = TxnId::new(0, next_txn);
                next_txn += 1;
                let opt = RecordOption::new(
                    txn,
                    0,
                    WriteOp::Add {
                        delta: *delta,
                        lower: Some(FLOOR),
                        upper: Some(CEIL),
                    },
                );
                if replica.accept(&key(*k), opt).is_ok() {
                    pending.entry(*k).or_default().push(txn);
                } else {
                    replica.note_rejection();
                }
            }
            Action::DecideOldest { key: k, commit } => {
                if let Some(q) = pending.get_mut(k) {
                    if !q.is_empty() {
                        let txn = q.remove(0);
                        replica.decide(&key(*k), txn, *commit);
                    }
                }
            }
        }
    }
    replica
}

/// Replaying the WAL always reproduces the live store.
#[test]
fn wal_replay_matches_live_state() {
    for case in 0..CASES {
        let mut rng = DetRng::new(0x57A7_0000 + case);
        let actions = random_script(&mut rng);
        let replica = run_script(&actions);
        assert!(replica.verify_recovery().is_empty(), "case {case}");
        // And a recovered replica serves identical reads.
        let recovered = Replica::recover(replica.wal().clone());
        for k in 0u8..6 {
            assert_eq!(
                recovered.read(&key(k)),
                replica.read(&key(k)),
                "case {case} key k{k}"
            );
        }
    }
}

/// Recovery holds across checkpoints: interleave random checkpoint/GC
/// maintenance (as the replica actor's periodic sweep does) with the
/// operation stream, and the snapshot-plus-tail replay must still match the
/// live store at every point — including immediately after a truncation.
#[test]
fn recovery_holds_across_random_checkpoints() {
    for case in 0..CASES {
        let mut rng = DetRng::new(0x57A7_3000 + case);
        let actions = random_script(&mut rng);
        let mut replica = run_script(&actions[..actions.len() / 2]);
        // Maintenance mid-stream, with a threshold small enough to trigger.
        let threshold = rng.index(8) + 1;
        let checkpointed = replica.maybe_checkpoint(threshold);
        replica.gc(1);
        assert!(
            replica.verify_recovery().is_empty(),
            "case {case} post-maintenance (checkpointed: {checkpointed})"
        );
        // Keep operating on the same replica past the checkpoint: replay
        // the rest of the script by hand against it.
        let mut next_txn = 10_000u64;
        for action in &actions[actions.len() / 2..] {
            if let Action::ProposeAdd { key: k, delta } = action {
                let txn = TxnId::new(1, next_txn);
                next_txn += 1;
                let opt = RecordOption::new(
                    txn,
                    0,
                    WriteOp::Add {
                        delta: *delta,
                        lower: Some(FLOOR),
                        upper: Some(CEIL),
                    },
                );
                if replica.accept(&key(*k), opt).is_ok() {
                    replica.decide(&key(*k), txn, true);
                }
            }
        }
        assert!(replica.verify_recovery().is_empty(), "case {case} final");
        let recovered = Replica::recover(replica.wal().clone());
        for k in 0u8..6 {
            assert_eq!(
                recovered.read(&key(k)),
                replica.read(&key(k)),
                "case {case} key k{k}"
            );
        }
    }
}

/// No committed integer value ever escapes the demarcation bounds that
/// every Add option carried — regardless of which subset of options
/// commits. (Sets can place the value anywhere, so only check keys whose
/// history is purely adds; the script encodes that by checking the final
/// value when no Set ever committed on the key.)
#[test]
fn demarcation_bounds_hold() {
    for case in 0..CASES {
        let mut rng = DetRng::new(0x57A7_1000 + case);
        let actions = random_script(&mut rng);
        // Filter the script to adds + decides so bounds are the only writes.
        let adds_only: Vec<Action> = actions
            .into_iter()
            .filter(|a| !matches!(a, Action::ProposeSet { .. }))
            .collect();
        let replica = run_script(&adds_only);
        for k in 0u8..6 {
            let r = replica.read(&key(k));
            if let Value::Int(v) = r.value {
                assert!(
                    (FLOOR..=CEIL).contains(&v),
                    "case {case}: key k{k} committed value {v} outside [{FLOOR}, {CEIL}]"
                );
            }
        }
    }
}

/// Version numbers count commits exactly: the final version of each key
/// equals the number of committed decisions applied to it.
#[test]
fn versions_count_commits() {
    for case in 0..CASES {
        let mut rng = DetRng::new(0x57A7_2000 + case);
        let actions = random_script(&mut rng);
        let replica = run_script(&actions);
        for k in 0u8..6 {
            let kk = key(k);
            let commits = replica
                .wal()
                .records()
                .iter()
                .filter(|rec| match rec {
                    planet_storage::LogRecord::Decided { key, commit, .. } => *commit && key == &kk,
                    _ => false,
                })
                .count() as u64;
            assert_eq!(replica.read(&kk).version, commits, "case {case} key k{k}");
        }
    }
}

/// A rejected acceptance must leave no trace in the WAL. (Regression: the
/// accept path used to append `OptionAccepted` *before* handing the option
/// to the store, relying on a pre-validation followed by an
/// `expect("accept after successful validate cannot fail")` — a rejection
/// slipping between the two would have panicked the replica actor, and any
/// early-logged acceptance would survive into recovery as a ghost entry.)
#[test]
fn rejected_accept_leaves_wal_unchanged() {
    let mut replica = Replica::new();
    let k = key(0);

    // Commit one Set so the key's version moves to 1.
    let t0 = TxnId::new(0, 0);
    let read = replica.read(&k);
    replica
        .accept(
            &k,
            RecordOption::new(t0, read.version, WriteOp::Set(Value::Int(7))),
        )
        .expect("first accept");
    replica.decide(&k, t0, true);
    let wal_len = replica.wal().len();

    // A stale-version Set must be rejected — and must not touch the log.
    let stale = RecordOption::new(TxnId::new(0, 1), 0, WriteOp::Set(Value::Int(9)));
    assert!(replica.accept(&k, stale).is_err(), "stale accept must fail");
    assert_eq!(
        replica.wal().len(),
        wal_len,
        "rejected accept appended to the WAL"
    );

    // Recovery still reproduces the live store exactly.
    assert!(replica.verify_recovery().is_empty());
    let recovered = Replica::recover(replica.wal().clone());
    assert_eq!(recovered.read(&k).value, replica.read(&k).value);
    assert_eq!(recovered.read(&k).version, replica.read(&k).version);
}
