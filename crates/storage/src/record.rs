//! A multi-versioned record with pending-option state.
//!
//! Each record keeps a chain of committed versions plus the set of options
//! that have been accepted but whose transactions are still in flight. The
//! validation rules here are the heart of the optimistic protocol:
//!
//! * a **physical** option (Set/Delete) is accepted only if it is based on
//!   the record's current committed version *and* nothing else is pending;
//! * a **commutative** option (Add with bounds) is accepted as long as no
//!   physical option is pending and the *worst-case* combination of already
//!   pending deltas keeps the value within the option's integrity bounds
//!   (the demarcation rule).

use crate::options::{RecordOption, RejectReason, WriteOp};
use crate::types::{TxnId, Value, VersionNo};

/// One committed version of a record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommittedVersion {
    /// Version number (1 is the first write).
    pub version: VersionNo,
    /// The value as of this version.
    pub value: Value,
    /// The transaction that produced it.
    pub txn: TxnId,
}

/// A record: committed version chain plus pending options.
#[derive(Debug, Clone, Default)]
pub struct VersionedRecord {
    versions: Vec<CommittedVersion>,
    pending: Vec<RecordOption>,
}

impl VersionedRecord {
    /// An empty (never-written) record.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current committed version number (0 if never written).
    pub fn current_version(&self) -> VersionNo {
        self.versions.last().map_or(0, |v| v.version)
    }

    /// Current committed value (`Value::None` if never written or deleted).
    pub fn current_value(&self) -> &Value {
        self.versions.last().map_or(&Value::None, |v| &v.value)
    }

    /// The committed value as of a specific version number, if retained.
    pub fn value_at(&self, version: VersionNo) -> Option<&Value> {
        if version == 0 {
            return Some(&Value::None);
        }
        self.versions
            .iter()
            .rev()
            .find(|v| v.version <= version)
            .map(|v| &v.value)
    }

    /// Number of pending (accepted, undecided) options.
    pub fn pending_count(&self) -> usize {
        self.pending.len()
    }

    /// True if a pending physical option exists.
    pub fn has_pending_physical(&self) -> bool {
        self.pending.iter().any(|o| !o.is_commutative())
    }

    /// The pending options (e.g. for the likelihood model's conflict term).
    pub fn pending(&self) -> &[RecordOption] {
        &self.pending
    }

    /// The full retained committed-version chain, oldest first. Used by the
    /// model checker to compare value histories across replicas.
    pub fn versions(&self) -> &[CommittedVersion] {
        &self.versions
    }

    /// Validate an option against the current state without accepting it.
    pub fn validate(&self, option: &RecordOption) -> Result<(), RejectReason> {
        if self.pending.iter().any(|o| o.txn == option.txn) {
            return Err(RejectReason::DuplicateTxn);
        }
        match &option.op {
            WriteOp::Set(_) | WriteOp::Delete => {
                if let Some(holder) = self.pending.first() {
                    return Err(RejectReason::PendingConflict { holder: holder.txn });
                }
                let actual = self.current_version();
                if option.read_version != actual {
                    return Err(RejectReason::StaleVersion {
                        expected: option.read_version,
                        actual,
                    });
                }
                Ok(())
            }
            WriteOp::Add {
                delta,
                lower,
                upper,
            } => {
                if let Some(phys) = self.pending.iter().find(|o| !o.is_commutative()) {
                    return Err(RejectReason::PendingConflict { holder: phys.txn });
                }
                let Some(cur) = self.current_value().as_int() else {
                    return Err(RejectReason::TypeMismatch);
                };
                // Demarcation: the bound must hold even in the worst case —
                // for the lower bound, assume every pending negative delta
                // commits (and this one, if negative); symmetrically for the
                // upper bound.
                let pending_neg: i64 = self.pending_delta_sum(|d| d < 0);
                let pending_pos: i64 = self.pending_delta_sum(|d| d > 0);
                if let Some(lo) = lower {
                    if cur + pending_neg + delta.min(&0) < *lo {
                        return Err(RejectReason::BoundViolation);
                    }
                }
                if let Some(hi) = upper {
                    if cur + pending_pos + *delta.max(&0) > *hi {
                        return Err(RejectReason::BoundViolation);
                    }
                }
                Ok(())
            }
        }
    }

    fn pending_delta_sum(&self, filter: impl Fn(i64) -> bool) -> i64 {
        self.pending
            .iter()
            .filter_map(|o| match o.op {
                WriteOp::Add { delta, .. } if filter(delta) => Some(delta),
                _ => None,
            })
            .sum()
    }

    /// Validate and, on success, accept an option (it becomes pending).
    pub fn accept(&mut self, option: RecordOption) -> Result<(), RejectReason> {
        self.validate(&option)?;
        self.pending.push(option);
        Ok(())
    }

    /// Learn a transaction's outcome. If the transaction has a pending option
    /// here and committed, the option is executed as a new committed version.
    /// Returns the new version number if a version was produced.
    pub fn decide(&mut self, txn: TxnId, commit: bool) -> Option<VersionNo> {
        let idx = self.pending.iter().position(|o| o.txn == txn)?;
        let option = self.pending.remove(idx);
        if !commit {
            return None;
        }
        let new_version = self.current_version() + 1;
        let new_value = option.op.apply(self.current_value());
        self.versions.push(CommittedVersion {
            version: new_version,
            value: new_value,
            txn,
        });
        Some(new_version)
    }

    /// Install a committed version by state transfer (replica convergence
    /// path): drop any pending option of `txn`, and if `version` is newer
    /// than the current version, adopt `(version, value)` as the new head.
    /// Returns true if the head advanced.
    pub fn install(&mut self, version: VersionNo, value: Value, txn: TxnId) -> bool {
        if let Some(idx) = self.pending.iter().position(|o| o.txn == txn) {
            self.pending.remove(idx);
        }
        if version > self.current_version() {
            self.versions.push(CommittedVersion {
                version,
                value,
                txn,
            });
            true
        } else {
            false
        }
    }

    /// Drop all but the newest `keep` committed versions.
    pub fn gc(&mut self, keep: usize) {
        if self.versions.len() > keep {
            let cut = self.versions.len() - keep;
            self.versions.drain(..cut);
        }
    }

    /// Number of retained committed versions.
    pub fn version_count(&self) -> usize {
        self.versions.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn txn(n: u64) -> TxnId {
        TxnId::new(0, n)
    }

    fn set(t: u64, read_version: VersionNo, v: i64) -> RecordOption {
        RecordOption::new(txn(t), read_version, WriteOp::Set(Value::Int(v)))
    }

    #[test]
    fn fresh_record_is_version_zero_none() {
        let r = VersionedRecord::new();
        assert_eq!(r.current_version(), 0);
        assert_eq!(r.current_value(), &Value::None);
        assert_eq!(r.value_at(0), Some(&Value::None));
    }

    #[test]
    fn physical_accept_then_commit_advances_version() {
        let mut r = VersionedRecord::new();
        r.accept(set(1, 0, 10)).unwrap();
        assert_eq!(r.pending_count(), 1);
        assert_eq!(r.decide(txn(1), true), Some(1));
        assert_eq!(r.current_version(), 1);
        assert_eq!(r.current_value(), &Value::Int(10));
        assert_eq!(r.pending_count(), 0);
    }

    #[test]
    fn abort_discards_option() {
        let mut r = VersionedRecord::new();
        r.accept(set(1, 0, 10)).unwrap();
        assert_eq!(r.decide(txn(1), false), None);
        assert_eq!(r.current_version(), 0);
        assert_eq!(r.current_value(), &Value::None);
    }

    #[test]
    fn decide_unknown_txn_is_noop() {
        let mut r = VersionedRecord::new();
        assert_eq!(r.decide(txn(9), true), None);
    }

    #[test]
    fn stale_physical_rejected() {
        let mut r = VersionedRecord::new();
        r.accept(set(1, 0, 10)).unwrap();
        r.decide(txn(1), true);
        let err = r.accept(set(2, 0, 20)).unwrap_err();
        assert_eq!(
            err,
            RejectReason::StaleVersion {
                expected: 0,
                actual: 1
            }
        );
        r.accept(set(3, 1, 20)).unwrap();
    }

    #[test]
    fn concurrent_physical_options_conflict() {
        let mut r = VersionedRecord::new();
        r.accept(set(1, 0, 10)).unwrap();
        let err = r.accept(set(2, 0, 20)).unwrap_err();
        assert_eq!(err, RejectReason::PendingConflict { holder: txn(1) });
    }

    #[test]
    fn duplicate_txn_rejected() {
        let mut r = VersionedRecord::new();
        r.accept(set(1, 0, 10)).unwrap();
        let dup = RecordOption::new(txn(1), 0, WriteOp::add(1));
        assert_eq!(r.accept(dup).unwrap_err(), RejectReason::DuplicateTxn);
    }

    #[test]
    fn commutative_options_coexist() {
        let mut r = VersionedRecord::new();
        r.accept(set(1, 0, 100)).unwrap();
        r.decide(txn(1), true);
        for t in 2..7 {
            let o = RecordOption::new(txn(t), 0, WriteOp::add_with_floor(-10, 0));
            r.accept(o).unwrap();
        }
        assert_eq!(r.pending_count(), 5);
        // Commit them all; value drains to 50 across versions 2..=6.
        for t in 2..7 {
            r.decide(txn(t), true);
        }
        assert_eq!(r.current_value(), &Value::Int(50));
        assert_eq!(r.current_version(), 6);
    }

    #[test]
    fn demarcation_lower_bound_counts_worst_case() {
        let mut r = VersionedRecord::new();
        r.accept(set(1, 0, 25)).unwrap();
        r.decide(txn(1), true);
        // Two -10s are fine (worst case 5), a third would risk -5.
        r.accept(RecordOption::new(
            txn(2),
            0,
            WriteOp::add_with_floor(-10, 0),
        ))
        .unwrap();
        r.accept(RecordOption::new(
            txn(3),
            0,
            WriteOp::add_with_floor(-10, 0),
        ))
        .unwrap();
        let err = r
            .accept(RecordOption::new(
                txn(4),
                0,
                WriteOp::add_with_floor(-10, 0),
            ))
            .unwrap_err();
        assert_eq!(err, RejectReason::BoundViolation);
        // A positive delta doesn't threaten the floor even now.
        r.accept(RecordOption::new(txn(5), 0, WriteOp::add_with_floor(30, 0)))
            .unwrap();
        // And once one decrement aborts, capacity is released.
        r.decide(txn(2), false);
        r.accept(RecordOption::new(
            txn(6),
            0,
            WriteOp::add_with_floor(-10, 0),
        ))
        .unwrap();
    }

    #[test]
    fn demarcation_upper_bound() {
        let mut r = VersionedRecord::new();
        r.accept(set(1, 0, 90)).unwrap();
        r.decide(txn(1), true);
        let cap = |t: u64, d: i64| {
            RecordOption::new(
                txn(t),
                0,
                WriteOp::Add {
                    delta: d,
                    lower: None,
                    upper: Some(100),
                },
            )
        };
        r.accept(cap(2, 8)).unwrap();
        assert_eq!(
            r.accept(cap(3, 8)).unwrap_err(),
            RejectReason::BoundViolation
        );
    }

    #[test]
    fn commutative_on_bytes_is_type_mismatch() {
        let mut r = VersionedRecord::new();
        r.accept(RecordOption::new(
            txn(1),
            0,
            WriteOp::Set(Value::from("blob")),
        ))
        .unwrap();
        r.decide(txn(1), true);
        let err = r
            .accept(RecordOption::new(txn(2), 0, WriteOp::add(1)))
            .unwrap_err();
        assert_eq!(err, RejectReason::TypeMismatch);
    }

    #[test]
    fn physical_blocked_by_pending_commutative() {
        let mut r = VersionedRecord::new();
        r.accept(set(1, 0, 10)).unwrap();
        r.decide(txn(1), true);
        r.accept(RecordOption::new(txn(2), 0, WriteOp::add(1)))
            .unwrap();
        let err = r.accept(set(3, 1, 99)).unwrap_err();
        assert_eq!(err, RejectReason::PendingConflict { holder: txn(2) });
        assert!(!r.has_pending_physical());
    }

    #[test]
    fn value_at_walks_history() {
        let mut r = VersionedRecord::new();
        for (t, v) in [(1, 10), (2, 20), (3, 30)] {
            r.accept(set(t, (t - 1) as VersionNo, v)).unwrap();
            r.decide(txn(t), true);
        }
        assert_eq!(r.value_at(1), Some(&Value::Int(10)));
        assert_eq!(r.value_at(2), Some(&Value::Int(20)));
        assert_eq!(r.value_at(3), Some(&Value::Int(30)));
        assert_eq!(r.value_at(0), Some(&Value::None));
    }

    #[test]
    fn install_advances_head_and_clears_pending() {
        let mut r = VersionedRecord::new();
        r.accept(set(1, 0, 10)).unwrap();
        // State transfer from the master: version 3 produced by txn 1.
        assert!(r.install(3, Value::Int(99), txn(1)));
        assert_eq!(r.current_version(), 3);
        assert_eq!(r.current_value(), &Value::Int(99));
        assert_eq!(r.pending_count(), 0);
    }

    #[test]
    fn stale_install_only_clears_pending() {
        let mut r = VersionedRecord::new();
        r.accept(set(1, 0, 10)).unwrap();
        r.decide(txn(1), true);
        r.accept(set(2, 1, 20)).unwrap();
        // A stale (already superseded) install must not regress the head.
        assert!(!r.install(1, Value::Int(5), txn(2)));
        assert_eq!(r.current_version(), 1);
        assert_eq!(r.current_value(), &Value::Int(10));
        assert_eq!(r.pending_count(), 0);
    }

    #[test]
    fn gc_retains_newest() {
        let mut r = VersionedRecord::new();
        for (t, v) in [(1, 10), (2, 20), (3, 30)] {
            r.accept(set(t, (t - 1) as VersionNo, v)).unwrap();
            r.decide(txn(t), true);
        }
        r.gc(1);
        assert_eq!(r.version_count(), 1);
        assert_eq!(r.current_value(), &Value::Int(30));
        assert_eq!(r.value_at(1), None);
    }
}
