//! Key interning: map wire-form [`Key`]s to dense store-local [`KeyId`]s.
//!
//! Every store operation used to hash (and often clone) the key string.
//! Interning pays that hash exactly once per message — at the boundary where
//! a key enters the replica — and hands back a `u32` index that the hot path
//! (validate / accept / decide / read) uses for direct vector addressing.
//!
//! Determinism note: the interner assigns ids in first-seen order, which in
//! the simulation is the (deterministic) message order. The internal
//! `HashMap` is only ever *probed*, never iterated, so no hash-order
//! nondeterminism can escape; ordered key traversal goes through
//! [`KeyInterner::keys_sorted`].

use std::collections::HashMap;

use crate::types::{Key, KeyId};

/// A per-store (and therefore per-site, per-shard) key interner.
#[derive(Debug, Default, Clone)]
pub struct KeyInterner {
    ids: HashMap<Key, KeyId>,
    names: Vec<Key>,
}

impl KeyInterner {
    /// An empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern `key`, assigning the next dense id on first sight. The key is
    /// only cloned (a refcount bump) the first time it is seen.
    pub fn intern(&mut self, key: &Key) -> KeyId {
        if let Some(&id) = self.ids.get(key) {
            return id;
        }
        // 2^32 distinct keys would exhaust memory long before this id
        // counter overflows; the bound is structural.
        // check:allow(panic)
        let id = KeyId(u32::try_from(self.names.len()).expect("more than u32::MAX keys interned"));
        self.names.push(key.clone());
        self.ids.insert(key.clone(), id);
        id
    }

    /// Look up the id of an already-interned key.
    pub fn get(&self, key: &Key) -> Option<KeyId> {
        self.ids.get(key).copied()
    }

    /// The key a given id stands for.
    ///
    /// # Panics
    /// If `id` was not issued by this interner.
    pub fn name(&self, id: KeyId) -> &Key {
        &self.names[id.0 as usize]
    }

    /// Number of interned keys.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True if nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// All interned keys in sorted (not insertion) order, for deterministic
    /// traversal regardless of arrival order.
    pub fn keys_sorted(&self) -> Vec<&Key> {
        let mut keys: Vec<&Key> = self.names.iter().collect();
        keys.sort();
        keys
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interns_dense_ids_in_first_seen_order() {
        let mut i = KeyInterner::new();
        assert!(i.is_empty());
        let a = i.intern(&Key::new("a"));
        let b = i.intern(&Key::new("b"));
        assert_eq!(a, KeyId(0));
        assert_eq!(b, KeyId(1));
        assert_eq!(i.intern(&Key::new("a")), a, "re-intern is stable");
        assert_eq!(i.len(), 2);
        assert_eq!(i.name(b).as_str(), "b");
        assert_eq!(i.get(&Key::new("b")), Some(b));
        assert_eq!(i.get(&Key::new("zz")), None);
    }

    #[test]
    fn keys_sorted_ignores_insertion_order() {
        let mut i = KeyInterner::new();
        for k in ["m", "a", "z"] {
            i.intern(&Key::new(k));
        }
        let sorted: Vec<&str> = i.keys_sorted().iter().map(|k| k.as_str()).collect();
        assert_eq!(sorted, vec!["a", "m", "z"]);
    }
}
