//! Write-ahead log and crash recovery.
//!
//! Every state transition a replica performs — accepting an option, learning
//! a decision — is logged before it is applied. Replaying the log into a
//! fresh [`Store`] reconstructs exactly the same state, which is both the
//! recovery story and a powerful testing oracle (see the property tests in
//! `replica.rs`).

use crate::options::RecordOption;
use crate::store::Store;
use crate::types::{Key, TxnId};

/// One logged state transition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LogRecord {
    /// An option was validated and accepted on `key`.
    OptionAccepted {
        /// The record the option applies to.
        key: Key,
        /// The accepted option.
        option: RecordOption,
    },
    /// A transaction outcome was learned for `key`.
    Decided {
        /// The record the decision applies to.
        key: Key,
        /// The deciding transaction.
        txn: TxnId,
        /// `true` for commit, `false` for abort.
        commit: bool,
    },
    /// A committed version was installed by state transfer from the key's
    /// master (replica convergence path).
    Installed {
        /// The record.
        key: Key,
        /// Master-assigned version number.
        version: crate::types::VersionNo,
        /// The committed value.
        value: crate::types::Value,
        /// The transaction that produced it.
        txn: TxnId,
    },
}

/// An append-only log with a durable high-water mark.
///
/// ```
/// use planet_storage::{Key, LogRecord, RecordOption, TxnId, Value, Wal, WriteOp};
///
/// let mut wal = Wal::new();
/// let key = Key::new("a");
/// let txn = TxnId::new(0, 1);
/// wal.append(LogRecord::OptionAccepted {
///     key: key.clone(),
///     option: RecordOption::new(txn, 0, WriteOp::Set(Value::Int(7))),
/// });
/// wal.append(LogRecord::Decided { key: key.clone(), txn, commit: true });
/// let store = wal.replay();
/// assert_eq!(store.read(&key).value, Value::Int(7));
/// ```
#[derive(Debug, Default, Clone)]
pub struct Wal {
    records: Vec<LogRecord>,
}

impl Wal {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a record, returning its log sequence number.
    pub fn append(&mut self, record: LogRecord) -> u64 {
        self.records.push(record);
        self.records.len() as u64 - 1
    }

    /// Number of records logged.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if nothing has been logged.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The logged records, in order.
    pub fn records(&self) -> &[LogRecord] {
        &self.records
    }

    /// Truncate to the first `len` records — models losing the un-flushed
    /// tail in a crash.
    pub fn truncate(&mut self, len: usize) {
        self.records.truncate(len);
    }

    /// Replay the log into a fresh store. Replay is forgiving: records that
    /// no longer validate (possible only with a corrupted/truncated log) are
    /// skipped rather than panicking, matching how a recovering replica must
    /// treat a torn log tail.
    pub fn replay(&self) -> Store {
        let mut store = Store::new();
        for rec in &self.records {
            match rec {
                LogRecord::OptionAccepted { key, option } => {
                    let _ = store.accept(key, option.clone());
                }
                LogRecord::Decided { key, txn, commit } => {
                    let _ = store.decide(key, *txn, *commit);
                }
                LogRecord::Installed {
                    key,
                    version,
                    value,
                    txn,
                } => {
                    let _ = store.install(key, *version, value.clone(), *txn);
                }
            }
        }
        store
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::WriteOp;
    use crate::types::Value;

    fn txn(n: u64) -> TxnId {
        TxnId::new(0, n)
    }

    #[test]
    fn append_assigns_sequential_lsns() {
        let mut wal = Wal::new();
        let k = Key::new("a");
        let o = RecordOption::new(txn(1), 0, WriteOp::add(1));
        assert_eq!(
            wal.append(LogRecord::OptionAccepted {
                key: k.clone(),
                option: o
            }),
            0
        );
        assert_eq!(
            wal.append(LogRecord::Decided {
                key: k,
                txn: txn(1),
                commit: true
            }),
            1
        );
        assert_eq!(wal.len(), 2);
        assert!(!wal.is_empty());
    }

    #[test]
    fn replay_reconstructs_state() {
        let mut wal = Wal::new();
        let k = Key::new("balance");
        wal.append(LogRecord::OptionAccepted {
            key: k.clone(),
            option: RecordOption::new(txn(1), 0, WriteOp::Set(Value::Int(100))),
        });
        wal.append(LogRecord::Decided {
            key: k.clone(),
            txn: txn(1),
            commit: true,
        });
        wal.append(LogRecord::OptionAccepted {
            key: k.clone(),
            option: RecordOption::new(txn(2), 0, WriteOp::add(-30)),
        });
        wal.append(LogRecord::Decided {
            key: k.clone(),
            txn: txn(2),
            commit: true,
        });
        wal.append(LogRecord::OptionAccepted {
            key: k.clone(),
            option: RecordOption::new(txn(3), 0, WriteOp::add(-30)),
        });
        // txn 3 still pending at "crash" time.
        let store = wal.replay();
        let r = store.read(&k);
        assert_eq!(r.value, Value::Int(70));
        assert_eq!(r.version, 2);
        assert_eq!(r.pending, 1);
    }

    #[test]
    fn truncated_log_replays_prefix() {
        let mut wal = Wal::new();
        let k = Key::new("a");
        wal.append(LogRecord::OptionAccepted {
            key: k.clone(),
            option: RecordOption::new(txn(1), 0, WriteOp::Set(Value::Int(1))),
        });
        wal.append(LogRecord::Decided {
            key: k.clone(),
            txn: txn(1),
            commit: true,
        });
        wal.truncate(1);
        let store = wal.replay();
        let r = store.read(&k);
        assert_eq!(r.version, 0);
        assert_eq!(r.pending, 1);
    }
}
