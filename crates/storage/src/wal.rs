//! Write-ahead log and crash recovery.
//!
//! Every state transition a replica performs — accepting an option, learning
//! a decision — is logged before it is applied. Replaying the log into a
//! fresh [`Store`] reconstructs exactly the same state, which is both the
//! recovery story and a powerful testing oracle (see the property tests in
//! `replica.rs`).

use crate::options::RecordOption;
use crate::store::Store;
use crate::types::{Key, TxnId};

/// One logged state transition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LogRecord {
    /// An option was validated and accepted on `key`.
    OptionAccepted {
        /// The record the option applies to.
        key: Key,
        /// The accepted option.
        option: RecordOption,
    },
    /// A transaction outcome was learned for `key`.
    Decided {
        /// The record the decision applies to.
        key: Key,
        /// The deciding transaction.
        txn: TxnId,
        /// `true` for commit, `false` for abort.
        commit: bool,
    },
    /// A committed version was installed by state transfer from the key's
    /// master (replica convergence path).
    Installed {
        /// The record.
        key: Key,
        /// Master-assigned version number.
        version: crate::types::VersionNo,
        /// The committed value.
        value: crate::types::Value,
        /// The transaction that produced it.
        txn: TxnId,
    },
}

/// An append-only log with a durable high-water mark and an optional
/// checkpoint base.
///
/// Without checkpoints the log grows without bound under sustained load.
/// [`Wal::checkpoint`] snapshots the live store and drops every record at
/// or below the durable mark; [`Wal::replay`] then starts from the snapshot
/// and applies only the retained tail. Log sequence numbers are global and
/// monotonic across checkpoints (`base_lsn` remembers how many records were
/// folded into the snapshot).
///
/// ```
/// use planet_storage::{Key, LogRecord, RecordOption, TxnId, Value, Wal, WriteOp};
///
/// let mut wal = Wal::new();
/// let key = Key::new("a");
/// let txn = TxnId::new(0, 1);
/// wal.append(LogRecord::OptionAccepted {
///     key: key.clone(),
///     option: RecordOption::new(txn, 0, WriteOp::Set(Value::Int(7))),
/// });
/// wal.append(LogRecord::Decided { key: key.clone(), txn, commit: true });
/// let store = wal.replay();
/// assert_eq!(store.read(&key).value, Value::Int(7));
/// ```
#[derive(Debug, Default, Clone)]
pub struct Wal {
    /// Store state as of `base_lsn` (everything below it, applied).
    snapshot: Option<Store>,
    /// Global lsn of the first record in `records`.
    base_lsn: u64,
    /// The retained log tail.
    records: Vec<LogRecord>,
}

impl Wal {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a record, returning its (global) log sequence number.
    pub fn append(&mut self, record: LogRecord) -> u64 {
        self.records.push(record);
        self.base_lsn + self.records.len() as u64 - 1
    }

    /// Number of records in the retained tail (records folded into the
    /// checkpoint snapshot no longer count).
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if the retained tail is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The retained records, in order.
    pub fn records(&self) -> &[LogRecord] {
        &self.records
    }

    /// The global lsn the next [`Wal::append`] will be assigned.
    pub fn next_lsn(&self) -> u64 {
        self.base_lsn + self.records.len() as u64
    }

    /// The global lsn of the first retained record (records below this live
    /// only inside the checkpoint snapshot).
    pub fn base_lsn(&self) -> u64 {
        self.base_lsn
    }

    /// Truncate the *tail* to the first `len` retained records — models
    /// losing the un-flushed tail in a crash.
    pub fn truncate(&mut self, len: usize) {
        self.records.truncate(len);
    }

    /// Drop every retained record with lsn below `mark` (exclusive). The
    /// caller asserts that state up to `mark` is durable elsewhere — i.e. a
    /// snapshot installed via [`Wal::install_snapshot`] covers it. Marks
    /// below the current base are a no-op; marks beyond the durable end are
    /// clamped.
    pub fn truncate_to(&mut self, mark: u64) {
        let mark = mark.clamp(self.base_lsn, self.next_lsn());
        let drop_n = (mark - self.base_lsn) as usize;
        self.records.drain(..drop_n);
        self.base_lsn = mark;
    }

    /// Install a point-in-time store snapshot covering everything below the
    /// current base lsn. Replay starts from it instead of an empty store.
    pub fn install_snapshot(&mut self, store: Store) {
        self.snapshot = Some(store);
    }

    /// Checkpoint: install `store` (cloned) as the snapshot of everything
    /// logged so far and drop the entire retained tail. After this,
    /// [`Wal::replay`] returns the snapshot plus any records appended later.
    pub fn checkpoint(&mut self, store: &Store) {
        let mark = self.next_lsn();
        self.install_snapshot(store.clone());
        self.truncate_to(mark);
    }

    /// True if a checkpoint snapshot is installed.
    pub fn has_snapshot(&self) -> bool {
        self.snapshot.is_some()
    }

    /// Replay the log into a store: the checkpoint snapshot (or a fresh
    /// store), plus the retained tail. Replay is forgiving: records that
    /// no longer validate (possible only with a corrupted/truncated log) are
    /// skipped rather than panicking, matching how a recovering replica must
    /// treat a torn log tail.
    pub fn replay(&self) -> Store {
        let mut store = self.snapshot.clone().unwrap_or_default();
        for rec in &self.records {
            match rec {
                LogRecord::OptionAccepted { key, option } => {
                    let _ = store.accept(key, option.clone());
                }
                LogRecord::Decided { key, txn, commit } => {
                    let _ = store.decide(key, *txn, *commit);
                }
                LogRecord::Installed {
                    key,
                    version,
                    value,
                    txn,
                } => {
                    let _ = store.install(key, *version, value.clone(), *txn);
                }
            }
        }
        store
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::WriteOp;
    use crate::types::Value;

    fn txn(n: u64) -> TxnId {
        TxnId::new(0, n)
    }

    #[test]
    fn append_assigns_sequential_lsns() {
        let mut wal = Wal::new();
        let k = Key::new("a");
        let o = RecordOption::new(txn(1), 0, WriteOp::add(1));
        assert_eq!(
            wal.append(LogRecord::OptionAccepted {
                key: k.clone(),
                option: o
            }),
            0
        );
        assert_eq!(
            wal.append(LogRecord::Decided {
                key: k,
                txn: txn(1),
                commit: true
            }),
            1
        );
        assert_eq!(wal.len(), 2);
        assert!(!wal.is_empty());
    }

    #[test]
    fn replay_reconstructs_state() {
        let mut wal = Wal::new();
        let k = Key::new("balance");
        wal.append(LogRecord::OptionAccepted {
            key: k.clone(),
            option: RecordOption::new(txn(1), 0, WriteOp::Set(Value::Int(100))),
        });
        wal.append(LogRecord::Decided {
            key: k.clone(),
            txn: txn(1),
            commit: true,
        });
        wal.append(LogRecord::OptionAccepted {
            key: k.clone(),
            option: RecordOption::new(txn(2), 0, WriteOp::add(-30)),
        });
        wal.append(LogRecord::Decided {
            key: k.clone(),
            txn: txn(2),
            commit: true,
        });
        wal.append(LogRecord::OptionAccepted {
            key: k.clone(),
            option: RecordOption::new(txn(3), 0, WriteOp::add(-30)),
        });
        // txn 3 still pending at "crash" time.
        let store = wal.replay();
        let r = store.read(&k);
        assert_eq!(r.value, Value::Int(70));
        assert_eq!(r.version, 2);
        assert_eq!(r.pending, 1);
    }

    #[test]
    fn truncated_log_replays_prefix() {
        let mut wal = Wal::new();
        let k = Key::new("a");
        wal.append(LogRecord::OptionAccepted {
            key: k.clone(),
            option: RecordOption::new(txn(1), 0, WriteOp::Set(Value::Int(1))),
        });
        wal.append(LogRecord::Decided {
            key: k.clone(),
            txn: txn(1),
            commit: true,
        });
        wal.truncate(1);
        let store = wal.replay();
        let r = store.read(&k);
        assert_eq!(r.version, 0);
        assert_eq!(r.pending, 1);
    }

    #[test]
    fn checkpoint_preserves_replay_and_frees_tail() {
        let mut wal = Wal::new();
        let k = Key::new("a");
        wal.append(LogRecord::OptionAccepted {
            key: k.clone(),
            option: RecordOption::new(txn(1), 0, WriteOp::Set(Value::Int(10))),
        });
        wal.append(LogRecord::Decided {
            key: k.clone(),
            txn: txn(1),
            commit: true,
        });
        let live = wal.replay();
        wal.checkpoint(&live);
        assert_eq!(wal.len(), 0, "tail dropped");
        assert_eq!(wal.base_lsn(), 2);
        assert!(wal.has_snapshot());
        // Lsns stay global and monotonic across the checkpoint.
        let lsn = wal.append(LogRecord::OptionAccepted {
            key: k.clone(),
            option: RecordOption::new(txn(2), 1, WriteOp::add(5)),
        });
        assert_eq!(lsn, 2);
        wal.append(LogRecord::Decided {
            key: k.clone(),
            txn: txn(2),
            commit: true,
        });
        let r = wal.replay().read(&k);
        assert_eq!(r.version, 2);
        assert_eq!(r.value, Value::Int(15));
    }

    #[test]
    fn truncate_to_clamps_and_drops_prefix() {
        let mut wal = Wal::new();
        let k = Key::new("a");
        let log_version = |wal: &mut Wal, v: u64| {
            wal.append(LogRecord::OptionAccepted {
                key: k.clone(),
                option: RecordOption::new(txn(v), v - 1, WriteOp::Set(Value::Int(v as i64))),
            });
            wal.append(LogRecord::Decided {
                key: k.clone(),
                txn: txn(v),
                commit: true,
            });
        };
        log_version(&mut wal, 1);
        log_version(&mut wal, 2);
        let durable = wal.replay(); // state as of lsn 4
        log_version(&mut wal, 3);
        wal.install_snapshot(durable);
        wal.truncate_to(4);
        assert_eq!(wal.base_lsn(), 4);
        assert_eq!(wal.len(), 2, "undurable tail retained");
        let r = wal.replay().read(&k);
        assert_eq!((r.version, r.value), (3, Value::Int(3)));
        // Below-base and beyond-end marks are clamped, not panics.
        wal.truncate_to(0);
        assert_eq!(wal.base_lsn(), 4);
        wal.truncate_to(1_000);
        assert_eq!(wal.base_lsn(), 6);
        assert!(wal.is_empty());
    }
}
