//! # planet-storage
//!
//! The per-site storage engine underneath the PLANET reproduction's
//! geo-replicated store: multi-versioned records, MDCC-style *options*
//! (conditional writes validated optimistically, including commutative
//! demarcation-bounded deltas), a write-ahead log, and crash recovery.
//!
//! The protocol layer (`planet-mdcc`) instantiates one [`Replica`] per data
//! center and drives it through `accept` / `decide`; the record module's
//! validation rules are exactly the conflict semantics the commit protocol —
//! and therefore the commit-likelihood predictor above it — observes.

#![warn(missing_docs)]

pub mod intern;
pub mod options;
pub mod record;
mod replica;
mod store;
pub mod types;
pub mod wal;

pub use intern::KeyInterner;
pub use options::{RecordOption, RejectReason, WriteOp};
pub use record::{CommittedVersion, VersionedRecord};
pub use replica::Replica;
pub use store::{ReadResult, Store};
pub use types::{Bytes, Key, KeyId, TxnId, Value, VersionNo};
pub use wal::{LogRecord, Wal};
