//! MDCC-style *options*.
//!
//! In the optimistic commit protocol an update is not applied directly;
//! instead the transaction proposes an **option** — "if this transaction
//! commits, apply this write on top of version *v*". A replica *accepts* an
//! option after validating it against its local record state, and the option
//! is *executed* (folded into a new committed version) or *discarded* when
//! the transaction's outcome is learned.
//!
//! Two flavours exist, mirroring MDCC:
//!
//! * **Physical** options ([`WriteOp::Set`] / [`WriteOp::Delete`]) name an
//!   exact expected version; two pending physical options on the same record
//!   conflict.
//! * **Commutative** options ([`WriteOp::Add`]) are deltas with integrity
//!   bounds (the demarcation protocol): any set of deltas may be pending
//!   simultaneously as long as the *worst-case* outcome respects the bounds.

use crate::types::{TxnId, Value, VersionNo};

/// The write an option would apply if its transaction commits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WriteOp {
    /// Replace the value (physical update).
    Set(Value),
    /// Delete the record (physical update).
    Delete,
    /// Add `delta` to an integer value, keeping it within `[lower, upper]`
    /// (commutative update with demarcation bounds).
    Add {
        /// Signed change to the integer value.
        delta: i64,
        /// Inclusive lower bound the value must respect, if any.
        lower: Option<i64>,
        /// Inclusive upper bound the value must respect, if any.
        upper: Option<i64>,
    },
}

impl WriteOp {
    /// Unbounded commutative addition.
    pub fn add(delta: i64) -> Self {
        WriteOp::Add {
            delta,
            lower: None,
            upper: None,
        }
    }

    /// Commutative addition with a lower bound (e.g. "stock never below 0").
    pub fn add_with_floor(delta: i64, lower: i64) -> Self {
        WriteOp::Add {
            delta,
            lower: Some(lower),
            upper: None,
        }
    }

    /// True for commutative (delta) operations.
    pub fn is_commutative(&self) -> bool {
        matches!(self, WriteOp::Add { .. })
    }

    /// Apply this operation to a value, producing the new value. For `Add`
    /// on a non-integer the old value is treated as 0 (the caller is expected
    /// to have validated the type earlier).
    pub fn apply(&self, old: &Value) -> Value {
        match self {
            WriteOp::Set(v) => v.clone(),
            WriteOp::Delete => Value::None,
            WriteOp::Add { delta, .. } => Value::Int(old.as_int().unwrap_or(0) + delta),
        }
    }
}

/// An option: a conditional write proposed by a transaction for one record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecordOption {
    /// The proposing transaction.
    pub txn: TxnId,
    /// For physical ops: the committed version this write is based on.
    /// Commutative ops ignore it (they validate against bounds instead).
    pub read_version: VersionNo,
    /// The conditional write.
    pub op: WriteOp,
}

impl RecordOption {
    /// Build an option.
    pub fn new(txn: TxnId, read_version: VersionNo, op: WriteOp) -> Self {
        RecordOption {
            txn,
            read_version,
            op,
        }
    }

    /// True for commutative (delta) options.
    pub fn is_commutative(&self) -> bool {
        self.op.is_commutative()
    }
}

/// Why a replica refused to accept an option.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// Physical option based on a stale version.
    StaleVersion {
        /// Version the option expected.
        expected: VersionNo,
        /// Version the replica actually has.
        actual: VersionNo,
    },
    /// Another transaction already has a pending conflicting option.
    PendingConflict {
        /// The transaction holding the conflicting option.
        holder: TxnId,
    },
    /// A commutative option would let the value escape its integrity bounds
    /// in the worst case.
    BoundViolation,
    /// A commutative option targeted a non-integer value.
    TypeMismatch,
    /// The same transaction proposed two options for one record.
    DuplicateTxn,
}

impl std::fmt::Display for RejectReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RejectReason::StaleVersion { expected, actual } => {
                write!(f, "stale version (expected {expected}, actual {actual})")
            }
            RejectReason::PendingConflict { holder } => {
                write!(f, "conflicts with pending option of {holder}")
            }
            RejectReason::BoundViolation => write!(f, "integrity bound violation"),
            RejectReason::TypeMismatch => write!(f, "commutative op on non-integer value"),
            RejectReason::DuplicateTxn => write!(f, "transaction already has a pending option"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn apply_set_and_delete() {
        let old = Value::Int(5);
        assert_eq!(WriteOp::Set(Value::Int(9)).apply(&old), Value::Int(9));
        assert_eq!(WriteOp::Delete.apply(&old), Value::None);
    }

    #[test]
    fn apply_add() {
        assert_eq!(WriteOp::add(-3).apply(&Value::Int(10)), Value::Int(7));
        // Adding to an absent value treats it as zero.
        assert_eq!(WriteOp::add(4).apply(&Value::None), Value::Int(4));
    }

    #[test]
    fn commutativity_flag() {
        assert!(WriteOp::add(1).is_commutative());
        assert!(!WriteOp::Set(Value::Int(1)).is_commutative());
        assert!(!WriteOp::Delete.is_commutative());
    }

    #[test]
    fn reject_reason_display() {
        let r = RejectReason::StaleVersion {
            expected: 1,
            actual: 3,
        };
        assert!(r.to_string().contains("stale"));
        let c = RejectReason::PendingConflict {
            holder: TxnId::new(0, 9),
        };
        assert!(c.to_string().contains("t0.9"));
    }
}
