//! Core identifier and value types shared across the storage and protocol
//! layers.

use std::sync::Arc;

/// Immutable, cheaply cloneable byte string: a `(start, len)` view into a
/// shared `Arc<[u8]>` buffer. Replaces the external `bytes` crate: values
/// are written once and shared thereafter, so reference-counted sharing is
/// all the protocol needs — and because a view needs no allocation of its
/// own, the wire decoder can carve every payload field of a frame out of
/// the frame's single receive buffer (zero-copy decode) instead of copying
/// each field into a fresh allocation.
///
/// Equality, ordering and hashing are on the viewed *contents*, so an
/// owned value and a zero-copy view of the same bytes are
/// indistinguishable.
#[derive(Clone)]
pub struct Bytes {
    buf: Arc<[u8]>,
    start: u32,
    len: u32,
}

impl Bytes {
    /// Copy a slice into a fresh shared buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            buf: Arc::from(data),
            start: 0,
            len: data.len() as u32,
        }
    }

    /// A zero-copy view of `buf[start..start + len]`. The buffer stays
    /// alive (and its bytes immutable) as long as any view does.
    ///
    /// # Panics
    /// If the range is out of bounds or exceeds `u32` addressing (wire
    /// frames are far smaller).
    pub fn shared(buf: Arc<[u8]>, start: usize, len: usize) -> Self {
        assert!(
            start.checked_add(len).is_some_and(|end| end <= buf.len()),
            "byte view out of bounds"
        );
        assert!(start <= u32::MAX as usize && len <= u32::MAX as usize);
        Bytes {
            buf,
            start: start as u32,
            len: len as u32,
        }
    }

    /// The bytes as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf[self.start as usize..(self.start + self.len) as usize]
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// True if this value is a view into a larger shared buffer (i.e. it
    /// keeps more bytes alive than it exposes). Introspection for tests
    /// and pool accounting.
    pub fn is_view(&self) -> bool {
        (self.len as usize) != self.buf.len()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::copy_from_slice(&[])
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Bytes").field(&self.as_slice()).finish()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Bytes {}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state)
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let len = v.len() as u32;
        Bytes {
            buf: Arc::from(v.into_boxed_slice()),
            start: 0,
            len,
        }
    }
}

impl From<&str> for Bytes {
    fn from(v: &str) -> Self {
        Bytes::copy_from_slice(v.as_bytes())
    }
}

/// A record key. Keys are short strings like `"stock:42"`, shared so
/// cloning one (message fan-out, WAL records) is a refcount bump rather
/// than a heap copy. Inside a store the hot path goes further and works on
/// interned [`KeyId`]s; this form is for the wire and API boundary.
///
/// Two representations share the type: an owned `Arc<str>` (the
/// constructor path) and a zero-copy view into a shared byte buffer (the
/// wire-decode path, UTF-8 validated once at construction). Equality,
/// ordering and hashing are on the string contents, so the two are
/// indistinguishable — an interner lookup keyed by an owned key finds a
/// wire-decoded view of the same key and vice versa.
#[derive(Clone)]
pub struct Key(KeyRepr);

#[derive(Clone)]
enum KeyRepr {
    Owned(Arc<str>),
    Shared {
        buf: Arc<[u8]>,
        start: u32,
        len: u32,
    },
}

impl Key {
    /// Build a key from anything string-like.
    pub fn new(s: impl Into<String>) -> Self {
        Key(KeyRepr::Owned(Arc::from(s.into())))
    }

    /// A zero-copy key view of `buf[start..start + len]`. Returns `None`
    /// if the range is out of bounds or not valid UTF-8 (validated here,
    /// once, so `as_str` never re-checks failure paths at use sites).
    pub fn shared(buf: Arc<[u8]>, start: usize, len: usize) -> Option<Self> {
        let end = start.checked_add(len)?;
        if end > buf.len() || len > u32::MAX as usize || start > u32::MAX as usize {
            return None;
        }
        std::str::from_utf8(&buf[start..end]).ok()?;
        Some(Key(KeyRepr::Shared {
            buf,
            start: start as u32,
            len: len as u32,
        }))
    }

    /// The key as a string slice.
    pub fn as_str(&self) -> &str {
        match &self.0 {
            KeyRepr::Owned(s) => s,
            KeyRepr::Shared { buf, start, len } => {
                // In bounds: `shared` checked the range at construction and
                // `Arc<[u8]>` contents never change or shrink.
                // check:allow(panic)
                let bytes = &buf[*start as usize..(*start + *len) as usize];
                // UTF-8 validated in `shared`, once, for the same reason.
                // check:allow(panic)
                std::str::from_utf8(bytes).expect("key validated at construction")
            }
        }
    }
}

impl std::fmt::Debug for Key {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Contents only: an owned key and a view of the same string are
        // semantically identical, so they print identically too.
        f.debug_tuple("Key").field(&self.as_str()).finish()
    }
}

impl PartialEq for Key {
    fn eq(&self, other: &Self) -> bool {
        self.as_str() == other.as_str()
    }
}
impl Eq for Key {}

impl PartialOrd for Key {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Key {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_str().cmp(other.as_str())
    }
}

impl std::hash::Hash for Key {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_str().hash(state)
    }
}

impl From<&str> for Key {
    fn from(s: &str) -> Self {
        Key(KeyRepr::Owned(Arc::from(s)))
    }
}

impl From<String> for Key {
    fn from(s: String) -> Self {
        Key(KeyRepr::Owned(Arc::from(s)))
    }
}

/// A store-local dense handle for an interned [`Key`]: index into the
/// owning [`KeyInterner`](crate::KeyInterner). Resolving a key to its id
/// costs one hash at the message boundary; every subsequent store
/// operation on the id is a plain vector index — no string hashing, no
/// comparisons, no cloning.
///
/// Ids are meaningful only within the interner (and thus the store/replica)
/// that issued them: they never cross the wire and are never compared
/// across replicas.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct KeyId(pub u32);

impl std::fmt::Display for Key {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A stored value. Integers get a first-class representation because
/// commutative (demarcation-style) updates operate on them; everything else
/// is opaque bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Value {
    /// Absent / deleted.
    None,
    /// A 64-bit integer, the domain of commutative `Add` operations.
    Int(i64),
    /// Opaque application bytes.
    Bytes(Bytes),
}

impl Value {
    /// Interpret as an integer; `None` counts as 0, bytes as no integer.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::None => Some(0),
            Value::Bytes(_) => None,
        }
    }

    /// Convenience constructor for byte values.
    pub fn bytes(b: impl Into<Bytes>) -> Self {
        Value::Bytes(b.into())
    }

    /// True if this value is `None` (absent).
    pub fn is_none(&self) -> bool {
        matches!(self, Value::None)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Bytes(Bytes::copy_from_slice(v.as_bytes()))
    }
}

/// A globally unique transaction identifier: the originating site plus a
/// per-site sequence number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TxnId {
    /// Site (data center) where the transaction originated.
    pub site: u8,
    /// Per-site sequence number.
    pub seq: u64,
}

impl TxnId {
    /// Build a transaction id.
    pub fn new(site: u8, seq: u64) -> Self {
        TxnId { site, seq }
    }
}

impl std::fmt::Display for TxnId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t{}.{}", self.site, self.seq)
    }
}

/// A committed record version number. Version 0 is "never written".
pub type VersionNo = u64;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_conversions() {
        let k: Key = "a".into();
        assert_eq!(k, Key::new("a"));
        assert_eq!(k.as_str(), "a");
        assert_eq!(k.to_string(), "a");
    }

    #[test]
    fn value_as_int() {
        assert_eq!(Value::Int(7).as_int(), Some(7));
        assert_eq!(Value::None.as_int(), Some(0));
        assert_eq!(Value::from("x").as_int(), None);
        assert!(Value::None.is_none());
        assert!(!Value::Int(0).is_none());
    }

    #[test]
    fn txn_id_orders_by_site_then_seq() {
        assert!(TxnId::new(0, 5) < TxnId::new(1, 0));
        assert!(TxnId::new(1, 1) < TxnId::new(1, 2));
        assert_eq!(TxnId::new(2, 3).to_string(), "t2.3");
    }
}
