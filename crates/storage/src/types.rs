//! Core identifier and value types shared across the storage and protocol
//! layers.

use std::sync::Arc;

/// Immutable, cheaply cloneable byte string (an `Arc<[u8]>` under the hood).
/// Replaces the external `bytes` crate: values are written once and shared
/// thereafter, so reference-counted sharing is all the protocol needs.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Bytes(Arc<[u8]>);

impl Bytes {
    /// Copy a slice into a fresh shared buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes(Arc::from(data))
    }

    /// The bytes as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.0
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(Arc::from(v.into_boxed_slice()))
    }
}

impl From<&str> for Bytes {
    fn from(v: &str) -> Self {
        Bytes::copy_from_slice(v.as_bytes())
    }
}

/// A record key. Keys are short strings like `"stock:42"`, shared behind an
/// `Arc<str>` so cloning one (message fan-out, WAL records) is a refcount
/// bump rather than a heap copy. Inside a store the hot path goes further
/// and works on interned [`KeyId`]s; the `Arc<str>` form is for the wire
/// and API boundary.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Key(Arc<str>);

impl Key {
    /// Build a key from anything string-like.
    pub fn new(s: impl Into<String>) -> Self {
        Key(Arc::from(s.into()))
    }

    /// The key as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl From<&str> for Key {
    fn from(s: &str) -> Self {
        Key(Arc::from(s))
    }
}

impl From<String> for Key {
    fn from(s: String) -> Self {
        Key(Arc::from(s))
    }
}

/// A store-local dense handle for an interned [`Key`]: index into the
/// owning [`KeyInterner`](crate::KeyInterner). Resolving a key to its id
/// costs one hash at the message boundary; every subsequent store
/// operation on the id is a plain vector index — no string hashing, no
/// comparisons, no cloning.
///
/// Ids are meaningful only within the interner (and thus the store/replica)
/// that issued them: they never cross the wire and are never compared
/// across replicas.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct KeyId(pub u32);

impl std::fmt::Display for Key {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// A stored value. Integers get a first-class representation because
/// commutative (demarcation-style) updates operate on them; everything else
/// is opaque bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Value {
    /// Absent / deleted.
    None,
    /// A 64-bit integer, the domain of commutative `Add` operations.
    Int(i64),
    /// Opaque application bytes.
    Bytes(Bytes),
}

impl Value {
    /// Interpret as an integer; `None` counts as 0, bytes as no integer.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::None => Some(0),
            Value::Bytes(_) => None,
        }
    }

    /// Convenience constructor for byte values.
    pub fn bytes(b: impl Into<Bytes>) -> Self {
        Value::Bytes(b.into())
    }

    /// True if this value is `None` (absent).
    pub fn is_none(&self) -> bool {
        matches!(self, Value::None)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Bytes(Bytes::copy_from_slice(v.as_bytes()))
    }
}

/// A globally unique transaction identifier: the originating site plus a
/// per-site sequence number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TxnId {
    /// Site (data center) where the transaction originated.
    pub site: u8,
    /// Per-site sequence number.
    pub seq: u64,
}

impl TxnId {
    /// Build a transaction id.
    pub fn new(site: u8, seq: u64) -> Self {
        TxnId { site, seq }
    }
}

impl std::fmt::Display for TxnId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t{}.{}", self.site, self.seq)
    }
}

/// A committed record version number. Version 0 is "never written".
pub type VersionNo = u64;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_conversions() {
        let k: Key = "a".into();
        assert_eq!(k, Key::new("a"));
        assert_eq!(k.as_str(), "a");
        assert_eq!(k.to_string(), "a");
    }

    #[test]
    fn value_as_int() {
        assert_eq!(Value::Int(7).as_int(), Some(7));
        assert_eq!(Value::None.as_int(), Some(0));
        assert_eq!(Value::from("x").as_int(), None);
        assert!(Value::None.is_none());
        assert!(!Value::Int(0).is_none());
    }

    #[test]
    fn txn_id_orders_by_site_then_seq() {
        assert!(TxnId::new(0, 5) < TxnId::new(1, 0));
        assert!(TxnId::new(1, 1) < TxnId::new(1, 2));
        assert_eq!(TxnId::new(2, 3).to_string(), "t2.3");
    }
}
