//! A replica: a [`Store`] whose every transition is write-ahead logged.
//!
//! This is the unit the protocol layer instantiates once per site. The
//! invariant — *replaying the WAL yields exactly the live store* — is checked
//! by [`Replica::verify_recovery`] and by property tests.

use crate::options::{RecordOption, RejectReason};
use crate::store::{ReadResult, Store};
use crate::types::{Key, KeyId, TxnId, VersionNo};
use crate::wal::{LogRecord, Wal};

/// A write-ahead-logged store replica.
#[derive(Debug, Default)]
pub struct Replica {
    store: Store,
    wal: Wal,
    accepted: u64,
    rejected: u64,
    committed: u64,
    aborted: u64,
}

impl Replica {
    /// A fresh, empty replica.
    pub fn new() -> Self {
        Self::default()
    }

    /// Rebuild a replica from a recovered log.
    pub fn recover(wal: Wal) -> Self {
        let store = wal.replay();
        Replica {
            store,
            wal,
            ..Default::default()
        }
    }

    /// Intern a key, returning the dense id the `*_id` hot-path methods
    /// take. The protocol layer resolves each message's key once and runs
    /// the whole validate/log/accept sequence on the id.
    pub fn intern(&mut self, key: &Key) -> KeyId {
        self.store.intern(key)
    }

    /// Read the latest committed state of a key.
    pub fn read(&self, key: &Key) -> ReadResult {
        self.store.read(key)
    }

    /// Read the latest committed state by interned id.
    pub fn read_id(&self, id: KeyId) -> ReadResult {
        self.store.read_id(id)
    }

    /// Validate an option without accepting it.
    pub fn validate(&self, key: &Key, option: &RecordOption) -> Result<(), RejectReason> {
        self.store.validate(key, option)
    }

    /// Validate an option by interned id without accepting it.
    pub fn validate_id(&self, id: KeyId, option: &RecordOption) -> Result<(), RejectReason> {
        self.store.validate_id(id, option)
    }

    /// Validate, log and accept an option.
    pub fn accept(&mut self, key: &Key, option: RecordOption) -> Result<(), RejectReason> {
        let id = self.store.intern(key);
        self.accept_id(id, option)
    }

    /// Validate, log and accept an option by interned id.
    pub fn accept_id(&mut self, id: KeyId, option: RecordOption) -> Result<(), RejectReason> {
        // Accept first (it validates internally) and log only on success:
        // the log still never contains an invalid acceptance, the option is
        // validated exactly once, and a rejection propagates as an error
        // instead of panicking the replica actor mid-drive-loop.
        let record = LogRecord::OptionAccepted {
            key: self.store.key_name(id).clone(),
            option: option.clone(),
        };
        self.store.accept_id(id, option)?;
        self.wal.append(record);
        self.accepted += 1;
        Ok(())
    }

    /// Record that an option was *rejected* (for statistics only — rejections
    /// don't change state and are not logged).
    pub fn note_rejection(&mut self) {
        self.rejected += 1;
    }

    /// Log and apply a transaction decision for one key.
    pub fn decide(&mut self, key: &Key, txn: TxnId, commit: bool) -> Option<VersionNo> {
        match self.store.key_id(key) {
            Some(id) => self.decide_id(id, txn, commit),
            None => {
                // Unknown key: the decision is still logged (the log is the
                // history of everything learned), but nothing applies.
                self.wal.append(LogRecord::Decided {
                    key: key.clone(),
                    txn,
                    commit,
                });
                if !commit {
                    self.aborted += 1;
                }
                None
            }
        }
    }

    /// Log and apply a transaction decision by interned id.
    pub fn decide_id(&mut self, id: KeyId, txn: TxnId, commit: bool) -> Option<VersionNo> {
        self.wal.append(LogRecord::Decided {
            key: self.store.key_name(id).clone(),
            txn,
            commit,
        });
        let result = self.store.decide_id(id, txn, commit);
        if result.is_some() {
            self.committed += 1;
        } else if !commit {
            self.aborted += 1;
        }
        result
    }

    /// Log and apply a state-transfer install from the key's master.
    /// Returns true if the committed head advanced.
    pub fn install(
        &mut self,
        key: &Key,
        version: VersionNo,
        value: crate::types::Value,
        txn: TxnId,
    ) -> bool {
        let id = self.store.intern(key);
        self.install_id(id, version, value, txn)
    }

    /// Log and apply a state-transfer install by interned id.
    pub fn install_id(
        &mut self,
        id: KeyId,
        version: VersionNo,
        value: crate::types::Value,
        txn: TxnId,
    ) -> bool {
        self.wal.append(LogRecord::Installed {
            key: self.store.key_name(id).clone(),
            version,
            value: value.clone(),
            txn,
        });
        self.store.install_id(id, version, value, txn)
    }

    /// True if `txn` currently holds a pending option on `key` — used by the
    /// protocol layer to make re-proposals (retry/fallback rounds)
    /// idempotent.
    pub fn has_pending(&self, key: &Key, txn: TxnId) -> bool {
        self.store
            .record(key)
            .is_some_and(|r| r.pending().iter().any(|o| o.txn == txn))
    }

    /// [`Replica::has_pending`] by interned id.
    pub fn has_pending_id(&self, id: KeyId, txn: TxnId) -> bool {
        self.store
            .record_id(id)
            .pending()
            .iter()
            .any(|o| o.txn == txn)
    }

    /// Checkpoint the WAL: install a snapshot of the live store and drop
    /// the retained log tail. The recovery invariant is preserved — replay
    /// restarts from the snapshot — which [`Replica::verify_recovery`]
    /// continues to check afterwards.
    pub fn checkpoint(&mut self) {
        self.wal.checkpoint(&self.store);
    }

    /// Checkpoint if the retained WAL tail holds at least `threshold`
    /// records (`threshold` 0 disables). Returns true if one was taken.
    pub fn maybe_checkpoint(&mut self, threshold: usize) -> bool {
        if threshold > 0 && self.wal.len() >= threshold {
            self.checkpoint();
            true
        } else {
            false
        }
    }

    /// Garbage-collect committed version chains, keeping the newest `keep`
    /// versions per record. Reads and validation only ever look at the
    /// chain head, so this never changes observable state.
    pub fn gc(&mut self, keep: usize) {
        self.store.gc(keep);
    }

    /// The underlying store (read-only).
    pub fn store(&self) -> &Store {
        &self.store
    }

    /// The write-ahead log (read-only).
    pub fn wal(&self) -> &Wal {
        &self.wal
    }

    /// Lifetime counters: `(accepted, rejected, committed, aborted)`.
    pub fn stats(&self) -> (u64, u64, u64, u64) {
        (self.accepted, self.rejected, self.committed, self.aborted)
    }

    /// Check the recovery invariant: replaying this replica's WAL from
    /// scratch reproduces the live store state for every key it mentions.
    /// Returns the keys whose state diverged (empty = invariant holds).
    pub fn verify_recovery(&self) -> Vec<Key> {
        let recovered = self.wal.replay();
        let mut diverged = Vec::new();
        for key in self.store.keys() {
            if recovered.read(key) != self.store.read(key) {
                diverged.push(key.clone());
            }
        }
        diverged
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::WriteOp;
    use crate::types::Value;

    fn txn(n: u64) -> TxnId {
        TxnId::new(0, n)
    }

    #[test]
    fn accept_and_decide_are_logged() {
        let mut r = Replica::new();
        let k = Key::new("a");
        r.accept(
            &k,
            RecordOption::new(txn(1), 0, WriteOp::Set(Value::Int(5))),
        )
        .unwrap();
        r.decide(&k, txn(1), true);
        assert_eq!(r.wal().len(), 2);
        assert_eq!(r.stats(), (1, 0, 1, 0));
    }

    #[test]
    fn rejected_options_do_not_pollute_log() {
        let mut r = Replica::new();
        let k = Key::new("a");
        r.accept(
            &k,
            RecordOption::new(txn(1), 0, WriteOp::Set(Value::Int(5))),
        )
        .unwrap();
        let err = r.accept(
            &k,
            RecordOption::new(txn(2), 0, WriteOp::Set(Value::Int(6))),
        );
        assert!(err.is_err());
        r.note_rejection();
        assert_eq!(r.wal().len(), 1);
        assert_eq!(r.stats().1, 1);
    }

    #[test]
    fn recovery_reproduces_live_state() {
        let mut r = Replica::new();
        let k = Key::new("stock");
        r.accept(
            &k,
            RecordOption::new(txn(1), 0, WriteOp::Set(Value::Int(10))),
        )
        .unwrap();
        r.decide(&k, txn(1), true);
        r.accept(
            &k,
            RecordOption::new(txn(2), 0, WriteOp::add_with_floor(-1, 0)),
        )
        .unwrap();
        assert!(r.verify_recovery().is_empty());

        let recovered = Replica::recover(r.wal().clone());
        assert_eq!(recovered.read(&k), r.read(&k));
    }

    #[test]
    fn recovery_holds_across_checkpoint() {
        let mut r = Replica::new();
        let k = Key::new("a");
        r.accept(
            &k,
            RecordOption::new(txn(1), 0, WriteOp::Set(Value::Int(1))),
        )
        .unwrap();
        r.decide(&k, txn(1), true);
        r.checkpoint();
        assert_eq!(r.wal().len(), 0);
        assert!(r.verify_recovery().is_empty(), "post-checkpoint, pre-tail");
        r.accept(&k, RecordOption::new(txn(2), 1, WriteOp::add(4)))
            .unwrap();
        r.decide(&k, txn(2), true);
        assert!(r.verify_recovery().is_empty(), "snapshot + tail replay");
        let recovered = Replica::recover(r.wal().clone());
        assert_eq!(recovered.read(&k), r.read(&k));
        assert_eq!(recovered.read(&k).value, Value::Int(5));
    }

    #[test]
    fn maybe_checkpoint_honors_threshold() {
        let mut r = Replica::new();
        let k = Key::new("a");
        r.accept(
            &k,
            RecordOption::new(txn(1), 0, WriteOp::Set(Value::Int(1))),
        )
        .unwrap();
        assert!(!r.maybe_checkpoint(0), "0 disables");
        assert!(!r.maybe_checkpoint(5), "below threshold");
        r.decide(&k, txn(1), true);
        assert!(r.maybe_checkpoint(2));
        assert_eq!(r.wal().len(), 0);
        assert!(r.verify_recovery().is_empty());
    }

    #[test]
    fn abort_counts() {
        let mut r = Replica::new();
        let k = Key::new("a");
        r.accept(&k, RecordOption::new(txn(1), 0, WriteOp::add(1)))
            .unwrap();
        r.decide(&k, txn(1), false);
        assert_eq!(r.stats(), (1, 0, 0, 1));
    }
}
