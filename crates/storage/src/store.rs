//! The per-replica key-value store: an ordered map of versioned records.

use std::collections::BTreeMap;

use crate::options::{RecordOption, RejectReason};
use crate::record::VersionedRecord;
use crate::types::{Key, TxnId, Value, VersionNo};

/// The result of a read: the committed version and its value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReadResult {
    /// Committed version number (0 for never-written keys).
    pub version: VersionNo,
    /// The committed value.
    pub value: Value,
    /// How many options are pending on the record — the likelihood model
    /// uses this as a contention signal.
    pub pending: usize,
}

/// An in-memory ordered store of versioned records.
#[derive(Debug, Default)]
pub struct Store {
    records: BTreeMap<Key, VersionedRecord>,
}

impl Store {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Read the latest committed state of a key. Never fails: unknown keys
    /// read as version 0, `Value::None`.
    pub fn read(&self, key: &Key) -> ReadResult {
        match self.records.get(key) {
            Some(r) => ReadResult {
                version: r.current_version(),
                value: r.current_value().clone(),
                pending: r.pending_count(),
            },
            None => ReadResult {
                version: 0,
                value: Value::None,
                pending: 0,
            },
        }
    }

    /// Validate an option without mutating anything.
    pub fn validate(&self, key: &Key, option: &RecordOption) -> Result<(), RejectReason> {
        match self.records.get(key) {
            Some(r) => r.validate(option),
            None => VersionedRecord::new().validate(option),
        }
    }

    /// Validate and accept an option on a key. The key is only cloned the
    /// first time it is seen; the steady-state path is a plain lookup.
    pub fn accept(&mut self, key: &Key, option: RecordOption) -> Result<(), RejectReason> {
        if let Some(r) = self.records.get_mut(key) {
            return r.accept(option);
        }
        let mut r = VersionedRecord::new();
        r.accept(option)?;
        self.records.insert(key.clone(), r);
        Ok(())
    }

    /// Learn a transaction outcome on a key; returns the new version if one
    /// was committed.
    pub fn decide(&mut self, key: &Key, txn: TxnId, commit: bool) -> Option<VersionNo> {
        self.records
            .get_mut(key)
            .and_then(|r| r.decide(txn, commit))
    }

    /// Install a committed version by state transfer; see
    /// [`VersionedRecord::install`].
    pub fn install(&mut self, key: &Key, version: VersionNo, value: Value, txn: TxnId) -> bool {
        if let Some(r) = self.records.get_mut(key) {
            return r.install(version, value, txn);
        }
        let mut r = VersionedRecord::new();
        let advanced = r.install(version, value, txn);
        if advanced {
            self.records.insert(key.clone(), r);
        }
        advanced
    }

    /// Direct access to a record (e.g. pending inspection), if it exists.
    pub fn record(&self, key: &Key) -> Option<&VersionedRecord> {
        self.records.get(key)
    }

    /// Number of keys ever written or holding pending options.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if no record exists.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Iterate keys in order.
    pub fn keys(&self) -> impl Iterator<Item = &Key> {
        self.records.keys()
    }

    /// Total pending options across all records.
    pub fn total_pending(&self) -> usize {
        self.records.values().map(|r| r.pending_count()).sum()
    }

    /// Garbage-collect version chains, keeping the newest `keep` versions of
    /// each record.
    pub fn gc(&mut self, keep: usize) {
        for r in self.records.values_mut() {
            r.gc(keep);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::WriteOp;

    fn txn(n: u64) -> TxnId {
        TxnId::new(1, n)
    }

    #[test]
    fn read_unknown_key() {
        let s = Store::new();
        let r = s.read(&Key::new("missing"));
        assert_eq!(r.version, 0);
        assert_eq!(r.value, Value::None);
        assert_eq!(r.pending, 0);
        assert!(s.is_empty());
    }

    #[test]
    fn accept_decide_read_cycle() {
        let mut s = Store::new();
        let k = Key::new("a");
        s.accept(
            &k,
            RecordOption::new(txn(1), 0, WriteOp::Set(Value::Int(7))),
        )
        .unwrap();
        assert_eq!(s.read(&k).pending, 1);
        assert_eq!(s.decide(&k, txn(1), true), Some(1));
        let r = s.read(&k);
        assert_eq!(r.version, 1);
        assert_eq!(r.value, Value::Int(7));
        assert_eq!(r.pending, 0);
    }

    #[test]
    fn validate_does_not_mutate() {
        let s = Store::new();
        let k = Key::new("a");
        let opt = RecordOption::new(txn(1), 0, WriteOp::Set(Value::Int(1)));
        s.validate(&k, &opt).unwrap();
        assert!(s.is_empty());
        // Validation against a missing record behaves like an empty record:
        // stale expected version is caught.
        let stale = RecordOption::new(txn(1), 5, WriteOp::Set(Value::Int(1)));
        assert!(s.validate(&k, &stale).is_err());
    }

    #[test]
    fn decide_on_unknown_key_is_noop() {
        let mut s = Store::new();
        assert_eq!(s.decide(&Key::new("nope"), txn(1), true), None);
    }

    #[test]
    fn total_pending_sums_across_keys() {
        let mut s = Store::new();
        for (i, k) in ["a", "b", "c"].iter().enumerate() {
            s.accept(
                &Key::new(*k),
                RecordOption::new(txn(i as u64), 0, WriteOp::add(1)),
            )
            .unwrap();
        }
        assert_eq!(s.total_pending(), 3);
        assert_eq!(s.len(), 3);
        assert_eq!(s.keys().count(), 3);
    }

    #[test]
    fn gc_applies_to_all_records() {
        let mut s = Store::new();
        let k = Key::new("a");
        for v in 1..=5u64 {
            s.accept(
                &k,
                RecordOption::new(txn(v), v - 1, WriteOp::Set(Value::Int(v as i64))),
            )
            .unwrap();
            s.decide(&k, txn(v), true);
        }
        s.gc(2);
        assert_eq!(s.record(&k).unwrap().version_count(), 2);
        assert_eq!(s.read(&k).value, Value::Int(5));
    }
}
